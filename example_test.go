package tea_test

import (
	"fmt"

	tea "github.com/tea-graph/tea"
)

// Build a temporal graph from an edge stream and run recency-biased walks.
func ExampleNewEngine() {
	g, err := tea.FromEdges([]tea.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 2, Dst: 0, Time: 3},
		{Src: 0, Dst: 2, Time: 4},
	})
	if err != nil {
		panic(err)
	}
	eng, err := tea.NewEngine(g, tea.ExponentialWalk(0.5), tea.Options{})
	if err != nil {
		panic(err)
	}
	res, err := eng.Run(tea.WalkConfig{
		Length:        10,
		StartVertices: []tea.Vertex{0},
		Seed:          1,
		KeepPaths:     true,
	})
	if err != nil {
		panic(err)
	}
	p := res.Paths[0]
	fmt.Println("vertices:", p.Vertices)
	fmt.Println("times:   ", p.Times)
	// Output:
	// vertices: [0 2]
	// times:    [4]
}

// Temporal candidate sets shrink with the walker's arrival time: the Figure 1
// commuting network from the paper.
func ExampleGraph_CandidateCount() {
	g := tea.CommuteGraph()
	fmt.Println("arriving at 7 from 8 (t=0):", g.CandidateCount(7, 0), "onward connections")
	fmt.Println("arriving at 7 from 0 (t=3):", g.CandidateCount(7, 3), "onward connections")
	fmt.Println("arriving at 7 from 9 (t=4):", g.CandidateCount(7, 4), "onward connections")
	// Output:
	// arriving at 7 from 8 (t=0): 7 onward connections
	// arriving at 7 from 0 (t=3): 4 onward connections
	// arriving at 7 from 9 (t=4): 3 onward connections
}

// Exact temporal reachability: the paper's "only three paths" example.
func ExampleReachableSet() {
	g := tea.CommuteGraph()
	fmt.Println(tea.ReachableSet(g, 9, tea.MinTime))
	// Output:
	// [4 5 6 7]
}

// Extract a time window with the Edges_interval primitive.
func ExampleGraph_EdgesInterval() {
	g := tea.CommuteGraph()
	sub := g.EdgesInterval(3, 5)
	fmt.Println("edges in [3,5]:", sub.NumEdges())
	// Output:
	// edges in [3,5]: 5
}

// Streaming ingestion: batches of strictly newer edges, walks at any point.
func ExampleNewStream() {
	s, err := tea.NewStream(tea.StreamConfig{Weight: tea.Exponential(1)})
	if err != nil {
		panic(err)
	}
	_ = s.AppendBatch([]tea.Edge{{Src: 0, Dst: 1, Time: 1}})
	_ = s.AppendBatch([]tea.Edge{{Src: 1, Dst: 2, Time: 2}, {Src: 2, Dst: 3, Time: 3}})
	verts, _ := s.WalkSeeded(0, tea.MinTime, 5, 1)
	fmt.Println(verts)
	// Output:
	// [0 1 2 3]
}
