// Command teagen generates synthetic temporal edge streams: either one of
// the scaled paper profiles (growth/edit/delicious/twitter) or a custom
// power-law stream, in text or binary format.
//
// Usage:
//
//	teagen -profile twitter -o twitter.teag
//	teagen -vertices 10000 -edges 500000 -skew 0.8 -format text -o g.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tea-graph/tea/internal/edgeio"
	"github.com/tea-graph/tea/internal/gen"
	"github.com/tea-graph/tea/internal/temporal"
)

func main() {
	var (
		profile  = flag.String("profile", "", "named profile: growth|edit|delicious|twitter")
		vertices = flag.Int("vertices", 10000, "vertex count (custom profile)")
		edges    = flag.Int("edges", 100000, "edge count (custom profile)")
		skew     = flag.Float64("skew", 0.8, "Zipf degree skew (custom profile)")
		seed     = flag.Uint64("seed", 1, "random seed")
		format   = flag.String("format", "binary", "output format: binary|text")
		out      = flag.String("o", "", "output path (default stdout for text)")
		describe = flag.Bool("describe", false, "print the generated graph's shape summary instead of writing it")
	)
	flag.Parse()

	var p gen.Profile
	if *profile != "" {
		found := false
		for _, cand := range gen.Profiles() {
			if cand.Name == *profile {
				p = cand
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
	} else {
		p = gen.Profile{Name: "custom", Vertices: *vertices, Edges: *edges, Skew: *skew, Seed: *seed}
	}

	stream := p.Generate()
	if len(stream) == 0 {
		fatal(fmt.Errorf("profile %s generated no edges", p))
	}
	if *describe {
		g, err := temporal.FromEdges(stream, temporal.WithNumVertices(p.Vertices))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n%s", p, gen.Describe(g))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	} else if *format == "binary" {
		fatal(fmt.Errorf("binary output requires -o"))
	}

	switch *format {
	case "binary":
		if err := edgeio.WriteBinary(w, stream); err != nil {
			fatal(err)
		}
	case "text":
		if err := edgeio.WriteText(w, stream); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	fmt.Fprintf(os.Stderr, "teagen: wrote %s (%d edges, %d vertices)\n", p, len(stream), p.Vertices)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teagen:", err)
	os.Exit(1)
}
