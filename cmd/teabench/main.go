// Command teabench regenerates the paper's evaluation artifacts (Table 4 and
// Figures 2, 9–14 plus the §5.2 parameter sensitivity study) on the scaled
// synthetic dataset profiles.
//
// Usage:
//
//	teabench [flags] <experiment>...
//	teabench all                     # every experiment, in paper order
//
// Experiments: fig2 table4 fig9 fig10 sens fig11 fig12 fig13a fig13b fig13c
// fig13d fig13e fig14.
//
// The extra "bench" experiment (not part of "all") records the repo's walk
// throughput baseline: it runs the standard walk workload -bench-runs times
// on the first selected profile and writes machine-readable numbers (walks/s,
// steps/s, edges/step, p50/p95/p99 run latency) to -bench-out, BENCH_walks.json
// by default. CI uploads the file per PR so the perf trajectory is diffable:
//
//	teabench -quick -dataset growth bench
//
// The bench experiment's -kernel flag selects the walk kernel (auto, scalar,
// batch) or A/Bs both in one invocation (-kernel=both): scalar and batch each
// get a warmup plus -bench-runs measured runs against the same engine, and
// the per-kernel numbers land in the kernels[] section of -bench-out so CI
// can gate on the batch kernel not regressing below the scalar baseline:
//
//	teabench -quick -dataset growth -kernel=both bench
//
// With -trace-out the bench experiment additionally executes one fully
// traced run (after the measured ones, so tracing never skews the recorded
// numbers) and writes it as a Chrome trace_event JSON document loadable in
// chrome://tracing or https://ui.perfetto.dev:
//
//	teabench -quick -dataset growth -trace-out trace.json bench
//
// The "cache" experiment (also not part of "all") sweeps the out-of-core
// block cache (both eviction policies, several capacities) against a
// Zipfian-seeded walk workload and writes hit rates, device vs cache-served
// bytes, and simulated read time saved to -cache-out, BENCH_cache.json by
// default:
//
//	teabench -quick -dataset growth cache
//
// The "shard" experiment (also not part of "all") sweeps the horizontally
// sharded walk engine over partition counts (-shard-parts, default 1,2,3) on
// loopback TCP — every shard a full node with its own binary-RPC listener —
// and writes cluster throughput (walks/s, steps/s), migration traffic
// (frames/s, bytes/hop, migration share), and per-shard memory to
// -shard-out, BENCH_shard.json by default. The partitions=1 row is the
// single-shard baseline the speedup column is relative to:
//
//	teabench -quick -dataset growth shard
//
// The "obs" experiment (also not part of "all") A/Bs the per-request cost
// accounting of the observability plane: the identical walk workload with
// accounting off (plain context) and on (a request collector attached the
// way the HTTP server does it), writing both throughputs and the relative
// overhead to -obs-out, BENCH_obs.json by default. CI gates on the overhead
// staying ≤3% of steps/s:
//
//	teabench -quick -dataset growth obs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/experiments"
	"github.com/tea-graph/tea/internal/gen"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use 10x-smaller dataset profiles")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		walks    = flag.Int("walks", 0, "walks per vertex R (0 = calibrated default)")
		length   = flag.Int("length", 80, "walk length L")
		seed     = flag.Uint64("seed", 1, "random seed")
		contrast = flag.Float64("contrast", 50, "exponential weight contrast (lambda*timespan)")
		dataset  = flag.String("dataset", "", "restrict to one dataset (growth|edit|delicious|twitter)")
		asJSON   = flag.Bool("json", false, "emit rows as JSON instead of tables")
		benchOut = flag.String("bench-out", "BENCH_walks.json", "output path for the bench experiment")
		benchN   = flag.Int("bench-runs", 5, "measured runs for the bench experiment")
		kernel   = flag.String("kernel", "auto", "walk kernel for the bench experiment (auto|scalar|batch|both)")
		traceOut = flag.String("trace-out", "", "write one traced bench run as Chrome trace_event JSON (bench experiment only)")
		cacheOut = flag.String("cache-out", "BENCH_cache.json", "output path for the cache experiment")
		shardOut = flag.String("shard-out", "BENCH_shard.json", "output path for the shard experiment")
		shardN   = flag.Int("shard-runs", 1, "measured runs per partition count for the shard experiment")
		shardPts = flag.String("shard-parts", "1,2,3", "comma-separated partition counts for the shard experiment")
		obsOut   = flag.String("obs-out", "BENCH_obs.json", "output path for the obs experiment")
		obsN     = flag.Int("obs-runs", 5, "measured runs per accounting mode for the obs experiment")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: teabench [flags] <experiment>...\n\nexperiments: all %s bench cache shard\n\nflags:\n",
			strings.Join(names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *walks > 0 {
		cfg.WalksPerVertex = *walks
	}
	cfg.Length = *length
	cfg.Seed = *seed
	cfg.Contrast = *contrast
	if *dataset != "" {
		var keep []gen.Profile
		for _, p := range cfg.Profiles {
			if strings.HasPrefix(p.Name, *dataset) {
				keep = append(keep, p)
			}
		}
		if len(keep) == 0 {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		cfg.Profiles = keep
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = names()
	}
	for _, name := range args {
		if name == "bench" {
			kernels, err := parseKernels(*kernel)
			if err != nil {
				fatal(err)
			}
			runBench(cfg, *benchN, *benchOut, *traceOut, *asJSON, kernels)
			continue
		}
		if name == "cache" {
			runCache(cfg, *cacheOut, *asJSON)
			continue
		}
		if name == "shard" {
			parts, err := parseParts(*shardPts)
			if err != nil {
				fatal(err)
			}
			runShardBench(cfg, parts, *shardN, *shardOut, *asJSON)
			continue
		}
		if name == "obs" {
			runObsBench(cfg, *obsN, *obsOut, *asJSON)
			continue
		}
		runOne(name, cfg, *asJSON)
	}
}

// runCache records the block-cache sweep to cacheOut.
func runCache(cfg experiments.Config, cacheOut string, asJSON bool) {
	if !asJSON {
		fmt.Printf("== %s ==\n", title("cache"))
	}
	start := time.Now()
	res, err := experiments.CacheBench(cfg)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteCacheBench(res, cacheOut); err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "cache", "result": res}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(experiments.RenderCacheBench(res))
	fmt.Printf("wrote %s\n(%s elapsed)\n\n", cacheOut, time.Since(start).Round(time.Millisecond))
}

// parseParts resolves the -shard-parts flag into partition counts.
func parseParts(s string) ([]int, error) {
	var parts []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(f, "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad -shard-parts entry %q", f)
		}
		parts = append(parts, v)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("-shard-parts selected no partition counts")
	}
	return parts, nil
}

// runShardBench records the loopback-TCP shard sweep to shardOut.
func runShardBench(cfg experiments.Config, parts []int, runs int, shardOut string, asJSON bool) {
	if !asJSON {
		fmt.Printf("== %s ==\n", title("shard"))
	}
	start := time.Now()
	res, err := experiments.ShardBench(cfg, parts, runs)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteShardBench(res, shardOut); err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "shard", "result": res}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(experiments.RenderShardBench(res))
	fmt.Printf("wrote %s\n(%s elapsed)\n\n", shardOut, time.Since(start).Round(time.Millisecond))
}

// runObsBench records the cost-accounting overhead A/B to obsOut.
func runObsBench(cfg experiments.Config, runs int, obsOut string, asJSON bool) {
	if !asJSON {
		fmt.Printf("== %s ==\n", title("obs"))
	}
	start := time.Now()
	res, err := experiments.ObsBench(cfg, runs)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteObsBench(res, obsOut); err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "obs", "result": res}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(experiments.RenderObsBench(res))
	fmt.Printf("wrote %s\n(%s elapsed)\n\n", obsOut, time.Since(start).Round(time.Millisecond))
}

// parseKernels resolves the -kernel flag: a single kernel name, or "both"
// for the scalar-vs-batch A/B (scalar measured first).
func parseKernels(s string) ([]core.Kernel, error) {
	if s == "both" {
		return []core.Kernel{core.KernelScalar, core.KernelBatch}, nil
	}
	k, err := core.ParseKernel(s)
	if err != nil {
		return nil, err
	}
	return []core.Kernel{k}, nil
}

// runBench records the walk-throughput baseline to benchOut; with a
// non-empty traceOut it also captures one traced run as a Chrome trace.
func runBench(cfg experiments.Config, runs int, benchOut, traceOut string, asJSON bool, kernels []core.Kernel) {
	if !asJSON {
		fmt.Printf("== %s ==\n", title("bench"))
	}
	start := time.Now()
	var (
		res *experiments.BenchResult
		err error
	)
	if traceOut != "" {
		res, err = experiments.WalkBenchTrace(cfg, runs, traceOut, kernels)
	} else {
		res, err = experiments.WalkBenchKernels(cfg, runs, kernels)
	}
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteBench(res, benchOut); err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "bench", "result": res}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(experiments.RenderBench(res))
	if traceOut != "" {
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
	fmt.Printf("wrote %s\n(%s elapsed)\n\n", benchOut, time.Since(start).Round(time.Millisecond))
}

func names() []string {
	return []string{"fig2", "table4", "fig9", "fig10", "sens", "fig11", "fig12",
		"fig13a", "fig13b", "fig13c", "fig13d", "fig13e", "fig14",
		"ablation-degree", "ablation-trunk", "dist"}
}

func runOne(name string, cfg experiments.Config, asJSON bool) {
	if !asJSON {
		fmt.Printf("== %s ==\n", title(name))
	}
	start := time.Now()
	var (
		out     string
		rowsAny any
		err     error
	)
	switch name {
	case "fig2":
		var rows []experiments.Fig2Row
		rows, err = experiments.Fig2(cfg)
		out = experiments.RenderFig2(rows)
		rowsAny = rows
	case "table4":
		var rows []experiments.Table4Row
		rows, err = experiments.Table4(cfg)
		out = experiments.RenderTable4(rows)
		rowsAny = rows
	case "fig9":
		var rows []experiments.Fig9Row
		rows, err = experiments.Fig9(cfg)
		out = experiments.RenderFig9(rows)
		rowsAny = rows
	case "fig10":
		var rows []experiments.Fig10Row
		rows, err = experiments.Fig10(cfg)
		out = experiments.RenderFig10(rows)
		rowsAny = rows
	case "sens":
		var rows []experiments.SensRow
		rows, err = experiments.Sensitivity(cfg)
		out = experiments.RenderSens(rows)
		rowsAny = rows
	case "fig11":
		var rows []experiments.Fig11Row
		rows, err = experiments.Fig11(cfg)
		out = experiments.RenderFig11(rows)
		rowsAny = rows
	case "fig12":
		var rows []experiments.Fig12Row
		rows, err = experiments.Fig12(cfg)
		out = experiments.RenderFig12(rows)
		rowsAny = rows
	case "fig13a":
		var rows []experiments.Fig13ScalingRow
		rows, err = experiments.Fig13aCandidateSearch(cfg)
		out = experiments.RenderFig13Scaling(rows)
		rowsAny = rows
	case "fig13b":
		var rows []experiments.Fig13ScalingRow
		rows, err = experiments.Fig13bHPATBuild(cfg)
		out = experiments.RenderFig13Scaling(rows)
		rowsAny = rows
	case "fig13c":
		var rows []experiments.Fig13ScalingRow
		rows, err = experiments.Fig13cAuxIndex(cfg)
		out = experiments.RenderFig13Scaling(rows)
		rowsAny = rows
	case "fig13d":
		var rows []experiments.Fig13dRow
		rows, err = experiments.Fig13dIncremental(cfg, nil, nil)
		out = experiments.RenderFig13d(rows)
		rowsAny = rows
	case "fig13e":
		var rows []experiments.Fig13eRow
		rows, err = experiments.Fig13ePreprocess(cfg, nil)
		out = experiments.RenderFig13e(rows)
		rowsAny = rows
	case "fig14":
		var rows []experiments.Fig14Row
		rows, err = experiments.Fig14OutOfCore(cfg)
		out = experiments.RenderFig14(rows)
		rowsAny = rows
	case "ablation-degree":
		var rows []experiments.AblationDegreeRow
		rows, err = experiments.AblationDegreeScaling(cfg, nil)
		out = experiments.RenderAblationDegree(rows)
		rowsAny = rows
	case "ablation-trunk":
		var rows []experiments.AblationTrunkRow
		rows, err = experiments.AblationTrunkSize(cfg, 0, nil)
		out = experiments.RenderAblationTrunk(rows)
		rowsAny = rows
	case "dist":
		var rows []experiments.DistRow
		rows, err = experiments.DistScaling(cfg, nil)
		out = experiments.RenderDist(rows)
		rowsAny = rows
	default:
		fatal(fmt.Errorf("unknown experiment %q (want one of: all %s)", name, strings.Join(names(), " ")))
	}
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": name, "rows": rowsAny}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(out)
	fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
}

func title(name string) string {
	switch name {
	case "fig2":
		return "Figure 2: average sampling cost (edges/step)"
	case "table4":
		return "Table 4: runtime and speedups"
	case "fig9":
		return "Figure 9: memory usage"
	case "fig10":
		return "Figure 10: TEA vs other engines"
	case "sens":
		return "Section 5.2: parameter sensitivity"
	case "fig11":
		return "Figure 11: piecewise breakdown (HPAT, auxiliary index)"
	case "fig12":
		return "Figure 12: sampling methods (runtime, memory)"
	case "fig13a":
		return "Figure 13a: candidate edge set search"
	case "fig13b":
		return "Figure 13b: HPAT generation"
	case "fig13c":
		return "Figure 13c: auxiliary index generation"
	case "fig13d":
		return "Figure 13d: incremental HPAT updating"
	case "fig13e":
		return "Figure 13e: preprocessing thread scaling"
	case "fig14":
		return "Figure 14: out-of-core execution"
	case "ablation-degree":
		return "Ablation: per-sample cost vs vertex degree (complexity table of §4.3)"
	case "ablation-trunk":
		return "Ablation: PAT trunk-size policy (§3.2)"
	case "dist":
		return "Extension: distributed-style execution (§4.4 future work)"
	case "bench":
		return "Baseline: walk throughput and run latency (BENCH_walks.json)"
	case "cache":
		return "Out-of-core block cache: Zipfian workload sweep (BENCH_cache.json)"
	case "shard":
		return "Sharded serving: loopback-TCP partition sweep (BENCH_shard.json)"
	case "obs":
		return "Observability: cost-accounting overhead A/B (BENCH_obs.json)"
	default:
		return name
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teabench:", err)
	os.Exit(1)
}
