// Command teaserve exposes temporal walk sampling over HTTP: load an edge
// stream, preprocess it once, and answer /walk, /ppr, and /reach queries.
//
// Usage:
//
//	teaserve -input graph.teag -algo exp -addr :8080
//
// Durable-ingest mode (mutually exclusive with -input): instead of a static
// preprocessed index, serve a live write-ahead-logged streaming graph.
// POST /edges and POST /expire mutate it, /walk and /stats read it, and on
// boot the WAL directory is recovered automatically — the listener binds
// immediately and GET /readyz answers 503 until replay completes.
//
//	teaserve -wal-dir /var/lib/tea -fsync always -snapshot-every 10000
//
//	-wal-dir            WAL + snapshot directory; enables durable mode
//	-fsync              durability policy: always|interval|never
//	-fsync-interval     flush cadence for -fsync interval
//	-snapshot-every     snapshot (and trim the log) every N mutations; 0 off
//	-snapshot-keep      snapshot generations to retain (0 = default 2)
//	-wal-segment-bytes  segment rotation threshold (0 = default)
//	-heal-interval      degraded-mode probe cadence (0 = default, negative off)
//	-wal-warn-ratio     warn when retained WAL exceeds this multiple of the
//	                    newest snapshot's size (0 = default 4, negative off)
//
// On a write-path fault (ENOSPC, a failed fsync) the durable graph degrades
// to read-only: walks keep serving, POST /edges and /expire answer 507 or
// 503 with Retry-After, and a background probe re-tries the device every
// -heal-interval, restoring writability automatically once it succeeds.
//
// Background integrity scrubbing (both durable and -ooc modes):
//
//	-scrub-interval   cadence of integrity passes over sealed WAL segments,
//	                  snapshot generations, and the -ooc block store;
//	                  0 disables scrubbing
//	-scrub-rate-mbps  scrub read-bandwidth budget (negative = unlimited)
//
// Scrub results feed the tea_scrub_* metric family and GET /healthz, which
// reports {"status":"degraded","storage":{...}} while damage is present.
//
// Operational flags:
//
//	-request-timeout   per-query deadline (0 disables; exceeded queries get 504)
//	-max-inflight      concurrent query cap (0 unlimited; excess sheds with 503)
//	-max-length        cap on the length parameter of /walk (400 beyond)
//	-drain             how long to wait for in-flight requests on shutdown
//	-pprof             expose net/http/pprof under /debug/pprof/ (off by default)
//	-instance          instance name stamped on tea_build_info, spans, and log
//	                   records (defaults to shard-<id> in shard mode)
//	-slow-request      warn-log any request slower than this with its full
//	                   cost breakdown (0 disables)
//
// Tracing flags (correlated request tracing; see DESIGN.md):
//
//	-trace-fraction    head-sample this fraction of requests into full span
//	                   traces served at /debug/tea/trace?id=<X-Request-ID>
//	-flight-spans      always-on flight recorder capacity (spans + error/
//	                   cancel/retry events) served at /debug/tea/flight;
//	                   0 disables
//
// Out-of-core flags (§4.1 serving mode: PAT trunks on disk, only trunk
// prefix sums in memory):
//
//	-ooc               sample from a disk-backed PAT instead of in-memory HPAT
//	-ooc-store         block store path (default: a temp file removed on exit)
//	-ooc-trunk         trunk size (0 = default)
//	-ooc-cache-bytes   block cache over trunk reads; 0 disables
//	-ooc-cache-policy  cache eviction policy: lru or clock
//
// With -ooc the tea_ooc_* and tea_blockcache_* metric families under
// /metrics report device traffic and cache effectiveness respectively.
//
// Shard mode (§4.4 distributed serving; mutually exclusive with -wal-dir and
// -ooc): serve one shard of a horizontally partitioned cluster. Every shard
// process loads the same graph file, keeps only the out-edges of the vertices
// a consistent-hash ring assigns to it, and exchanges batched
// walker-migration frames with its peers over a compact binary RPC. Walks
// replay byte-identically to a single process for any shard count. Front the
// cluster with cmd/tearouter to merge the per-shard partial responses.
//
//	teaserve -input graph.teag -shard-id 0 \
//	    -shard-peers h0:9000,h1:9000,h2:9000 -addr :8080
//
//	-shard-id        this process's shard id (enables shard mode)
//	-shard-peers     RPC host:port of every shard, in shard-id order; the
//	                 comma count is the partition count. An entry may name
//	                 several "|"-separated replica addresses serving the same
//	                 partition: step batches prefer the healthiest replica
//	                 (per-replica circuit breakers) and fail over mid-request
//	                 — walkers carry their RNG state, so a sibling answers
//	                 the re-sent frames byte-identically
//	-shard-replica   which replica of its own partition this process is
//	                 (index into the "|" list; default 0)
//	-shard-rpc-addr  RPC listen address (default: own -shard-peers entry)
//	-shard-kernel    local step kernel: scalar|batch
//	-shard-hedge     hedged step-RPCs: off (default), auto (launch a
//	                 duplicate on a sibling after the primary's observed
//	                 p99), or a fixed duration; first answer wins
//	-chaos           network fault injection on this process's RPC traffic
//	                 (testing only), e.g. "drop:peer=h1:9000,after=3" —
//	                 kinds: drop|delay|stall|reset|flip|partition
//	-chaos-seed      seed for randomized -chaos faults
//
// A replicated cluster — 2 partitions × 2 replicas — looks like:
//
//	PEERS='h0a:9000|h0b:9000,h1a:9000|h1b:9000'
//	teaserve -input g.teag -shard-id 0 -shard-replica 0 -shard-peers $PEERS ...
//	teaserve -input g.teag -shard-id 0 -shard-replica 1 -shard-peers $PEERS ...
//	teaserve -input g.teag -shard-id 1 -shard-replica 0 -shard-peers $PEERS ...
//	teaserve -input g.teag -shard-id 1 -shard-replica 1 -shard-peers $PEERS ...
//
// GET /healthz in shard mode reports this process's local view of every peer
// partition's replicas (breaker state, consecutive failures, latency EWMA).
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get up to -drain to finish, and walk
// computations of dropped clients are cancelled via their request contexts.
//
// Endpoints:
//
//	GET /healthz
//	GET /readyz             503 while recovering a WAL, 200 once serving
//	GET /stats
//	GET /metrics            Prometheus text exposition format
//	GET /metrics.json       the same snapshot as JSON
//	GET /walk?from=ID&length=80&count=1&seed=1    append &cost=1 for the
//	                        per-request cost_detail block
//	GET /ppr?from=ID&walks=10000&alpha=0.15&topk=20
//	GET /reach?from=ID&after=T
//	GET /debug/tea/top      most expensive recent requests with costs
//	POST /edges             durable mode: JSON {"edges":[{"src","dst","t"},...]}
//	POST /expire?before=T   durable mode: drop edges older than T
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	tea "github.com/tea-graph/tea"
	"github.com/tea-graph/tea/internal/blockcache"
	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/netchaos"
	"github.com/tea-graph/tea/internal/ooc"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/scrub"
	"github.com/tea-graph/tea/internal/server"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/wal"
)

// streamWeightSpec maps the -algo flag onto a streaming weight spec.
// node2vec needs second-order state the streaming sampler does not keep.
func streamWeightSpec(algo string, lambda float64) (sampling.WeightSpec, error) {
	switch algo {
	case "uniform":
		return sampling.WeightSpec{Kind: sampling.WeightUniform}, nil
	case "linear":
		return sampling.WeightSpec{Kind: sampling.WeightLinearTime}, nil
	case "rank":
		return sampling.WeightSpec{Kind: sampling.WeightLinearRank}, nil
	case "exp":
		if lambda == 0 {
			lambda = 0.01 // no preloaded timespan to derive it from
		}
		return sampling.Exponential(lambda), nil
	case "node2vec":
		return sampling.WeightSpec{}, fmt.Errorf("node2vec is not supported in durable-ingest mode")
	default:
		return sampling.WeightSpec{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func main() {
	var (
		input      = flag.String("input", "", "edge list path (.txt or binary .teag)")
		algo       = flag.String("algo", "exp", "walk algorithm: uniform|linear|rank|exp|node2vec")
		lambda     = flag.Float64("lambda", 0, "exponential decay (0 = auto: 50/timespan)")
		p          = flag.Float64("p", 0.5, "node2vec return parameter")
		q          = flag.Float64("q", 2, "node2vec in-out parameter")
		addr       = flag.String("addr", ":8080", "listen address")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-query deadline, 0 disables")
		maxFlight  = flag.Int("max-inflight", 64, "max concurrently executing queries, 0 unlimited")
		maxLength  = flag.Int("max-length", 0, "cap on the /walk length parameter, 0 = default (10000)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		withPprof  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		shardID      = flag.Int("shard-id", -1, "shard mode: this process's shard id (requires -shard-peers; see cmd/tearouter)")
		shardPeers   = flag.String("shard-peers", "", "comma-separated RPC host:port of every shard in shard-id order; '|' separates a partition's replicas; the comma count is the partition count")
		shardReplica = flag.Int("shard-replica", 0, "which replica of its partition this process is (index into the '|' list of its -shard-peers entry)")
		shardRPC     = flag.String("shard-rpc-addr", "", "walker-migration RPC listen address (default: this shard's -shard-peers entry)")
		shardKernel  = flag.String("shard-kernel", "batch", "local step kernel in shard mode: scalar|batch")
		shardHedge   = flag.String("shard-hedge", "off", "hedged step-RPCs against sibling replicas: off|auto|<duration> (auto = primary's observed p99)")
		chaosSpec    = flag.String("chaos", "", "inject network faults on peer RPC conns, e.g. 'drop:peer=h1:9000,after=3;delay:dur=50ms' (testing only)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for randomized -chaos faults (byte flips)")

		oocMode        = flag.Bool("ooc", false, "serve out-of-core: PAT trunks on disk, trunk prefix sums in memory")
		oocStorePath   = flag.String("ooc-store", "", "block store path for -ooc (default: temp file removed on exit)")
		oocTrunk       = flag.Int("ooc-trunk", 0, "out-of-core trunk size (0 = default)")
		oocCacheBytes  = flag.Int64("ooc-cache-bytes", 64<<20, "block cache capacity over -ooc trunk reads, 0 disables")
		oocCachePolicy = flag.String("ooc-cache-policy", "lru", "block cache eviction policy: lru|clock")

		walDir        = flag.String("wal-dir", "", "durable-ingest mode: WAL + snapshot directory (mutually exclusive with -input)")
		fsyncPolicy   = flag.String("fsync", "always", "WAL durability policy: always|interval|never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "flush cadence for -fsync interval")
		snapEvery     = flag.Int("snapshot-every", 10000, "snapshot and trim the WAL every N mutations, 0 disables")
		snapKeep      = flag.Int("snapshot-keep", 0, "snapshot generations to retain, 0 = default (2)")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold, 0 = default")
		healInterval  = flag.Duration("heal-interval", 0, "degraded-mode device probe cadence, 0 = default (2s), negative disables")
		walWarnRatio  = flag.Float64("wal-warn-ratio", 0, "warn when retained WAL exceeds this multiple of the snapshot size, 0 = default (4), negative disables")
		scrubEvery    = flag.Duration("scrub-interval", 5*time.Minute, "background integrity scrub cadence, 0 disables")
		scrubRate     = flag.Float64("scrub-rate-mbps", 32, "scrub read bandwidth budget in MB/s, negative = unlimited")

		traceFraction = flag.Float64("trace-fraction", 0, "fraction of requests head-sampled into full traces (0 disables, 1 traces every request)")
		flightSpans   = flag.Int("flight-spans", 1024, "flight recorder capacity (recent spans and error/cancel/retry events), 0 disables")
		instanceName  = flag.String("instance", "", "instance name stamped on metrics, spans, and logs (default: shard-<id> in shard mode, unlabeled otherwise)")
		slowReq       = flag.Duration("slow-request", 0, "warn-log requests slower than this with their cost breakdown, 0 disables")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	// Structured logging: every record carries request_id/trace_id when its
	// context does (the server threads both through request contexts).
	var logHandler slog.Handler
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(trace.NewLogHandler(logHandler))
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}
	durableMode := *walDir != ""
	if durableMode && *input != "" {
		fatal("flags", errors.New("-input and -wal-dir are mutually exclusive: serve a static index or a live stream, not both"))
	}
	if !durableMode && *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *shardID >= 0 {
		switch {
		case durableMode:
			fatal("flags", errors.New("-shard-id is incompatible with -wal-dir: shard mode serves a static partitioned index"))
		case *oocMode:
			fatal("flags", errors.New("-shard-id is incompatible with -ooc"))
		case *shardPeers == "":
			fatal("flags", errors.New("-shard-id requires -shard-peers"))
		case *algo == "node2vec":
			fatal("flags", errors.New("node2vec needs second-order state migration frames do not carry; use a first-order algorithm in shard mode"))
		}
	}

	// Stable instance identity: in shard mode every process names itself
	// shard-<id> by default, so the series, spans, and log records the router
	// merges from the cluster stay attributable to one process.
	instance := *instanceName
	if instance == "" && *shardID >= 0 {
		instance = fmt.Sprintf("shard-%d", *shardID)
		if *shardReplica > 0 {
			// Replicas of one partition stay distinguishable in federated
			// series and assembled traces.
			instance = fmt.Sprintf("shard-%d-r%d", *shardID, *shardReplica)
		}
	}
	traceShard := -1
	if *shardID >= 0 {
		traceShard = *shardID
	}
	tracer := trace.New(trace.Config{
		SampleFraction: *traceFraction,
		FlightSpans:    *flightSpans,
		Instance:       instance,
		Shard:          traceShard,
	})
	if tracer.Enabled() {
		logger.Info("tracing enabled",
			"trace_fraction", *traceFraction,
			"flight_spans", *flightSpans,
			"trace_endpoint", "/debug/tea/trace",
			"flight_endpoint", "/debug/tea/flight")
	}
	scfg := server.Config{
		RequestTimeout:       *reqTimeout,
		MaxInFlight:          *maxFlight,
		MaxWalkLength:        *maxLength,
		Instance:             instance,
		ShardID:              traceShard,
		SlowRequestThreshold: *slowReq,
		Trace:                tracer,
		Logger:               logger,
	}

	var handler http.Handler
	var durableGraph atomic.Pointer[stream.DurableGraph]
	if durableMode {
		spec, err := streamWeightSpec(*algo, *lambda)
		if err != nil {
			fatal("bad algorithm for ingest mode", err)
		}
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			fatal("bad fsync policy", err)
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fatal("wal dir", err)
		}
		s := server.NewDurable(scfg)
		handler = s.Handler()
		var scrubber atomic.Pointer[scrub.Scrubber]
		// Recover in the background so the listener binds immediately;
		// /readyz answers 503 (with replay progress) until SetDurable flips
		// the server ready.
		go func() {
			start := time.Now()
			d, err := stream.OpenDurable(*walDir, stream.DurableConfig{
				Graph:         stream.Config{Weight: spec},
				WAL:           wal.Options{Policy: policy, Interval: *fsyncInterval, SegmentBytes: *walSegBytes},
				SnapshotEvery: *snapEvery,
				SnapshotKeep:  *snapKeep,
				HealInterval:  *healInterval,
				WALWarnRatio:  *walWarnRatio,
				Tracer:        tracer,
				Logger:        logger,
				Progress:      s.ReportRecoveryProgress,
			})
			if err != nil {
				fatal("recovery failed", err)
			}
			durableGraph.Store(d)
			s.SetDurable(d)
			if *scrubEvery > 0 {
				sc := scrub.New(scrub.Config{Interval: *scrubEvery, RateMBps: *scrubRate, Logger: logger},
					scrub.Files{
						TargetName: "wal",
						List: func() ([]string, error) {
							segs := d.Log().SealedSegments()
							paths := make([]string, len(segs))
							for i, seg := range segs {
								paths[i] = seg.Path
							}
							return paths, nil
						},
						Verify: func(path string, bill func(int) error) error {
							return wal.VerifySegment(nil, path, bill)
						},
					},
					scrub.Files{
						TargetName: "snapshot",
						List:       func() ([]string, error) { return d.SnapshotPaths(), nil },
						Verify: func(path string, bill func(int) error) error {
							_, err := stream.VerifySnapshotFile(nil, path, bill)
							return err
						},
					})
				s.SetScrubber(sc)
				scrubber.Store(sc)
				sc.Start()
			}
			ri := d.Recovery()
			logger.Info("recovered",
				"wal_dir", *walDir,
				"fsync", policy.String(),
				"edges", d.NumEdges(),
				"replayed_records", ri.Replayed,
				"snapshot_lsn", ri.SnapshotLSN,
				"truncated_bytes", ri.TruncatedBytes,
				"elapsed", time.Since(start).Round(time.Millisecond))
		}()
		logger.Info("listening",
			"addr", *addr,
			"mode", "durable-ingest",
			"timeout", *reqTimeout,
			"max_inflight", *maxFlight)
		serveHTTP(handler, srvParams{addr: *addr, drain: *drain, pprof: *withPprof, logger: logger, onShutdown: func() {
			if sc := scrubber.Load(); sc != nil {
				sc.Stop()
			}
			if d := durableGraph.Load(); d != nil {
				if err := d.Close(); err != nil {
					logger.Error("wal close", "error", err)
				}
			}
		}})
		return
	}

	var (
		g   *tea.Graph
		err error
	)
	if strings.HasSuffix(*input, ".teag") || strings.HasSuffix(*input, ".bin") {
		g, err = tea.LoadBinaryFile(*input)
	} else {
		g, err = tea.LoadTextFile(*input)
	}
	if err != nil {
		fatal("load failed", err)
	}
	lo, hi := g.TimeRange()
	if *lambda == 0 {
		span := float64(hi - lo)
		if span <= 0 {
			span = 1
		}
		*lambda = 50 / span
	}
	var app tea.App
	switch *algo {
	case "uniform":
		app = tea.Unbiased()
	case "linear":
		app = tea.LinearTime()
	case "rank":
		app = tea.LinearRank()
	case "exp":
		app = tea.ExponentialWalk(*lambda)
	case "node2vec":
		app = tea.TemporalNode2Vec(*p, *q, *lambda)
	default:
		fatal("unknown algorithm", fmt.Errorf("%q", *algo))
	}

	if *shardID >= 0 {
		runShard(g, app, scfg, shardOpts{
			id:        *shardID,
			replica:   *shardReplica,
			peers:     *shardPeers,
			rpcAddr:   *shardRPC,
			kernel:    *shardKernel,
			hedge:     *shardHedge,
			chaos:     *chaosSpec,
			chaosSeed: *chaosSeed,
			addr:      *addr,
			drain:     *drain,
			pprof:     *withPprof,
			tracer:    tracer,
			logger:    logger,
			fatal:     fatal,
		})
		return
	}

	start := time.Now()
	var opts tea.Options
	var oocStoreFile string
	if *oocMode {
		policy, err := blockcache.ParsePolicy(*oocCachePolicy)
		if err != nil {
			fatal("bad cache policy", err)
		}
		w, err := sampling.BuildGraphWeights(g, app.Weight, 0)
		if err != nil {
			fatal("weight build failed", err)
		}
		var store *ooc.Store
		if *oocStorePath != "" {
			store, err = ooc.Open(*oocStorePath)
		} else {
			store, err = ooc.NewTempStore()
		}
		if err != nil {
			fatal("store open failed", err)
		}
		defer store.Close()
		dp, err := ooc.BuildDiskPAT(w, store, *oocTrunk)
		if err != nil {
			fatal("disk PAT build failed", err)
		}
		store.ResetCounters() // device counters report serving traffic, not the build
		oocStoreFile = store.Path()
		if *oocCacheBytes > 0 {
			dp.EnableCache(ooc.CacheConfig{CapacityBytes: *oocCacheBytes, Policy: policy})
			fmt.Printf("teaserve: out-of-core store %s (block cache %d MiB, policy %s)\n",
				store.Path(), *oocCacheBytes>>20, policy)
		} else {
			fmt.Printf("teaserve: out-of-core store %s (block cache disabled)\n", store.Path())
		}
		opts.ExternalSampler = dp
		opts.ExternalWeights = w
	}
	eng, err := tea.NewEngine(g, app, opts)
	if err != nil {
		fatal("engine build failed", err)
	}
	logger.Info("preprocessed",
		"application", app.Name,
		"vertices", g.NumVertices(),
		"edges", g.NumEdges(),
		"elapsed", time.Since(start).Round(time.Millisecond))
	logger.Info("listening",
		"addr", *addr,
		"timeout", *reqTimeout,
		"max_inflight", *maxFlight)

	srv := server.NewWithConfig(eng, scfg)
	var staticScrub *scrub.Scrubber
	if *oocMode && *scrubEvery > 0 {
		// The block store is written once by the build above and then only
		// read, so a chunk-CRC baseline taken now detects any later change:
		// bit rot, a lost write, an overwrite by another process.
		staticScrub = scrub.New(scrub.Config{Interval: *scrubEvery, RateMBps: *scrubRate, Logger: logger},
			&scrub.ChunkBaseline{TargetName: "ooc-store", Path: oocStoreFile})
		srv.SetScrubber(staticScrub)
		staticScrub.Start()
	}
	handler = srv.Handler()
	serveHTTP(handler, srvParams{addr: *addr, drain: *drain, pprof: *withPprof, logger: logger, onShutdown: func() {
		if staticScrub != nil {
			staticScrub.Stop()
		}
	}})
}

// shardOpts carries the shard-mode knobs from flag parsing to runShard.
type shardOpts struct {
	id        int
	replica   int
	peers     string
	rpcAddr   string
	kernel    string
	hedge     string
	chaos     string
	chaosSeed int64
	addr      string
	drain     time.Duration
	pprof     bool
	tracer    *trace.Tracer
	logger    *slog.Logger
	fatal     func(string, error)
}

// parseHedge maps the -shard-hedge flag onto a hedge config.
func parseHedge(s string) (shard.HedgeConfig, error) {
	switch s {
	case "", "off":
		return shard.HedgeConfig{}, nil
	case "auto":
		return shard.HedgeConfig{Enabled: true}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return shard.HedgeConfig{}, fmt.Errorf("-shard-hedge %q: want off, auto, or a positive duration", s)
		}
		return shard.HedgeConfig{Enabled: true, Delay: d}, nil
	}
}

// runShard serves one shard of a partitioned cluster: a binary-RPC listener
// answers peer step batches (walker migration) while the HTTP server answers
// /walk for the walks whose source vertex this shard owns. Every shard
// process loads the same graph file; the consistent-hash partitioner makes
// them agree on vertex ownership with no coordination. A partition may be
// served by several interchangeable replicas ('|' in its -shard-peers
// entry): step batches fail over between a peer partition's replicas, and
// -shard-hedge duplicates slow step-RPCs against a sibling. Front the
// cluster with cmd/tearouter to get the single-process response shape back.
func runShard(g *tea.Graph, app tea.App, scfg server.Config, o shardOpts) {
	var parts [][]string // [partition][replica]
	for _, entry := range strings.Split(o.peers, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		var replicas []string
		for _, a := range strings.Split(entry, "|") {
			if a = strings.TrimSpace(a); a != "" {
				replicas = append(replicas, a)
			}
		}
		if len(replicas) == 0 {
			o.fatal("flags", fmt.Errorf("-shard-peers entry %q names no replica", entry))
		}
		parts = append(parts, replicas)
	}
	if o.id >= len(parts) {
		o.fatal("flags", fmt.Errorf("-shard-id %d outside the %d-entry -shard-peers list", o.id, len(parts)))
	}
	if o.replica < 0 || o.replica >= len(parts[o.id]) {
		o.fatal("flags", fmt.Errorf("-shard-replica %d outside this partition's %d-replica list", o.replica, len(parts[o.id])))
	}
	var kern core.Kernel
	switch o.kernel {
	case "scalar":
		kern = core.KernelScalar
	case "batch", "":
		kern = core.KernelBatch
	default:
		o.fatal("flags", fmt.Errorf("unknown -shard-kernel %q (want scalar or batch)", o.kernel))
	}
	hedge, err := parseHedge(o.hedge)
	if err != nil {
		o.fatal("flags", err)
	}

	start := time.Now()
	node, err := shard.NewNode(g, app.Weight, shard.Config{
		ShardID:    o.id,
		Partitions: len(parts),
		Kernel:     kern,
		Tracer:     o.tracer,
	})
	if err != nil {
		o.fatal("shard build failed", err)
	}
	rpcAddr := o.rpcAddr
	if rpcAddr == "" {
		rpcAddr = parts[o.id][o.replica]
	}
	ln, err := net.Listen("tcp", rpcAddr)
	if err != nil {
		o.fatal("shard rpc listen failed", err)
	}
	clientCfg := wire.ClientConfig{}
	if o.chaos != "" {
		// Fault injection for chaos drills: the plan wraps both directions of
		// this process's RPC traffic — outbound peer dials and inbound
		// migration conns — exactly like FaultFS wraps the WAL's filesystem.
		plan, err := netchaos.Parse(o.chaos, o.chaosSeed)
		if err != nil {
			o.fatal("flags", err)
		}
		clientCfg.Dialer = plan.Dial
		ln = plan.Listener(ln)
		o.logger.Warn("network chaos enabled", "spec", o.chaos, "seed", o.chaosSeed)
	}
	wireSrv := wire.NewServer(ln, node, o.logger)
	peerAddrs := make(map[int][]string, len(parts)-1)
	for pid, replicas := range parts {
		if pid != o.id {
			peerAddrs[pid] = replicas
		}
	}
	callers := shard.NewReplicaPeers(peerAddrs, shard.ReplicaPeersConfig{
		Client: clientCfg,
		Hedge:  hedge,
	})

	o.logger.Info("shard ready",
		"shard", o.id,
		"replica", o.replica,
		"partitions", len(parts),
		"application", app.Name,
		"rpc_addr", ln.Addr().String(),
		"hedge", o.hedge,
		"owned_edges", node.OwnedEdges(),
		"index_bytes", node.MemoryBytes(),
		"elapsed", time.Since(start).Round(time.Millisecond))
	o.logger.Info("listening", "addr", o.addr, "mode", "shard")

	srv := server.NewShard(node, callers, scfg)
	serveHTTP(srv.Handler(), srvParams{addr: o.addr, drain: o.drain, pprof: o.pprof, logger: o.logger, onShutdown: func() {
		_ = wireSrv.Close()
		callers.Close()
	}})
}

// srvParams carries the operational knobs serveHTTP needs.
type srvParams struct {
	addr   string
	drain  time.Duration
	pprof  bool
	logger *slog.Logger
	// onShutdown runs after the listener drains, before exit — durable mode
	// flushes and closes the WAL here.
	onShutdown func()
}

// serveHTTP runs the listener until SIGINT/SIGTERM, then drains gracefully.
func serveHTTP(handler http.Handler, p srvParams) {
	if p.pprof {
		// Opt-in profiling: the pprof endpoints expose stacks and heap
		// contents, so they stay off unless explicitly requested.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		p.logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:              p.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		p.logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		p.logger.Info("shutting down", "drain", p.drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), p.drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			p.logger.Error("drain incomplete", "error", err)
			os.Exit(1)
		}
		if p.onShutdown != nil {
			p.onShutdown()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			p.logger.Error("serve error", "error", err)
		}
		p.logger.Info("bye")
	}
}
