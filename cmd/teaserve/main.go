// Command teaserve exposes temporal walk sampling over HTTP: load an edge
// stream, preprocess it once, and answer /walk, /ppr, and /reach queries.
//
// Usage:
//
//	teaserve -input graph.teag -algo exp -addr :8080
//
// Endpoints:
//
//	GET /healthz
//	GET /stats
//	GET /walk?from=ID&length=80&count=1&seed=1
//	GET /ppr?from=ID&walks=10000&alpha=0.15&topk=20
//	GET /reach?from=ID&after=T
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	tea "github.com/tea-graph/tea"
	"github.com/tea-graph/tea/internal/server"
)

func main() {
	var (
		input  = flag.String("input", "", "edge list path (.txt or binary .teag)")
		algo   = flag.String("algo", "exp", "walk algorithm: uniform|linear|rank|exp|node2vec")
		lambda = flag.Float64("lambda", 0, "exponential decay (0 = auto: 50/timespan)")
		p      = flag.Float64("p", 0.5, "node2vec return parameter")
		q      = flag.Float64("q", 2, "node2vec in-out parameter")
		addr   = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *tea.Graph
		err error
	)
	if strings.HasSuffix(*input, ".teag") || strings.HasSuffix(*input, ".bin") {
		g, err = tea.LoadBinaryFile(*input)
	} else {
		g, err = tea.LoadTextFile(*input)
	}
	if err != nil {
		log.Fatal("teaserve: ", err)
	}
	lo, hi := g.TimeRange()
	if *lambda == 0 {
		span := float64(hi - lo)
		if span <= 0 {
			span = 1
		}
		*lambda = 50 / span
	}
	var app tea.App
	switch *algo {
	case "uniform":
		app = tea.Unbiased()
	case "linear":
		app = tea.LinearTime()
	case "rank":
		app = tea.LinearRank()
	case "exp":
		app = tea.ExponentialWalk(*lambda)
	case "node2vec":
		app = tea.TemporalNode2Vec(*p, *q, *lambda)
	default:
		log.Fatalf("teaserve: unknown algorithm %q", *algo)
	}

	start := time.Now()
	eng, err := tea.NewEngine(g, app, tea.Options{})
	if err != nil {
		log.Fatal("teaserve: ", err)
	}
	fmt.Printf("teaserve: %s over %d vertices / %d edges (preprocessed in %v)\n",
		app.Name, g.NumVertices(), g.NumEdges(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("teaserve: listening on %s\n", *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
