// Command teawalk runs temporal random walks over an edge-list file and
// prints the sampled paths or a run summary.
//
// Usage:
//
//	teawalk -input graph.txt -algo node2vec -p 0.5 -q 2 -length 80 -walks 1
//	teawalk -input graph.teag -algo exp -lambda 0.001 -paths
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	tea "github.com/tea-graph/tea"
	"github.com/tea-graph/tea/internal/walkio"
)

func main() {
	var (
		input   = flag.String("input", "", "edge list path (.txt or binary .teag)")
		algo    = flag.String("algo", "exp", "walk algorithm: uniform|linear|rank|exp|node2vec")
		lambda  = flag.Float64("lambda", 0, "exponential decay (0 = auto: 50/timespan)")
		p       = flag.Float64("p", 0.5, "node2vec return parameter")
		q       = flag.Float64("q", 2, "node2vec in-out parameter")
		length  = flag.Int("length", 80, "walk length L")
		walks   = flag.Int("walks", 1, "walks per vertex R")
		seed    = flag.Uint64("seed", 1, "random seed")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		method  = flag.String("method", "hpat", "sampler: hpat|pat|its")
		paths   = flag.Bool("paths", false, "print each sampled path")
		start   = flag.Int("from", -1, "walk only from this vertex (-1 = all)")
		out     = flag.String("o", "", "write the walk corpus to this path (.txt or binary .teaw)")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := load(*input)
	if err != nil {
		fatal(err)
	}
	lo, hi := g.TimeRange()
	if *lambda == 0 {
		span := float64(hi - lo)
		if span <= 0 {
			span = 1
		}
		*lambda = 50 / span
	}

	var app tea.App
	switch *algo {
	case "uniform":
		app = tea.Unbiased()
	case "linear":
		app = tea.LinearTime()
	case "rank":
		app = tea.LinearRank()
	case "exp":
		app = tea.ExponentialWalk(*lambda)
	case "node2vec":
		app = tea.TemporalNode2Vec(*p, *q, *lambda)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	var m tea.Method
	switch *method {
	case "hpat":
		m = tea.MethodHPAT
	case "pat":
		m = tea.MethodPAT
	case "its":
		m = tea.MethodITS
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	eng, err := tea.NewEngine(g, app, tea.Options{Method: m, Threads: *threads})
	if err != nil {
		fatal(err)
	}
	cfg := tea.WalkConfig{
		WalksPerVertex: *walks,
		Length:         *length,
		Threads:        *threads,
		Seed:           *seed,
		KeepPaths:      *paths || *out != "",
	}
	if *start >= 0 {
		cfg.StartVertices = []tea.Vertex{tea.Vertex(*start)}
	}
	res, err := eng.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*out, ".txt") {
			err = walkio.WriteText(f, res.Paths)
		} else {
			err = walkio.WriteBinary(f, res.Paths)
		}
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "teawalk: wrote %d walks to %s\n", len(res.Paths), *out)
	}
	if *paths {
		w := bufio.NewWriter(os.Stdout)
		for _, path := range res.Paths {
			cells := make([]string, len(path.Vertices))
			for i, v := range path.Vertices {
				cells[i] = fmt.Sprint(v)
			}
			fmt.Fprintln(w, strings.Join(cells, " "))
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"teawalk: %s on %d vertices / %d edges: %d walks, %d steps, %.2f edges/step, %v (prep %v)\n",
		app.Name, g.NumVertices(), g.NumEdges(),
		res.Cost.WalksStarted, res.Cost.Steps, res.Cost.EdgesPerStep(),
		res.Duration.Round(1e6), eng.Preprocess().Total.Round(1e6))
}

func load(path string) (*tea.Graph, error) {
	if strings.HasSuffix(path, ".teag") || strings.HasSuffix(path, ".bin") {
		return tea.LoadBinaryFile(path)
	}
	return tea.LoadTextFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teawalk:", err)
	os.Exit(1)
}
