// Command tearouter is the stateless front of a teaserve shard cluster: it
// holds no graph and no index, only the shard addresses, fans every /walk to
// all shards with the request's X-Request-ID attached, and merges the partial
// responses by global walk id into exactly the single-process response shape.
// Because it keeps no state, any number of router replicas can front the same
// cluster behind a plain TCP load balancer.
//
// Usage:
//
//	tearouter -shards http://h0:8080,http://h1:8080,http://h2:8080 -addr :8090
//
// The -shards list must be in shard-id order and match the -shard-peers list
// the shards themselves were started with (same length = same partition
// count); a mismatch is detected per-request and answered with 502.
//
// A -shards entry may name several "|"-separated replica URLs serving the
// same partition:
//
//	tearouter -shards 'http://h0a:8080|http://h0b:8080,http://h1a:8080|http://h1b:8080'
//
// The router keeps a per-replica circuit breaker, prefers the healthiest /
// fastest replica for every fanned request, and fails over to a sibling on a
// transport error or 503 — a single replica outage never surfaces to
// clients. Only a partition with every replica down answers 503 +
// Retry-After. /healthz and /readyz report the per-partition replica table,
// and the tea_router_replica_* metric family counts failovers and publishes
// breaker states.
//
// Operational flags mirror teaserve:
//
//	-request-timeout   per-fanout deadline (0 disables; exceeded queries 504)
//	-max-inflight      concurrent fan-out cap (0 unlimited; excess sheds 503)
//	-retry-after       Retry-After hint on 503s (shed, shard down)
//	-drain             graceful-shutdown drain window
//	-trace-fraction    head-sample fraction for /debug/tea/trace
//	-flight-spans      flight recorder capacity; 0 disables
//	-slow-request      warn-log any request slower than this, with its full
//	                   cluster cost breakdown (0 disables)
//	-log-json          structured logs as JSON
//
// Endpoints:
//
//	GET /healthz            cluster health rolled up from every shard's
//	                        /healthz: 503 "degraded" while any shard is
//	                        unreachable, 200 "degraded" while one reports
//	                        degraded storage, 200 "ok" otherwise
//	GET /readyz             200 only when every shard's /readyz is 200
//	GET /stats              every shard's /stats under one response
//	GET /walk?from=ID&length=80&count=1&seed=1    append &cost=1 for the
//	                        merged per-shard cost_detail block
//	GET /metrics            federated Prometheus exposition: the router's own
//	                        series unlabeled, per-shard series under
//	                        shard="<id>", cluster rollups under shard="all"
//	GET /metrics.json       the same federated snapshot as JSON
//	GET /debug/tea/trace    assembled cross-process traces (&format=chrome)
//	GET /debug/tea/flight   the router's flight recorder
//	GET /debug/tea/top      most expensive recent requests with cluster costs
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tea-graph/tea/internal/server"
	"github.com/tea-graph/tea/internal/trace"
)

func main() {
	var (
		shards        = flag.String("shards", "", "comma-separated shard base URLs in shard-id order (required)")
		addr          = flag.String("addr", ":8090", "listen address")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-fanout deadline, 0 disables")
		maxFlight     = flag.Int("max-inflight", 256, "max concurrently executing fan-outs, 0 unlimited")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 503 responses")
		drain         = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		traceFraction = flag.Float64("trace-fraction", 0, "fraction of requests head-sampled into full traces (0 disables)")
		flightSpans   = flag.Int("flight-spans", 1024, "flight recorder capacity, 0 disables")
		slowReq       = flag.Duration("slow-request", 0, "warn-log requests slower than this with their cluster cost breakdown, 0 disables")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var logHandler slog.Handler
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(trace.NewLogHandler(logHandler))

	if *shards == "" {
		flag.Usage()
		os.Exit(2)
	}
	var addrs []string
	for _, entry := range strings.Split(*shards, ",") {
		if strings.TrimSpace(entry) == "" {
			continue
		}
		// An entry may name several "|"-separated replica URLs serving the
		// same partition; normalize each and keep them joined.
		var replicas []string
		for _, a := range strings.Split(entry, "|") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			replicas = append(replicas, strings.TrimRight(a, "/"))
		}
		addrs = append(addrs, strings.Join(replicas, "|"))
	}

	tracer := trace.New(trace.Config{
		SampleFraction: *traceFraction,
		FlightSpans:    *flightSpans,
		Instance:       "router",
		Shard:          -1,
	})
	rt, err := server.NewRouter(server.RouterConfig{
		Shards:               addrs,
		RequestTimeout:       *reqTimeout,
		MaxInFlight:          *maxFlight,
		RetryAfter:           *retryAfter,
		SlowRequestThreshold: *slowReq,
		Trace:                tracer,
		Logger:               logger,
	})
	if err != nil {
		logger.Error("router", "error", err)
		os.Exit(1)
	}
	defer rt.Close()

	logger.Info("routing",
		"addr", *addr,
		"shards", len(addrs),
		"timeout", *reqTimeout,
		"max_inflight", *maxFlight)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "drain", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "error", err)
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve error", "error", err)
		}
		logger.Info("bye")
	}
}
