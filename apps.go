package tea

import (
	"context"

	"github.com/tea-graph/tea/internal/apps"
)

// Analytics built atop the walk engine, per the paper's §5.2 "Applications
// scope" (walk-based algorithms deploy directly on TEA's samplers).

type (
	// PPRConfig parameterizes temporal personalized PageRank estimation.
	PPRConfig = apps.PPRConfig
	// PPRScore is one vertex's estimated PPR mass.
	PPRScore = apps.PPRScore
)

// Unreachable marks vertices with no time-respecting path from the source in
// EarliestArrival results.
const Unreachable = apps.Unreachable

// TemporalPPR estimates personalized PageRank from source by temporal random
// walks with restart, using the engine's sampler for every transition.
// Scores sum to 1 and come back sorted by descending mass.
func TemporalPPR(eng *Engine, source Vertex, cfg PPRConfig) ([]PPRScore, error) {
	return apps.TemporalPPR(eng, source, cfg)
}

// TemporalPPRContext is TemporalPPR under a context: cancellation or a
// deadline aborts the Monte Carlo estimation and returns ctx.Err().
func TemporalPPRContext(ctx context.Context, eng *Engine, source Vertex, cfg PPRConfig) ([]PPRScore, error) {
	return apps.TemporalPPRContext(ctx, eng, source, cfg)
}

// EarliestArrival computes, for every vertex, the earliest time a
// time-respecting path from src (departing strictly after startTime) can
// arrive there; Unreachable if none exists. Exact, O(|E| log |E|).
func EarliestArrival(g *Graph, src Vertex, startTime Time) []Time {
	return apps.EarliestArrival(g, src, startTime)
}

// EarliestArrivalContext is EarliestArrival under a context: the exact scan
// checks ctx periodically and aborts with ctx.Err() on cancellation.
func EarliestArrivalContext(ctx context.Context, g *Graph, src Vertex, startTime Time) ([]Time, error) {
	return apps.EarliestArrivalContext(ctx, g, src, startTime)
}

// ReachableSet returns the vertices temporally reachable from src after
// startTime, ascending, excluding src.
func ReachableSet(g *Graph, src Vertex, startTime Time) []Vertex {
	return apps.ReachableSet(g, src, startTime)
}

// ReachableSetContext is ReachableSet under a context; see
// EarliestArrivalContext for the cancellation contract.
func ReachableSetContext(ctx context.Context, g *Graph, src Vertex, startTime Time) ([]Vertex, error) {
	return apps.ReachableSetContext(ctx, g, src, startTime)
}

// LatestDeparture computes, per vertex, the latest edge time on which one
// can still reach dst strictly before deadline; temporal.MinTime if dst is
// unreachable.
func LatestDeparture(g *Graph, dst Vertex, deadline Time) []Time {
	return apps.LatestDeparture(g, dst, deadline)
}
