// Package tea is a general-purpose temporal graph random walk engine, a Go
// implementation of "TEA: A General-Purpose Temporal Graph Random Walk
// Engine" (EuroSys 2023).
//
// A temporal graph is an edge stream (src, dst, time); a temporal random
// walk must traverse edges in strictly increasing time order. Sampling the
// next edge is the expensive step: the candidate set changes with the
// walker's arrival time, which defeats classic alias tables (space blows up)
// and rejection sampling (skewed temporal weights collapse the accept area).
// TEA's hybrid scheme — hierarchical persistent alias tables (HPAT) over
// newest-first adjacency prefixes, selected by inverse transform sampling
// over a binary trunk decomposition — samples in O(log log D) with
// O(D log D) space.
//
// Quick start:
//
//	g, err := tea.FromEdges(edges)            // or tea.LoadTextFile(path)
//	eng, err := tea.NewEngine(g, tea.ExponentialWalk(0.01), tea.Options{})
//	res, err := eng.Run(tea.WalkConfig{Length: 80, KeepPaths: true})
//	for _, p := range res.Paths { ... }
//
// The temporal-centric programming model of the paper (Dynamic_weight,
// Dynamic_parameter, Edges_interval) maps onto App.Weight (including custom
// weight functions), App.Parameter, and Graph.EdgesInterval. Streaming
// ingestion lives behind NewStream; out-of-core execution behind the ooc
// subpackage re-exports.
package tea

import (
	"fmt"
	"os"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/edgeio"
	"github.com/tea-graph/tea/internal/gen"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/temporal"
)

// Core temporal-graph types (see internal/temporal for full documentation).
type (
	// Vertex identifies a vertex; the id space is dense [0, NumVertices).
	Vertex = temporal.Vertex
	// Time is an edge timestamp; any int64 clock works.
	Time = temporal.Time
	// Edge is one element of a temporal edge stream.
	Edge = temporal.Edge
	// Graph is an immutable temporal graph with newest-first adjacency.
	Graph = temporal.Graph
)

// MinTime and MaxTime bound the Time domain.
const (
	MinTime = temporal.MinTime
	MaxTime = temporal.MaxTime
)

// Engine types (see internal/core).
type (
	// Engine runs temporal random walks for one application.
	Engine = core.Engine
	// App describes a walk application in the temporal-centric model.
	App = core.App
	// Options configures engine construction (sampling method, threads).
	Options = core.Options
	// WalkConfig parameterizes a run: R, L, sources, seed, threads.
	WalkConfig = core.WalkConfig
	// Result aggregates a run: costs, duration, optional paths.
	Result = core.Result
	// Path is one sampled temporal walk.
	Path = core.Path
	// Method selects the sampling structure (HPAT, PAT, ITS).
	Method = core.Method
	// Sampler is the pluggable edge-sampling contract.
	Sampler = core.Sampler
	// WeightSpec selects how timestamps become sampling weights — the
	// Dynamic_weight API.
	WeightSpec = sampling.WeightSpec
	// WeightKind enumerates the built-in temporal weights.
	WeightKind = sampling.WeightKind
)

// Sampling method selectors.
const (
	MethodHPAT        = core.MethodHPAT
	MethodHPATNoIndex = core.MethodHPATNoIndex
	MethodPAT         = core.MethodPAT
	MethodITS         = core.MethodITS
)

// Built-in weight kinds.
const (
	WeightUniform     = sampling.WeightUniform
	WeightLinearTime  = sampling.WeightLinearTime
	WeightLinearRank  = sampling.WeightLinearRank
	WeightExponential = sampling.WeightExponential
)

// FromEdges builds an immutable temporal graph from an edge stream, sorting
// each vertex's out-edges newest-first in O(|E|).
func FromEdges(edges []Edge) (*Graph, error) {
	return temporal.FromEdges(edges)
}

// FromEdgesSized builds a graph with an explicit vertex-space size.
func FromEdgesSized(edges []Edge, numVertices int) (*Graph, error) {
	return temporal.FromEdges(edges, temporal.WithNumVertices(numVertices))
}

// LoadTextFile reads a "src dst time" edge list (KONECT-style, '#'/'%'
// comments) and builds the graph.
func LoadTextFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tea: %w", err)
	}
	defer f.Close()
	edges, err := edgeio.ReadText(f)
	if err != nil {
		return nil, err
	}
	return temporal.FromEdges(edges)
}

// LoadBinaryFile reads the packed binary edge-stream format written by
// WriteBinaryFile (or cmd/teagen).
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tea: %w", err)
	}
	defer f.Close()
	edges, err := edgeio.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return temporal.FromEdges(edges)
}

// WriteBinaryFile writes edges in the packed binary format.
func WriteBinaryFile(path string, edges []Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tea: %w", err)
	}
	if err := edgeio.WriteBinary(f, edges); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CommuteGraph returns the paper's Figure 1 commuting network, the running
// example of the manuscript. Useful for experimentation and tests.
func CommuteGraph() *Graph { return temporal.CommuteGraph() }

// NewEngine preprocesses g for the application (candidate search, weight
// evaluation, index construction per §4.2 of the paper) and returns a ready
// engine.
func NewEngine(g *Graph, app App, opts Options) (*Engine, error) {
	return core.NewEngine(g, app, opts)
}

// Built-in applications (§2.3 of the paper).

// Unbiased returns the uniform temporal walk.
func Unbiased() App { return core.Unbiased() }

// LinearTime returns the linear temporal weight walk with δ = t.
func LinearTime() App { return core.LinearTime() }

// LinearRank returns the linear temporal weight walk with δ = rank.
func LinearRank() App { return core.LinearRank() }

// ExponentialWalk returns the CTDNE exponential temporal weight walk with
// decay lambda (0 selects 1.0).
func ExponentialWalk(lambda float64) App { return core.ExponentialWalk(lambda) }

// TemporalNode2Vec returns the temporal node2vec walk with return parameter
// p, in-out parameter q, and exponential decay lambda.
func TemporalNode2Vec(p, q, lambda float64) App { return core.TemporalNode2Vec(p, q, lambda) }

// Exponential returns the exponential weight spec for custom App
// construction.
func Exponential(lambda float64) WeightSpec { return sampling.Exponential(lambda) }

// Streaming support (§3.5 of the paper).
type (
	// Stream is a streaming temporal graph with incremental HPAT segments.
	Stream = stream.Graph
	// StreamConfig parameterizes a stream.
	StreamConfig = stream.Config
)

// NewStream creates an empty streaming temporal graph; append batches of
// strictly newer edges with AppendBatch and sample walks directly.
func NewStream(cfg StreamConfig) (*Stream, error) { return stream.New(cfg) }

// Dataset generation (the scaled Table 3 profiles).
type DatasetProfile = gen.Profile

// Datasets returns the four synthetic profiles mirroring the paper's
// evaluation datasets (growth, edit, delicious, twitter) at 1/1000 scale.
func Datasets() []DatasetProfile { return gen.Profiles() }
