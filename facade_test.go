package tea

import (
	"math"
	"testing"
)

// End-to-end exercise of the analytics facade: walks → PPR → reachability →
// embeddings → distributed cluster, all through the public API.
func TestFacadeAnalyticsPipeline(t *testing.T) {
	profile := DatasetProfile{Name: "pipe", Vertices: 120, Edges: 4000, Skew: 0.8, Seed: 55}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, TemporalNode2Vec(0.5, 2, profile.Lambda(10)), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// PPR mass stays within the exact temporal reachable set.
	scores, err := TemporalPPR(eng, 3, PPRConfig{Walks: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	arrival := EarliestArrival(g, 3, MinTime)
	sum := 0.0
	for _, s := range scores {
		sum += s.Score
		if s.Vertex != 3 && arrival[s.Vertex] == Unreachable {
			t.Fatalf("PPR mass on unreachable vertex %d", s.Vertex)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PPR mass = %v", sum)
	}
	if rs := ReachableSet(g, 3, MinTime); len(rs) == 0 {
		t.Fatal("empty reachable set on a connected profile")
	}

	// LatestDeparture is consistent with EarliestArrival: if v can reach d,
	// its latest departure toward d is a real edge time.
	dep := LatestDeparture(g, 3, MaxTime)
	canReach3 := 0
	for v, t0 := range dep {
		if Vertex(v) != 3 && t0 != MinTime {
			canReach3++
		}
	}
	_ = canReach3 // graph-dependent; presence exercised above

	// Walk corpus → embeddings.
	res, err := eng.Run(WalkConfig{WalksPerVertex: 6, Length: 10, Seed: 4, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainEmbedding(res, g.NumVertices(), EmbeddingConfig{Dim: 16, Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 16 || model.NumVertices() != g.NumVertices() {
		t.Fatalf("model shape %dx%d", model.NumVertices(), model.Dim())
	}
	if nn := model.MostSimilar(3, 5); len(nn) != 5 {
		t.Fatalf("neighbors = %d", len(nn))
	}

	// Distributed run over the same graph agrees on total work with itself
	// across partitionings (full invariance is covered in internal/dist).
	c2, err := NewCluster(g, Exponential(profile.Lambda(10)), ClusterConfig{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	c5, err := NewCluster(g, Exponential(profile.Lambda(10)), ClusterConfig{Partitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Run(ClusterRunConfig{Length: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r5, err := c5.Run(ClusterRunConfig{Length: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost.Steps != r5.Cost.Steps {
		t.Fatalf("cluster steps differ: %d vs %d", r2.Cost.Steps, r5.Cost.Steps)
	}
	if r5.Messages == 0 {
		t.Fatal("no migration traffic recorded")
	}
}

func TestFacadeAppConstructors(t *testing.T) {
	g := CommuteGraph()
	for _, app := range []App{Unbiased(), LinearTime(), LinearRank(), ExponentialWalk(0.5), TemporalNode2Vec(0.5, 2, 0.5)} {
		eng, err := NewEngine(g, app, Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if _, err := eng.Run(WalkConfig{Length: 3, Seed: 1}); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
}

func TestWriteBinaryFileErrors(t *testing.T) {
	if err := WriteBinaryFile("/nonexistent-dir/x.teag", nil); err == nil {
		t.Fatal("bad path accepted")
	}
}
