package tea

// One benchmark per evaluation artifact of the paper (Table 4 and Figures 2,
// 9–14, plus the §5.2 sensitivity study). Each benchmark executes the same
// experiment driver cmd/teabench uses, over a reduced profile so `go test
// -bench=.` finishes in minutes; run `teabench all` for the full-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"github.com/tea-graph/tea/internal/experiments"
	"github.com/tea-graph/tea/internal/gen"
)

// benchConfig returns the benchmark-scale experiment configuration: one
// heavy-tailed dataset per run, enough walk volume to exercise sampling.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Profiles = []gen.Profile{{Name: "bench", Vertices: 1000, Edges: 50000, Skew: 0.8, Seed: 9}}
	cfg.WalksPerVertex = 20
	cfg.Length = 40
	return cfg
}

func BenchmarkFig2SamplingCost(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Linear(b *testing.B)      { benchTable4(b, 0) }
func BenchmarkTable4Exponential(b *testing.B) { benchTable4(b, 1) }
func BenchmarkTable4Node2Vec(b *testing.B)    { benchTable4(b, 2) }

// benchTable4 runs the full three-system comparison; the row index selects
// which algorithm's numbers the benchmark reports (all three always run, as
// in the paper's methodology).
func benchTable4(b *testing.B, row int) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[row]
		b.ReportMetric(r.SpeedupGW, "speedup-vs-GW")
		b.ReportMetric(r.SpeedupKK, "speedup-vs-KK")
	}
}

func BenchmarkFig9Memory(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].TEA), "TEA-bytes")
	}
}

func BenchmarkFig10OtherEngines(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParamSensitivity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sensitivity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Breakdown(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Methods(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13aEdgeSearch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13aCandidateSearch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13bHPATBuild(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13bHPATBuild(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13cAuxIndex(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13cAuxIndex(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13dIncremental(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13dIncremental(cfg, []int{1, 100, 10_000, 100_000}, []int{100, 10_000})
		if err != nil {
			b.Fatal(err)
		}
		// Report the headline: speedup at the largest degree, smallest batch.
		b.ReportMetric(rows[3].Speedup, "speedup-deg100k-batch100")
	}
}

func BenchmarkFig13ePreprocess(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13ePreprocess(cfg, []int{1, 2, 4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14OutOfCore(b *testing.B) {
	cfg := benchConfig()
	cfg.WalksPerVertex = 4
	cfg.Length = 10
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14OutOfCore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		if r.TEABytes > 0 {
			b.ReportMetric(float64(r.GWBytes)/float64(r.TEABytes), "io-ratio")
		}
	}
}

func BenchmarkDistScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DistScaling(cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].MessagesPerStep, "msgs/step-4parts")
	}
}
