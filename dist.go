package tea

import (
	"github.com/tea-graph/tea/internal/dist"
)

// Distributed-style execution — the §4.4 future-work direction of the paper
// (HPAT-based sampling inside a KnightKing-like partitioned walker engine),
// realized as in-process workers exchanging walker batches in
// bulk-synchronous rounds.

type (
	// Cluster is a partitioned walk engine: each worker owns a vertex
	// partition's adjacency and HPAT; walkers migrate between workers.
	Cluster = dist.Cluster
	// ClusterConfig sizes the cluster.
	ClusterConfig = dist.Config
	// ClusterRunConfig parameterizes a distributed run.
	ClusterRunConfig = dist.RunConfig
	// ClusterResult reports a distributed run, including cross-partition
	// message counts (the network traffic a real deployment would pay).
	ClusterResult = dist.Result
)

// ClusterNode2Vec configures distributed temporal node2vec: β is computed
// locally on every worker via a replicated edge Bloom filter.
type ClusterNode2Vec = dist.Node2VecParams

// NewCluster hash-partitions g across workers and builds per-partition HPAT
// indices. Results are bit-identical for any partition count — walker
// randomness depends only on walk id and step.
func NewCluster(g *Graph, weight WeightSpec, cfg ClusterConfig) (*Cluster, error) {
	return dist.New(g, weight, cfg)
}
