#!/usr/bin/env bash
# Replicated-cluster chaos drill: 2 partitions x 2 replicas + router on real
# processes. Phase A partitions one coordinator from partition 1's primary
# replica via -chaos; phase B SIGKILLs that replica mid-load; both must be
# invisible to clients (200s only, walks byte-identical to a single-process
# teaserve). Phase C kills the surviving sibling too — only then may the
# router answer 503, and it must carry Retry-After.
#
# pipefail matters: the determinism diff compares curl|python output, and
# without it a failed fetch yields two empty files that "match".
set -euxo pipefail

go build -o teaserve ./cmd/teaserve
go build -o tearouter ./cmd/tearouter
go run ./cmd/teagen -profile growth -seed 11 -o chaosgraph.teag

cleanup() { kill $(jobs -p) 2>/dev/null || true; wait 2>/dev/null || true; }
trap cleanup EXIT

./teaserve -input chaosgraph.teag -addr 127.0.0.1:8400 &

# 2 partitions x 2 replicas. Every process gets the same replicated peer
# map; -shard-replica picks which address it binds. Shard 0 replica 0 runs
# with a -chaos plan that, after 2 operations, drops every conn it makes to
# partition 1's primary (9421) — the mid-request failover path re-sends the
# in-flight walker frames to the sibling (9422).
PEERS='127.0.0.1:9411|127.0.0.1:9412,127.0.0.1:9421|127.0.0.1:9422'
./teaserve -input chaosgraph.teag -shard-id 0 -shard-replica 0 -shard-peers $PEERS \
  -chaos 'partition:peer=127.0.0.1:9421,after=2' -addr 127.0.0.1:8401 &
./teaserve -input chaosgraph.teag -shard-id 0 -shard-replica 1 -shard-peers $PEERS \
  -addr 127.0.0.1:8402 &
./teaserve -input chaosgraph.teag -shard-id 1 -shard-replica 0 -shard-peers $PEERS \
  -addr 127.0.0.1:8403 &
S1R0=$!
./teaserve -input chaosgraph.teag -shard-id 1 -shard-replica 1 -shard-peers $PEERS \
  -addr 127.0.0.1:8404 &
S1R1=$!

./tearouter \
  -shards 'http://127.0.0.1:8401|http://127.0.0.1:8402,http://127.0.0.1:8403|http://127.0.0.1:8404' \
  -request-timeout 15s -retry-after 1s -addr 127.0.0.1:8490 &

for i in $(seq 1 200); do
  curl -sf http://127.0.0.1:8490/readyz > /dev/null && break
  sleep 0.1
done
curl -sf http://127.0.0.1:8490/readyz

QUERIES=(
  "from=7&length=40&count=8&seed=3"
  "from=123&length=25&count=5&seed=99"
  "from=0&length=60&count=3&seed=7"
  "from=555&length=10&count=12&seed=1"
)

# Reference outputs from the single process, once.
mkdir -p refs
n=0
for q in "${QUERIES[@]}"; do
  curl -sf "http://127.0.0.1:8400/walk?$q" \
    | python3 -c 'import json,sys; print(json.dumps(json.load(sys.stdin)["walks"]))' > refs/$n.json
  n=$((n+1))
done

# check_round: every seeded query through the router must answer 200 (curl
# -sf fails the script on any 4xx/5xx) with walks byte-identical to the
# single-process reference.
check_round() {
  local n=0
  for q in "${QUERIES[@]}"; do
    curl -sf "http://127.0.0.1:8490/walk?$q" \
      | python3 -c 'import json,sys; print(json.dumps(json.load(sys.stdin)["walks"]))' > routed.json
    diff refs/$n.json routed.json
    n=$((n+1))
  done
}

# Phase A: the netchaos partition is live (after=2 ops) while these rounds
# run; the partitioned coordinator must fail its step batches over to 9422.
for round in 1 2 3; do check_round; done
echo "phase A OK: netchaos partition invisible (byte-identical, zero 5xx)"

# Phase B: SIGKILL partition 1's primary replica while load is in flight.
( sleep 0.2; kill -9 $S1R0 ) &
KILLER=$!
for round in 1 2 3 4 5 6; do check_round; done
wait $KILLER
wait $S1R0 || true
check_round
echo "phase B OK: replica SIGKILL invisible (byte-identical, zero 5xx)"

# The router's replica table must show partition 1 degraded but served.
curl -s http://127.0.0.1:8490/healthz | python3 -c '
import json, sys
h = json.load(sys.stdin)
reps = {r["url"]: r for r in h["replicas"]["1"]}
dead = reps["http://127.0.0.1:8403"]
live = reps["http://127.0.0.1:8404"]
assert dead["err_total"] > 0 and dead["state"] in ("suspect", "open"), dead
assert live["state"] == "healthy" and live["ok_total"] > 0, live
print("replica topology OK:", {u: r["state"] for u, r in reps.items()})
'

# Federation keeps its per-shard labels when a replica is down: the scrape
# follows the surviving replica, still labeled shard="1".
curl -sf http://127.0.0.1:8490/metrics.json | python3 -c '
import json, sys
fed = {c["name"] for c in json.load(sys.stdin)["counters"]}
for want in (
    "tea_server_requests_total{endpoint=\"walk\",shard=\"0\"}",
    "tea_server_requests_total{endpoint=\"walk\",shard=\"1\"}",
    "tea_server_requests_total{endpoint=\"walk\",shard=\"all\"}",
    "tea_router_replica_failovers_total{shard=\"1\"}",
):
    assert want in fed, want
print("federation labels OK under replica outage")
'

# Phase C: kill the surviving sibling — partition 1 is now truly down, and
# ONLY now may the router answer 503. It must do so promptly, with
# Retry-After, never a 200 with partial walks.
kill -9 $S1R1
wait $S1R1 || true
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 20 \
  "http://127.0.0.1:8490/walk?from=7&length=40&count=8&seed=3")
test "$code" = 503
curl -s -D - -o /dev/null --max-time 20 \
  "http://127.0.0.1:8490/walk?from=7&length=5&count=1&seed=1" | grep -i '^retry-after:'
echo "phase C OK: whole partition down -> 503 + Retry-After"
