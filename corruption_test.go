package tea

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/tea-graph/tea/internal/chksum"
	"github.com/tea-graph/tea/internal/edgeio"
	"github.com/tea-graph/tea/internal/hpat"
)

func writeMutated(t *testing.T, dir, name string, data []byte, mutate func([]byte) []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, mutate(append([]byte(nil), data...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Every way a binary edge file can rot — truncation at any layer, a flipped
// payload byte, a damaged footer — must surface as a classified error, and a
// pre-footer (legacy) file must still load.
func TestLoadBinaryFileCorruption(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 1, Dst: 2, Time: 3},
		{Src: 2, Dst: 0, Time: 5},
		{Src: 0, Dst: 2, Time: 7},
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bin")
	if err := WriteBinaryFile(good, edges); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, edgeio.ErrBadFormat},
		{"mid-magic", func(b []byte) []byte { return b[:4] }, edgeio.ErrBadFormat},
		{"mid-count", func(b []byte) []byte { return b[:12] }, edgeio.ErrBadFormat},
		{"mid-record", func(b []byte) []byte { return b[:len(b)-chksum.FooterSize-7] }, edgeio.ErrBadFormat},
		{"payload-bitflip", func(b []byte) []byte { b[20] ^= 0x40; return b }, edgeio.ErrCorrupt},
		{"partial-footer", func(b []byte) []byte { return b[:len(b)-3] }, edgeio.ErrCorrupt},
		{"footer-bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, edgeio.ErrCorrupt},
	} {
		path := writeMutated(t, dir, tc.name+".bin", data, tc.mutate)
		if _, err := LoadBinaryFile(path); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A legacy file (no footer at all) still loads.
	legacy := writeMutated(t, dir, "legacy.bin", data, func(b []byte) []byte {
		return b[:len(b)-chksum.FooterSize]
	})
	g, err := LoadBinaryFile(legacy)
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if g.NumEdges() != len(edges) {
		t.Fatalf("legacy load got %d edges, want %d", g.NumEdges(), len(edges))
	}
}

// The serialized HPAT index gets the same treatment: corruption is detected
// and classified, legacy (footer-less) indices still load and walk
// identically.
func TestNewEngineWithIndexCorruption(t *testing.T) {
	profile := DatasetProfile{Name: "t", Vertices: 200, Edges: 4000, Skew: 0.8, Seed: 17}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := ExponentialWalk(0.001)
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.teai")
	if err := SaveIndex(eng, good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, hpat.ErrIndexFormat},
		{"mid-header", func(b []byte) []byte { return b[:20] }, hpat.ErrIndexFormat},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }, hpat.ErrIndexFormat},
		{"payload-bitflip", func(b []byte) []byte { b[100] ^= 0x40; return b }, hpat.ErrIndexCorrupt},
		{"partial-footer", func(b []byte) []byte { return b[:len(b)-3] }, hpat.ErrIndexCorrupt},
		{"footer-bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, hpat.ErrIndexCorrupt},
	} {
		path := writeMutated(t, dir, tc.name+".teai", data, tc.mutate)
		if _, err := NewEngineWithIndex(g, app, path, Options{}); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A legacy index (no footer) loads and reproduces the same walks.
	legacy := writeMutated(t, dir, "legacy.teai", data, func(b []byte) []byte {
		return b[:len(b)-chksum.FooterSize]
	})
	loaded, err := NewEngineWithIndex(g, app, legacy, Options{})
	if err != nil {
		t.Fatalf("legacy index rejected: %v", err)
	}
	a, err := eng.Run(WalkConfig{Length: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Run(WalkConfig{Length: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Steps != b.Cost.Steps {
		t.Fatalf("legacy index diverged: steps %d vs %d", a.Cost.Steps, b.Cost.Steps)
	}
}
