package tea

import (
	"path/filepath"
	"testing"
)

func TestSaveAndLoadIndex(t *testing.T) {
	profile := DatasetProfile{Name: "t", Vertices: 300, Edges: 8000, Skew: 0.8, Seed: 41}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := ExponentialWalk(0.001)
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.teai")
	if err := SaveIndex(eng, path); err != nil {
		t.Fatal(err)
	}

	loaded, err := NewEngineWithIndex(g, app, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed must reproduce the exact same walks through the loaded index.
	a, err := eng.Run(WalkConfig{Length: 12, Seed: 6, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Run(WalkConfig{Length: 12, Seed: 6, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Steps != b.Cost.Steps {
		t.Fatalf("steps %d vs %d", a.Cost.Steps, b.Cost.Steps)
	}
	for i := range a.Paths {
		if len(a.Paths[i].Vertices) != len(b.Paths[i].Vertices) {
			t.Fatalf("path %d length differs", i)
		}
		for j := range a.Paths[i].Vertices {
			if a.Paths[i].Vertices[j] != b.Paths[i].Vertices[j] {
				t.Fatalf("path %d vertex %d differs", i, j)
			}
		}
	}
}

func TestSaveIndexRejectsNonHPAT(t *testing.T) {
	g := CommuteGraph()
	eng, err := NewEngine(g, Unbiased(), Options{Method: MethodITS})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(eng, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("ITS engine saved as HPAT")
	}
}

func TestLoadIndexErrors(t *testing.T) {
	g := CommuteGraph()
	if _, err := NewEngineWithIndex(g, Unbiased(), "/nonexistent/idx", Options{}); err == nil {
		t.Fatal("missing index accepted")
	}
}
