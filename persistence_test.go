package tea

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveAndLoadIndex(t *testing.T) {
	profile := DatasetProfile{Name: "t", Vertices: 300, Edges: 8000, Skew: 0.8, Seed: 41}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := ExponentialWalk(0.001)
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.teai")
	if err := SaveIndex(eng, path); err != nil {
		t.Fatal(err)
	}

	loaded, err := NewEngineWithIndex(g, app, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed must reproduce the exact same walks through the loaded index.
	a, err := eng.Run(WalkConfig{Length: 12, Seed: 6, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Run(WalkConfig{Length: 12, Seed: 6, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Steps != b.Cost.Steps {
		t.Fatalf("steps %d vs %d", a.Cost.Steps, b.Cost.Steps)
	}
	for i := range a.Paths {
		if len(a.Paths[i].Vertices) != len(b.Paths[i].Vertices) {
			t.Fatalf("path %d length differs", i)
		}
		for j := range a.Paths[i].Vertices {
			if a.Paths[i].Vertices[j] != b.Paths[i].Vertices[j] {
				t.Fatalf("path %d vertex %d differs", i, j)
			}
		}
	}
}

func TestSaveIndexRejectsNonHPAT(t *testing.T) {
	g := CommuteGraph()
	eng, err := NewEngine(g, Unbiased(), Options{Method: MethodITS})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(eng, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("ITS engine saved as HPAT")
	}
}

// A failed save must leave a previously saved index untouched: SaveIndex
// writes to a temp file and renames only on success.
func TestSaveIndexFailureLeavesOldFileIntact(t *testing.T) {
	profile := DatasetProfile{Name: "t", Vertices: 100, Edges: 1000, Skew: 0.8, Seed: 42}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.teai")
	if err := SaveIndex(eng, path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Inject a write failure: hand SaveIndex a read-only file handle, so the
	// very first write of the new index fails mid-save.
	orig := indexTemp
	indexTemp = func(dir string) (*os.File, error) {
		f, err := os.CreateTemp(dir, ".tea-index-*")
		if err != nil {
			return nil, err
		}
		name := f.Name()
		f.Close()
		return os.OpenFile(name, os.O_RDONLY, 0o600)
	}
	defer func() { indexTemp = orig }()

	if err := SaveIndex(eng, path); err == nil {
		t.Fatal("save through read-only handle succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("old index gone after failed save: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("old index changed by failed save: %d -> %d bytes", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("old index byte %d changed by failed save", i)
		}
	}
	// And the failed attempt cleaned up its temp file.
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".tea-index-*")); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
	// A healthy retry still works and the result loads.
	indexTemp = orig
	if err := SaveIndex(eng, path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineWithIndex(g, Unbiased(), path, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIndexErrors(t *testing.T) {
	g := CommuteGraph()
	if _, err := NewEngineWithIndex(g, Unbiased(), "/nonexistent/idx", Options{}); err == nil {
		t.Fatal("missing index accepted")
	}
}
