// Recommend: the e-commerce scenario from the paper's introduction — "users'
// preferences evolve from time to time; static graph analysis would overlook
// such information". A bipartite user→item purchase stream where tastes
// drift: early purchases are in one category, recent ones in another.
// Temporal walks (recency-weighted, time-respecting) recommend from the
// user's current taste; a time-oblivious uniform walk over the full history
// still pushes the stale category. The Edges_interval API (Table 2) is used
// to scope a "last quarter" recommendation window.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"math/rand"

	tea "github.com/tea-graph/tea"
)

const (
	users    = 200
	itemsOld = 300 // vertices users..users+itemsOld-1: the stale category
	itemsNew = 300 // after that: the current category
	events   = 60000
)

func main() {
	g, err := tea.FromEdgesSized(purchaseStream(), users+itemsOld+itemsNew)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("purchase stream: %d users, %d items, %d purchases\n",
		users, itemsOld+itemsNew, g.NumEdges())

	// Co-purchase hops need item→user edges too? No — we walk user→item and
	// read the first hop as the recommendation candidate, repeated R times.
	score := func(app tea.App, graph *tea.Graph, label string) {
		eng, err := tea.NewEngine(graph, app, tea.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(tea.WalkConfig{
			WalksPerVertex: 50,
			Length:         1,
			Seed:           5,
			KeepPaths:      true,
			StartVertices:  userIDs(),
		})
		if err != nil {
			log.Fatal(err)
		}
		oldHits, newHits := 0, 0
		for _, p := range res.Paths {
			if len(p.Vertices) < 2 {
				continue
			}
			if int(p.Vertices[1]) < users+itemsOld {
				oldHits++
			} else {
				newHits++
			}
		}
		total := oldHits + newHits
		fmt.Printf("%-34s stale category %2d%%   current category %2d%%\n",
			label, 100*oldHits/total, 100*newHits/total)
	}

	// 1. Time-oblivious walk: uniform over the full history.
	score(tea.Unbiased(), g, "uniform over full history:")

	// 2. Temporal recency walk: CTDNE exponential weighting.
	lo, hi := g.TimeRange()
	lambda := 20 / float64(hi-lo)
	score(tea.ExponentialWalk(lambda), g, "exponential temporal walk:")

	// 3. Edges_interval: restrict to the most recent quarter of the stream,
	// then walk uniformly — the subgraph-selection workflow of Algorithm 2.
	quarter := g.EdgesInterval(lo+(hi-lo)*3/4, hi)
	score(tea.Unbiased(), quarter, "uniform over last quarter:")

	fmt.Println("\nrecency-aware walks recommend from the user's current taste;")
	fmt.Println("the static view keeps recommending what users bought long ago.")
}

// purchaseStream drifts users' taste from the old catalogue to the new one
// over the life of the stream.
func purchaseStream() []tea.Edge {
	r := rand.New(rand.NewSource(21))
	edges := make([]tea.Edge, events)
	for i := range edges {
		progress := float64(i) / events // 0 → 1 over the stream
		item := users + r.Intn(itemsOld)
		if r.Float64() < progress { // taste drifts toward the new category
			item = users + itemsOld + r.Intn(itemsNew)
		}
		edges[i] = tea.Edge{
			Src:  tea.Vertex(r.Intn(users)),
			Dst:  tea.Vertex(item),
			Time: tea.Time(i + 1),
		}
	}
	return edges
}

func userIDs() []tea.Vertex {
	ids := make([]tea.Vertex, users)
	for i := range ids {
		ids[i] = tea.Vertex(i)
	}
	return ids
}
