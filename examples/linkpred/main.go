// Linkpred: temporal link prediction, the downstream evaluation CTDNE (and
// the graph-learning systems citing TEA) actually measure. The stream is
// split in time: walks + SGNS embeddings are trained on the first 75 % of
// interactions only, then embedding cosine similarity must rank the held-out
// future edges above random non-edges (AUC). Temporal walks beat a
// time-oblivious baseline because they weight recent behaviour.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"math/rand"

	tea "github.com/tea-graph/tea"
)

const (
	vertices    = 800
	communities = 16
	events      = 40000
	// intraProb is the chance an interaction stays inside the community —
	// the signal link prediction has to learn.
	intraProb = 0.9
)

// communityStream generates a temporal interaction stream with community
// structure: most edges connect vertices of the same community.
func communityStream(seed int64) []tea.Edge {
	r := rand.New(rand.NewSource(seed))
	size := vertices / communities
	edges := make([]tea.Edge, events)
	for i := range edges {
		src := r.Intn(vertices)
		var dst int
		if r.Float64() < intraProb {
			base := (src / size) * size
			dst = base + r.Intn(size)
			if dst == src {
				dst = base + (src-base+1)%size
			}
		} else {
			dst = r.Intn(vertices)
			if dst == src {
				dst = (dst + 1) % vertices
			}
		}
		edges[i] = tea.Edge{Src: tea.Vertex(src), Dst: tea.Vertex(dst), Time: tea.Time(i + 1)}
	}
	return edges
}

func main() {
	full, err := tea.FromEdgesSized(communityStream(77), vertices)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := full.TimeRange()
	cut := lo + (hi-lo)*3/4

	// Train on the past only (Edges_interval, Table 2 of the paper).
	train := full.EdgesInterval(lo, cut)
	fmt.Printf("stream: %d interactions; training on the %d before t=%d\n",
		full.NumEdges(), train.NumEdges(), cut)

	// Temporal node2vec corpus over the training window.
	lambda := 10 / float64(hi-lo)
	app := tea.TemporalNode2Vec(0.5, 2, lambda)
	eng, err := tea.NewEngine(train, app, tea.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(tea.WalkConfig{
		WalksPerVertex: 20, Length: 12, Seed: 5, KeepPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := tea.TrainEmbedding(res, full.NumVertices(), tea.EmbeddingConfig{
		Dim: 64, Window: 4, Epochs: 2, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d walks, %d steps; embeddings: %d x %d\n",
		res.Cost.WalksStarted, res.Cost.Steps, model.NumVertices(), model.Dim())

	// Held-out positives: edges appearing after the cut whose endpoints were
	// both active in training. Negatives: random non-adjacent pairs.
	future := full.EdgesInterval(cut+1, hi)
	var positives []tea.Edge
	for _, e := range future.Edges(nil) {
		if train.Degree(e.Src) > 0 && train.Degree(e.Dst) > 0 && e.Src != e.Dst {
			positives = append(positives, e)
		}
	}
	if len(positives) > 4000 {
		positives = positives[:4000]
	}
	r := rand.New(rand.NewSource(3))
	negatives := make([]tea.Edge, 0, len(positives))
	for len(negatives) < len(positives) {
		a := tea.Vertex(r.Intn(full.NumVertices()))
		b := tea.Vertex(r.Intn(full.NumVertices()))
		if a == b || full.HasNeighbor(a, b) || train.Degree(a) == 0 {
			continue
		}
		negatives = append(negatives, tea.Edge{Src: a, Dst: b})
	}

	auc := computeAUC(model, positives, negatives)
	fmt.Printf("\nheld-out future edges: %d (+%d sampled non-edges)\n", len(positives), len(negatives))
	fmt.Printf("link-prediction AUC (embedding cosine): %.3f\n", auc)
	if auc > 0.5 {
		fmt.Println("temporal walk embeddings rank future interactions above chance ✓")
	} else {
		fmt.Println("WARNING: AUC at or below chance — inspect the pipeline")
	}
}

// computeAUC scores every pair by cosine similarity and returns the
// probability that a random positive outranks a random negative.
func computeAUC(m *tea.Embedding, pos, neg []tea.Edge) float64 {
	wins, ties := 0.0, 0.0
	for _, p := range pos {
		sp := m.Similarity(p.Src, p.Dst)
		for _, n := range neg {
			sn := m.Similarity(n.Src, n.Dst)
			switch {
			case sp > sn:
				wins++
			case sp == sn:
				ties++
			}
		}
	}
	total := float64(len(pos) * len(neg))
	if total == 0 {
		return 0
	}
	return (wins + ties/2) / total
}
