// Embedding: the full CTDNE-style graph-embedding pipeline (the workload
// that motivates TEA in §1 and §6). Temporal node2vec walks generate the
// corpus — the step TEA accelerates — and the library's SGNS trainer fits
// vertex embeddings from it; nearest-neighbor queries close the loop.
//
//	go run ./examples/embedding
package main

import (
	"fmt"
	"log"
	"sort"

	tea "github.com/tea-graph/tea"
)

const (
	walkLength = 20
	walksPerV  = 10
	window     = 3 // skip-gram window over the walk corpus
)

func main() {
	// A synthetic interaction network shaped like the paper's evaluation
	// data: power-law degrees, timestamps in stream order.
	profile := tea.DatasetProfile{Name: "interactions", Vertices: 2000, Edges: 40000, Skew: 0.75, Seed: 11}
	g, err := profile.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interaction network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Temporal node2vec with the paper's p=0.5, q=2: BFS/DFS-interpolating
	// exploration that still respects time order.
	app := tea.TemporalNode2Vec(0.5, 2, profile.Lambda(10))
	eng, err := tea.NewEngine(g, app, tea.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(tea.WalkConfig{
		WalksPerVertex: walksPerV,
		Length:         walkLength,
		Seed:           3,
		KeepPaths:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walk corpus: %d walks, %d steps (%.2f edges evaluated/step, %v total)\n",
		res.Cost.WalksStarted, res.Cost.Steps, res.Cost.EdgesPerStep(), res.Duration.Round(1e6))

	// Train SGNS embeddings from the corpus (word2vec-style skip-gram with
	// negative sampling, in-library).
	model, err := tea.TrainEmbedding(res, g.NumVertices(), tea.EmbeddingConfig{
		Dim:    64,
		Window: window,
		Epochs: 2,
		Seed:   17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d-dimensional embeddings for %d vertices\n", model.Dim(), model.NumVertices())

	// Nearest neighbors by cosine similarity for a few active vertices.
	for _, v := range busiest(g, 3) {
		fmt.Printf("\nvertex %d (degree %d) most similar:\n", v, g.Degree(v))
		for _, n := range model.MostSimilar(v, 5) {
			fmt.Printf("  %5d  cosine %.3f\n", n.Vertex, n.Cosine)
		}
	}
}

func busiest(g *tea.Graph, n int) []tea.Vertex {
	type vd struct {
		v tea.Vertex
		d int
	}
	all := make([]vd, g.NumVertices())
	for i := range all {
		all[i] = vd{tea.Vertex(i), g.Degree(tea.Vertex(i))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d > all[j].d })
	out := make([]tea.Vertex, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].v
	}
	return out
}
