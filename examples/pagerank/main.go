// Pagerank: temporal personalized PageRank atop the walk engine — the §5.2
// deployment of a classic static-graph algorithm on temporal semantics. The
// example contrasts PPR computed with time-respecting walks against the
// exact temporal reachability set: PPR mass lands only on temporally
// reachable vertices, something a static PPR would get wrong.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	tea "github.com/tea-graph/tea"
)

func main() {
	profile := tea.DatasetProfile{Name: "citations", Vertices: 1500, Edges: 30000, Skew: 0.7, Seed: 31}
	g, err := profile.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation-style network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	eng, err := tea.NewEngine(g, tea.ExponentialWalk(profile.Lambda(10)), tea.Options{})
	if err != nil {
		log.Fatal(err)
	}

	source := tea.Vertex(42)
	scores, err := tea.TemporalPPR(eng, source, tea.PPRConfig{
		Alpha: 0.15,
		Walks: 50000,
		Seed:  8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntemporal personalized PageRank from vertex %d (top 10):\n", source)
	for i, s := range scores {
		if i >= 10 {
			break
		}
		fmt.Printf("  %5d  %.4f\n", s.Vertex, s.Score)
	}

	// Cross-check against exact temporal reachability: every vertex carrying
	// PPR mass must be reachable by a time-respecting path.
	arrival := tea.EarliestArrival(g, source, tea.MinTime)
	reachable := 0
	for _, t := range arrival {
		if t != tea.Unreachable {
			reachable++
		}
	}
	for _, s := range scores {
		if arrival[s.Vertex] == tea.Unreachable {
			log.Fatalf("BUG: PPR mass on temporally unreachable vertex %d", s.Vertex)
		}
	}
	fmt.Printf("\n%d of %d vertices are temporally reachable from %d;\n",
		reachable, g.NumVertices(), source)
	fmt.Printf("all %d PPR-positive vertices are inside that set — temporal semantics preserved.\n",
		len(scores))
}
