// Quickstart: build a temporal graph from an edge stream, run biased
// temporal random walks, and inspect the sampled paths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tea "github.com/tea-graph/tea"
)

func main() {
	// A temporal graph is an edge stream: (src, dst, time) triples. Walks
	// must traverse edges in strictly increasing time order.
	edges := []tea.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 3},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 1, Dst: 3, Time: 4},
		{Src: 2, Dst: 3, Time: 5},
		{Src: 2, Dst: 4, Time: 6},
		{Src: 3, Dst: 4, Time: 7},
		{Src: 3, Dst: 0, Time: 8},
		{Src: 4, Dst: 1, Time: 9},
	}
	g, err := tea.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, time range %v\n",
		g.NumVertices(), g.NumEdges(), fmtRange(g))

	// The CTDNE exponential temporal weight walk: recent edges are
	// exponentially more likely (§2.3 of the paper). The engine preprocesses
	// the graph into hierarchical persistent alias tables (HPAT) so each
	// step samples in O(log log D).
	eng, err := tea.NewEngine(g, tea.ExponentialWalk(0.3), tea.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(tea.WalkConfig{
		WalksPerVertex: 2,
		Length:         6,
		Seed:           42,
		KeepPaths:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d walks, %d steps, %.2f edges evaluated per step\n",
		res.Cost.WalksStarted, res.Cost.Steps, res.Cost.EdgesPerStep())
	for i, p := range res.Paths {
		fmt.Printf("walk %d: vertices %v  edge times %v\n", i, p.Vertices, p.Times)
	}
}

func fmtRange(g *tea.Graph) string {
	lo, hi := g.TimeRange()
	return fmt.Sprintf("[%d, %d]", lo, hi)
}
