// Commute: the paper's running example (Figure 1). A commuting network where
// each edge carries a departure time; a valid journey must catch connections
// in increasing time order. Starting from vertex 9 (edge to the interchange 7
// departs at t=4), only the 7→4, 7→5, 7→6 connections are still catchable —
// the walks prove it empirically, and a static (time-oblivious) count shows
// what a non-temporal engine would wrongly report.
//
//	go run ./examples/commute
package main

import (
	"fmt"
	"log"
	"sort"

	tea "github.com/tea-graph/tea"
)

func main() {
	g := tea.CommuteGraph()
	fmt.Println("Figure 1 commuting network:", g.NumVertices(), "stations,", g.NumEdges(), "departures")
	fmt.Println("interchange 7 departs to 6,5,4,3,2,1,0 at times 7,6,5,4,3,2,1")
	fmt.Println()

	eng, err := tea.NewEngine(g, tea.Unbiased(), tea.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(tea.WalkConfig{
		WalksPerVertex: 30000,
		Length:         2,
		StartVertices:  []tea.Vertex{9},
		Seed:           7,
		KeepPaths:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	counts := map[tea.Vertex]int{}
	for _, p := range res.Paths {
		if len(p.Vertices) == 3 {
			counts[p.Vertices[2]]++
		}
	}
	fmt.Println("journeys from station 9 through the interchange:")
	var dests []tea.Vertex
	for v := range counts {
		dests = append(dests, v)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, v := range dests {
		fmt.Printf("  9 -> 7 -> %d  sampled %d times\n", v, counts[v])
	}
	fmt.Println()

	// What a time-oblivious engine would believe: all 7 outgoing connections
	// are reachable, including ones that departed before our arrival.
	static := g.Degree(7)
	temporalOK := g.CandidateCount(7, 4) // arrival via the t=4 edge
	fmt.Printf("static engine sees %d onward connections; temporal truth is %d\n", static, temporalOK)
	if len(counts) != temporalOK {
		log.Fatalf("BUG: sampled %d distinct destinations, want %d", len(counts), temporalOK)
	}
	fmt.Println("temporal connectivity respected: only catchable connections were walked")
}
