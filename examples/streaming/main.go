// Streaming: TEA's incremental ingestion (§3.5). An e-commerce-style event
// stream arrives in batches of strictly newer interactions; after each batch
// the engine's HPAT segments absorb the new edges incrementally (no rebuild),
// and fresh walks immediately reflect the newest behaviour — the "user
// preferences evolve over time" scenario of the paper's introduction.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"math/rand"

	tea "github.com/tea-graph/tea"
)

const (
	users       = 50
	itemsPerEra = 40
	eras        = 3
	eventsEach  = 4000
)

func main() {
	// Streaming graph with the CTDNE exponential recency bias: recent
	// purchases dominate the walk distribution.
	s, err := tea.NewStream(tea.StreamConfig{
		Weight:      tea.Exponential(0.002),
		NumVertices: users + eras*itemsPerEra,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(99))
	clock := tea.Time(0)
	for era := 0; era < eras; era++ {
		// Each era, shoppers move on to a fresh catalogue of items.
		first := tea.Vertex(users + era*itemsPerEra)
		batch := make([]tea.Edge, eventsEach)
		for i := range batch {
			clock++
			batch[i] = tea.Edge{
				Src:  tea.Vertex(r.Intn(users)),
				Dst:  first + tea.Vertex(r.Intn(itemsPerEra)),
				Time: clock,
			}
		}
		if err := s.AppendBatch(batch); err != nil {
			log.Fatal(err)
		}

		// Walk from a user right after ingesting the batch; the engine's
		// incremental HPAT segments serve the walk with no rebuild.
		verts, _ := s.WalkSeeded(0, tea.MinTime, 4, uint64(era))
		fmt.Printf("era %d: %6d events ingested (frontier t=%d, user 0 walk %v)\n",
			era, s.NumEdges(), s.Frontier(), verts)

		// Which era's catalogue do walks reach now? Recency bias should track
		// the current era.
		hits := make([]int, eras)
		for i := 0; i < 4000; i++ {
			verts, _ := s.WalkSeeded(tea.Vertex(r.Intn(users)), tea.MinTime, 1, uint64(1000+i))
			if len(verts) < 2 {
				continue
			}
			item := int(verts[1]) - users
			hits[item/itemsPerEra]++
		}
		fmt.Printf("        first-hop catalogue share:")
		total := 0
		for _, h := range hits {
			total += h
		}
		for e := 0; e <= era; e++ {
			fmt.Printf("  era%d %2d%%", e, 100*hits[e]/max(total, 1))
		}
		fmt.Println()
	}

	snap, err := s.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final snapshot: %d vertices, %d edges — walks shifted to the newest catalogue\n",
		snap.NumVertices(), snap.NumEdges())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
