package tea

import (
	"github.com/tea-graph/tea/internal/embed"
	"github.com/tea-graph/tea/internal/temporal"
)

// CTDNE-style embedding support: the walk corpus the engine produces is the
// expensive half of temporal network embedding (§1 of the paper); this
// facade closes the loop with a dependency-free SGNS trainer.

type (
	// EmbeddingConfig parameterizes skip-gram-with-negative-sampling training.
	EmbeddingConfig = embed.Config
	// Embedding holds trained vertex vectors.
	Embedding = embed.Model
	// EmbeddingNeighbor is one nearest-neighbor query result.
	EmbeddingNeighbor = embed.Neighbor
)

// TrainEmbedding fits SGNS embeddings to the walks of a Result (run with
// WalkConfig.KeepPaths). numVertices must cover every visited vertex —
// usually Graph.NumVertices().
func TrainEmbedding(res *Result, numVertices int, cfg EmbeddingConfig) (*Embedding, error) {
	corpus := make([][]temporal.Vertex, len(res.Paths))
	for i, p := range res.Paths {
		corpus[i] = p.Vertices
	}
	return embed.Train(corpus, numVertices, cfg)
}
