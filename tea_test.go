package tea

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := CommuteGraph()
	eng, err := NewEngine(g, ExponentialWalk(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{Length: 5, Seed: 1, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != g.NumVertices() {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	for _, p := range res.Paths {
		for i := 1; i < len(p.Times); i++ {
			if p.Times[i] <= p.Times[i-1] {
				t.Fatalf("non-temporal path %v", p.Times)
			}
		}
	}
}

func TestFromEdgesAndMethods(t *testing.T) {
	g, err := FromEdges([]Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 1, Dst: 2, Time: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodHPAT, MethodHPATNoIndex, MethodPAT, MethodITS} {
		eng, err := NewEngine(g, LinearTime(), Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := eng.Run(WalkConfig{Length: 3, Seed: 2}); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
	if _, err := FromEdgesSized(nil, 4); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := CommuteGraph().Edges(nil)
	bin := filepath.Join(dir, "g.teag")
	if err := WriteBinaryFile(bin, edges); err != nil {
		t.Fatal(err)
	}
	g, err := LoadBinaryFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != len(edges) {
		t.Fatalf("binary round trip E = %d", g.NumEdges())
	}

	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte("# demo\n0 1 5\n1 2 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTextFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || g2.NumVertices() != 3 {
		t.Fatalf("text load V=%d E=%d", g2.NumVertices(), g2.NumEdges())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadTextFile("/nonexistent/x.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadBinaryFile("/nonexistent/x.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStreamFacade(t *testing.T) {
	s, err := NewStream(StreamConfig{Weight: Exponential(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch([]Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 1, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 2 {
		t.Fatalf("stream edges = %d", s.NumEdges())
	}
}

func TestDatasets(t *testing.T) {
	ds := Datasets()
	if len(ds) != 4 || ds[0].Name != "growth" {
		t.Fatalf("datasets: %v", ds)
	}
}

func TestCustomWeightApp(t *testing.T) {
	g := CommuteGraph()
	app := App{
		Name:   "custom",
		Weight: WeightSpec{Custom: func(t Time) float64 { return float64(t) + 1 }},
	}
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(WalkConfig{Length: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesInterval(t *testing.T) {
	g := CommuteGraph()
	sub := g.EdgesInterval(3, 5)
	if sub.NumEdges() != 5 {
		t.Fatalf("interval edges = %d", sub.NumEdges())
	}
	eng, err := NewEngine(sub, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(WalkConfig{Length: 3, Seed: 4}); err != nil {
		t.Fatal(err)
	}
}
