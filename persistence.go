package tea

import (
	"fmt"
	"os"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/hpat"
)

// SaveIndex persists an engine's HPAT index (trunk alias tables, prefix
// sums, and the edge weights) so preprocessing can be done once and reused:
// load it back with NewEngineWithIndex. Only HPAT-method engines (the
// default) can be saved.
func SaveIndex(eng *Engine, path string) error {
	idx, ok := eng.Sampler().(*hpat.Index)
	if !ok {
		return fmt.Errorf("tea: engine sampler %q is not an HPAT index", eng.Sampler().Name())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tea: %w", err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NewEngineWithIndex builds an engine whose HPAT index is loaded from a file
// written by SaveIndex instead of rebuilt; g must be the same graph the
// index was built for. The app must use the same Dynamic_weight the index
// was built with — the stored per-edge weights are reused verbatim.
func NewEngineWithIndex(g *Graph, app App, path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tea: %w", err)
	}
	defer f.Close()
	idx, err := hpat.ReadIndex(f, g)
	if err != nil {
		return nil, err
	}
	opts.ExternalSampler = idx
	opts.ExternalWeights = idx.Weights()
	return core.NewEngine(g, app, opts)
}
