package tea

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/hpat"
)

// indexTemp creates the temporary file SaveIndex writes into. A seam so
// tests can inject write failures without filesystem tricks.
var indexTemp = func(dir string) (*os.File, error) {
	return os.CreateTemp(dir, ".tea-index-*")
}

// SaveIndex persists an engine's HPAT index (trunk alias tables, prefix
// sums, and the edge weights) so preprocessing can be done once and reused:
// load it back with NewEngineWithIndex. Only HPAT-method engines (the
// default) can be saved.
//
// The write is atomic: the index goes to a temp file in the same directory,
// is fsynced, and is renamed over path only then — a crash or write failure
// partway leaves any previous index at path intact instead of replacing it
// with a truncated one.
func SaveIndex(eng *Engine, path string) error {
	idx, ok := eng.Sampler().(*hpat.Index)
	if !ok {
		return fmt.Errorf("tea: engine sampler %q is not an HPAT index", eng.Sampler().Name())
	}
	dir := filepath.Dir(path)
	f, err := indexTemp(dir)
	if err != nil {
		return fmt.Errorf("tea: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := idx.WriteTo(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("tea: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tea: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tea: %w", err)
	}
	// The rename is not durable until the directory entry is: a crash before
	// the directory sync can silently resurrect the previous index.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("tea: sync index dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("tea: sync index dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("tea: sync index dir: %w", err)
	}
	return nil
}

// NewEngineWithIndex builds an engine whose HPAT index is loaded from a file
// written by SaveIndex instead of rebuilt; g must be the same graph the
// index was built for. The app must use the same Dynamic_weight the index
// was built with — the stored per-edge weights are reused verbatim.
func NewEngineWithIndex(g *Graph, app App, path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tea: %w", err)
	}
	defer f.Close()
	idx, err := hpat.ReadIndex(f, g)
	if err != nil {
		return nil, err
	}
	opts.ExternalSampler = idx
	opts.ExternalWeights = idx.Weights()
	return core.NewEngine(g, app, opts)
}
