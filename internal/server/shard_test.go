package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/trace"
)

// newShardCluster builds one ShardServer per partition over in-process step
// calls and returns their test servers (indexed by shard id) plus the nodes.
func newShardCluster(t *testing.T, g *temporal.Graph, spec sampling.WeightSpec, parts int, cfg Config, tracers []*trace.Tracer) []*httptest.Server {
	t.Helper()
	nodes := make([]*shard.Node, parts)
	for i := 0; i < parts; i++ {
		var tr *trace.Tracer
		if tracers != nil {
			tr = tracers[i]
		}
		n, err := shard.NewNode(g, spec, shard.Config{
			ShardID: i, Partitions: parts, Kernel: core.KernelBatch, Tracer: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	caller := &shard.InProcess{Nodes: nodes}
	servers := make([]*httptest.Server, parts)
	for i := 0; i < parts; i++ {
		shardCfg := cfg
		if tracers != nil {
			shardCfg.Trace = tracers[i]
		}
		ts := httptest.NewServer(NewShard(nodes[i], caller, shardCfg).Handler())
		t.Cleanup(ts.Close)
		servers[i] = ts
	}
	return servers
}

func newShardRouter(t *testing.T, servers []*httptest.Server, cfg RouterConfig) *httptest.Server {
	t.Helper()
	for _, ts := range servers {
		cfg.Shards = append(cfg.Shards, ts.URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The tentpole's end-to-end oracle at the HTTP layer: a routed 3-shard
// cluster answers /walk byte-identically (in the walks payload) to one
// single-process teaserve over the same graph, seed for seed.
func TestRouterMatchesSingleProcess(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 61)
	spec := sampling.Exponential(0.01)
	eng, err := core.NewEngine(g, core.App{Name: "test", Weight: spec}, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(New(eng).Handler())
	t.Cleanup(single.Close)

	servers := newShardCluster(t, g, spec, 3, Config{}, nil)
	router := newShardRouter(t, servers, RouterConfig{})

	for _, q := range []string{
		"/walk?from=7&length=20&count=6&seed=9",
		"/walk?from=42&length=15&count=4&seed=1",
		"/walk?from=0&length=30&count=1&seed=12345",
	} {
		var want, got walkResponse
		getJSON(t, single.URL+q, http.StatusOK, &want)
		getJSON(t, router.URL+q, http.StatusOK, &got)
		wj, _ := json.Marshal(want.Walks)
		gj, _ := json.Marshal(got.Walks)
		if string(wj) != string(gj) {
			t.Fatalf("%s: routed cluster diverged from single process\nsingle: %s\nrouted: %s", q, wj, gj)
		}
		if got.Cost["shards"] != "3" {
			t.Fatalf("router cost missing shards: %v", got.Cost)
		}
	}
}

// Each shard answers only the walk ids whose source it owns; the others
// return empty partial responses — the ownership split the router merges.
func TestShardPartialResponses(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 62)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 3, Config{}, nil)
	part := shard.MustPartitioner(3)

	const from, count = 7, 5
	owner := part.Owner(from)
	total := 0
	for i, ts := range servers {
		var out shardWalkResponse
		getJSON(t, ts.URL+"/walk?from=7&length=10&count=5&seed=3", http.StatusOK, &out)
		if out.Shard != i || out.Partitions != 3 {
			t.Fatalf("shard %d: identity %d/%d", i, out.Shard, out.Partitions)
		}
		if len(out.WalkIDs) != len(out.Walks) {
			t.Fatalf("shard %d: %d ids for %d walks", i, len(out.WalkIDs), len(out.Walks))
		}
		if i != owner && len(out.WalkIDs) != 0 {
			t.Fatalf("shard %d answered %d walks for a vertex owned by shard %d", i, len(out.WalkIDs), owner)
		}
		total += len(out.WalkIDs)
	}
	if total != count {
		t.Fatalf("cluster answered %d walks, want %d", total, count)
	}
}

// failingCaller refuses every migration with a transient peer error,
// simulating a down peer without sockets.
type failingCaller struct{}

func (failingCaller) Step(context.Context, int, *wire.StepRequest) (*wire.StepResponse, error) {
	return nil, &wire.PeerError{Addr: "127.0.0.1:1", Err: errors.New("connection refused")}
}

// migrationGraph builds a two-vertex graph whose single edge crosses the
// 2-partition boundary, so the very first walk step after arrival needs the
// peer — a deterministic way to exercise the peer-down path.
func migrationGraph(t *testing.T) (*temporal.Graph, temporal.Vertex) {
	t.Helper()
	part := shard.MustPartitioner(2)
	v0, v1 := temporal.Vertex(0), temporal.Vertex(0)
	found0, found1 := false, false
	for v := temporal.Vertex(0); v < 64; v++ {
		switch part.Owner(v) {
		case 0:
			if !found0 {
				v0, found0 = v, true
			}
		case 1:
			if !found1 {
				v1, found1 = v, true
			}
		}
	}
	if !found0 || !found1 {
		t.Fatal("no cross-partition vertex pair in 0..63")
	}
	n := int(max(v0, v1)) + 1
	g := temporal.MustFromEdges([]temporal.Edge{{Src: v0, Dst: v1, Time: 5}},
		temporal.WithNumVertices(n))
	return g, v0
}

// A peer shard going down mid-walk surfaces as 503 + Retry-After: the shard
// is healthy, the cluster is momentarily incomplete, the query is retryable.
func TestShardWalkPeerDown503(t *testing.T) {
	g, from := migrationGraph(t)
	node, err := shard.NewNode(g, sampling.WeightSpec{}, shard.Config{ShardID: 0, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewShard(node, failingCaller{}, Config{}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/walk?from=" + strconv.Itoa(int(from)) + "&length=4&count=1&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// Whole-graph analytics need the full index resident and are not served by
// one shard.
func TestShardServerRejectsGlobalQueries(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 63)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, nil)
	for _, path := range []string{"/ppr?from=1", "/reach?from=1"} {
		resp, err := http.Get(servers[0].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("%s: status %d, want 501", path, resp.StatusCode)
		}
	}
}

// An unreachable shard makes the router's /walk and /readyz answer 503 with
// Retry-After within the request deadline — the acceptance criterion for the
// killed-peer scenario.
func TestRouterShardDown(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 64)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, nil)
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // bound then closed: connection refused, a dead shard
	rt, err := NewRouter(RouterConfig{Shards: []string{servers[0].URL, down.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/walk?from=1&length=5&count=2&seed=1", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: 503 without Retry-After", path)
		}
	}

	// The healthy cluster is ready.
	full := newShardRouter(t, servers, RouterConfig{})
	var out map[string]any
	getJSON(t, full.URL+"/readyz", http.StatusOK, &out)
	if out["status"] != "ready" {
		t.Fatalf("readyz: %v", out)
	}
}

// A shard built for a different partition count is a deployment error: the
// router detects the fingerprint mismatch and answers 502, not silent
// misownership.
func TestRouterPartitionMismatch502(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 65)
	// Two servers that both claim to be a full 1-partition cluster, fronted
	// by a router that thinks there are two shards.
	one := newShardCluster(t, g, sampling.WeightSpec{}, 1, Config{}, nil)
	two := newShardCluster(t, g, sampling.WeightSpec{}, 1, Config{}, nil)
	rt, err := NewRouter(RouterConfig{Shards: []string{one[0].URL, two[0].URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/walk?from=1&length=5&count=2&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}

// The satellite's trace criterion: one X-Request-ID names the request on the
// router and on every shard it fanned to, so /debug/tea/trace on each
// process shows the same timeline key.
func TestRouterTracePropagation(t *testing.T) {
	g := testutil.RandomGraph(t, 80, 2000, 400, 66)
	tracers := []*trace.Tracer{
		trace.New(trace.Config{SampleFraction: 1, MaxTraces: 16, MaxSpansPerTrace: 256}),
		trace.New(trace.Config{SampleFraction: 1, MaxTraces: 16, MaxSpansPerTrace: 256}),
	}
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, tracers)
	routerTracer := trace.New(trace.Config{SampleFraction: 1, MaxTraces: 16, MaxSpansPerTrace: 256})
	router := newShardRouter(t, servers, RouterConfig{Trace: routerTracer})

	const reqID = "req-router-trace-1"
	req, _ := http.NewRequest(http.MethodGet, router.URL+"/walk?from=3&length=10&count=4&seed=5", nil)
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("router echoed request id %q, want %q", got, reqID)
	}

	spans, _, ok := routerTracer.Trace(reqID)
	if !ok {
		t.Fatal("router recorded no trace under the request id")
	}
	var sawRoot, sawFanout bool
	for _, sp := range spans {
		switch sp.Name {
		case "server.request":
			sawRoot = true
		case "router.fanout":
			sawFanout = true
		}
	}
	if !sawRoot || !sawFanout {
		t.Fatalf("router trace missing spans (root=%v fanout=%v): %+v", sawRoot, sawFanout, spans)
	}
	for i, tr := range tracers {
		spans, _, ok := tr.Trace(reqID)
		if !ok {
			t.Fatalf("shard %d recorded no trace under the propagated request id", i)
		}
		var sawShard bool
		for _, sp := range spans {
			if sp.Name == "server.request" {
				sawShard = true
			}
		}
		if !sawShard {
			t.Fatalf("shard %d trace missing server.request: %+v", i, spans)
		}
	}
}

// Shard /stats describes the partition, router /stats aggregates them.
func TestShardAndRouterStats(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 67)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 3, Config{}, nil)
	edges := 0
	for i, ts := range servers {
		var out shardStatsResponse
		getJSON(t, ts.URL+"/stats", http.StatusOK, &out)
		if out.Shard != i || out.Partitions != 3 || out.Vertices != g.NumVertices() {
			t.Fatalf("shard %d stats: %+v", i, out)
		}
		edges += out.OwnedEdges
	}
	if edges != g.NumEdges() {
		t.Fatalf("shards own %d edges, graph has %d", edges, g.NumEdges())
	}

	router := newShardRouter(t, servers, RouterConfig{})
	var agg struct {
		Partitions int                  `json:"partitions"`
		Shards     []shardStatsResponse `json:"shards"`
	}
	getJSON(t, router.URL+"/stats", http.StatusOK, &agg)
	if agg.Partitions != 3 || len(agg.Shards) != 3 {
		t.Fatalf("router stats: %+v", agg)
	}
}
