package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

// A client disconnect must cancel the in-flight walk run: the handler (which
// runs the walk synchronously) has to return long before the paced run could
// have finished on its own.
func TestClientDisconnectCancelsRun(t *testing.T) {
	g := testutil.RandomGraph(t, 400, 16000, 50000, 41)
	eng, err := core.NewEngine(g, core.LinearTime(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)

	started := make(chan struct{})
	var once sync.Once
	s.prepWalk = func(cfg *core.WalkConfig) {
		cfg.Visitor = func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
			once.Do(func() { close(started) })
			time.Sleep(200 * time.Microsecond) // pace the run so it cannot finish early
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("GET", "/walk?from=0&length=80&count=10000&seed=1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("run never started")
	}
	cancel() // the client goes away

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	var out map[string]string
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "context canceled") {
		t.Fatalf("error body %v", out)
	}
}

// The per-request timeout must fire as 504 with a structured error.
func TestRequestTimeout(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, Config{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	var out map[string]string
	getJSON(t, ts.URL+"/walk?from=9&length=80&count=100", http.StatusGatewayTimeout, &out)
	if out["error"] == "" {
		t.Fatal("no structured error on timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not return promptly")
	}
}

// With the in-flight semaphore full, further queries must be shed with 503
// and a Retry-After hint, not queued.
func TestLoadShedding(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()

	req := httptest.NewRequest("GET", "/walk?from=9", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	var out map[string]string
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["error"] == "" {
		t.Fatal("no structured error on shed request")
	}

	// Health stays reachable even when queries are shed.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d under load", rec.Code)
	}
}

// With RetryAfter unset, shed responses must still carry a usable
// Retry-After of at least one second — never "0", which clients read as
// "retry immediately" and turn into a tight retry loop.
func TestRetryAfterDefaultsToOneSecond(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, Config{MaxInFlight: 1})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/walk?from=9", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", rec.Header().Get("Retry-After"))
	}
	if ra < 1 {
		t.Fatalf("Retry-After = %d, want ≥ 1", ra)
	}
}

// Every endpoint must turn malformed or out-of-range parameters into a 400
// with a structured JSON error — never a 500, never a silent default.
func TestBadInputSweep(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{
		// /walk
		"/walk",
		"/walk?from=99",
		"/walk?from=x",
		"/walk?from=-1",
		"/walk?from=1&length=x",
		"/walk?from=1&length=0",
		"/walk?from=1&length=-5",
		"/walk?from=1&count=x",
		"/walk?from=1&count=0",
		"/walk?from=1&count=999999",
		"/walk?from=1&length=2000000000", // beyond the length cap: must 400, not allocate
		"/walk?from=1&seed=x",
		// /ppr
		"/ppr",
		"/ppr?from=99",
		"/ppr?from=x",
		"/ppr?from=1&walks=x",
		"/ppr?from=1&walks=0",
		"/ppr?from=1&walks=99999999",
		"/ppr?from=1&alpha=x",
		"/ppr?from=1&alpha=2",
		"/ppr?from=1&alpha=0",
		"/ppr?from=1&topk=0",
		"/ppr?from=1&topk=999999999", // beyond the topk cap
		"/ppr?from=1&topk=x",
		"/ppr?from=1&seed=x",
		// /reach
		"/reach",
		"/reach?from=99",
		"/reach?from=x",
		"/reach?from=1&after=x",
		"/reach?from=1&after=1.5",
	} {
		var out map[string]string
		getJSON(t, ts.URL+q, http.StatusBadRequest, &out)
		if out["error"] == "" {
			t.Fatalf("%s: empty structured error", q)
		}
	}
}
