package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/temporal"

	// Link the out-of-core store so its metric families (and, transitively,
	// the block cache's) register on the default registry: /metrics must
	// cover engine, server, ooc, and blockcache.
	_ "github.com/tea-graph/tea/internal/ooc"
)

func newMeteredServer(t *testing.T, cfg Config) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	ts := httptest.NewServer(NewWithConfig(eng, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, cfg.Metrics
}

// /metrics must render the Prometheus text format and cover the engine,
// server, and out-of-core metric families.
func TestMetricsEndpointFamilies(t *testing.T) {
	ts, _ := newMeteredServer(t, Config{Metrics: metrics.Default})
	// Generate some engine traffic so totals are non-trivial.
	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=9&length=3&count=2&seed=1", http.StatusOK, &walk)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE tea_engine_runs_started_total counter",
		"tea_engine_walks_total",
		"# TYPE tea_engine_run_seconds histogram",
		`tea_server_requests_total{endpoint="walk"}`,
		`tea_server_request_seconds_bucket{endpoint="walk",le="+Inf"}`,
		`tea_server_responses_total{endpoint="walk",class="2xx"}`,
		"tea_server_inflight",
		"tea_server_shed_total",
		"tea_server_timeout_total",
		"tea_ooc_reads_total",
		"tea_ooc_read_retries_total",
		"# TYPE tea_ooc_block_fetch_seconds histogram",
		"tea_blockcache_hits_total",
		"tea_blockcache_misses_total",
		"tea_blockcache_evictions_total",
		"tea_blockcache_coalesced_total",
		"tea_blockcache_resident_bytes",
		`tea_blockcache_served_bytes_total{source="cache"}`,
		`# TYPE tea_blockcache_fetch_seconds histogram`,
		"tea_wal_appended_records_total",
		"tea_wal_appended_bytes_total",
		"tea_wal_fsyncs_total",
		"tea_wal_fsync_errors_total",
		"# TYPE tea_wal_fsync_seconds histogram",
		"tea_wal_segments",
		"# TYPE tea_wal_group_commit_records histogram",
		"tea_wal_snapshots_total",
		"tea_wal_recovery_seconds",
		"tea_wal_recovery_replayed_records",
		"tea_wal_recovery_truncated_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// /metrics.json must expose the same snapshot as JSON.
func TestMetricsJSONEndpoint(t *testing.T) {
	ts, _ := newMeteredServer(t, Config{})
	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=9&length=3&seed=1", http.StatusOK, &walk)

	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/metrics.json", http.StatusOK, &snap)
	found := false
	for _, c := range snap.Counters {
		if c.Name == `tea_server_requests_total{endpoint="walk"}` {
			found = true
			if c.Value < 1 {
				t.Fatalf("walk request counter = %d", c.Value)
			}
		}
	}
	if !found {
		t.Fatalf("walk request counter missing from snapshot: %+v", snap.Counters)
	}
}

// Per-endpoint counters and status classes must track real traffic.
func TestInstrumentationCounts(t *testing.T) {
	ts, reg := newMeteredServer(t, Config{})
	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=9&length=3&seed=1", http.StatusOK, &walk)
	var bad map[string]string
	getJSON(t, ts.URL+"/walk?from=9&length=0", http.StatusBadRequest, &bad)

	if got := reg.Counter(`tea_server_requests_total{endpoint="walk"}`).Value(); got != 2 {
		t.Fatalf("walk requests = %d, want 2", got)
	}
	if got := reg.Counter(`tea_server_responses_total{endpoint="walk",class="2xx"}`).Value(); got != 1 {
		t.Fatalf("2xx responses = %d, want 1", got)
	}
	if got := reg.Counter(`tea_server_responses_total{endpoint="walk",class="4xx"}`).Value(); got != 1 {
		t.Fatalf("4xx responses = %d, want 1", got)
	}
	if got := reg.Histogram(`tea_server_request_seconds{endpoint="walk"}`).Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if got := reg.Gauge("tea_server_inflight").Value(); got != 0 {
		t.Fatalf("inflight after requests = %v, want 0", got)
	}
}

// A shed request must increment the shed counter (alongside the 503 path
// covered by TestLoadShedding).
func TestShedCounter(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s := NewWithConfig(eng, Config{MaxInFlight: 1, Metrics: reg})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/walk?from=9", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := reg.Counter("tea_server_shed_total").Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

// An oversized length must be rejected with 400 before any allocation: the
// historical failure mode was length=2000000000 allocating a ~16 GB
// histogram. The request must come back immediately.
func TestLengthCapRejectsHugeRequest(t *testing.T) {
	ts, _ := newMeteredServer(t, Config{})
	start := time.Now()
	var out map[string]string
	getJSON(t, ts.URL+"/walk?from=9&length=2000000000", http.StatusBadRequest, &out)
	if out["error"] == "" {
		t.Fatal("no structured error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("rejection took %v; the request likely allocated", elapsed)
	}
}

// The caps must be config-overridable in both directions.
func TestCapsConfigurable(t *testing.T) {
	ts, _ := newMeteredServer(t, Config{MaxWalkLength: 5, MaxWalkCount: 2, MaxTopK: 3, MaxPPRWalks: 100})
	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=9&length=5&count=2", http.StatusOK, &walk)
	var bad map[string]string
	getJSON(t, ts.URL+"/walk?from=9&length=6", http.StatusBadRequest, &bad)
	getJSON(t, ts.URL+"/walk?from=9&count=3", http.StatusBadRequest, &bad)
	getJSON(t, ts.URL+"/ppr?from=9&walks=101", http.StatusBadRequest, &bad)
	getJSON(t, ts.URL+"/ppr?from=9&topk=4", http.StatusBadRequest, &bad)
	var ppr pprResponse
	getJSON(t, ts.URL+"/ppr?from=9&walks=100&topk=3", http.StatusOK, &ppr)
}

// The JSON snapshot endpoint must be valid JSON even with zero traffic.
func TestMetricsJSONEmptyRegistry(t *testing.T) {
	ts, _ := newMeteredServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
}
