// Router replica awareness: each -shards entry may name several
// interchangeable replica URLs ("http://a:8080|http://b:8080") serving the
// same partition. The router keeps a per-replica circuit breaker
// (shard.Breaker — the same health model the step-RPC layer uses), prefers
// the healthiest / fastest replica for every fanned request, and fails over
// to a sibling on a transport error or a 503. A partition is reported down
// only when every one of its replicas fails, so a single replica outage is
// invisible to clients: zero 5xx, byte-identical responses.
package server

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/shard"
)

// routerReplica is one HTTP base URL serving a partition, plus the router's
// local view of its health.
type routerReplica struct {
	url     string
	breaker *shard.Breaker
	state   *metrics.Gauge // 0 healthy / 1 suspect / 2 open
}

func (r *routerReplica) publishState() {
	r.state.Set(float64(r.breaker.State()))
}

// routerGroup is the replica set fronting one partition.
type routerGroup struct {
	partition int
	replicas  []*routerReplica
	failovers *metrics.Counter
}

// ordered returns the group's replicas in attempt-preference order: breaker
// rank first (healthy, suspect, probe-eligible, hard-open), then latency
// EWMA, then stable index. Open replicas stay listed as a last resort.
func (g *routerGroup) ordered() []*routerReplica {
	type scored struct {
		r    *routerReplica
		rank int
		ewma float64
		idx  int
	}
	s := make([]scored, len(g.replicas))
	for i, r := range g.replicas {
		rank, ewma := r.breaker.Rank()
		s[i] = scored{r, rank, ewma, i}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].rank != s[b].rank {
			return s[a].rank < s[b].rank
		}
		if s[a].ewma != s[b].ewma {
			return s[a].ewma < s[b].ewma
		}
		return s[a].idx < s[b].idx
	})
	out := make([]*routerReplica, len(s))
	for i := range s {
		out[i] = s[i].r
	}
	return out
}

// parseReplicaShards expands the configured shard list into per-partition
// replica URL sets: entry i serves partition i, and "|" separates that
// partition's interchangeable replicas.
func parseReplicaShards(entries []string) ([][]string, error) {
	out := make([][]string, 0, len(entries))
	for i, entry := range entries {
		var urls []string
		for _, u := range strings.Split(entry, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				return nil, fmt.Errorf("router: shard %d: empty replica URL in %q", i, entry)
			}
			urls = append(urls, u)
		}
		out = append(out, urls)
	}
	return out, nil
}

// newRouterGroups builds the health table for the parsed replica sets.
func newRouterGroups(replicaURLs [][]string, reg *metrics.Registry, bcfg shard.BreakerConfig) []*routerGroup {
	groups := make([]*routerGroup, len(replicaURLs))
	for p, urls := range replicaURLs {
		g := &routerGroup{
			partition: p,
			failovers: reg.Counter(fmt.Sprintf(`tea_router_replica_failovers_total{shard="%d"}`, p)),
		}
		for _, u := range urls {
			g.replicas = append(g.replicas, &routerReplica{
				url:     u,
				breaker: shard.NewBreaker(bcfg),
				state:   reg.Gauge(fmt.Sprintf(`tea_router_replica_state{shard="%d",replica=%q}`, p, u)),
			})
		}
		groups[p] = g
	}
	return groups
}

// routerReplicaStatus is one replica's health in /healthz and /readyz.
type routerReplicaStatus struct {
	URL              string  `json:"url"`
	State            string  `json:"state"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	LatencyEWMAms    float64 `json:"latency_ewma_ms"`
	OK               int64   `json:"ok_total"`
	Errors           int64   `json:"err_total"`
}

// replicaTopology reports every partition's replica table, keyed by shard id.
func (rt *Router) replicaTopology() map[string][]routerReplicaStatus {
	out := make(map[string][]routerReplicaStatus, len(rt.groups))
	for _, g := range rt.groups {
		sts := make([]routerReplicaStatus, 0, len(g.replicas))
		for _, r := range g.replicas {
			ok, errs := r.breaker.Totals()
			sts = append(sts, routerReplicaStatus{
				URL:              r.url,
				State:            r.breaker.State().String(),
				ConsecutiveFails: r.breaker.Fails(),
				LatencyEWMAms:    float64(r.breaker.EWMA()) / float64(time.Millisecond),
				OK:               ok,
				Errors:           errs,
			})
		}
		out[fmt.Sprintf("%d", g.partition)] = sts
	}
	return out
}
