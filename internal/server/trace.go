package server

import (
	"fmt"
	"net/http"
	"runtime/debug"

	"github.com/tea-graph/tea/internal/trace"
)

// buildVersion resolves the binary's module version for the tea_build_info
// metric; module-unaware builds (go test, go run from a work tree) report
// "devel".
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "devel"
}

// handleTrace serves sampled traces. Without ?id= it lists the retained
// trace IDs; with one it renders that trace as a span tree (default), a
// Chrome trace_event document for chrome://tracing / Perfetto
// (?format=chrome), or JSON lines (?format=jsonl). The trace ID is the
// request's X-Request-ID, so a client that kept its response header can pull
// the matching trace directly.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if !s.tracer.Enabled() {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("tracing disabled; start teaserve with -trace-fraction > 0 or -flight-spans > 0"))
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.TraceIDs()})
		return
	}
	spans, dropped, ok := s.tracer.Trace(id)
	if !ok {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("no sampled trace %q: head sampling may have skipped it (raise -trace-fraction) or it was evicted", id))
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "tree":
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id":      id,
			"span_count":    len(spans),
			"dropped_spans": dropped,
			"spans":         trace.BuildTree(spans),
		})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", "tea-trace-"+id+".json"))
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteChromeTrace(w, spans)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteJSONLines(w, spans)
	default:
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want tree, chrome, or jsonl)", format))
	}
}

// handleFlight dumps the always-on flight recorder: the last N completed
// spans plus recent error/cancel/retry events, available even when head
// sampling retained nothing.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if !s.tracer.Enabled() {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("tracing disabled; start teaserve with -trace-fraction > 0 or -flight-spans > 0"))
		return
	}
	events := s.tracer.Flight()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(events), "events": events})
}
