package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/vfs"
)

// The durable-ingest serving mode: instead of a preprocessed read-only
// engine, the server fronts a stream.DurableGraph — a WAL-backed live graph.
// POST /edges and POST /expire mutate it; GET /walk and GET /stats read it
// (walks run concurrently with ingest); GET /readyz distinguishes "still
// recovering" from "serving". The durable graph arrives asynchronously via
// SetDurable so the listener can bind immediately while recovery replays the
// log — until then every durable endpoint sheds with 503 + Retry-After, and
// after a WAL failure flips the graph into its sticky degraded state, writes
// (but not reads) shed the same way.

// defaultMaxIngestBatch bounds edges per POST /edges request.
const defaultMaxIngestBatch = 100_000

// maxIngestBody bounds the JSON body size accepted by the ingest endpoints;
// generous for a full-size batch, small enough to shrug off abuse.
const maxIngestBody = 16 << 20

// errIngestOnly answers query endpoints that need a preprocessed engine.
var errIngestOnly = errors.New("endpoint unavailable in durable-ingest mode (serving a live stream, not a preprocessed index)")

// errQueryOnly answers ingest endpoints on a read-only query server.
var errQueryOnly = errors.New("server is not in durable-ingest mode (start with -wal-dir to ingest)")

// NewDurable builds a server in durable-ingest mode. The durable graph is
// attached later with SetDurable (typically after crash recovery completes
// in the background); until then /readyz reports recovering and write
// endpoints shed.
func NewDurable(cfg Config) *Server {
	s := NewWithConfig(nil, cfg)
	s.durableMode = true
	return s
}

// SetDurable attaches the recovered durable graph and flips the server
// ready. Safe to call at most once, from any goroutine.
func (s *Server) SetDurable(d *stream.DurableGraph) { s.durable.Store(d) }

// retryUnavailable sheds with 503 + Retry-After, the same contract the load
// shedder uses, so ingest clients back off instead of hammering a server
// that is still replaying its log.
func (s *Server) retryUnavailable(w http.ResponseWriter, err error) {
	s.retryStatus(w, http.StatusServiceUnavailable, err)
}

// retryStatus sheds with an explicit status + Retry-After.
func (s *Server) retryStatus(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeErr(w, status, err)
}

// durableForWrite resolves the durable graph for a mutation, shedding while
// recovering and while degraded. Degradation caused by a full disk is 507
// Insufficient Storage (the truthful status); everything else is 503. Both
// carry Retry-After — the heal loop clears the condition without a restart.
// A nil return means the response was sent.
func (s *Server) durableForWrite(w http.ResponseWriter) *stream.DurableGraph {
	if !s.durableMode {
		writeErr(w, http.StatusNotImplemented, errQueryOnly)
		return nil
	}
	d := s.durable.Load()
	if d == nil {
		s.retryUnavailable(w, errors.New("recovering: WAL replay in progress"))
		return nil
	}
	if err := d.Err(); err != nil {
		s.retryStatus(w, ingestStatus(err), err)
		return nil
	}
	return d
}

// durableForRead resolves the durable graph for a query. Reads are served
// even while degraded (the in-memory graph is intact); only recovery blocks
// them.
func (s *Server) durableForRead(w http.ResponseWriter) *stream.DurableGraph {
	d := s.durable.Load()
	if d == nil {
		s.retryUnavailable(w, errors.New("recovering: WAL replay in progress"))
		return nil
	}
	return d
}

// handleReady implements GET /readyz. An engine-mode server is ready as soon
// as it is constructed; a durable server is ready once recovery has
// completed and SetDurable ran, and reports degraded (still 200 — reads
// work) thereafter if the WAL failed. While recovering, the 503 body carries
// progress (chosen snapshot, segments replayed, records applied) so an
// operator watching a long replay can tell a working recovery from a hung
// one.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.durableMode {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	d := s.durable.Load()
	if d == nil {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		body := map[string]any{"status": "recovering"}
		if p := s.recovering.Load(); p != nil {
			body["snapshot_lsn"] = p.SnapshotLSN
			body["segments_replayed"] = p.SegmentsDone
			body["segments_total"] = p.SegmentsTotal
			body["records_applied"] = p.RecordsApplied
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	ri := d.Recovery()
	status := "ready"
	if d.Err() != nil {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":                   status,
		"recovery_duration":        ri.Duration.String(),
		"recovery_replayed":        ri.Replayed,
		"recovery_snapshot_lsn":    ri.SnapshotLSN,
		"recovery_truncated_bytes": ri.TruncatedBytes,
	})
}

// ingestEdge is the wire form of one edge in a POST /edges batch.
type ingestEdge struct {
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	T   int64  `json:"t"`
}

type ingestRequest struct {
	Edges []ingestEdge `json:"edges"`
}

type ingestResponse struct {
	Appended int   `json:"appended"`
	Edges    int   `json:"edges"`
	Frontier int64 `json:"frontier"`
}

// handleIngestEdges implements POST /edges: a JSON batch of strictly newer
// edges, WAL-logged before it is applied. Non-increasing timestamps are the
// client's bug → 400; an unrecovered or degraded server sheds → 503.
func (s *Server) handleIngestEdges(w http.ResponseWriter, r *http.Request) {
	d := s.durableForWrite(w)
	if d == nil {
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("body: %v", err))
		return
	}
	if len(req.Edges) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Edges) > s.cfg.MaxIngestBatch {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d edges exceeds per-request limit %d", len(req.Edges), s.cfg.MaxIngestBatch))
		return
	}
	edges := make([]temporal.Edge, len(req.Edges))
	for i, e := range req.Edges {
		edges[i] = temporal.Edge{Src: temporal.Vertex(e.Src), Dst: temporal.Vertex(e.Dst), Time: temporal.Time(e.T)}
	}
	if err := d.AppendBatch(edges); err != nil {
		s.writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Appended: len(edges),
		Edges:    d.NumEdges(),
		Frontier: int64(d.Frontier()),
	})
}

type expireResponse struct {
	Dropped int `json:"dropped"`
	Edges   int `json:"edges"`
}

// handleIngestExpire implements POST /expire?before=<t>: drop every edge
// older than the horizon, WAL-logged like any other mutation.
func (s *Server) handleIngestExpire(w http.ResponseWriter, r *http.Request) {
	d := s.durableForWrite(w)
	if d == nil {
		return
	}
	raw := r.URL.Query().Get("before")
	if raw == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing required parameter \"before\""))
		return
	}
	horizon, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parameter \"before\": %v", err))
		return
	}
	dropped, err := d.ExpireBefore(temporal.Time(horizon))
	if err != nil {
		s.writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, expireResponse{Dropped: dropped, Edges: d.NumEdges()})
}

// ingestStatus maps a durable-write error to an HTTP status: client bugs
// (stale timestamps, unknown edges) are 400, a full disk is 507 Insufficient
// Storage, other infrastructure failures are 503.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, stream.ErrStaleBatch), errors.Is(err, stream.ErrEdgeNotFound):
		return http.StatusBadRequest
	case vfs.IsNoSpace(err):
		return http.StatusInsufficientStorage
	case errors.Is(err, stream.ErrDegraded), errors.Is(err, stream.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeIngestErr renders a durable-write failure, attaching Retry-After to
// the retryable statuses (503, 507) so clients back off and retry — the heal
// loop restores the write path without a restart.
func (s *Server) writeIngestErr(w http.ResponseWriter, err error) {
	status := ingestStatus(err)
	if status == http.StatusServiceUnavailable || status == http.StatusInsufficientStorage {
		s.retryStatus(w, status, err)
		return
	}
	writeErr(w, status, err)
}

// handleDurableStats serves GET /stats from the live graph.
func (s *Server) handleDurableStats(w http.ResponseWriter, _ *http.Request) {
	d := s.durableForRead(w)
	if d == nil {
		return
	}
	st := d.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:    st.Vertices,
		Edges:       st.Edges,
		MaxDegree:   st.MaxDegree,
		TimeLo:      int64(st.TimeLo),
		TimeHi:      int64(st.TimeHi),
		Application: "ingest",
		Sampler:     "stream/" + st.Weight,
		IndexBytes:  st.MemoryBytes,
	})
}

// handleDurableWalk serves GET /walk from the live graph: seeded temporal
// walks under the read lock, concurrent with ingest.
func (s *Server) handleDurableWalk(w http.ResponseWriter, r *http.Request) {
	d := s.durableForRead(w)
	if d == nil {
		return
	}
	from, err := vertexParam(r, "from", d.NumVertices())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	length, err := intParam(r, "length", 80)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	count, err := intParam(r, "count", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if length <= 0 || count <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length and count must be positive"))
		return
	}
	if length > s.cfg.MaxWalkLength {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length %d exceeds per-request limit %d", length, s.cfg.MaxWalkLength))
		return
	}
	if count > s.cfg.MaxWalkCount {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("count %d exceeds per-request limit %d", count, s.cfg.MaxWalkCount))
		return
	}
	start, err := int64Param(r, "start", int64(temporal.MinTime))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := walkResponse{From: from, Cost: map[string]string{}}
	began := time.Now()
	steps := 0
	for i := 0; i < count; i++ {
		verts, times := d.WalkSeeded(from, temporal.Time(start), length, uint64(seed)+uint64(i))
		hops := make([]walkHop, len(verts))
		for j, v := range verts {
			hops[j] = walkHop{Vertex: v}
			if j > 0 {
				t := int64(times[j-1])
				hops[j].Time = &t
			}
		}
		steps += len(times)
		out.Walks = append(out.Walks, hops)
	}
	out.Cost["steps"] = strconv.Itoa(steps)
	out.Cost["duration"] = time.Since(began).String()
	writeJSON(w, http.StatusOK, out)
}
