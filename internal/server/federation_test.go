package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/trace"
)

// newObsCluster builds a 3-shard cluster where every shard has its own
// metrics registry and instance identity — the multi-process layout the
// observability plane is built for, minus the sockets.
func newObsCluster(t *testing.T, g *temporal.Graph, spec sampling.WeightSpec, parts int) ([]*httptest.Server, []*metrics.Registry) {
	t.Helper()
	nodes := make([]*shard.Node, parts)
	for i := 0; i < parts; i++ {
		n, err := shard.NewNode(g, spec, shard.Config{
			ShardID: i, Partitions: parts, Kernel: core.KernelBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	caller := &shard.InProcess{Nodes: nodes}
	servers := make([]*httptest.Server, parts)
	regs := make([]*metrics.Registry, parts)
	for i := 0; i < parts; i++ {
		regs[i] = metrics.NewRegistry()
		ts := httptest.NewServer(NewShard(nodes[i], caller, Config{
			Metrics:  regs[i],
			Instance: fmt.Sprintf("shard-%d", i),
			ShardID:  i,
		}).Handler())
		t.Cleanup(ts.Close)
		servers[i] = ts
	}
	return servers, regs
}

func findCounterSnap(t *testing.T, snap *metrics.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in federated snapshot", name)
	return 0
}

// The federation invariant end to end: the router's shard="all" rollup of a
// counter equals the sum of the per-shard labeled series, which equals what
// each shard's own registry holds.
func TestFederatedMetricsRollup(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 61)
	spec := sampling.Exponential(0.01)
	servers, regs := newObsCluster(t, g, spec, 3)
	router := newShardRouter(t, servers, RouterConfig{Metrics: metrics.NewRegistry()})

	const requests = 3
	for i := 0; i < requests; i++ {
		var out walkResponse
		getJSON(t, router.URL+fmt.Sprintf("/walk?from=%d&length=10&count=4&seed=%d", 7+i, i+1), http.StatusOK, &out)
	}

	var fed metrics.Snapshot
	resp, err := http.Get(router.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("federated /metrics.json Cache-Control %q, want no-store", resp.Header.Get("Cache-Control"))
	}
	if err := json.NewDecoder(resp.Body).Decode(&fed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	const family = `tea_server_requests_total{endpoint="walk"`
	var perShardSum int64
	for i := range servers {
		v := findCounterSnap(t, &fed, family+`,shard="`+strconv.Itoa(i)+`"}`)
		// The federated copy must equal the shard's own registry: federation
		// relabels, it must not re-aggregate per-shard values.
		want := regs[i].Snapshot()
		if own := findCounterSnap(t, want, family+`}`); own != v {
			t.Fatalf("shard %d federated value %d != shard's own %d", i, v, own)
		}
		if v != requests { // every fan-out hits every shard once
			t.Fatalf("shard %d walk requests %d, want %d", i, v, requests)
		}
		perShardSum += v
	}
	if all := findCounterSnap(t, &fed, family+`,shard="all"}`); all != perShardSum {
		t.Fatalf(`shard="all" rollup %d != per-shard sum %d`, all, perShardSum)
	}
	// The router's own series passes through unlabeled.
	if own := findCounterSnap(t, &fed, family+`}`); own != requests {
		t.Fatalf("router's own walk requests %d, want %d", own, requests)
	}

	// The Prometheus rendering federates the same way.
	resp, err = http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(text), `tea_server_requests_total{endpoint="walk",shard="all"} `+strconv.FormatInt(perShardSum, 10)) {
		t.Fatalf("prometheus exposition missing the shard=\"all\" rollup:\n%s", text)
	}
	// Build info stays per-shard: a summed build_info means nothing.
	if strings.Contains(string(text), `tea_build_info{`+`shard="all"`) {
		t.Fatal("build_info must not be rolled up")
	}
	if !strings.Contains(string(text), `instance="shard-1"`) {
		t.Fatal("per-shard build_info lost its instance label in federation")
	}
}

// A dead shard must fail the scrape loudly: 503 with Retry-After and
// no-store, never a silently partial federation.
func TestFederatedMetricsShardDown(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1200, 300, 17)
	servers, _ := newObsCluster(t, g, sampling.WeightSpec{}, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	router := newShardRouter(t, []*httptest.Server{servers[0]}, RouterConfig{
		Shards:  []string{dead.URL},
		Metrics: metrics.NewRegistry(),
	})

	for _, path := range []string{"/metrics", "/metrics.json"} {
		resp, err := http.Get(router.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s with dead shard: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Cache-Control") != "no-store" {
			t.Fatalf("%s 503 missing Cache-Control: no-store", path)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s 503 missing Retry-After", path)
		}
	}
}

// Cluster health rolls up shard /healthz: all ok → 200 ok; a dead shard →
// 503 degraded naming it, with Retry-After and no-store — the router never
// answers a 200 lie over a dead shard.
func TestRouterHealthRollup(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1200, 300, 19)
	servers, _ := newObsCluster(t, g, sampling.WeightSpec{}, 3)
	router := newShardRouter(t, servers, RouterConfig{Metrics: metrics.NewRegistry()})

	resp, err := http.Get(router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var healthy struct {
		Status string                    `json:"status"`
		Shards map[string]map[string]any `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&healthy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || healthy.Status != "ok" {
		t.Fatalf("healthy cluster: %d %q", resp.StatusCode, healthy.Status)
	}
	if len(healthy.Shards) != 3 {
		t.Fatalf("rollup names %d shards, want 3", len(healthy.Shards))
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	degradedRouter := newShardRouter(t, servers[:2], RouterConfig{
		Shards:  []string{dead.URL},
		Metrics: metrics.NewRegistry(),
	})
	resp, err = http.Get(degradedRouter.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var degraded struct {
		Status string                    `json:"status"`
		Shards map[string]map[string]any `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&degraded); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || degraded.Status != "degraded" {
		t.Fatalf("dead shard: %d %q, want 503 degraded", resp.StatusCode, degraded.Status)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatal("degraded /healthz missing Retry-After or no-store")
	}
	// The dead shard (listed first, so id 0) is named as down; the live ones
	// keep their own bodies.
	if st, _ := degraded.Shards["0"]["status"].(string); st != "down" {
		t.Fatalf("dead shard reported %q, want down", st)
	}
	if st, _ := degraded.Shards["1"]["status"].(string); st != "ok" {
		t.Fatalf("live shard reported %q, want ok", st)
	}
}

// The per-request cost block is consistent across deployment shapes: the
// routed cluster's merged cost_detail reports the same steps and edges as a
// single process running the identical query, and its per-shard split sums
// to the total.
func TestRouterCostDetailMatchesSingleProcess(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 61)
	spec := sampling.Exponential(0.01)
	eng, err := core.NewEngine(g, core.App{Name: "test", Weight: spec}, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(New(eng).Handler())
	t.Cleanup(single.Close)
	servers, _ := newObsCluster(t, g, spec, 3)
	router := newShardRouter(t, servers, RouterConfig{Metrics: metrics.NewRegistry()})

	const q = "/walk?from=7&length=20&count=6&seed=9&cost=1"
	var want, got walkResponse
	getJSON(t, single.URL+q, http.StatusOK, &want)
	getJSON(t, router.URL+q, http.StatusOK, &got)

	if want.CostDetail == nil || got.CostDetail == nil {
		t.Fatalf("cost=1 produced no cost_detail: single=%v routed=%v", want.CostDetail, got.CostDetail)
	}
	if want.CostDetail.Steps == 0 {
		t.Fatal("single-process cost_detail has zero steps")
	}
	if got.CostDetail.Steps != want.CostDetail.Steps {
		t.Fatalf("routed steps %d != single-process %d", got.CostDetail.Steps, want.CostDetail.Steps)
	}
	if got.CostDetail.EdgesEvaluated != want.CostDetail.EdgesEvaluated {
		t.Fatalf("routed edges %d != single-process %d", got.CostDetail.EdgesEvaluated, want.CostDetail.EdgesEvaluated)
	}
	if len(got.CostDetail.Shards) != 3 {
		t.Fatalf("per-shard split has %d entries, want 3", len(got.CostDetail.Shards))
	}
	var split reqcost.Cost
	for _, sc := range got.CostDetail.Shards {
		split.Add(*sc)
	}
	if split.Steps != got.CostDetail.Steps || split.EdgesEvaluated != got.CostDetail.EdgesEvaluated {
		t.Fatalf("per-shard split (%d steps, %d edges) does not sum to the total (%d, %d)",
			split.Steps, split.EdgesEvaluated, got.CostDetail.Steps, got.CostDetail.EdgesEvaluated)
	}
	if want.CostDetail.Shards != nil {
		t.Fatal("single-process cost_detail must not carry a shard split")
	}
}

// One sampled X-Request-ID yields ONE downloadable Chrome trace containing
// spans from the router and from every shard process — the cross-process
// trace assembly tentpole end to end.
func TestRouterTraceAssembly(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 61)
	spec := sampling.Exponential(0.01)
	servers, _ := newObsCluster(t, g, spec, 3)
	tracer := trace.New(trace.Config{SampleFraction: 1, Instance: "router", Shard: -1})
	router := newShardRouter(t, servers, RouterConfig{
		Metrics: metrics.NewRegistry(),
		Trace:   tracer,
	})

	const reqID = "obs-e2e-trace-1"
	req, err := http.NewRequest(http.MethodGet, router.URL+"/walk?from=7&length=20&count=6&seed=9", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("walk status %d", resp.StatusCode)
	}

	resp, err = http.Get(router.URL + "/debug/tea/trace?id=" + reqID + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download status %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, reqID) {
		t.Fatalf("Content-Disposition %q does not name the request", cd)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	// Per process: pid 1 is the router, pid shard+2 each shard. The assembled
	// trace must contain the router's fan-out and every shard's run summary.
	spansByPID := map[int][]string{}
	processNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			processNames[ev.PID], _ = ev.Args["name"].(string)
			continue
		}
		spansByPID[ev.PID] = append(spansByPID[ev.PID], ev.Name)
	}
	if !containsStr(spansByPID[1], "server.request") || !containsStr(spansByPID[1], "router.fanout") {
		t.Fatalf("router process (pid 1) spans %v missing request/fanout", spansByPID[1])
	}
	for sh := 0; sh < 3; sh++ {
		pid := sh + 2
		if !containsStr(spansByPID[pid], "shard.run") {
			t.Fatalf("shard %d process (pid %d) contributed no shard.run span: %v", sh, pid, spansByPID[pid])
		}
		if want := fmt.Sprintf("shard-%d", sh); processNames[pid] != want {
			t.Fatalf("pid %d named %q, want %q", pid, processNames[pid], want)
		}
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// The router's /debug/tea/top records the fanned request with the merged
// cluster cost, so "what was expensive" is answerable at the front door.
func TestRouterTopCarriesClusterCost(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 61)
	spec := sampling.Exponential(0.01)
	servers, _ := newObsCluster(t, g, spec, 3)
	router := newShardRouter(t, servers, RouterConfig{Metrics: metrics.NewRegistry()})

	var out walkResponse
	getJSON(t, router.URL+"/walk?from=7&length=20&count=6&seed=9&cost=1", http.StatusOK, &out)

	var top struct {
		Top []reqcost.Record `json:"top"`
	}
	getJSON(t, router.URL+"/debug/tea/top", http.StatusOK, &top)
	for _, rec := range top.Top {
		if rec.Endpoint == "walk" {
			if rec.Cost.Steps != out.CostDetail.Steps {
				t.Fatalf("top record steps %d != merged cost %d", rec.Cost.Steps, out.CostDetail.Steps)
			}
			return
		}
	}
	t.Fatalf("no walk record in router top ring: %+v", top.Top)
}
