// Shard mode: the HTTP face of one internal/shard node. A ShardServer serves
// the same GET /walk surface as the single-process server, but answers only
// with the walks whose source vertex its shard owns — walk ids are positions
// in the global walk list, so a stateless Router (router.go) can merge the
// partial responses of every shard into exactly the single-process response.
//
// Failure semantics: a peer shard going down mid-walk surfaces as a
// *wire.PeerError from the coordinator, which maps to 503 + Retry-After here
// (the cluster is incomplete; the client should retry once the peer is back),
// while deliberate refusals (*wire.RemoteError, e.g. a cluster-config
// mismatch) are 500s — retrying cannot fix a misconfigured cluster.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
)

// errShardMode is returned by endpoints that need the whole graph resident
// (PPR's visit accounting, reachability's BFS) and so are not served by one
// shard.
var errShardMode = errors.New("endpoint not available in shard mode; use a single-process teaserve")

// ShardServer is the HTTP handler of one shard process: /walk runs the
// scatter-gather coordinator over this node's share of the request, /stats
// describes the partition, and the operational endpoints (health, metrics,
// tracing) are the regular server's.
type ShardServer struct {
	base   *Server // instrumentation + ops endpoints; its own mux is never served
	node   *shard.Node
	caller shard.StepCaller
	mux    *http.ServeMux
}

// NewShard builds the HTTP server for one shard node. caller delivers step
// batches to peer shards (shard.Peers over TCP in production, shard.InProcess
// in tests); cfg carries the same operational limits as the single-process
// server.
func NewShard(node *shard.Node, caller shard.StepCaller, cfg Config) *ShardServer {
	base := NewWithConfig(nil, cfg)
	ss := &ShardServer{base: base, node: node, caller: caller, mux: http.NewServeMux()}
	ss.mux.HandleFunc("GET /healthz", base.instrument("healthz", ss.handleHealth))
	ss.mux.HandleFunc("GET /readyz", base.instrument("readyz", base.handleReady))
	ss.mux.HandleFunc("GET /stats", base.instrument("stats", ss.handleStats))
	ss.mux.HandleFunc("GET /walk", base.instrument("walk", base.limited(ss.handleWalk)))
	ss.mux.HandleFunc("GET /ppr", base.instrument("ppr", ss.handleUnavailable))
	ss.mux.HandleFunc("GET /reach", base.instrument("reach", ss.handleUnavailable))
	ss.mux.HandleFunc("GET /metrics", base.handleMetrics)
	ss.mux.HandleFunc("GET /metrics.json", base.handleMetricsJSON)
	ss.mux.HandleFunc("GET /debug/tea/trace", base.handleTrace)
	ss.mux.HandleFunc("GET /debug/tea/flight", base.handleFlight)
	ss.mux.HandleFunc("GET /debug/tea/top", base.handleTop)
	return ss
}

// Handler returns the routable HTTP handler.
func (ss *ShardServer) Handler() http.Handler { return ss.mux }

// peerSnapshotter is implemented by step callers that keep a health-aware
// replica table (shard.Peers, shard.ReplicaPeers).
type peerSnapshotter interface {
	Snapshot() map[int][]shard.ReplicaStatus
}

// handleHealth is the single-process /healthz plus, when the step caller
// keeps one, this shard's local view of every peer partition's replicas:
// breaker state, consecutive failures, latency EWMA, open connections. The
// view is per-process by design — each shard's breakers see their own
// traffic — so comparing /healthz across shards localizes asymmetric
// network trouble.
func (ss *ShardServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	ps, ok := ss.caller.(peerSnapshotter)
	if !ok {
		ss.base.handleHealth(w, r)
		return
	}
	peers := map[string][]shard.ReplicaStatus{}
	for id, sts := range ps.Snapshot() {
		peers[strconv.Itoa(id)] = sts
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "shard": ss.node.ShardID(), "peers": peers,
	})
}

// shardWalkResponse is one shard's partial answer to a /walk: the walks whose
// global walk ids this shard coordinated, parallel to WalkIDs. The router
// merges these by walk id into the plain walkResponse shape.
type shardWalkResponse struct {
	From       temporal.Vertex   `json:"from"`
	Shard      int               `json:"shard"`
	Partitions int               `json:"partitions"`
	WalkIDs    []int             `json:"walk_ids"`
	Walks      [][]walkHop       `json:"walks"`
	Cost       map[string]string `json:"cost"`
	// CostDetail is this shard's share of the request's resource consumption,
	// present when the request carried ?cost=1; the router merges the shares
	// into the assembled response's cost_detail with a per-shard split.
	CostDetail *reqcost.Cost `json:"cost_detail,omitempty"`
	// Spans carries compact span summaries (this shard's run/hop timings plus
	// whatever peers shipped on step responses) when the request was sampled
	// upstream; the router injects them into its tracer so one X-Request-ID
	// yields one cross-process trace.
	Spans []wire.SpanSummary `json:"spans,omitempty"`
}

func (ss *ShardServer) handleWalk(w http.ResponseWriter, r *http.Request) {
	from, err := vertexParam(r, "from", ss.node.NumVertices())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	length, err := intParam(r, "length", 80)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	count, err := intParam(r, "count", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if length <= 0 || count <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length and count must be positive"))
		return
	}
	if length > ss.base.cfg.MaxWalkLength {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length %d exceeds per-request limit %d", length, ss.base.cfg.MaxWalkLength))
		return
	}
	if count > ss.base.cfg.MaxWalkCount {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("count %d exceeds per-request limit %d", count, ss.base.cfg.MaxWalkCount))
		return
	}
	res, err := ss.node.RunWalks(r.Context(), ss.caller, shard.WalkRequest{
		Sources:        []temporal.Vertex{from},
		WalksPerVertex: count,
		Length:         length,
		Seed:           uint64(seed),
		KeepPaths:      true,
		RequestID:      trace.RequestID(r.Context()),
		CollectSpans:   r.Header.Get("X-Trace-Sampled") == "1",
	})
	if err != nil {
		ss.writeRunErr(w, err)
		return
	}
	rc := reqcost.From(r.Context())
	rc.AddEngine(res.Cost)
	out := shardWalkResponse{
		From:       from,
		Shard:      ss.node.ShardID(),
		Partitions: ss.node.Partitions(),
		WalkIDs:    res.WalkIDs,
		Walks:      make([][]walkHop, 0, len(res.Paths)),
		Cost: map[string]string{
			"steps":           strconv.FormatInt(res.Cost.Steps, 10),
			"edges_evaluated": strconv.FormatInt(res.Cost.EdgesEvaluated, 10),
			"duration":        res.Duration.String(),
			"rounds":          strconv.Itoa(res.Rounds),
			"migrations":      strconv.FormatInt(res.Migrations, 10),
			"frames":          strconv.FormatInt(res.Frames, 10),
			"local_steps":     strconv.FormatInt(res.LocalSteps, 10),
			"bytes_sent":      strconv.FormatInt(res.BytesSent, 10),
		},
	}
	if out.WalkIDs == nil {
		out.WalkIDs = []int{} // "no walks owned" renders as [], not null
	}
	out.Spans = res.Spans
	if r.URL.Query().Get("cost") == "1" && rc != nil {
		detail := rc.Snapshot()
		detail.WallMicros = res.Duration.Microseconds()
		out.CostDetail = &detail
	}
	for _, p := range res.Paths {
		hops := make([]walkHop, len(p.Vertices))
		for i, v := range p.Vertices {
			hops[i] = walkHop{Vertex: v}
			if i > 0 {
				t := int64(p.Times[i-1])
				hops[i].Time = &t
			}
		}
		out.Walks = append(out.Walks, hops)
	}
	writeJSON(w, http.StatusOK, out)
}

// writeRunErr maps a coordinator error onto HTTP: a transient peer failure is
// 503 + Retry-After (the shard itself is healthy; the cluster is momentarily
// incomplete), everything else follows the single-process mapping.
func (ss *ShardServer) writeRunErr(w http.ResponseWriter, err error) {
	var pe *wire.PeerError
	if errors.As(err, &pe) {
		w.Header().Set("Retry-After", retryAfterSecs(ss.base.cfg.RetryAfter))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeErr(w, runStatus(err), err)
}

type shardStatsResponse struct {
	Shard      int   `json:"shard"`
	Partitions int   `json:"partitions"`
	Vertices   int   `json:"vertices"`
	OwnedEdges int   `json:"owned_edges"`
	IndexBytes int64 `json:"index_bytes"`
}

func (ss *ShardServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, shardStatsResponse{
		Shard:      ss.node.ShardID(),
		Partitions: ss.node.Partitions(),
		Vertices:   ss.node.NumVertices(),
		OwnedEdges: ss.node.OwnedEdges(),
		IndexBytes: ss.node.MemoryBytes(),
	})
}

func (ss *ShardServer) handleUnavailable(w http.ResponseWriter, _ *http.Request) {
	writeErr(w, http.StatusNotImplemented, errShardMode)
}

// retryAfterSecs renders a Retry-After duration in whole seconds, rounded up
// so the emitted header is never "0".
func retryAfterSecs(d time.Duration) string {
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}
