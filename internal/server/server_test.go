package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Fatalf("health: %v", out)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	var out statsResponse
	getJSON(t, ts.URL+"/stats", http.StatusOK, &out)
	if out.Vertices != 10 || out.Edges != 10 || out.MaxDegree != 7 {
		t.Fatalf("stats: %+v", out)
	}
	if out.Sampler == "" || out.Application == "" || out.IndexBytes <= 0 {
		t.Fatalf("stats missing engine info: %+v", out)
	}
}

func TestWalkEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out walkResponse
	getJSON(t, ts.URL+"/walk?from=9&length=3&count=5&seed=2", http.StatusOK, &out)
	if out.From != 9 || len(out.Walks) != 5 {
		t.Fatalf("walk response: from=%d walks=%d", out.From, len(out.Walks))
	}
	for _, walk := range out.Walks {
		if walk[0].Vertex != 9 || walk[0].Time != nil {
			t.Fatalf("walk start wrong: %+v", walk[0])
		}
		var last int64 = -1 << 62
		for _, hop := range walk[1:] {
			if hop.Time == nil {
				t.Fatal("missing hop time")
			}
			if *hop.Time <= last {
				t.Fatalf("non-increasing times in %+v", walk)
			}
			last = *hop.Time
		}
	}
	if out.Cost["steps"] == "" {
		t.Fatal("missing cost")
	}
}

func TestWalkDeterministicAcrossRequests(t *testing.T) {
	ts := newTestServer(t)
	var a, b walkResponse
	getJSON(t, ts.URL+"/walk?from=8&length=4&count=3&seed=7", http.StatusOK, &a)
	getJSON(t, ts.URL+"/walk?from=8&length=4&count=3&seed=7", http.StatusOK, &b)
	aj, _ := json.Marshal(a.Walks)
	bj, _ := json.Marshal(b.Walks)
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different walks")
	}
}

func TestWalkValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{
		"/walk",                     // missing from
		"/walk?from=99",             // out of range
		"/walk?from=x",              // unparsable
		"/walk?from=1&length=0",     // bad length
		"/walk?from=1&count=999999", // over limit
	} {
		var out map[string]string
		getJSON(t, ts.URL+q, http.StatusBadRequest, &out)
		if out["error"] == "" {
			t.Fatalf("%s: no error message", q)
		}
	}
}

func TestPPREndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out pprResponse
	getJSON(t, ts.URL+"/ppr?from=9&walks=5000&topk=3&seed=4", http.StatusOK, &out)
	if out.From != 9 || len(out.Scores) == 0 || len(out.Scores) > 3 {
		t.Fatalf("ppr: %+v", out)
	}
	if out.Scores[0].Vertex != 9 {
		t.Fatalf("ppr top = %d, want source", out.Scores[0].Vertex)
	}
	var bad map[string]string
	getJSON(t, ts.URL+"/ppr?from=9&walks=0", http.StatusBadRequest, &bad)
}

func TestReachEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out reachResponse
	getJSON(t, ts.URL+"/reach?from=9", http.StatusOK, &out)
	want := []temporal.Vertex{4, 5, 6, 7}
	if out.Count != 4 || len(out.Reachable) != 4 {
		t.Fatalf("reach: %+v", out)
	}
	for i, v := range want {
		if out.Reachable[i] != v {
			t.Fatalf("reach set %v, want %v", out.Reachable, want)
		}
	}
	// With after=4 the 9->7 edge is gone.
	getJSON(t, ts.URL+"/reach?from=9&after=4", http.StatusOK, &out)
	if out.Count != 0 {
		t.Fatalf("reach after=4: %+v", out)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/walk?from=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
}
