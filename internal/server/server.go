// Package server exposes a walk engine over HTTP: walk sampling, temporal
// personalized PageRank, and temporal reachability queries as JSON
// endpoints. cmd/teaserve wires it to a listening socket; the handler is
// usable under any http.Server (or httptest) directly.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/tea-graph/tea/internal/apps"
	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
)

// maxWalksPerRequest bounds one /walk request.
const maxWalksPerRequest = 10000

// maxPPRWalks bounds one /ppr request.
const maxPPRWalks = 1_000_000

// Server answers walk queries for one engine. Engines are safe for
// concurrent Run calls, so the handler needs no locking.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
}

// New builds a server around a preprocessed engine.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /walk", s.handleWalk)
	s.mux.HandleFunc("GET /ppr", s.handlePPR)
	s.mux.HandleFunc("GET /reach", s.handleReach)
	return s
}

// Handler returns the routable HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	MaxDegree   int    `json:"max_degree"`
	TimeLo      int64  `json:"time_min"`
	TimeHi      int64  `json:"time_max"`
	Application string `json:"application"`
	Sampler     string `json:"sampler"`
	IndexBytes  int64  `json:"index_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.eng.Graph()
	lo, hi := g.TimeRange()
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
		TimeLo:      int64(lo),
		TimeHi:      int64(hi),
		Application: s.eng.App().Name,
		Sampler:     s.eng.Sampler().Name(),
		IndexBytes:  s.eng.MemoryBytes(),
	})
}

type walkResponse struct {
	From  temporal.Vertex   `json:"from"`
	Walks [][]walkHop       `json:"walks"`
	Cost  map[string]string `json:"cost"`
}

type walkHop struct {
	Vertex temporal.Vertex `json:"v"`
	Time   *int64          `json:"t,omitempty"` // nil for the start vertex
}

func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) {
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, err)
		return
	}
	length := intParam(r, "length", 80)
	count := intParam(r, "count", 1)
	seed := uint64(intParam(r, "seed", 1))
	if length <= 0 || count <= 0 {
		writeErr(w, fmt.Errorf("length and count must be positive"))
		return
	}
	if count > maxWalksPerRequest {
		writeErr(w, fmt.Errorf("count %d exceeds per-request limit %d", count, maxWalksPerRequest))
		return
	}
	res, err := s.eng.Run(core.WalkConfig{
		WalksPerVertex: count,
		Length:         length,
		StartVertices:  []temporal.Vertex{from},
		Seed:           seed,
		KeepPaths:      true,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	out := walkResponse{From: from, Cost: map[string]string{
		"steps":          strconv.FormatInt(res.Cost.Steps, 10),
		"edges_per_step": fmt.Sprintf("%.2f", res.Cost.EdgesPerStep()),
		"duration":       res.Duration.String(),
	}}
	for _, p := range res.Paths {
		hops := make([]walkHop, len(p.Vertices))
		for i, v := range p.Vertices {
			hops[i] = walkHop{Vertex: v}
			if i > 0 {
				t := int64(p.Times[i-1])
				hops[i].Time = &t
			}
		}
		out.Walks = append(out.Walks, hops)
	}
	writeJSON(w, http.StatusOK, out)
}

type pprResponse struct {
	From   temporal.Vertex `json:"from"`
	Alpha  float64         `json:"alpha"`
	Scores []apps.PPRScore `json:"scores"`
}

func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, err)
		return
	}
	walks := intParam(r, "walks", 10000)
	if walks <= 0 || walks > maxPPRWalks {
		writeErr(w, fmt.Errorf("walks must be in (0, %d]", maxPPRWalks))
		return
	}
	alpha := floatParam(r, "alpha", 0.15)
	topK := intParam(r, "topk", 20)
	scores, err := apps.TemporalPPR(s.eng, from, apps.PPRConfig{
		Alpha: alpha,
		Walks: walks,
		Seed:  uint64(intParam(r, "seed", 1)),
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(scores) > topK {
		scores = scores[:topK]
	}
	writeJSON(w, http.StatusOK, pprResponse{From: from, Alpha: alpha, Scores: scores})
}

type reachResponse struct {
	From      temporal.Vertex   `json:"from"`
	After     int64             `json:"after"`
	Count     int               `json:"count"`
	Reachable []temporal.Vertex `json:"reachable"`
	Truncated bool              `json:"truncated,omitempty"`
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, err)
		return
	}
	after := int64Param(r, "after", int64(temporal.MinTime))
	set := apps.ReachableSet(s.eng.Graph(), from, temporal.Time(after))
	out := reachResponse{From: from, After: after, Count: len(set), Reachable: set}
	const cap = 10000
	if len(out.Reachable) > cap {
		out.Reachable = out.Reachable[:cap]
		out.Truncated = true
	}
	writeJSON(w, http.StatusOK, out)
}

func vertexParam(r *http.Request, name string, numVertices int) (temporal.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if int(id) >= numVertices {
		return 0, fmt.Errorf("vertex %d outside graph with %d vertices", id, numVertices)
	}
	return temporal.Vertex(id), nil
}

func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return v
}

func int64Param(r *http.Request, name string, def int64) int64 {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return def
	}
	return v
}

func floatParam(r *http.Request, name string, def float64) float64 {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return def
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}
