// Package server exposes a walk engine over HTTP: walk sampling, temporal
// personalized PageRank, and temporal reachability queries as JSON
// endpoints. cmd/teaserve wires it to a listening socket; the handler is
// usable under any http.Server (or httptest) directly.
//
// The server is built for operation under load: every query runs under the
// request's context (client disconnects abort in-flight walks), an optional
// per-request timeout bounds the worst-case query, and an optional
// max-in-flight semaphore sheds excess load with 503 + Retry-After instead
// of queueing unboundedly. All errors are structured JSON ({"error": "..."})
// with meaningful status codes: 400 for malformed or out-of-range
// parameters, 503 when shedding, 504 when the per-request deadline fires.
// Client-supplied sizing parameters (length, count, walks, topk) are capped
// (Config-overridable) and rejected with 400 beyond the cap, before any
// proportional allocation happens.
//
// Every endpoint is instrumented: request counts, status-class counts, and
// latency histograms per endpoint, plus an in-flight gauge and shed/timeout
// counters, all published to a metrics.Registry (metrics.Default unless
// overridden) and exposed at GET /metrics (Prometheus text exposition
// format) and GET /metrics.json.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/apps"
	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/scrub"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
)

// Default caps on client-supplied sizing parameters; all are overridable via
// Config. Beyond a cap the request is rejected with 400 before any allocation
// happens — an unbounded length would otherwise make the engine allocate a
// Length-sized histogram per run (length=2000000000 is a ~16 GB allocation).
const (
	// defaultMaxWalksPerRequest bounds count on one /walk request.
	defaultMaxWalksPerRequest = 10000
	// defaultMaxWalkLength bounds length on one /walk request.
	defaultMaxWalkLength = 10000
	// defaultMaxPPRWalks bounds walks on one /ppr request.
	defaultMaxPPRWalks = 1_000_000
	// defaultMaxTopK bounds topk on one /ppr request.
	defaultMaxTopK = 10000
)

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was produced. The response is unlikely to be
// seen, but the code keeps logs and tests unambiguous.
const statusClientClosedRequest = 499

// Config tunes the server's operational behavior. The zero value imposes no
// timeout and no concurrency limit, matching the pre-robustness behavior.
type Config struct {
	// RequestTimeout bounds one query's computation; 0 disables.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing walk queries; excess requests
	// are shed with 503 + Retry-After. 0 means unlimited.
	MaxInFlight int
	// RetryAfter is the Retry-After hint attached to shed requests.
	// NewWithConfig defaults non-positive values to 1s so the emitted
	// header is never "0" (which clients read as "retry immediately").
	RetryAfter time.Duration

	// MaxWalkLength caps the length parameter of /walk; 0 means the
	// default (10000). Requests beyond the cap get 400.
	MaxWalkLength int
	// MaxWalkCount caps the count parameter of /walk; 0 means the
	// default (10000).
	MaxWalkCount int
	// MaxPPRWalks caps the walks parameter of /ppr; 0 means the default
	// (1000000).
	MaxPPRWalks int
	// MaxTopK caps the topk parameter of /ppr; 0 means the default (10000).
	MaxTopK int
	// MaxIngestBatch caps the number of edges one POST /edges may carry;
	// 0 means the default (100000). Only meaningful in durable-ingest mode.
	MaxIngestBatch int

	// Instance names this process in its observability output ("router",
	// "shard-2"): tea_build_info gains an instance label, spans are stamped
	// with it (via the tracer's own Config), and the logger carries it on
	// every record. Empty leaves everything unlabeled — without it, series
	// and spans merged from two shards are indistinguishable.
	Instance string
	// ShardID is the shard this process serves, stamped alongside Instance;
	// negative (or Instance empty) means the process serves no shard.
	ShardID int

	// SlowRequestThreshold, when positive, emits one structured warn record
	// (with the request's full cost breakdown) for every request slower than
	// it. 0 disables the slow-request log.
	SlowRequestThreshold time.Duration
	// TopRequests sizes the /debug/tea/top ring of recent requests; 0 means
	// 256.
	TopRequests int

	// Metrics receives the server's operational metrics and backs the
	// /metrics and /metrics.json endpoints; nil means metrics.Default (so
	// engine and out-of-core families rendered there too).
	Metrics *metrics.Registry

	// Trace, when non-nil and enabled, correlates requests end to end: every
	// request gets (or keeps) an X-Request-ID, a "server.request" root span
	// opens under that ID, and GET /debug/tea/trace + /debug/tea/flight
	// expose sampled traces and the flight recorder. A nil tracer costs one
	// ID mint per request and nothing else.
	Trace *trace.Tracer
	// Logger, when non-nil, receives one structured record per request with
	// endpoint, status, and latency; request and trace IDs ride along when
	// the handler chain is wrapped with trace.NewLogHandler.
	Logger *slog.Logger
}

// Server answers walk queries for one engine. Engines are safe for
// concurrent Run calls, so the handler needs no locking.
type Server struct {
	eng      *core.Engine
	mux      *http.ServeMux
	cfg      Config
	inflight chan struct{}
	metrics  *metrics.Registry
	tracer   *trace.Tracer
	logger   *slog.Logger
	started  time.Time

	inflightGauge *metrics.Gauge
	shedTotal     *metrics.Counter
	timeoutTotal  *metrics.Counter
	uptime        *metrics.Gauge

	// top retains the most recent completed requests with their cost
	// breakdowns for GET /debug/tea/top.
	top *reqcost.Top

	// prepWalk, when non-nil, may adjust the WalkConfig before a /walk run
	// starts. Test seam: lets tests install a Visitor to observe and pace
	// in-flight runs.
	prepWalk func(*core.WalkConfig)

	// durableMode switches the server to live-ingest serving: queries hit the
	// durable streaming graph instead of a preprocessed engine, and the
	// ingest endpoints (POST /edges, POST /expire) accept writes. durable is
	// nil until recovery completes — handlers answer 503 + Retry-After until
	// SetDurable is called (see ingest.go).
	durableMode bool
	durable     atomic.Pointer[stream.DurableGraph]

	// recovering, while durable is nil, holds the latest recovery progress
	// so /readyz can report how far replay has come instead of a bare 503.
	recovering atomic.Pointer[stream.RecoveryProgress]

	// scrubber, when set, feeds storage health into /healthz: damage found
	// by a background integrity pass flips the body to "degraded".
	scrubber atomic.Pointer[scrub.Scrubber]
}

// SetScrubber attaches a background integrity scrubber whose damage map is
// reported on /healthz. Safe from any goroutine.
func (s *Server) SetScrubber(sc *scrub.Scrubber) { s.scrubber.Store(sc) }

// ReportRecoveryProgress publishes recovery progress for /readyz while the
// durable graph is still replaying its log (wire it as the Progress callback
// of stream.DurableConfig). Safe from any goroutine.
func (s *Server) ReportRecoveryProgress(p stream.RecoveryProgress) { s.recovering.Store(&p) }

// New builds a server around a preprocessed engine with default Config.
func New(eng *core.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a server with explicit operational limits.
func NewWithConfig(eng *core.Engine, cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxWalkLength <= 0 {
		cfg.MaxWalkLength = defaultMaxWalkLength
	}
	if cfg.MaxWalkCount <= 0 {
		cfg.MaxWalkCount = defaultMaxWalksPerRequest
	}
	if cfg.MaxPPRWalks <= 0 {
		cfg.MaxPPRWalks = defaultMaxPPRWalks
	}
	if cfg.MaxTopK <= 0 {
		cfg.MaxTopK = defaultMaxTopK
	}
	if cfg.MaxIngestBatch <= 0 {
		cfg.MaxIngestBatch = defaultMaxIngestBatch
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	s := &Server{
		eng: eng, mux: http.NewServeMux(), cfg: cfg, metrics: cfg.Metrics,
		tracer: cfg.Trace, logger: cfg.Logger, started: time.Now(),
		top: reqcost.NewTop(cfg.TopRequests),
	}
	if cfg.Instance != "" && s.logger != nil {
		s.logger = s.logger.With(slog.String("instance", cfg.Instance))
		if cfg.ShardID >= 0 {
			s.logger = s.logger.With(slog.Int("shard", cfg.ShardID))
		}
	}
	s.inflightGauge = s.metrics.Gauge("tea_server_inflight")
	s.shedTotal = s.metrics.Counter("tea_server_shed_total")
	s.timeoutTotal = s.metrics.Counter("tea_server_timeout_total")
	s.uptime = s.metrics.Gauge("tea_uptime_seconds")
	buildInfo := fmt.Sprintf("tea_build_info{version=%q,go_version=%q", buildVersion(), runtime.Version())
	if cfg.Instance != "" {
		buildInfo += fmt.Sprintf(",instance=%q", cfg.Instance)
		if cfg.ShardID >= 0 {
			buildInfo += fmt.Sprintf(",shard_id=%q", strconv.Itoa(cfg.ShardID))
		}
	}
	s.metrics.Gauge(buildInfo + "}").Set(1)
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReady))
	s.mux.HandleFunc("POST /edges", s.instrument("edges", s.handleIngestEdges))
	s.mux.HandleFunc("POST /expire", s.instrument("expire", s.handleIngestExpire))
	s.mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /walk", s.instrument("walk", s.limited(s.handleWalk)))
	s.mux.HandleFunc("GET /ppr", s.instrument("ppr", s.limited(s.handlePPR)))
	s.mux.HandleFunc("GET /reach", s.instrument("reach", s.limited(s.handleReach)))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /debug/tea/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/tea/flight", s.handleFlight)
	s.mux.HandleFunc("GET /debug/tea/top", s.handleTop)
	return s
}

// Handler returns the routable HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// statusClass buckets a status code for the per-endpoint response counters.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps an endpoint with request counting, an in-flight gauge, a
// latency histogram, and per-status-class response counters; 503 and 504
// responses additionally feed the shed and timeout counters wherever they
// were produced.
//
// It is also where request correlation starts: the client's X-Request-ID is
// adopted (or one is minted) and echoed back, stamped on the request context
// for structured logs, and — when tracing is enabled — doubles as the trace
// ID of the request's root span, so /debug/tea/trace?id=<X-Request-ID>
// resolves directly.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.metrics.Counter(fmt.Sprintf("tea_server_requests_total{endpoint=%q}", endpoint))
	latency := s.metrics.Histogram(fmt.Sprintf("tea_server_request_seconds{endpoint=%q}", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		s.inflightGauge.Add(1)
		defer s.inflightGauge.Add(-1)

		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = trace.GenID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := trace.WithRequestID(r.Context(), reqID)
		var sp *trace.Span
		if s.tracer.Enabled() {
			ctx = trace.WithTracer(ctx, s.tracer)
			if r.Header.Get("X-Trace-Sampled") == "1" {
				// An upstream process (the router) already sampled this
				// request; retain this process's part of the trace too.
				ctx, sp = s.tracer.StartRootSampled(ctx, "server.request", reqID)
			} else {
				ctx, sp = s.tracer.StartRoot(ctx, "server.request", reqID)
			}
			sp.SetStr("endpoint", endpoint)
			sp.SetStr("method", r.Method)
			sp.SetStr("path", r.URL.RequestURI())
		}
		ctx, col := reqcost.Attach(ctx)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		latency.ObserveSince(start)
		if sp != nil {
			sp.SetInt("status", int64(sw.status))
			sp.End()
		}
		s.metrics.Counter(fmt.Sprintf("tea_server_responses_total{endpoint=%q,class=%q}",
			endpoint, statusClass(sw.status))).Inc()
		switch sw.status {
		case http.StatusServiceUnavailable:
			s.shedTotal.Inc()
		case http.StatusGatewayTimeout:
			s.timeoutTotal.Inc()
		}
		cost := col.Snapshot()
		cost.WallMicros = elapsed.Microseconds()
		s.top.Record(reqcost.Record{
			RequestID:   reqID,
			Endpoint:    endpoint,
			Status:      sw.status,
			StartMicros: start.UnixMicro(),
			WallMicros:  elapsed.Microseconds(),
			Cost:        cost,
		})
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.String("path", r.URL.RequestURI()),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
			)
			if s.cfg.SlowRequestThreshold > 0 && elapsed > s.cfg.SlowRequestThreshold {
				s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
					slog.String("endpoint", endpoint),
					slog.String("path", r.URL.RequestURI()),
					slog.Int("status", sw.status),
					slog.Duration("elapsed", elapsed),
					slog.Duration("threshold", s.cfg.SlowRequestThreshold),
					slog.Int64("steps", cost.Steps),
					slog.Int64("edges_evaluated", cost.EdgesEvaluated),
					slog.Int64("migrations", cost.Migrations),
					slog.Int64("migration_bytes", cost.MigrationBytes),
					slog.Int64("cache_hits", cost.CacheHits),
					slog.Int64("cache_misses", cost.CacheMisses),
					slog.Int64("device_bytes", cost.DeviceBytes),
					slog.Int64("read_retries", cost.ReadRetries),
				)
			}
		}
	}
}

// handleTop implements GET /debug/tea/top: the k (default 20) most expensive
// recent requests by wall time, each with its full cost breakdown — the
// first stop when "something was slow a minute ago" and the trace was not
// sampled.
func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, map[string]any{"top": s.top.Top(k)})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. Cache-Control: no-store keeps intermediaries from serving a stale
// scrape; the uptime gauge is refreshed at render time so it is accurate in
// every scrape without a background ticker.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.uptime.Set(time.Since(s.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_ = s.metrics.Snapshot().WritePrometheus(w)
}

// handleMetricsJSON renders the same snapshot as JSON.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.uptime.Set(time.Since(s.started).Seconds())
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// limited wraps a query handler with the load-shedding semaphore and the
// per-request timeout.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("server at capacity (%d queries in flight); retry later", s.cfg.MaxInFlight))
				return
			}
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// handleHealth implements GET /healthz — liveness, so always 200 (the
// process is up and answering). The body carries storage health: a degraded
// write path (disk full, failed fsync) or scrub-detected damage flips
// "status" to "degraded" with a "storage" section naming the trouble, so
// operators and tests see corruption without the process being killed by
// its liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	storage := map[string]any{}
	if s.durableMode {
		if d := s.durable.Load(); d != nil {
			if err := d.Err(); err != nil {
				storage["write_path"] = err.Error()
				storage["read_only"] = true
			}
		}
	}
	if sc := s.scrubber.Load(); sc != nil {
		if dmg := sc.Damage(); len(dmg) > 0 {
			storage["scrub"] = dmg
		}
	}
	if len(storage) > 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "degraded", "storage": storage})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	MaxDegree   int    `json:"max_degree"`
	TimeLo      int64  `json:"time_min"`
	TimeHi      int64  `json:"time_max"`
	Application string `json:"application"`
	Sampler     string `json:"sampler"`
	IndexBytes  int64  `json:"index_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.durableMode {
		s.handleDurableStats(w, r)
		return
	}
	g := s.eng.Graph()
	lo, hi := g.TimeRange()
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
		TimeLo:      int64(lo),
		TimeHi:      int64(hi),
		Application: s.eng.App().Name,
		Sampler:     s.eng.Sampler().Name(),
		IndexBytes:  s.eng.MemoryBytes(),
	})
}

type walkResponse struct {
	From  temporal.Vertex   `json:"from"`
	Walks [][]walkHop       `json:"walks"`
	Cost  map[string]string `json:"cost"`
	// CostDetail is the full per-request resource breakdown, present when
	// the request opted in with ?cost=1. On router-assembled responses its
	// Shards map splits the totals per shard.
	CostDetail *reqcost.Cost `json:"cost_detail,omitempty"`
}

type walkHop struct {
	Vertex temporal.Vertex `json:"v"`
	Time   *int64          `json:"t,omitempty"` // nil for the start vertex
}

func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) {
	if s.durableMode {
		s.handleDurableWalk(w, r)
		return
	}
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	length, err := intParam(r, "length", 80)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	count, err := intParam(r, "count", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if length <= 0 || count <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length and count must be positive"))
		return
	}
	if length > s.cfg.MaxWalkLength {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("length %d exceeds per-request limit %d", length, s.cfg.MaxWalkLength))
		return
	}
	if count > s.cfg.MaxWalkCount {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("count %d exceeds per-request limit %d", count, s.cfg.MaxWalkCount))
		return
	}
	cfg := core.WalkConfig{
		WalksPerVertex: count,
		Length:         length,
		StartVertices:  []temporal.Vertex{from},
		Seed:           uint64(seed),
		KeepPaths:      true,
	}
	if s.prepWalk != nil {
		s.prepWalk(&cfg)
	}
	res, err := s.eng.RunContext(r.Context(), cfg)
	if err != nil {
		writeErr(w, runStatus(err), err)
		return
	}
	rc := reqcost.From(r.Context())
	rc.AddEngine(res.Cost)
	out := walkResponse{From: from, Cost: map[string]string{
		"steps":          strconv.FormatInt(res.Cost.Steps, 10),
		"edges_per_step": fmt.Sprintf("%.2f", res.Cost.EdgesPerStep()),
		"duration":       res.Duration.String(),
	}}
	if r.URL.Query().Get("cost") == "1" && rc != nil {
		detail := rc.Snapshot()
		detail.WallMicros = res.Duration.Microseconds()
		out.CostDetail = &detail
	}
	for _, p := range res.Paths {
		hops := make([]walkHop, len(p.Vertices))
		for i, v := range p.Vertices {
			hops[i] = walkHop{Vertex: v}
			if i > 0 {
				t := int64(p.Times[i-1])
				hops[i].Time = &t
			}
		}
		out.Walks = append(out.Walks, hops)
	}
	writeJSON(w, http.StatusOK, out)
}

type pprResponse struct {
	From   temporal.Vertex `json:"from"`
	Alpha  float64         `json:"alpha"`
	Scores []apps.PPRScore `json:"scores"`
}

func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	if s.durableMode {
		writeErr(w, http.StatusNotImplemented, errIngestOnly)
		return
	}
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	walks, err := intParam(r, "walks", 10000)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if walks <= 0 || walks > s.cfg.MaxPPRWalks {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("walks must be in (0, %d]", s.cfg.MaxPPRWalks))
		return
	}
	alpha, err := floatParam(r, "alpha", 0.15)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if alpha <= 0 || alpha >= 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("alpha must be in (0, 1)"))
		return
	}
	topK, err := intParam(r, "topk", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if topK <= 0 || topK > s.cfg.MaxTopK {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("topk must be in (0, %d]", s.cfg.MaxTopK))
		return
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	scores, err := apps.TemporalPPRContext(r.Context(), s.eng, from, apps.PPRConfig{
		Alpha: alpha,
		Walks: walks,
		Seed:  uint64(seed),
	})
	if err != nil {
		writeErr(w, runStatus(err), err)
		return
	}
	if len(scores) > topK {
		scores = scores[:topK]
	}
	writeJSON(w, http.StatusOK, pprResponse{From: from, Alpha: alpha, Scores: scores})
}

type reachResponse struct {
	From      temporal.Vertex   `json:"from"`
	After     int64             `json:"after"`
	Count     int               `json:"count"`
	Reachable []temporal.Vertex `json:"reachable"`
	Truncated bool              `json:"truncated,omitempty"`
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	if s.durableMode {
		writeErr(w, http.StatusNotImplemented, errIngestOnly)
		return
	}
	from, err := vertexParam(r, "from", s.eng.Graph().NumVertices())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	after, err := int64Param(r, "after", int64(temporal.MinTime))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	set, err := apps.ReachableSetContext(r.Context(), s.eng.Graph(), from, temporal.Time(after))
	if err != nil {
		writeErr(w, runStatus(err), err)
		return
	}
	out := reachResponse{From: from, After: after, Count: len(set), Reachable: set}
	const cap = 10000
	if len(out.Reachable) > cap {
		out.Reachable = out.Reachable[:cap]
		out.Truncated = true
	}
	writeJSON(w, http.StatusOK, out)
}

// runStatus maps a query-execution error onto an HTTP status: deadline hits
// are 504 (the server's own timeout fired), client disconnects are 499, and
// anything else (e.g. a recovered panic) is a 500.
func runStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func vertexParam(r *http.Request, name string, numVertices int) (temporal.Vertex, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if int(id) >= numVertices {
		return 0, fmt.Errorf("vertex %d outside graph with %d vertices", id, numVertices)
	}
	return temporal.Vertex(id), nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: not an integer: %q", name, raw)
	}
	return v, nil
}

func int64Param(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: not an integer: %q", name, raw)
	}
	return v, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: not a number: %q", name, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
