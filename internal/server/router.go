// Router: the stateless front of a shard cluster. It holds no graph and no
// index — only the shard base URLs — so any number of router replicas can
// front the same cluster. GET /walk fans the query to every partition with
// the request's X-Request-ID attached, collects each partition's partial
// response (the walks whose source vertex that partition owns, keyed by
// global walk id), and merges them by walk id into exactly the
// single-process walkResponse shape: a client cannot tell a routed cluster
// from one teaserve process.
//
// Each configured shard entry may name several "|"-separated replica URLs
// (router_replica.go): the router prefers the healthiest replica per
// partition and fails over to a sibling on a transport error or 503, so a
// single replica outage never surfaces to clients.
//
// Failure semantics: a partition whose every replica is unreachable or
// shedding makes the whole /walk a 503 + Retry-After (partial walk lists
// would silently change query semantics); other shard errors (400, 500)
// propagate with their status — a deliberate refusal is identical on every
// replica of the partition, so it is never failed over. The readiness of
// the cluster is the conjunction of every partition's /readyz.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
)

// maxShardBody bounds one shard's response body read by the router; beyond it
// the response is treated as malformed. 64 MiB comfortably holds the largest
// capped walk response (count and length are capped shard-side).
const maxShardBody = 64 << 20

// RouterConfig parameterizes a stateless shard router.
type RouterConfig struct {
	// Shards lists the shard base URLs in shard-id order; Shards[i] names the
	// HTTP address(es) of the processes serving shard i. An entry may hold
	// several "|"-separated replica URLs; the router load-balances toward the
	// healthiest and fails over between them.
	Shards []string
	// Breaker tunes the per-replica circuit breakers (zero value → defaults).
	Breaker shard.BreakerConfig
	// RequestTimeout bounds one fan-out; 0 disables.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing fan-outs; 0 unlimited.
	MaxInFlight int
	// RetryAfter is the Retry-After hint on shed and peer-down responses.
	RetryAfter time.Duration
	// SlowRequestThreshold and TopRequests as in Config: the slow-request log
	// and the /debug/tea/top ring also run at the router, where one record
	// covers the whole fan-out with the merged cluster cost.
	SlowRequestThreshold time.Duration
	TopRequests          int
	// Metrics, Trace, Logger as in Config.
	Metrics *metrics.Registry
	Trace   *trace.Tracer
	Logger  *slog.Logger
}

// Router fans queries over a shard cluster and merges the partial answers.
type Router struct {
	base   *Server // instrumentation + ops endpoints; its own mux is never served
	groups []*routerGroup
	client *http.Client
	mux    *http.ServeMux

	fanouts *metrics.Counter
	merges  *metrics.Counter
}

// NewRouter builds a router over the given shard addresses.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: need at least one shard address")
	}
	replicaURLs, err := parseReplicaShards(cfg.Shards)
	if err != nil {
		return nil, err
	}
	base := NewWithConfig(nil, Config{
		RequestTimeout:       cfg.RequestTimeout,
		MaxInFlight:          cfg.MaxInFlight,
		RetryAfter:           cfg.RetryAfter,
		SlowRequestThreshold: cfg.SlowRequestThreshold,
		TopRequests:          cfg.TopRequests,
		Instance:             "router",
		ShardID:              -1,
		Metrics:              cfg.Metrics,
		Trace:                cfg.Trace,
		Logger:               cfg.Logger,
	})
	rt := &Router{
		base:   base,
		groups: newRouterGroups(replicaURLs, base.metrics, cfg.Breaker),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}},
		mux:     http.NewServeMux(),
		fanouts: base.metrics.Counter("tea_router_fanouts_total"),
		merges:  base.metrics.Counter("tea_router_merged_walks_total"),
	}
	rt.mux.HandleFunc("GET /healthz", base.instrument("healthz", rt.handleHealth))
	rt.mux.HandleFunc("GET /readyz", base.instrument("readyz", rt.handleReady))
	rt.mux.HandleFunc("GET /stats", base.instrument("stats", rt.handleStats))
	rt.mux.HandleFunc("GET /walk", base.instrument("walk", base.limited(rt.handleWalk)))
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /metrics.json", rt.handleMetricsJSON)
	rt.mux.HandleFunc("GET /debug/tea/trace", base.handleTrace)
	rt.mux.HandleFunc("GET /debug/tea/flight", base.handleFlight)
	rt.mux.HandleFunc("GET /debug/tea/top", base.handleTop)
	return rt, nil
}

// Handler returns the routable HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close releases pooled shard connections.
func (rt *Router) Close() { rt.client.CloseIdleConnections() }

// shardReply is one shard's raw answer to a fanned request.
type shardReply struct {
	status     int
	retryAfter string
	body       []byte
	err        error // transport-level failure; status is meaningless
}

// fan issues GET path?query to every partition concurrently, propagating the
// request's X-Request-ID, and returns the replies indexed by shard id. Each
// partition's reply comes from its healthiest answering replica.
func (rt *Router) fan(ctx context.Context, path, rawQuery string) []shardReply {
	rt.fanouts.Inc()
	replies := make([]shardReply, len(rt.groups))
	var wg sync.WaitGroup
	for i, g := range rt.groups {
		wg.Add(1)
		go func(i int, g *routerGroup) {
			defer wg.Done()
			replies[i] = rt.fanPartition(ctx, g, path, rawQuery)
		}(i, g)
	}
	wg.Wait()
	return replies
}

// fanPartition tries a partition's replicas in health-preference order and
// returns the first reply that isn't a transport failure or a 503. Those two
// are exactly the retryable-elsewhere outcomes — a 400/500 is the partition's
// deliberate answer and would be identical from every sibling. Replica
// outcomes feed the breakers unless the request's own context was cancelled
// (an abandoned request says nothing about replica health).
func (rt *Router) fanPartition(ctx context.Context, g *routerGroup, path, rawQuery string) shardReply {
	order := g.ordered()
	var last shardReply
	for i, rep := range order {
		if i > 0 {
			g.failovers.Inc()
			rt.traceFailover(ctx, g.partition, order[i-1].url, rep.url)
		}
		// Register half-open probe intent; ordering already demotes open
		// replicas, and even a hard-open one is attempted as a last resort.
		rep.breaker.Allow()
		start := time.Now()
		reply := rt.doShardRequest(ctx, g.partition, rep.url, path, rawQuery)
		var outcome error
		if reply.err != nil {
			outcome = reply.err
		} else if reply.status == http.StatusServiceUnavailable {
			outcome = fmt.Errorf("replica shedding (503)")
		}
		if outcome == nil || ctx.Err() == nil {
			rep.breaker.Report(time.Since(start), outcome)
			rep.publishState()
		}
		if outcome == nil {
			return reply
		}
		last = reply
		if ctx.Err() != nil {
			break
		}
	}
	return last
}

// doShardRequest performs one GET against one replica of one partition.
func (rt *Router) doShardRequest(ctx context.Context, partition int, baseURL, path, rawQuery string) shardReply {
	hopCtx, sp := trace.Start(ctx, "router.fanout")
	if sp != nil {
		sp.SetInt("shard", int64(partition))
		sp.SetStr("replica", baseURL)
		sp.SetStr("path", path)
		defer sp.End()
	}
	url := baseURL + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(hopCtx, http.MethodGet, url, nil)
	if err != nil {
		return shardReply{err: err}
	}
	if id := trace.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if trace.SpanFromContext(hopCtx).Sampled() {
		// Tell the shard this request's trace is retained upstream,
		// so it collects its part regardless of its own sampling.
		req.Header.Set("X-Trace-Sampled", "1")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if sp != nil {
			sp.SetError(err)
		}
		return shardReply{err: err}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody+1))
	resp.Body.Close()
	if err != nil {
		return shardReply{err: err}
	}
	if len(body) > maxShardBody {
		return shardReply{err: fmt.Errorf("response exceeds %d bytes", maxShardBody)}
	}
	if sp != nil {
		sp.SetInt("status", int64(resp.StatusCode))
	}
	return shardReply{
		status:     resp.StatusCode,
		retryAfter: resp.Header.Get("Retry-After"),
		body:       body,
	}
}

// traceFailover records a replica failover as an instantaneous span on the
// request's timeline.
func (rt *Router) traceFailover(ctx context.Context, partition int, from, to string) {
	_, sp := trace.Start(ctx, "router.failover")
	if sp == nil {
		return
	}
	sp.SetInt("shard", int64(partition))
	sp.SetStr("from", from)
	sp.SetStr("to", to)
	sp.End()
}

// shardErrMsg extracts the {"error": "..."} body of a shard error response,
// falling back to the raw body.
func shardErrMsg(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(body)
}

// writeShardDown answers 503 + Retry-After for an unreachable or shedding
// shard: the cluster is momentarily incomplete and the query is retryable.
func (rt *Router) writeShardDown(w http.ResponseWriter, shardID int, detail string) {
	ra := retryAfterSecs(rt.base.cfg.RetryAfter)
	w.Header().Set("Retry-After", ra)
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Errorf("shard %d unavailable: %s", shardID, detail))
}

func (rt *Router) handleWalk(w http.ResponseWriter, r *http.Request) {
	// The router is stateless: it validates only what merging needs (the
	// walk count); vertex bounds and size caps are enforced shard-side and
	// their 400s propagate unchanged.
	rawFrom := r.URL.Query().Get("from")
	fromID, err := strconv.ParseUint(rawFrom, 10, 32)
	if rawFrom == "" || err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing or malformed required parameter %q", "from"))
		return
	}
	count, err := intParam(r, "count", 1)
	if err != nil || count <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("count must be a positive integer"))
		return
	}

	replies := rt.fan(r.Context(), "/walk", r.URL.Query().Encode())

	// Any failed or shedding shard fails the whole query: merging a partial
	// cluster would silently return fewer walks than asked.
	for i, rep := range replies {
		if rep.err != nil {
			rt.writeShardDown(w, i, rep.err.Error())
			return
		}
		if rep.status == http.StatusServiceUnavailable {
			ra := rep.retryAfter
			if ra == "" {
				ra = retryAfterSecs(rt.base.cfg.RetryAfter)
			}
			w.Header().Set("Retry-After", ra)
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("shard %d unavailable: %s", i, shardErrMsg(rep.body)))
			return
		}
		if rep.status != http.StatusOK {
			writeErr(w, rep.status, fmt.Errorf("shard %d: %s", i, shardErrMsg(rep.body)))
			return
		}
	}

	// Merge the partial walk lists by global walk id. Every id in [0, count)
	// must be claimed exactly once across the cluster — anything else means
	// the shards disagree about ownership (mismatched partition counts) and
	// is a deployment error, not a client one.
	walks := make([][]walkHop, count)
	var steps, edges, migrations, frames int64
	clusterCost := reqcost.Cost{Shards: map[string]*reqcost.Cost{}}
	var spanRecs []trace.SpanRecord
	for i, rep := range replies {
		var sr shardWalkResponse
		if err := json.Unmarshal(rep.body, &sr); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("shard %d: malformed response: %v", i, err))
			return
		}
		if sr.Partitions != len(rt.groups) {
			writeErr(w, http.StatusBadGateway,
				fmt.Errorf("shard %d built for %d partitions, router has %d shards", i, sr.Partitions, len(rt.groups)))
			return
		}
		if len(sr.WalkIDs) != len(sr.Walks) {
			writeErr(w, http.StatusBadGateway,
				fmt.Errorf("shard %d: %d walk ids for %d walks", i, len(sr.WalkIDs), len(sr.Walks)))
			return
		}
		for j, id := range sr.WalkIDs {
			if id < 0 || id >= count {
				writeErr(w, http.StatusBadGateway, fmt.Errorf("shard %d: walk id %d outside [0, %d)", i, id, count))
				return
			}
			if walks[id] != nil {
				writeErr(w, http.StatusBadGateway, fmt.Errorf("walk id %d claimed by more than one shard", id))
				return
			}
			walks[id] = sr.Walks[j]
		}
		steps += costInt(sr.Cost, "steps")
		edges += costInt(sr.Cost, "edges_evaluated")
		migrations += costInt(sr.Cost, "migrations")
		frames += costInt(sr.Cost, "frames")
		if sr.CostDetail != nil {
			clusterCost.Add(*sr.CostDetail)
			clusterCost.Shards[strconv.Itoa(i)] = sr.CostDetail
		}
		// Shard span summaries become real spans in the router's tracer: each
		// gets a placeholder SpanID here (Inject remaps them onto the tracer's
		// own sequence) and identity attrs, so one X-Request-ID resolves to
		// one trace spanning every process the request touched.
		for _, ss := range sr.Spans {
			attrs := []trace.Attr{
				trace.Str("instance", fmt.Sprintf("shard-%d", ss.Shard)),
				trace.Int("shard_id", int64(ss.Shard)),
			}
			if ss.Walkers > 0 {
				attrs = append(attrs, trace.Int("walkers", int64(ss.Walkers)))
			}
			spanRecs = append(spanRecs, trace.SpanRecord{
				SpanID:      uint64(len(spanRecs) + 1),
				Name:        ss.Name,
				StartMicros: ss.StartMicros,
				DurMicros:   ss.DurMicros,
				Attrs:       attrs,
			})
		}
	}
	for id, hops := range walks {
		if hops == nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("walk id %d claimed by no shard", id))
			return
		}
	}
	rt.merges.Add(int64(count))
	// Fold the cluster's cost into this request's collector so the router's
	// slow-request log and /debug/tea/top carry cluster-wide numbers, and
	// inject the shards' span summaries when this request's trace is retained.
	reqcost.From(r.Context()).AddCost(clusterCost)
	if len(spanRecs) > 0 && trace.SpanFromContext(r.Context()).Sampled() {
		rt.base.tracer.Inject(trace.RequestID(r.Context()), spanRecs)
	}

	out := walkResponse{From: temporal.Vertex(fromID), Walks: walks, Cost: map[string]string{
		"steps":           strconv.FormatInt(steps, 10),
		"edges_evaluated": strconv.FormatInt(edges, 10),
		"migrations":      strconv.FormatInt(migrations, 10),
		"frames":          strconv.FormatInt(frames, 10),
		"shards":          strconv.Itoa(len(rt.groups)),
	}}
	if steps > 0 {
		out.Cost["edges_per_step"] = fmt.Sprintf("%.2f", float64(edges)/float64(steps))
	}
	if r.URL.Query().Get("cost") == "1" && len(clusterCost.Shards) > 0 {
		out.CostDetail = &clusterCost
	}
	writeJSON(w, http.StatusOK, out)
}

// costInt reads an int64 cost field, tolerating absence.
func costInt(cost map[string]string, key string) int64 {
	v, _ := strconv.ParseInt(cost[key], 10, 64)
	return v
}

// handleHealth is cluster health rolled up from every shard's /healthz. An
// unreachable (or erroring) shard makes the rollup a 503 "degraded" with
// Retry-After — the router must never answer a 200 "ok" lie while a shard is
// dead. A shard that is up but reports degraded storage keeps the rollup at
// 200 (the cluster still serves) with status "degraded" and the per-shard
// bodies attached so the trouble is attributable.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	replies := rt.fan(r.Context(), "/healthz", "")
	shards := make(map[string]any, len(replies))
	status := http.StatusOK
	overall := "ok"
	markDown := func(key, detail string) {
		shards[key] = map[string]string{"status": "down", "error": detail}
		overall = "degraded"
		status = http.StatusServiceUnavailable
	}
	for i, rep := range replies {
		key := strconv.Itoa(i)
		switch {
		case rep.err != nil:
			markDown(key, rep.err.Error())
		case rep.status != http.StatusOK:
			markDown(key, shardErrMsg(rep.body))
		default:
			var body map[string]any
			if err := json.Unmarshal(rep.body, &body); err != nil {
				markDown(key, "malformed /healthz body")
				continue
			}
			shards[key] = body
			if s, _ := body["status"].(string); s != "ok" {
				overall = "degraded"
			}
		}
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSecs(rt.base.cfg.RetryAfter))
	}
	writeJSON(w, status, map[string]any{
		"status": overall, "shards": shards, "replicas": rt.replicaTopology(),
	})
}

// scrapeShards pulls and parses every shard's /metrics.json snapshot. Any
// failed scrape fails the whole federation: a silently absent shard would
// make the cluster rollups understate reality.
func (rt *Router) scrapeShards(ctx context.Context) ([]metrics.ShardSnap, error) {
	replies := rt.fan(ctx, "/metrics.json", "")
	shards := make([]metrics.ShardSnap, len(replies))
	for i, rep := range replies {
		if rep.err != nil {
			return nil, fmt.Errorf("shard %d: %v", i, rep.err)
		}
		if rep.status != http.StatusOK {
			return nil, fmt.Errorf("shard %d: status %d", i, rep.status)
		}
		snap := &metrics.Snapshot{}
		if err := json.Unmarshal(rep.body, snap); err != nil {
			return nil, fmt.Errorf("shard %d: malformed snapshot: %v", i, err)
		}
		shards[i] = metrics.ShardSnap{Label: strconv.Itoa(i), Snap: snap}
	}
	return shards, nil
}

// federatedSnapshot scrapes the cluster and merges it with the router's own
// registry; on scrape failure it has already written the 503 (with no-store
// and Retry-After) and returns nil.
func (rt *Router) federatedSnapshot(w http.ResponseWriter, r *http.Request) *metrics.Snapshot {
	w.Header().Set("Cache-Control", "no-store")
	shards, err := rt.scrapeShards(r.Context())
	if err != nil {
		w.Header().Set("Retry-After", retryAfterSecs(rt.base.cfg.RetryAfter))
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("metrics federation: %v", err))
		return nil
	}
	rt.base.uptime.Set(time.Since(rt.base.started).Seconds())
	return metrics.Federate(rt.base.metrics.Snapshot(), shards)
}

// handleMetrics is the federated Prometheus exposition: the router's own
// series unlabeled, each shard's under shard="<id>", cluster rollups under
// shard="all".
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fed := rt.federatedSnapshot(w, r)
	if fed == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = fed.WritePrometheus(w)
}

// handleMetricsJSON is the same federated snapshot as JSON.
func (rt *Router) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	fed := rt.federatedSnapshot(w, r)
	if fed == nil {
		return
	}
	writeJSON(w, http.StatusOK, fed)
}

// handleReady is cluster readiness: 200 only when every partition has at
// least one replica whose /readyz is 200 (fan fails over between replicas),
// else 503 + Retry-After naming the partitions that aren't there yet. The
// per-replica breaker table rides along so an operator can see which
// replicas a "ready" verdict is actually standing on.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	replies := rt.fan(r.Context(), "/readyz", "")
	var notReady []int
	for i, rep := range replies {
		if rep.err != nil || rep.status != http.StatusOK {
			notReady = append(notReady, i)
		}
	}
	if len(notReady) > 0 {
		w.Header().Set("Retry-After", retryAfterSecs(rt.base.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "waiting", "shards": len(rt.groups), "not_ready": notReady,
			"replicas": rt.replicaTopology(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "shards": len(rt.groups), "replicas": rt.replicaTopology(),
	})
}

// handleStats aggregates every shard's /stats under one response.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	replies := rt.fan(r.Context(), "/stats", "")
	shards := make([]json.RawMessage, len(replies))
	for i, rep := range replies {
		if rep.err != nil {
			rt.writeShardDown(w, i, rep.err.Error())
			return
		}
		if rep.status != http.StatusOK {
			writeErr(w, rep.status, fmt.Errorf("shard %d: %s", i, shardErrMsg(rep.body)))
			return
		}
		shards[i] = json.RawMessage(rep.body)
	}
	writeJSON(w, http.StatusOK, map[string]any{"partitions": len(rt.groups), "shards": shards})
}
