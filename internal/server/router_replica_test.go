package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/trace"
)

func TestParseReplicaShards(t *testing.T) {
	got, err := parseReplicaShards([]string{"http://a:1", "http://b:1|http://b:2", " http://c:1 | http://c:2 "})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a:1"}, {"http://b:1", "http://b:2"}, {"http://c:1", "http://c:2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for _, bad := range []string{"http://a:1|", "|http://a:1", "http://a:1||http://a:2"} {
		if _, err := parseReplicaShards([]string{bad}); err == nil {
			t.Fatalf("entry %q parsed without error", bad)
		}
	}
}

// deadURL binds and closes a listener so the URL refuses connections.
func deadURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	return ts.URL
}

// The replica acceptance criterion at the HTTP layer: with one replica of a
// partition dead, every /walk still answers 200 with the same bytes as a
// healthy cluster — the failover is invisible to clients. Once the dead
// replica's breaker opens, the surviving replica is preferred outright and
// the failover counter stops moving.
func TestRouterReplicaFailoverKeepsServing(t *testing.T) {
	g := testutil.RandomGraph(t, 80, 2000, 400, 91)
	spec := sampling.Exponential(0.01)
	servers := newShardCluster(t, g, spec, 2, Config{}, nil)
	reference := newShardRouter(t, servers, RouterConfig{})

	// Partition 0 is served by a dead primary and a live sibling. The dead
	// URL comes first so the initial attempts must fail over.
	reg := metrics.NewRegistry()
	rt, err := NewRouter(RouterConfig{
		Shards:  []string{deadURL(t) + "|" + servers[0].URL, servers[1].URL},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	const q = "/walk?from=7&length=15&count=4&seed=3"
	var want walkResponse
	getJSON(t, reference.URL+q, http.StatusOK, &want)
	wantJSON, _ := json.Marshal(want.Walks)

	for i := 0; i < 6; i++ {
		var got walkResponse
		getJSON(t, ts.URL+q, http.StatusOK, &got) // any non-200 fails here: zero 5xx
		if gotJSON, _ := json.Marshal(got.Walks); string(gotJSON) != string(wantJSON) {
			t.Fatalf("request %d: replica failover changed the response\nwant %s\ngot  %s", i, wantJSON, gotJSON)
		}
	}

	failovers := reg.Counter(`tea_router_replica_failovers_total{shard="0"}`).Value()
	if failovers == 0 {
		t.Fatal("dead primary never recorded a failover")
	}
	// The very first failure demotes the dead replica behind its healthy
	// sibling, so later requests go straight to the survivor and stop paying
	// the failover detour.
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+q, http.StatusOK, nil)
	}
	if after := reg.Counter(`tea_router_replica_failovers_total{shard="0"}`).Value(); after != failovers {
		t.Fatalf("failovers kept accruing after the replica was demoted: %d -> %d", failovers, after)
	}
}

// Only a whole partition down — every replica unreachable — may surface as
// 503, and it must carry Retry-After.
func TestRouterAllReplicasDown(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 92)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, nil)
	rt, err := NewRouter(RouterConfig{
		Shards: []string{servers[0].URL, deadURL(t) + "|" + deadURL(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/walk?from=1&length=5&count=2&seed=1", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: 503 without Retry-After", path)
		}
	}
}

// /readyz and /healthz expose the per-partition replica table: a failing
// replica shows up demoted (suspect — one failure is enough to deprioritize
// it, so it never reaches the open threshold while a sibling serves) with its
// error count attached, and the healthy sibling shows up healthy.
func TestRouterReplicaTopologyReporting(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 93)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, nil)
	dead := deadURL(t)
	rt, err := NewRouter(RouterConfig{
		Shards: []string{dead + "|" + servers[0].URL, servers[1].URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	// One request is enough: its first attempt fails on the dead primary and
	// marks it suspect.
	for i := 0; i < 4; i++ {
		getJSON(t, ts.URL+"/walk?from=1&length=5&count=2&seed=1", http.StatusOK, nil)
	}

	type topo struct {
		Replicas map[string][]routerReplicaStatus `json:"replicas"`
	}
	for _, path := range []string{"/readyz", "/healthz"} {
		var out topo
		getJSON(t, ts.URL+path, http.StatusOK, &out)
		if len(out.Replicas) != 2 {
			t.Fatalf("%s: replica table covers %d partitions, want 2", path, len(out.Replicas))
		}
		if n := len(out.Replicas["0"]); n != 2 {
			t.Fatalf("%s: partition 0 lists %d replicas, want 2", path, n)
		}
		byURL := map[string]routerReplicaStatus{}
		for _, r := range out.Replicas["0"] {
			byURL[r.URL] = r
		}
		if st := byURL[dead]; st.State != "suspect" || st.Errors == 0 {
			t.Fatalf("%s: dead replica reported %+v, want suspect with errors", path, st)
		}
		if st := byURL[servers[0].URL]; st.State != "healthy" || st.OK == 0 {
			t.Fatalf("%s: live replica reported %+v, want healthy with successes", path, st)
		}
	}
}

// A failover shows up as a router.failover span on the request's timeline,
// naming the replica it abandoned and the one it chose.
func TestRouterFailoverTraceSpan(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 94)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 1, Config{}, nil)
	tracer := trace.New(trace.Config{SampleFraction: 1, MaxTraces: 16, MaxSpansPerTrace: 256})
	rt, err := NewRouter(RouterConfig{
		Shards: []string{deadURL(t) + "|" + servers[0].URL},
		Trace:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	const reqID = "req-replica-failover-1"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/walk?from=3&length=8&count=2&seed=5", nil)
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	spans, _, ok := tracer.Trace(reqID)
	if !ok {
		t.Fatal("no trace recorded under the request id")
	}
	for _, sp := range spans {
		if sp.Name == "router.failover" {
			return
		}
	}
	t.Fatalf("trace has no router.failover span: %+v", spans)
}

// Metrics federation keeps its shard="<id>" labels when a partition's
// preferred replica dies: the scrape fails over like any other fan.
func TestFederationSurvivesReplicaOutage(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1200, 300, 95)
	servers := newShardCluster(t, g, sampling.WeightSpec{}, 2, Config{}, nil)
	rt, err := NewRouter(RouterConfig{
		Shards:  []string{deadURL(t) + "|" + servers[0].URL, servers[1].URL},
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/walk?from=2&length=5&count=2&seed=1", http.StatusOK, nil)

	var fed metrics.Snapshot
	getJSON(t, ts.URL+"/metrics.json", http.StatusOK, &fed)
	want := []string{
		`tea_server_requests_total{endpoint="walk",shard="0"}`,
		`tea_server_requests_total{endpoint="walk",shard="1"}`,
		`tea_server_requests_total{endpoint="walk",shard="all"}`,
		`tea_router_replica_failovers_total{shard="0"}`,
	}
	for _, name := range want {
		findCounterSnap(t, &fed, name)
	}
}
