package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/scrub"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/vfs"
	"github.com/tea-graph/tea/internal/wal"
)

// Serving-layer storage chaos: disk-full degradation to read-only, automatic
// recovery once the device heals, recovery-progress reporting on /readyz,
// and scrub damage surfacing on /healthz.

// newFaultIngestServer builds a durable ingest server whose storage runs
// through a FaultFS, with a fast heal loop so degradation tests finish
// quickly.
func newFaultIngestServer(t *testing.T, dcfg stream.DurableConfig) (*httptest.Server, *Server, *stream.DurableGraph, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(vfs.OS, 42)
	dcfg.FS = ffs
	if dcfg.WAL.Policy == 0 && dcfg.WAL.Interval == 0 {
		dcfg.WAL.Policy = wal.SyncAlways
	}
	s := NewDurable(Config{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	d, err := stream.OpenDurable(t.TempDir(), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s.SetDurable(d)
	return ts, s, d, ffs
}

// postStatus posts body and returns the response without asserting, so tests
// can inspect status and headers.
func postStatus(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestIngestDiskFullDegradesToReadOnlyAndRecovers is the end-to-end disk-full
// contract: once the WAL hits ENOSPC, durable writes answer 507 Insufficient
// Storage with Retry-After while walks keep serving 200s, /healthz reports
// the degraded write path — and after the device recovers, the heal loop
// restores writability with no restart.
func TestIngestDiskFullDegradesToReadOnlyAndRecovers(t *testing.T) {
	ts, _, d, ffs := newFaultIngestServer(t, stream.DurableConfig{
		HealInterval: 20 * time.Millisecond,
	})

	postJSON(t, ts.URL+"/edges",
		`{"edges":[{"src":0,"dst":1,"t":10},{"src":0,"dst":2,"t":11}]}`, http.StatusOK, nil)

	// The disk fills: every WAL write fails with ENOSPC until healed.
	ffs.Inject(vfs.Fault{Op: vfs.OpWrite, Path: "wal-"})

	resp := postStatus(t, ts.URL+"/edges", `{"edges":[{"src":1,"dst":2,"t":12}]}`)
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("POST /edges on full disk: %d, want 507", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("507 response missing Retry-After")
	}
	if d.Err() == nil {
		t.Fatal("durable graph not degraded after ENOSPC")
	}

	// Reads are unaffected: the graph serves walks from memory.
	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=0&length=4&count=2&seed=7", http.StatusOK, &walk)
	if len(walk.Walks) != 2 {
		t.Fatalf("walk during degradation: %+v", walk)
	}

	// Liveness stays 200 but the body says degraded and why.
	var health struct {
		Status  string         `json:"status"`
		Storage map[string]any `json:"storage"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", health.Status)
	}
	if health.Storage["read_only"] != true || health.Storage["write_path"] == nil {
		t.Fatalf("healthz storage: %+v", health.Storage)
	}

	// Space frees up: the heal loop brings writes back on its own.
	ffs.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postStatus(t, ts.URL+"/edges", `{"edges":[{"src":2,"dst":3,"t":20}]}`)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusInsufficientStorage && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status %d while waiting for heal", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("writes did not recover after device healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var ok map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &ok)
	if ok["status"] != "ok" {
		t.Fatalf("healthz after heal: %v", ok)
	}
}

// TestReadyzReportsRecoveryProgress: while the WAL is replaying, /readyz is
// 503 but carries the replay position instead of a bare refusal.
func TestReadyzReportsRecoveryProgress(t *testing.T) {
	s := NewDurable(Config{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.ReportRecoveryProgress(stream.RecoveryProgress{
		SnapshotLSN:    42,
		SegmentsDone:   2,
		SegmentsTotal:  5,
		RecordsApplied: 70000,
	})
	var body map[string]any
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable, &body)
	if body["status"] != "recovering" {
		t.Fatalf("readyz status: %v", body)
	}
	if body["snapshot_lsn"] != float64(42) || body["segments_replayed"] != float64(2) ||
		body["segments_total"] != float64(5) || body["records_applied"] != float64(70000) {
		t.Fatalf("readyz progress body: %v", body)
	}
}

// TestScrubDamageDegradesHealthz plants bit flips in a sealed WAL segment and
// in a snapshot generation, runs one scrub pass, and requires the damage to
// surface in tea_scrub_errors_total and on /healthz within that single pass.
func TestScrubDamageDegradesHealthz(t *testing.T) {
	dir := t.TempDir()
	d, err := stream.OpenDurable(dir, stream.DurableConfig{
		WAL:           wal.Options{Policy: wal.SyncAlways, SegmentBytes: 256},
		SnapshotEvery: 8,
		SnapshotKeep:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	s := NewDurable(Config{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.SetDurable(d)

	for i := 0; i < 30; i++ {
		postJSON(t, ts.URL+"/edges", `{"edges":[{"src":0,"dst":1,"t":`+itoa(10+i)+`}]}`, http.StatusOK, nil)
	}
	sealed := d.Log().SealedSegments()
	snaps := d.SnapshotPaths()
	if len(sealed) == 0 || len(snaps) == 0 {
		t.Fatalf("need sealed segments and snapshots: %d/%d", len(sealed), len(snaps))
	}

	sc := scrub.New(scrub.Config{RateMBps: -1},
		scrub.Files{
			TargetName: "wal",
			List: func() ([]string, error) {
				segs := d.Log().SealedSegments()
				paths := make([]string, len(segs))
				for i, seg := range segs {
					paths[i] = seg.Path
				}
				return paths, nil
			},
			Verify: func(path string, bill func(int) error) error {
				return wal.VerifySegment(nil, path, bill)
			},
		},
		scrub.Files{
			TargetName: "snapshot",
			List:       func() ([]string, error) { return d.SnapshotPaths(), nil },
			Verify: func(path string, bill func(int) error) error {
				_, err := stream.VerifySnapshotFile(nil, path, bill)
				return err
			},
		})
	s.SetScrubber(sc)

	// Clean baseline pass.
	if err := sc.RunOnce(context.Background()); err != nil {
		t.Fatalf("clean pass found damage: %v", err)
	}
	var ok map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &ok)
	if ok["status"] != "ok" {
		t.Fatalf("healthz before damage: %v", ok)
	}

	// Plant one bit flip in each store.
	flipFileByte(t, sealed[0].Path, 40)
	flipFileByte(t, snaps[len(snaps)-1], 24)

	errsBefore := metrics.Default.Counter("tea_scrub_errors_total").Value()
	if err := sc.RunOnce(context.Background()); err == nil {
		t.Fatal("scrub pass over damaged stores reported clean")
	}
	if got := metrics.Default.Counter("tea_scrub_errors_total").Value(); got < errsBefore+2 {
		t.Fatalf("tea_scrub_errors_total %d -> %d, want +2", errsBefore, got)
	}
	dmg := sc.Damage()
	if _, ok := dmg["wal"]; !ok {
		t.Fatalf("wal damage not detected: %v", dmg)
	}
	if _, ok := dmg["snapshot"]; !ok {
		t.Fatalf("snapshot damage not detected: %v", dmg)
	}

	var health struct {
		Status  string         `json:"status"`
		Storage map[string]any `json:"storage"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "degraded" || health.Storage["scrub"] == nil {
		t.Fatalf("healthz after damage: status=%q storage=%+v", health.Status, health.Storage)
	}
}

// itoa avoids pulling in strconv for one literal-building loop.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// flipFileByte XORs one byte of path in place.
func flipFileByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read %s@%d: %v", filepath.Base(path), off, err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
