package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/ooc"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
)

// traceNode mirrors the span-tree JSON served by /debug/tea/trace.
type traceNode struct {
	Name     string       `json:"name"`
	Attrs    []trace.Attr `json:"attrs"`
	Error    string       `json:"error"`
	Children []*traceNode `json:"children"`
}

func collect(nodes []*traceNode, name string, out *[]*traceNode) {
	for _, n := range nodes {
		if n.Name == name {
			*out = append(*out, n)
		}
		collect(n.Children, name, out)
	}
}

func attrOf(n *traceNode, key string) (any, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// newOOCTraceServer builds the full acceptance-criteria stack: a server over
// an engine whose sampler is a DiskPAT with a block cache, backed by a store
// injecting transient read faults, with every request traced.
func newOOCTraceServer(t *testing.T) (*httptest.Server, *ooc.FaultInjector, *trace.Tracer) {
	t.Helper()
	g := temporal.CommuteGraph()
	app := core.ExponentialWalk(1)
	w, err := sampling.BuildGraphWeights(g, app.Weight, 0)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ooc.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	fi := ooc.NewFaultInjector(store, ooc.FaultConfig{ReadErrorRate: 0.3, Class: ooc.FaultTransient, Seed: 7})
	dp, err := ooc.BuildDiskPAT(w, fi, 0)
	if err != nil {
		t.Fatal(err)
	}
	dp.EnableCache(ooc.CacheConfig{CapacityBytes: 1 << 20})
	eng, err := core.NewEngine(g, app, core.Options{ExternalSampler: dp, ExternalWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SampleFraction: 1, FlightSpans: 256})
	ts := httptest.NewServer(NewWithConfig(eng, Config{Trace: tr, Metrics: metrics.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)
	return ts, fi, tr
}

// TestTraceEndToEndOOC is the acceptance-criteria walkthrough: a /walk
// request with an X-Request-ID against a traced -ooc-style server yields,
// at /debug/tea/trace?id=<X-Request-ID>, a span tree containing the
// server-request, engine-run, walk-batch, and block-fetch spans, with cache
// source and retry annotations on the fetches.
func TestTraceEndToEndOOC(t *testing.T) {
	ts, fi, _ := newOOCTraceServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/walk?from=0&count=8&length=30&seed=3", nil)
	req.Header.Set("X-Request-ID", "e2e-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/walk status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "e2e-trace-1" {
		t.Fatalf("X-Request-ID echoed %q, want e2e-trace-1", got)
	}
	if fi.Injected() == 0 {
		t.Fatal("fault injector fired no faults; retry annotations untestable")
	}

	var tree struct {
		TraceID string       `json:"trace_id"`
		Spans   []*traceNode `json:"spans"`
	}
	getJSON(t, ts.URL+"/debug/tea/trace?id=e2e-trace-1", http.StatusOK, &tree)
	if tree.TraceID != "e2e-trace-1" || len(tree.Spans) != 1 {
		t.Fatalf("trace_id=%q roots=%d, want e2e-trace-1 with 1 root", tree.TraceID, len(tree.Spans))
	}

	root := tree.Spans[0]
	if root.Name != "server.request" {
		t.Fatalf("root span %q, want server.request", root.Name)
	}
	if ep, _ := attrOf(root, "endpoint"); ep != "walk" {
		t.Fatalf("root endpoint attr = %v", ep)
	}
	if st, _ := attrOf(root, "status"); st != float64(200) {
		t.Fatalf("root status attr = %v", st)
	}

	for _, name := range []string{"engine.run", "walk_batch", "ooc.block_fetch"} {
		var found []*traceNode
		collect(tree.Spans, name, &found)
		if len(found) == 0 {
			t.Fatalf("span tree has no %q span", name)
		}
	}

	// Every block fetch names its cache source; the injected transient
	// faults must have produced at least one retry annotation.
	var fetches []*traceNode
	collect(tree.Spans, "ooc.block_fetch", &fetches)
	retries := 0
	for _, f := range fetches {
		src, ok := attrOf(f, "source")
		if !ok {
			t.Fatalf("block fetch without source attr: %+v", f.Attrs)
		}
		switch src {
		case "hit", "miss", "coalesced", "bypass":
		default:
			t.Fatalf("block fetch source = %v", src)
		}
		if r, ok := attrOf(f, "retries"); ok {
			retries += int(r.(float64))
		}
	}
	if retries == 0 {
		t.Fatalf("no retry annotations across %d block fetches despite %d injected faults",
			len(fetches), fi.Injected())
	}

	// The walk batches sit under the engine run and carry the per-batch
	// sampling aggregates.
	var batches []*traceNode
	collect(tree.Spans, "walk_batch", &batches)
	for _, b := range batches {
		if _, ok := attrOf(b, "steps"); !ok {
			t.Fatalf("walk_batch without steps attr: %+v", b.Attrs)
		}
		if _, ok := attrOf(b, "edges_evaluated"); !ok {
			t.Fatalf("walk_batch without edges_evaluated attr: %+v", b.Attrs)
		}
	}

	// The same trace exports as a loadable Chrome trace_event document.
	resp, err = http.Get(ts.URL + "/debug/tea/trace?id=e2e-trace-1&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 4 {
		t.Fatalf("chrome export has %d events, want at least 4", len(doc.TraceEvents))
	}
}

// TestFlightRecorderEndpoint: with sampling off but the flight recorder on,
// /debug/tea/trace finds nothing while /debug/tea/flight still holds the
// recent spans and retry events.
func TestFlightRecorderEndpoint(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SampleFraction: 0, FlightSpans: 64})
	ts := httptest.NewServer(NewWithConfig(eng, Config{Trace: tr, Metrics: metrics.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/walk?from=0&count=2&length=10", nil)
	req.Header.Set("X-Request-ID", "flight-req")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	getJSON(t, ts.URL+"/debug/tea/trace?id=flight-req", http.StatusNotFound, nil)

	var flight struct {
		Count  int `json:"count"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	getJSON(t, ts.URL+"/debug/tea/flight", http.StatusOK, &flight)
	if flight.Count == 0 {
		t.Fatal("flight recorder empty after a traced request")
	}
	names := map[string]bool{}
	for _, e := range flight.Events {
		if e.Kind == trace.KindSpan {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"server.request", "engine.run"} {
		if !names[want] {
			t.Fatalf("flight recorder missing %q span (has %v)", want, names)
		}
	}
}

// TestTraceEndpointsDisabled: without a tracer the debug endpoints 404 but
// requests still get correlation IDs.
func TestTraceEndpointsDisabled(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("minted X-Request-ID = %q, want 16 hex chars", id)
	}
	getJSON(t, ts.URL+"/debug/tea/trace", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/debug/tea/flight", http.StatusNotFound, nil)
}

// TestMetricsHeaders is the header regression test: both metrics renderings
// must declare their exact content type and refuse caching, and the
// snapshot must carry the build-info and uptime series.
func TestMetricsHeaders(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithConfig(eng, Config{Metrics: metrics.NewRegistry()}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", cc)
	}
	for _, series := range []string{"tea_build_info", "tea_uptime_seconds", "go_version="} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/metrics.json Cache-Control = %q, want no-store", cc)
	}
	if !json.Valid(jsonBody) {
		t.Fatal("/metrics.json body is not valid JSON")
	}
	if !strings.Contains(string(jsonBody), "tea_uptime_seconds") {
		t.Fatalf("/metrics.json missing tea_uptime_seconds:\n%s", jsonBody)
	}
}
