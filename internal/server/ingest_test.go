package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/wal"
)

func postJSON(t *testing.T, url, body string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
}

func newIngestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *stream.DurableGraph) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := NewDurable(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	d, err := stream.OpenDurable(t.TempDir(), stream.DurableConfig{
		WAL: wal.Options{Policy: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s.SetDurable(d)
	return ts, s, d
}

// Before recovery completes (SetDurable), every durable endpoint sheds with
// 503 + Retry-After; /healthz (liveness) still answers 200.
func TestIngestUnreadyUntilRecovered(t *testing.T) {
	s := NewDurable(Config{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before recovery: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 missing Retry-After")
	}
	postJSON(t, ts.URL+"/edges", `{"edges":[{"src":0,"dst":1,"t":1}]}`, http.StatusServiceUnavailable, nil)
	postJSON(t, ts.URL+"/expire?before=1", "", http.StatusServiceUnavailable, nil)
	getJSON(t, ts.URL+"/stats", http.StatusServiceUnavailable, nil)

	// Recovery completes: everything flips ready.
	d, err := stream.OpenDurable(t.TempDir(), stream.DurableConfig{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s.SetDurable(d)
	var ready map[string]any
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Fatalf("readyz after recovery: %v", ready)
	}
}

func TestIngestLifecycle(t *testing.T) {
	ts, _, d := newIngestServer(t, Config{})

	var ing ingestResponse
	postJSON(t, ts.URL+"/edges",
		`{"edges":[{"src":0,"dst":1,"t":10},{"src":0,"dst":2,"t":11},{"src":1,"dst":2,"t":12}]}`,
		http.StatusOK, &ing)
	if ing.Appended != 3 || ing.Edges != 3 || ing.Frontier != 12 {
		t.Fatalf("ingest response: %+v", ing)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Edges != 3 || st.TimeLo != 10 || st.TimeHi != 12 || st.Application != "ingest" {
		t.Fatalf("stats: %+v", st)
	}

	var walk walkResponse
	getJSON(t, ts.URL+"/walk?from=0&length=4&count=2&seed=7", http.StatusOK, &walk)
	if len(walk.Walks) != 2 || len(walk.Walks[0]) < 2 {
		t.Fatalf("walk: %+v", walk)
	}

	// Non-increasing timestamps are the client's bug: 400, nothing applied.
	postJSON(t, ts.URL+"/edges", `{"edges":[{"src":3,"dst":4,"t":5}]}`, http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Edges != 3 {
		t.Fatalf("stale batch changed state: %+v", st)
	}

	var exp expireResponse
	postJSON(t, ts.URL+"/expire?before=12", "", http.StatusOK, &exp)
	if exp.Dropped != 2 || exp.Edges != 1 {
		t.Fatalf("expire: %+v", exp)
	}

	// Ingest mode has no preprocessed index: /ppr and /reach are 501.
	getJSON(t, ts.URL+"/ppr?from=0", http.StatusNotImplemented, nil)
	getJSON(t, ts.URL+"/reach?from=0", http.StatusNotImplemented, nil)

	// The mutations really went through the WAL.
	if d.Recovery().Records != 0 && d.NumEdges() != 1 {
		t.Fatalf("durable state: %d edges", d.NumEdges())
	}
}

func TestIngestValidation(t *testing.T) {
	ts, _, _ := newIngestServer(t, Config{MaxIngestBatch: 2})
	postJSON(t, ts.URL+"/edges", `{"edges":[]}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/edges", `not json`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/edges",
		`{"edges":[{"src":0,"dst":1,"t":1},{"src":0,"dst":1,"t":2},{"src":0,"dst":1,"t":3}]}`,
		http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/expire", "", http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/expire?before=abc", "", http.StatusBadRequest, nil)
}

// A read-only query server refuses ingest endpoints explicitly rather than
// 404ing.
func TestIngestRejectedInEngineMode(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/edges", `{"edges":[{"src":0,"dst":1,"t":1}]}`, http.StatusNotImplemented, nil)
	postJSON(t, ts.URL+"/expire?before=1", "", http.StatusNotImplemented, nil)
	var ready map[string]string
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Fatalf("engine-mode readyz: %v", ready)
	}
}
