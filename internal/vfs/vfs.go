// Package vfs is the filesystem seam under TEA's durable storage: a small
// interface covering exactly the operations the WAL, snapshot, and index
// writers perform (open/create/rename/sync/remove/stat), a passthrough OS
// implementation, and a seeded fault injector (FaultFS) that turns "the disk
// misbehaved" into a deterministic, scriptable event.
//
// Every durability claim in the storage layer — "a crash at rename leaves
// either the old or the new snapshot", "an ENOSPC mid-checkpoint never
// damages prior generations", "a torn WAL tail is repaired" — is only a
// claim until the failing operation can actually be made to fail. Threading
// an FS through internal/wal, internal/stream, and persistence.go makes
// every one of those paths testable under injected ENOSPC, fsync failures,
// torn (short) writes, and crash-at-rename, without root, loop devices, or
// filesystem tricks.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// ErrNoSpace is the no-space-left-on-device error injected by FaultFS's
// default fault and matched by IsNoSpace. It aliases syscall.ENOSPC so real
// disk-full errors and injected ones satisfy the same errors.Is check.
var ErrNoSpace error = syscall.ENOSPC

// IsNoSpace reports whether err is a disk-full condition, injected or real.
func IsNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// File is the handle contract the storage layer needs: sequential and
// positional I/O, durability (Sync), and truncation.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns file metadata.
	Stat() (fs.FileInfo, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem interface durable storage runs against. OS is the
// real implementation; FaultFS wraps any FS to inject failures. All methods
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp rules).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns metadata for name.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// Glob returns the paths matching pattern (filepath.Glob rules).
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory, making renames and creations durable.
	SyncDir(dir string) error
}

// Open opens name read-only on fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// OS is the passthrough filesystem. The zero value is ready to use; the OS
// variable is the conventional instance.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
