package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
)

// Op classifies filesystem operations for fault matching.
type Op int

const (
	// OpWrite matches File.Write and File.WriteAt.
	OpWrite Op = iota
	// OpSync matches File.Sync and FS.SyncDir.
	OpSync
	// OpRename matches FS.Rename.
	OpRename
	// OpCreate matches file creation (OpenFile with O_CREATE, CreateTemp).
	OpCreate
	// OpRemove matches FS.Remove.
	OpRemove
	// OpTruncate matches File.Truncate.
	OpTruncate
)

// String names the op for error messages.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ErrCrashed is returned for every mutating operation after a Crash fault
// fired: the simulated process is "dead" and the test should reopen the
// directory the way recovery would.
var ErrCrashed = errors.New("vfs: filesystem crashed (simulated)")

// Fault is one scripted failure. The zero Err means ErrNoSpace.
type Fault struct {
	// Op selects which operation kind the fault matches.
	Op Op
	// Path, when non-empty, restricts the fault to operations whose file
	// path contains it as a substring.
	Path string
	// After skips the first After matching operations; the fault fires on
	// the next one.
	After int
	// Err is the error returned when the fault fires; nil means ErrNoSpace.
	Err error
	// Torn, for OpWrite, writes a seeded strict prefix of the buffer before
	// failing — the on-disk residue of a torn write.
	Torn bool
	// Crash, when the fault fires, additionally flips the whole filesystem
	// into the crashed state: every further mutating operation returns
	// ErrCrashed. For OpRename a seeded coin decides whether the rename
	// itself completed before the crash — both orders must recover.
	Crash bool
	// Once disarms the fault after it fires; otherwise it keeps firing for
	// every further matching operation until Heal.
	Once bool

	matched int
	fired   bool
}

// FaultFS wraps an FS with a seeded fault plan. Faults are matched in
// injection order; the first armed fault whose op and path match decides the
// operation's fate. A FaultFS with no armed faults is transparent.
type FaultFS struct {
	base FS

	mu      sync.Mutex
	rng     *rand.Rand
	faults  []*Fault
	crashed bool
	fired   int
}

// NewFaultFS wraps base with a fault plan seeded for deterministic torn-write
// lengths and crash-at-rename coin flips.
func NewFaultFS(base FS, seed int64) *FaultFS {
	return &FaultFS{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Inject arms additional faults.
func (f *FaultFS) Inject(faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range faults {
		fa := faults[i]
		f.faults = append(f.faults, &fa)
	}
}

// Heal disarms every fault and clears the crashed state — the operator freed
// space, replaced the disk, or restarted the machine.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
	f.crashed = false
}

// Fired reports how many times any fault has fired.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Crashed reports whether a Crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// verdict is the outcome check decides for one operation.
type verdict struct {
	err  error
	torn int  // for writes: bytes of the buffer to write before failing (-1: all)
	ren  bool // for crash-at-rename: perform the rename before failing
}

// check consults the fault plan for one operation of kind op on path.
// n is the buffer length for writes (torn-length derivation).
func (f *FaultFS) check(op Op, path string, n int) *verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return &verdict{err: ErrCrashed}
	}
	for _, fa := range f.faults {
		if fa.Op != op || (fa.Once && fa.fired) {
			continue
		}
		if fa.Path != "" && !strings.Contains(path, fa.Path) {
			continue
		}
		if fa.matched < fa.After {
			fa.matched++
			continue
		}
		fa.fired = true
		f.fired++
		v := &verdict{err: fa.Err}
		if v.err == nil {
			v.err = ErrNoSpace
		}
		v.err = fmt.Errorf("vfs: injected %s fault on %s: %w", op, path, v.err)
		if fa.Torn && op == OpWrite && n > 0 {
			v.torn = f.rng.Intn(n) // strict prefix: [0, n)
		}
		if fa.Crash {
			f.crashed = true
			if op == OpRename {
				v.ren = f.rng.Intn(2) == 0
			}
			v.err = fmt.Errorf("%w: %v", ErrCrashed, v.err)
		}
		return v
	}
	return nil
}

// OpenFile opens name, faulting creation when O_CREATE is requested.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if v := f.check(OpCreate, name, 0); v != nil {
			return nil, v.err
		}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

// CreateTemp creates a temp file, subject to OpCreate faults (matched
// against dir and pattern).
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if v := f.check(OpCreate, dir+"/"+pattern, 0); v != nil {
		return nil, v.err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: file.Name()}, nil
}

// Rename renames, subject to OpRename faults. Under a Crash fault a seeded
// coin decides whether the rename completed before the simulated crash.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if v := f.check(OpRename, newpath, 0); v != nil {
		if v.ren {
			_ = f.base.Rename(oldpath, newpath)
		}
		return v.err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove deletes, subject to OpRemove faults.
func (f *FaultFS) Remove(name string) error {
	if v := f.check(OpRemove, name, 0); v != nil {
		return v.err
	}
	return f.base.Remove(name)
}

// Stat is never faulted: metadata reads don't mutate anything.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) { return f.base.Stat(name) }

// MkdirAll is never faulted.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

// Glob is never faulted.
func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.base.Glob(pattern) }

// SyncDir fsyncs a directory, subject to OpSync faults.
func (f *FaultFS) SyncDir(dir string) error {
	if v := f.check(OpSync, dir, 0); v != nil {
		return v.err
	}
	return f.base.SyncDir(dir)
}

// faultFile wraps a File with the owning FaultFS's fault plan.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if v := f.fs.check(OpWrite, f.path, len(p)); v != nil {
		n := 0
		if v.torn > 0 {
			n, _ = f.File.Write(p[:v.torn])
		}
		return n, v.err
	}
	return f.File.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if v := f.fs.check(OpWrite, f.path, len(p)); v != nil {
		n := 0
		if v.torn > 0 {
			n, _ = f.File.WriteAt(p[:v.torn], off)
		}
		return n, v.err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	if v := f.fs.check(OpSync, f.path, 0); v != nil {
		return v.err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if v := f.fs.check(OpTruncate, f.path, 0); v != nil {
		return v.err
	}
	return f.File.Truncate(size)
}
