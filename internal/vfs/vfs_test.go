package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := writeFile(t, OS, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	st, err := OS.Stat(filepath.Join(dir, "b"))
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat: %v size %d", err, st.Size())
	}
	got, err := OS.Glob(filepath.Join(dir, "*"))
	if err != nil || len(got) != 1 {
		t.Fatalf("glob: %v %v", got, err)
	}
}

func TestFaultENOSPCAfterN(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	ffs.Inject(Fault{Op: OpWrite, After: 2})
	f, err := ffs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	_, err = f.Write([]byte("boom"))
	if !IsNoSpace(err) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Sticky until healed.
	if _, err := f.Write([]byte("again")); !IsNoSpace(err) {
		t.Fatalf("fault not sticky: %v", err)
	}
	ffs.Heal()
	if _, err := f.Write([]byte("fine")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if ffs.Fired() != 2 {
		t.Fatalf("fired = %d, want 2", ffs.Fired())
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 7)
	ffs.Inject(Fault{Op: OpWrite, Torn: true, Once: true})
	path := filepath.Join(dir, "torn")
	err := writeFile(t, ffs, path, []byte("0123456789abcdef"))
	if err == nil {
		t.Fatal("torn write did not fail")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= 16 {
		t.Fatalf("torn write left %d bytes, want a strict prefix of 16", st.Size())
	}
	// Once: the next write goes through whole.
	if err := writeFile(t, ffs, path, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCrashAtRename(t *testing.T) {
	// Both coin outcomes must occur across seeds, and after the crash every
	// mutating op fails until Heal.
	outcomes := map[bool]bool{}
	for seed := int64(0); seed < 16; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, seed)
		ffs.Inject(Fault{Op: OpRename, Crash: true})
		old := filepath.Join(dir, "old")
		if err := writeFile(t, ffs, old, []byte("x")); err != nil {
			t.Fatal(err)
		}
		err := ffs.Rename(old, filepath.Join(dir, "new"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("rename err = %v, want ErrCrashed", err)
		}
		_, statErr := os.Stat(filepath.Join(dir, "new"))
		outcomes[statErr == nil] = true
		if !ffs.Crashed() {
			t.Fatal("not crashed after crash fault")
		}
		if err := writeFile(t, ffs, filepath.Join(dir, "z"), []byte("y")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write after crash: %v", err)
		}
		if err := ffs.Remove(old); !errors.Is(err, ErrCrashed) {
			t.Fatalf("remove after crash: %v", err)
		}
		ffs.Heal()
		if err := writeFile(t, ffs, filepath.Join(dir, "z"), []byte("y")); err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	}
	if !outcomes[true] || !outcomes[false] {
		t.Fatalf("crash-at-rename never exercised both orders: %v", outcomes)
	}
}

func TestFaultPathFilterAndSync(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 3)
	ffs.Inject(Fault{Op: OpSync, Path: "victim", Err: errors.New("injected: fsync")})
	ok := filepath.Join(dir, "bystander")
	if err := writeFile(t, ffs, ok, []byte("x")); err != nil {
		t.Fatalf("bystander faulted: %v", err)
	}
	err := writeFile(t, ffs, filepath.Join(dir, "victim"), []byte("x"))
	if err == nil || IsNoSpace(err) {
		t.Fatalf("victim sync err = %v", err)
	}
	// Directory syncs match OpSync faults too.
	ffs.Heal()
	ffs.Inject(Fault{Op: OpSync, Err: errors.New("injected: dirsync")})
	if err := ffs.SyncDir(dir); err == nil {
		t.Fatal("dir sync did not fault")
	}
}

func TestFaultCreate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 3)
	ffs.Inject(Fault{Op: OpCreate})
	if _, err := ffs.OpenFile(filepath.Join(dir, "n"), os.O_RDWR|os.O_CREATE, 0o644); !IsNoSpace(err) {
		t.Fatalf("create: %v", err)
	}
	if _, err := ffs.CreateTemp(dir, "tmp-*"); !IsNoSpace(err) {
		t.Fatalf("createtemp: %v", err)
	}
	// Opening an existing file is not creation.
	ffs.Heal()
	if err := writeFile(t, ffs, filepath.Join(dir, "e"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(Fault{Op: OpCreate})
	if _, err := ffs.OpenFile(filepath.Join(dir, "e"), os.O_RDWR, 0); err != nil {
		t.Fatalf("plain open faulted: %v", err)
	}
}
