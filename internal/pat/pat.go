// Package pat implements the Persistent Alias Table of §3.2 of the TEA
// paper: each vertex's newest-first out-edge list is partitioned into
// fixed-size trunks; an alias table is built per trunk and a prefix-sum array
// is kept at trunk granularity. A temporal candidate set — always a prefix of
// the edge list — is sampled by ITS over the trunk prefix sums followed by an
// alias draw inside a complete trunk, or a local ITS rebuild inside the one
// incomplete trunk (the two cases of Figure 5).
//
// Space per vertex is O(D); sampling is O(log(D/trunkSize) + trunkSize).
package pat

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// DefaultTrunkSize returns the in-memory trunk size policy of §3.2:
// ⌊√deg⌋ balances the ITS over trunks against the scan inside a trunk.
func DefaultTrunkSize(degree int) int {
	if degree <= 1 {
		return 1
	}
	ts := int(math.Sqrt(float64(degree)))
	if ts < 1 {
		ts = 1
	}
	return ts
}

// Config controls index construction.
type Config struct {
	// TrunkSize fixes one trunk size for every vertex; 0 selects the
	// per-vertex ⌊√deg⌋ policy. Out-of-core deployments use a small fixed
	// size so the trunk prefix sums fit in memory (§3.2).
	TrunkSize int
	// Threads used for parallel construction; <1 means GOMAXPROCS.
	Threads int
}

// Index is the PAT for a whole graph: flat per-edge alias storage plus
// trunk-granularity prefix sums, with per-vertex offsets. All slices are laid
// out before construction so vertices build lock-free in parallel (§4.2).
type Index struct {
	g       *temporal.Graph
	weights *sampling.GraphWeights

	trunkSize []int32 // per vertex
	prob      []float64
	alias     []int32
	trunkOff  []int64   // per vertex: start of its trunk prefix-sum block
	trunkCum  []float64 // concatenated per-vertex trunk prefix sums
}

// Build constructs the PAT index over g with the given edge weights.
func Build(w *sampling.GraphWeights, cfg Config) *Index {
	g := w.Graph()
	threads := cfg.Threads
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	numV := g.NumVertices()
	idx := &Index{
		g:         g,
		weights:   w,
		trunkSize: make([]int32, numV),
		prob:      make([]float64, g.NumEdges()),
		alias:     make([]int32, g.NumEdges()),
		trunkOff:  make([]int64, numV+1),
	}
	// Phase 1: fix per-vertex trunk sizes and prefix-sum offsets.
	for u := 0; u < numV; u++ {
		deg := g.Degree(temporal.Vertex(u))
		ts := cfg.TrunkSize
		if ts <= 0 {
			ts = DefaultTrunkSize(deg)
		}
		idx.trunkSize[u] = int32(ts)
		idx.trunkOff[u+1] = idx.trunkOff[u] + int64(numTrunks(deg, ts)) + 1
	}
	idx.trunkCum = make([]float64, idx.trunkOff[numV])

	// Phase 2: per-vertex construction, parallel and lock-free because every
	// vertex writes disjoint pre-computed ranges.
	var wg sync.WaitGroup
	chunk := (numV + threads - 1) / threads
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < numV; start += chunk {
		end := start + chunk
		if end > numV {
			end = numV
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch []int32
			for u := lo; u < hi; u++ {
				scratch = idx.buildVertex(temporal.Vertex(u), scratch)
			}
		}(start, end)
	}
	wg.Wait()
	return idx
}

// numTrunks returns the trunk count for a vertex of the given degree,
// including a final partial trunk.
func numTrunks(degree, trunkSize int) int {
	if degree == 0 {
		return 0
	}
	return (degree + trunkSize - 1) / trunkSize
}

func (idx *Index) buildVertex(u temporal.Vertex, scratch []int32) []int32 {
	deg := idx.g.Degree(u)
	if deg == 0 {
		return scratch
	}
	ts := int(idx.trunkSize[u])
	elo, _ := idx.g.EdgeRange(u)
	w := idx.weights.Vertex(u)
	if cap(scratch) < 2*ts {
		scratch = make([]int32, 2*ts)
	}
	cum := idx.trunkCum[idx.trunkOff[u]:idx.trunkOff[u+1]]
	sum := 0.0
	for t := 0; t*ts < deg; t++ {
		lo := t * ts
		hi := lo + ts
		if hi > deg {
			hi = deg
		}
		sampling.FillAlias(w[lo:hi], idx.prob[elo+lo:elo+hi], idx.alias[elo+lo:elo+hi], scratch[:2*(hi-lo)])
		for _, x := range w[lo:hi] {
			sum += x
		}
		cum[t+1] = sum
	}
	return scratch
}

// Name identifies the sampler in experiment output.
func (idx *Index) Name() string { return "PAT" }

// TrunkSizeOf returns the trunk size chosen for vertex u.
func (idx *Index) TrunkSizeOf(u temporal.Vertex) int { return int(idx.trunkSize[u]) }

// Sample draws one edge index from the k newest out-edges of u with
// probability proportional to edge weight. evaluated counts the edges/array
// slots examined (the Figure 2 metric). ok is false when k == 0 or the
// candidate prefix has zero weight.
func (idx *Index) Sample(u temporal.Vertex, k int, r *xrand.Rand) (edge int, evaluated int64, ok bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := idx.g.Degree(u)
	if k > deg {
		k = deg
	}
	ts := int(idx.trunkSize[u])
	cum := idx.trunkCum[idx.trunkOff[u]:idx.trunkOff[u+1]]
	w := idx.weights.Vertex(u)

	fullTrunks := k / ts
	rem := k - fullTrunks*ts
	if k == deg && rem != 0 {
		// The final (short) trunk is entirely inside the candidate set, so
		// its prebuilt alias table applies: promote it to a full trunk.
		fullTrunks = numTrunks(deg, ts)
		rem = 0
	}

	// Total weight = complete trunks + scanned partial trunk.
	partialW := 0.0
	plo := fullTrunks * ts
	for i := plo; i < plo+rem; i++ {
		partialW += w[i]
	}
	evaluated += int64(rem)
	total := cum[fullTrunks] + partialW
	if !(total > 0) {
		return 0, evaluated, false
	}

	x := r.Range(total)
	if x < cum[fullTrunks] {
		// Case 1 (Figure 5 ①): ITS over complete trunks, alias inside.
		j := sort.Search(fullTrunks, func(t int) bool { return cum[t+1] > x })
		evaluated += int64(bitsLen(fullTrunks))
		if j >= fullTrunks {
			j = fullTrunks - 1
		}
		lo := j * ts
		hi := lo + ts
		if hi > deg {
			hi = deg
		}
		elo, _ := idx.g.EdgeRange(u)
		slot, sok := sampling.SampleAliasSlots(idx.prob[elo+lo:elo+hi], idx.alias[elo+lo:elo+hi], r)
		evaluated += 2 // alias slot + potential redirect
		if !sok {
			return 0, evaluated, false
		}
		return lo + slot, evaluated, true
	}
	// Case 2 (Figure 5 ②): local ITS inside the incomplete trunk.
	i, sok := sampling.LinearITS(w[plo:plo+rem], partialW, r)
	evaluated += int64(rem)
	if !sok {
		return 0, evaluated, false
	}
	return plo + i, evaluated, true
}

// MemoryBytes reports the index footprint: alias storage, trunk prefix sums,
// offsets, and the shared weight array (counted once here because PAT owns
// it during sampling).
func (idx *Index) MemoryBytes() int64 {
	return int64(len(idx.prob))*8 +
		int64(len(idx.alias))*4 +
		int64(len(idx.trunkCum))*8 +
		int64(len(idx.trunkOff))*8 +
		int64(len(idx.trunkSize))*4 +
		idx.weights.MemoryBytes()
}

// TrunkLayout describes vertex u's trunk partitioning for out-of-core
// placement: the edge index boundaries of each trunk, newest first.
func (idx *Index) TrunkLayout(u temporal.Vertex) []int {
	deg := idx.g.Degree(u)
	ts := int(idx.trunkSize[u])
	bounds := []int{0}
	for b := ts; b < deg; b += ts {
		bounds = append(bounds, b)
	}
	if deg > 0 {
		bounds = append(bounds, deg)
	}
	return bounds
}

// bitsLen returns ⌈log2(n+1)⌉, the number of comparisons a binary search over
// n elements performs; used for cost accounting.
func bitsLen(n int) int {
	c := 0
	for n > 0 {
		n >>= 1
		c++
	}
	return c
}
