package pat

import (
	"reflect"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func TestDefaultTrunkSize(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 4: 2, 9: 3, 10: 3, 100: 10, 101: 10}
	for deg, want := range cases {
		if got := DefaultTrunkSize(deg); got != want {
			t.Errorf("DefaultTrunkSize(%d) = %d, want %d", deg, got, want)
		}
	}
}

// Figure 5 scenario: vertex 7 of the commute graph with linear-rank weights
// 7..1, trunk size 2 → trunks {6,5},{4,3},{2,1},{0} and trunk prefix sums
// {0,13,22,27,28}.
func TestFigure5TrunkPrefixSums(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2, Threads: 1})
	if idx.TrunkSizeOf(7) != 2 {
		t.Fatalf("trunk size %d", idx.TrunkSizeOf(7))
	}
	cum := idx.trunkCum[idx.trunkOff[7]:idx.trunkOff[8]]
	want := []float64{0, 13, 22, 27, 28}
	if !reflect.DeepEqual([]float64(cum), want) {
		t.Fatalf("trunk prefix sums = %v, want %v", cum, want)
	}
}

// Case ① of Figure 5: arriving at 7 from 0 (t=3) leaves candidates {6,5,4,3}
// — exactly two complete trunks. The sampled distribution must be
// proportional to weights 7,6,5,4 over edge indices 0..3.
func TestFigure5CompleteTrunkCase(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2, Threads: 1})
	r := xrand.New(1)
	k := g.CandidateCount(7, 3)
	if k != 4 {
		t.Fatalf("candidates after t=3: %d", k)
	}
	testutil.CheckDistribution(t, "fig5-complete", []float64{7, 6, 5, 4}, 40000, func() (int, bool) {
		e, _, ok := idx.Sample(7, k, r)
		return e, ok
	})
}

// Case ② of Figure 5: arriving at 7 from 9 (t=4) leaves candidates {6,5,4} —
// one complete trunk plus an incomplete one handled by local ITS.
func TestFigure5IncompleteTrunkCase(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2, Threads: 1})
	r := xrand.New(2)
	k := g.CandidateCount(7, 4)
	if k != 3 {
		t.Fatalf("candidates after t=4: %d", k)
	}
	testutil.CheckDistribution(t, "fig5-incomplete", []float64{7, 6, 5}, 40000, func() (int, bool) {
		e, _, ok := idx.Sample(7, k, r)
		return e, ok
	})
}

func TestFullDegreePromotesShortTrunk(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2, Threads: 1})
	r := xrand.New(3)
	testutil.CheckDistribution(t, "full-degree", []float64{7, 6, 5, 4, 3, 2, 1}, 70000, func() (int, bool) {
		e, _, ok := idx.Sample(7, 7, r)
		return e, ok
	})
}

func TestSampleEveryPrefixMatchesExact(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	for _, ts := range []int{1, 2, 3, 7, 10} {
		idx := Build(w, Config{TrunkSize: ts, Threads: 1})
		r := xrand.New(int64ToU64(4 + int64(ts)))
		for k := 1; k <= 7; k++ {
			want := make([]float64, k)
			for i := 0; i < k; i++ {
				want[i] = float64(7 - i)
			}
			testutil.CheckDistribution(t, "prefix", want, 20000, func() (int, bool) {
				e, _, ok := idx.Sample(7, k, r)
				return e, ok
			})
		}
	}
}

func TestSampleZeroCandidates(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{})
	r := xrand.New(5)
	if _, _, ok := idx.Sample(7, 0, r); ok {
		t.Fatal("k=0 sampled")
	}
	if _, _, ok := idx.Sample(1, 1, r); ok {
		t.Fatal("degree-0 vertex sampled") // vertex 1 has no out-edges
	}
}

func TestSampleKAboveDegreeClamped(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2})
	r := xrand.New(6)
	for i := 0; i < 1000; i++ {
		e, _, ok := idx.Sample(7, 100, r)
		if !ok || e < 0 || e >= 7 {
			t.Fatalf("clamped sample = (%d, %v)", e, ok)
		}
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	g := testutil.RandomGraph(t, 400, 20000, 1000, 7)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))
	a := Build(w, Config{Threads: 1})
	b := Build(w, Config{Threads: 8})
	if !reflect.DeepEqual(a.prob, b.prob) || !reflect.DeepEqual(a.alias, b.alias) ||
		!reflect.DeepEqual(a.trunkCum, b.trunkCum) {
		t.Fatal("parallel build differs from serial build")
	}
}

func TestRandomGraphDistribution(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 2000, 500, 11)
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearTime})
	idx := Build(w, Config{})
	r := xrand.New(12)
	// Pick the highest-degree vertex and test three prefixes.
	best := temporal.Vertex(0)
	for u := 0; u < g.NumVertices(); u++ {
		if g.Degree(temporal.Vertex(u)) > g.Degree(best) {
			best = temporal.Vertex(u)
		}
	}
	deg := g.Degree(best)
	if deg < 8 {
		t.Fatalf("test graph too sparse: max degree %d", deg)
	}
	for _, k := range []int{1, deg / 2, deg} {
		want := append([]float64(nil), w.Vertex(best)[:k]...)
		testutil.CheckDistribution(t, "random", want, 30000, func() (int, bool) {
			e, _, ok := idx.Sample(best, k, r)
			return e, ok
		})
	}
}

func TestHubVertexSkewedWeights(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 4096)
	w := testutil.Weights(t, g, sampling.Exponential(0.002))
	idx := Build(w, Config{})
	r := xrand.New(13)
	deg := g.Degree(0)
	counts := make([]int, deg)
	for i := 0; i < 50000; i++ {
		e, _, ok := idx.Sample(0, deg, r)
		if !ok {
			t.Fatal("hub sample failed")
		}
		counts[e]++
	}
	// Newest edges must dominate: first decile should out-sample last decile.
	first, last := 0, 0
	for i := 0; i < deg/10; i++ {
		first += counts[i]
		last += counts[deg-1-i]
	}
	if first <= last*2 {
		t.Fatalf("exponential bias missing: first decile %d, last %d", first, last)
	}
}

func TestEvaluatedCostBounded(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 10000)
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{})
	r := xrand.New(14)
	deg := g.Degree(0)
	ts := idx.TrunkSizeOf(0)
	var maxEval int64
	for i := 0; i < 5000; i++ {
		k := 1 + r.IntN(deg)
		_, ev, ok := idx.Sample(0, k, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if ev > maxEval {
			maxEval = ev
		}
	}
	// Cost must stay O(trunkSize + log(D/trunkSize)), far below O(D).
	bound := int64(2*ts + 64)
	if maxEval > bound {
		t.Fatalf("evaluated %d exceeds bound %d (trunkSize %d, degree %d)", maxEval, bound, ts, deg)
	}
}

func TestTrunkLayout(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{TrunkSize: 2})
	if got := idx.TrunkLayout(7); !reflect.DeepEqual(got, []int{0, 2, 4, 6, 7}) {
		t.Fatalf("TrunkLayout(7) = %v", got)
	}
	if got := idx.TrunkLayout(1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("TrunkLayout(1) = %v (degree 0)", got)
	}
}

func TestMemoryBytesLinearInEdges(t *testing.T) {
	small := testutil.RandomGraph(t, 100, 1000, 100, 15)
	large := testutil.RandomGraph(t, 100, 4000, 100, 15)
	ws := testutil.Weights(t, small, sampling.WeightSpec{})
	wl := testutil.Weights(t, large, sampling.WeightSpec{})
	ms := Build(ws, Config{}).MemoryBytes()
	ml := Build(wl, Config{}).MemoryBytes()
	if ms <= 0 || ml <= ms {
		t.Fatalf("memory not increasing: %d -> %d", ms, ml)
	}
	if ratio := float64(ml) / float64(ms); ratio > 6 {
		t.Fatalf("PAT memory superlinear: 4x edges -> %.1fx bytes", ratio)
	}
}

func TestName(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	if Build(w, Config{}).Name() != "PAT" {
		t.Fatal("name mismatch")
	}
}

func int64ToU64(v int64) uint64 { return uint64(v) }

func BenchmarkPATSample(b *testing.B) {
	g := testutil.SkewedGraph(b, 64, 1<<14)
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(0.001), 0)
	if err != nil {
		b.Fatal(err)
	}
	idx := Build(w, Config{})
	r := xrand.New(1)
	deg := g.Degree(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Sample(0, 1+r.IntN(deg), r)
	}
}

func BenchmarkPATBuild(b *testing.B) {
	g := testutil.RandomGraph(b, 2000, 200000, 10000, 1)
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(0.001), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(w, Config{})
	}
}
