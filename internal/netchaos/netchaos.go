// Package netchaos is the network counterpart of internal/vfs.FaultFS: a
// seeded, scripted fault plan threaded through net.Conn / net.Listener / dial
// so the shard RPC layer can be exercised against the failures a real cluster
// network produces — refused dials, mid-stream resets, silent packet loss
// (stalls), latency spikes, asymmetric partitions, and corrupted bytes (which
// the wire CRC must catch).
//
// A Plan is a list of Faults matched in injection order, exactly like the
// FaultFS plan: the first armed fault whose Op, Kind and Peer match decides
// the operation's fate, After skips the first N matching operations (the
// "injection point" of the chaos oracle), and Once disarms a fault after it
// fires. A Plan with no armed faults is transparent; the wrappers delegate
// straight through, so a production binary can carry a nil/empty plan at zero
// cost.
//
// Determinism: the byte-flip position is drawn from the plan's seeded RNG and
// fault matching is ordered by a single mutex, so a given (seed, plan,
// workload) replays the same failure — the property the chaos determinism
// oracle needs to sweep injection points.
package netchaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op classifies network operations for fault matching.
type Op int

const (
	// OpDial matches outbound connection attempts (peer = dialed address).
	OpDial Op = iota
	// OpAccept matches inbound connection establishment (peer = remote addr).
	OpAccept
	// OpRead matches Conn.Read.
	OpRead
	// OpWrite matches Conn.Write.
	OpWrite
)

// String names the op for error messages.
func (o Op) String() string {
	switch o {
	case OpDial:
		return "dial"
	case OpAccept:
		return "accept"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Kind selects what a firing fault does to the matched operation.
type Kind int

const (
	// KindDrop fails the operation immediately (dial refused, read/write
	// error) and closes the connection — the deterministic stand-in for a
	// severed link. Partition uses it for every op toward a peer.
	KindDrop Kind = iota
	// KindDelay sleeps Fault.Delay before letting the operation proceed — a
	// latency spike. The connection's deadline still applies to the real
	// operation afterwards.
	KindDelay
	// KindStall blocks the operation until the connection's deadline expires
	// or the connection is closed — silent packet loss, the failure mode that
	// distinguishes timeout handling from error handling.
	KindStall
	// KindReset closes the connection and fails the operation with a
	// connection-reset error — the peer's kernel sent RST mid-stream.
	KindReset
	// KindFlip performs the real operation but flips one seeded bit of the
	// transferred bytes — line corruption the wire CRC must catch (the frame
	// poisons the connection and the client retries on a fresh one).
	KindFlip
)

// String names the kind for error messages and plan parsing.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindStall:
		return "stall"
	case KindReset:
		return "reset"
	case KindFlip:
		return "flip"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the base error of every netchaos-caused failure, so tests
// and log scrapers can tell injected faults from real ones.
var ErrInjected = errors.New("netchaos: injected fault")

// timeoutError satisfies net.Error with Timeout() == true — what a stalled
// operation surfaces once the deadline passes, matching the real kernel's
// behavior for lost packets.
type timeoutError struct{ op Op }

func (e timeoutError) Error() string   { return fmt.Sprintf("netchaos: %s stalled past deadline", e.op) }
func (e timeoutError) Timeout() bool   { return true }
func (e timeoutError) Temporary() bool { return true }

// Fault is one scripted network failure.
type Fault struct {
	// Op selects which operation kind the fault matches.
	Op Op
	// Kind selects what happens when it fires.
	Kind Kind
	// Peer, when non-empty, restricts the fault to operations whose peer
	// address contains it as a substring (partition-by-peer).
	Peer string
	// After skips the first After matching operations; the fault fires on the
	// next one. This is the seeded injection point of the chaos oracle.
	After int
	// Delay is the injected latency for KindDelay.
	Delay time.Duration
	// Err overrides the error returned when the fault fires (ignored by
	// KindDelay and KindFlip, which let the operation proceed).
	Err error
	// Once disarms the fault after it fires; otherwise it keeps firing for
	// every further matching operation until Heal.
	Once bool

	matched int
	fired   bool
}

// Plan is a seeded set of armed faults shared by every conn, listener, and
// dialer wrapped with it. Safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []*Fault
	fired  int
}

// NewPlan builds an empty plan whose byte-flip positions are drawn from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// Inject arms additional faults.
func (p *Plan) Inject(faults ...Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range faults {
		f := faults[i]
		p.faults = append(p.faults, &f)
	}
}

// Partition severs all traffic toward peers whose address contains peer:
// dials are refused and reads/writes on existing connections fail and close
// them. after delays the cut by that many matching operations. Heal restores
// the link.
func (p *Plan) Partition(peer string, after int) {
	p.Inject(
		Fault{Op: OpDial, Kind: KindDrop, Peer: peer, After: after},
		Fault{Op: OpRead, Kind: KindDrop, Peer: peer, After: after},
		Fault{Op: OpWrite, Kind: KindDrop, Peer: peer, After: after},
	)
}

// Heal disarms every fault — the switch came back, the cable was replugged.
func (p *Plan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = nil
}

// Fired reports how many times any fault has fired.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// verdict is the outcome check decides for one operation.
type verdict struct {
	kind  Kind
	delay time.Duration
	err   error
	flip  int // byte index to corrupt, for KindFlip (bit drawn separately)
	bit   uint
}

// check consults the fault plan for one operation of kind op toward peer.
// n is the buffer length (flip-position derivation); a nil verdict means the
// operation proceeds untouched.
func (p *Plan) check(op Op, peer string, n int) *verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Op != op || (f.Once && f.fired) {
			continue
		}
		if f.Peer != "" && !strings.Contains(peer, f.Peer) {
			continue
		}
		if f.matched < f.After {
			f.matched++
			continue
		}
		f.fired = true
		p.fired++
		v := &verdict{kind: f.Kind, delay: f.Delay}
		switch f.Kind {
		case KindDelay, KindFlip:
			// These let the operation proceed; no error to synthesize.
		default:
			err := f.Err
			if err == nil {
				err = ErrInjected
			}
			v.err = fmt.Errorf("netchaos: injected %s %s toward %s: %w", f.Kind, op, peer, err)
		}
		if f.Kind == KindFlip && n > 0 {
			v.flip = p.rng.Intn(n)
			v.bit = uint(p.rng.Intn(8))
		}
		return v
	}
	return nil
}

// Dial dials network/addr through the plan: OpDial faults decide the
// attempt's fate and the returned connection is wrapped so OpRead/OpWrite
// faults apply for its lifetime. Use as wire.ClientConfig.Dialer.
func (p *Plan) Dial(ctx context.Context, network, addr string) (net.Conn, error) {
	if v := p.check(OpDial, addr, 0); v != nil {
		switch v.kind {
		case KindDelay:
			select {
			case <-time.After(v.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case KindStall:
			<-ctx.Done()
			return nil, fmt.Errorf("netchaos: injected stall dial toward %s: %w", addr, ctx.Err())
		default:
			return nil, v.err
		}
	}
	var d net.Dialer
	raw, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return p.Conn(raw, addr), nil
}

// Conn wraps an established connection; peer is the address faults match
// against (defaults to the connection's remote address when empty).
func (p *Plan) Conn(c net.Conn, peer string) net.Conn {
	if peer == "" && c.RemoteAddr() != nil {
		peer = c.RemoteAddr().String()
	}
	return &chaosConn{Conn: c, plan: p, peer: peer, closed: make(chan struct{}), dlCh: make(chan struct{})}
}

// Listener wraps ln so accepted connections pass through the plan: OpAccept
// drop/reset faults close the connection as it arrives, and every surviving
// connection is wrapped for OpRead/OpWrite faults. This is the server-loop
// half of the chaos threading (the client-pool half is Dial).
func (p *Plan) Listener(ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, plan: p}
}

type chaosListener struct {
	net.Listener
	plan *Plan
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		peer := ""
		if c.RemoteAddr() != nil {
			peer = c.RemoteAddr().String()
		}
		if v := l.plan.check(OpAccept, peer, 0); v != nil {
			switch v.kind {
			case KindDelay:
				time.Sleep(v.delay)
			default:
				// The connection is torn down as it arrives; the dialer sees
				// an immediate EOF/reset on first use.
				c.Close()
				continue
			}
		}
		return l.plan.Conn(c, peer), nil
	}
}

// chaosConn threads the plan through one connection. Deadlines are tracked
// locally (as well as delegated) so a stalled operation still honors them —
// the real conn never sees a stalled op, so its own deadline machinery can't
// fire for it.
type chaosConn struct {
	net.Conn
	plan *Plan
	peer string

	mu        sync.Mutex
	readDL    time.Time
	writeDL   time.Time
	dlCh      chan struct{} // closed and replaced on every deadline update
	closed    chan struct{}
	closeOnce sync.Once
}

func (c *chaosConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *chaosConn) SetDeadline(t time.Time) error {
	c.setDL(t, true, true)
	return c.Conn.SetDeadline(t)
}

func (c *chaosConn) SetReadDeadline(t time.Time) error {
	c.setDL(t, true, false)
	return c.Conn.SetReadDeadline(t)
}

func (c *chaosConn) SetWriteDeadline(t time.Time) error {
	c.setDL(t, false, true)
	return c.Conn.SetWriteDeadline(t)
}

func (c *chaosConn) setDL(t time.Time, read, write bool) {
	c.mu.Lock()
	if read {
		c.readDL = t
	}
	if write {
		c.writeDL = t
	}
	close(c.dlCh) // wake stalled ops so they re-read the deadline
	c.dlCh = make(chan struct{})
	c.mu.Unlock()
}

// stall blocks until the relevant deadline passes or the conn closes,
// re-checking whenever the deadline is updated (the wire client poisons the
// deadline to interrupt in-flight exchanges on context cancellation).
func (c *chaosConn) stall(op Op) error {
	for {
		c.mu.Lock()
		dl := c.readDL
		if op == OpWrite {
			dl = c.writeDL
		}
		ch := c.dlCh
		c.mu.Unlock()
		var timer <-chan time.Time
		if !dl.IsZero() {
			wait := time.Until(dl)
			if wait <= 0 {
				return timeoutError{op: op}
			}
			t := time.NewTimer(wait)
			defer t.Stop()
			timer = t.C
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-timer:
			return timeoutError{op: op}
		case <-ch:
			// Deadline changed; loop and re-evaluate.
		}
	}
}

func (c *chaosConn) Read(p []byte) (int, error) {
	v := c.plan.check(OpRead, c.peer, len(p))
	if v == nil {
		return c.Conn.Read(p)
	}
	switch v.kind {
	case KindDelay:
		time.Sleep(v.delay)
		return c.Conn.Read(p)
	case KindStall:
		return 0, c.stall(OpRead)
	case KindFlip:
		n, err := c.Conn.Read(p)
		if n > 0 {
			p[v.flip%n] ^= 1 << v.bit
		}
		return n, err
	default: // drop, reset
		c.Close()
		return 0, v.err
	}
}

func (c *chaosConn) Write(p []byte) (int, error) {
	v := c.plan.check(OpWrite, c.peer, len(p))
	if v == nil {
		return c.Conn.Write(p)
	}
	switch v.kind {
	case KindDelay:
		time.Sleep(v.delay)
		return c.Conn.Write(p)
	case KindStall:
		return 0, c.stall(OpWrite)
	case KindFlip:
		// Corrupt a copy — the caller's buffer must stay pristine (the wire
		// client reuses it for retries, which must resend correct bytes).
		dup := make([]byte, len(p))
		copy(dup, p)
		if len(dup) > 0 {
			dup[v.flip] ^= 1 << v.bit
		}
		return c.Conn.Write(dup)
	default: // drop, reset
		c.Close()
		return 0, v.err
	}
}

// Parse builds a plan from a CLI spec: semicolon-separated faults of the form
//
//	kind[:key=value[,key=value...]]
//
// kinds: drop | delay | stall | reset | flip | partition
// keys:  op=dial|accept|read|write (default: read for conn kinds, dial for
//
//	drop), peer=<substring>, after=<N>, delay=<duration>, once
//
// partition expands to persistent drop faults on dial+read+write toward peer.
// Examples:
//
//	partition:peer=10.0.0.3
//	reset:op=write,peer=:9301,after=12,once
//	delay:op=read,delay=50ms
//	flip:op=write,once
func Parse(spec string, seed int64) (*Plan, error) {
	p := NewPlan(seed)
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, args, _ := strings.Cut(raw, ":")
		f := Fault{Op: OpRead}
		partition := false
		switch name {
		case "drop":
			f.Kind = KindDrop
			f.Op = OpDial
		case "delay":
			f.Kind = KindDelay
		case "stall":
			f.Kind = KindStall
		case "reset":
			f.Kind = KindReset
		case "flip":
			f.Kind = KindFlip
		case "partition":
			partition = true
		default:
			return nil, fmt.Errorf("netchaos: unknown fault kind %q in %q", name, raw)
		}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, _ := strings.Cut(kv, "=")
				switch key {
				case "op":
					switch val {
					case "dial":
						f.Op = OpDial
					case "accept":
						f.Op = OpAccept
					case "read":
						f.Op = OpRead
					case "write":
						f.Op = OpWrite
					default:
						return nil, fmt.Errorf("netchaos: unknown op %q in %q", val, raw)
					}
				case "peer":
					f.Peer = val
				case "after":
					n, err := strconv.Atoi(val)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("netchaos: bad after=%q in %q", val, raw)
					}
					f.After = n
				case "delay":
					d, err := time.ParseDuration(val)
					if err != nil {
						return nil, fmt.Errorf("netchaos: bad delay=%q in %q", val, raw)
					}
					f.Delay = d
				case "once":
					f.Once = true
				default:
					return nil, fmt.Errorf("netchaos: unknown key %q in %q", key, raw)
				}
			}
		}
		if partition {
			p.Partition(f.Peer, f.After)
			continue
		}
		if f.Kind == KindDelay && f.Delay <= 0 {
			return nil, fmt.Errorf("netchaos: delay fault needs delay=<duration> in %q", raw)
		}
		p.Inject(f)
	}
	return p, nil
}
