package netchaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on a plain listener and echoes whatever it
// reads, so the client-side wrappers have a live peer to talk to.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func dialChaos(t *testing.T, p *Plan, addr string) net.Conn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c, err := p.Dial(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTransparentWithoutFaults(t *testing.T) {
	addr := echoServer(t)
	c := dialChaos(t, NewPlan(1), addr)
	msg := []byte("hello")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo got %q", got)
	}
}

func TestDropDialRefused(t *testing.T) {
	addr := echoServer(t)
	p := NewPlan(1)
	p.Inject(Fault{Op: OpDial, Kind: KindDrop, Once: true})
	ctx := context.Background()
	if _, err := p.Dial(ctx, "tcp", addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected dial error, got %v", err)
	}
	// Once: the next dial goes through.
	c, err := p.Dial(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if p.Fired() != 1 {
		t.Fatalf("fired = %d", p.Fired())
	}
}

func TestAfterSkipsOperations(t *testing.T) {
	addr := echoServer(t)
	p := NewPlan(1)
	p.Inject(Fault{Op: OpWrite, Kind: KindReset, After: 2})
	c := dialChaos(t, p, addr)
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: want injected reset, got %v", err)
	}
	// The conn was torn down with the reset.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestPartitionByPeer(t *testing.T) {
	addrA := echoServer(t)
	addrB := echoServer(t)
	p := NewPlan(1)
	p.Partition(addrA, 0)
	ctx := context.Background()
	if _, err := p.Dial(ctx, "tcp", addrA); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned peer dialed: %v", err)
	}
	// The other peer is unaffected.
	c, err := p.Dial(ctx, "tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Heal restores the link.
	p.Heal()
	c, err = p.Dial(ctx, "tcp", addrA)
	if err != nil {
		t.Fatalf("healed dial: %v", err)
	}
	c.Close()
}

func TestStallHonorsDeadline(t *testing.T) {
	addr := echoServer(t)
	p := NewPlan(1)
	p.Inject(Fault{Op: OpRead, Kind: KindStall, Once: true})
	c := dialChaos(t, p, addr)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 4))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("stall returned after %v", d)
	}
}

func TestStallWakesOnDeadlineUpdate(t *testing.T) {
	addr := echoServer(t)
	p := NewPlan(1)
	p.Inject(Fault{Op: OpRead, Kind: KindStall, Once: true})
	c := dialChaos(t, p, addr)
	// No deadline: the stall would block forever. Poisoning the deadline from
	// another goroutine (what the wire client does on context cancellation)
	// must wake it.
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.SetDeadline(time.Now().Add(-time.Second))
	select {
	case err := <-errCh:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("want timeout, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not wake on deadline update")
	}
}

func TestFlipCorruptsOneBitOnWrite(t *testing.T) {
	addr := echoServer(t)
	p := NewPlan(7)
	p.Inject(Fault{Op: OpWrite, Kind: KindFlip, Once: true})
	c := dialChaos(t, p, addr)
	msg := bytes.Repeat([]byte{0x00}, 64)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	// The caller's buffer must stay pristine.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0x00}, 64)) {
		t.Fatal("flip mutated the caller's buffer")
	}
	got := make([]byte, 64)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if got[i]&(1<<b) != msg[i]&(1<<b) {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
}

func TestListenerDropsAcceptedConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(1)
	p.Inject(Fault{Op: OpAccept, Kind: KindDrop, Once: true})
	cln := p.Listener(ln)
	defer cln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := cln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	// First conn is dropped as it arrives; the second survives and Accept
	// returns it.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	select {
	case c := <-done:
		if c == nil {
			t.Fatal("accept failed")
		}
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not deliver the surviving conn")
	}
	// The dropped conn reads EOF.
	c1.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("dropped conn still readable")
	}
}

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		faults  int
	}{
		{"", false, 0},
		{"partition:peer=10.0.0.3", false, 3},
		{"reset:op=write,peer=:9301,after=12,once", false, 1},
		{"delay:op=read,delay=50ms", false, 1},
		{"flip:op=write,once;drop:peer=h1", false, 2},
		{"stall", false, 1},
		{"delay", true, 0},            // delay without duration
		{"explode", true, 0},          // unknown kind
		{"drop:op=sideways", true, 0}, // unknown op
		{"drop:after=-1", true, 0},
	}
	for _, tc := range cases {
		p, err := Parse(tc.spec, 1)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		p.mu.Lock()
		n := len(p.faults)
		p.mu.Unlock()
		if n != tc.faults {
			t.Errorf("Parse(%q): %d faults, want %d", tc.spec, n, tc.faults)
		}
	}
}

func TestSeededFlipIsDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		addr := echoServer(t)
		p := NewPlan(seed)
		p.Inject(Fault{Op: OpWrite, Kind: KindFlip, Once: true})
		c := dialChaos(t, p, addr)
		msg := bytes.Repeat([]byte{0x00}, 32)
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 32)
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different corruption: %x vs %x", a, b)
	}
}
