package blockcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// memStore is an in-memory Store with read accounting and optional
// read-path hooks for fault and blocking behavior.
type memStore struct {
	mu   sync.Mutex
	data []byte

	reads     atomic.Int64
	readBytes atomic.Int64

	// readHook, when non-nil, runs before each read (outside the data lock)
	// and may return an error to fail the read.
	readHook func(off int64, n int) error
}

func newMemStore(size int) *memStore {
	m := &memStore{data: make([]byte, size)}
	for i := range m.data {
		m.data[i] = byte(i)
	}
	return m
}

func (m *memStore) ReadAt(p []byte, off int64) error {
	if m.readHook != nil {
		if err := m.readHook(off, len(p)); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("memstore: read [%d, %d) out of range", off, off+int64(len(p)))
	}
	copy(p, m.data[off:])
	m.reads.Add(1)
	m.readBytes.Add(int64(len(p)))
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("memstore: write [%d, %d) out of range", off, off+int64(len(p)))
	}
	copy(m.data[off:], p)
	return nil
}

func (m *memStore) Append(p []byte) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	off := int64(len(m.data))
	m.data = append(m.data, p...)
	return off, nil
}

func (m *memStore) Counters() (int64, int64, int64, int64) {
	return m.readBytes.Load(), m.reads.Load(), 0, 0
}

func (m *memStore) PagesRead() int64 { return m.reads.Load() }

// oneShard returns a config that collapses to a single shard so eviction
// order is deterministic in tests.
func oneShard(capacity int64, pol Policy) Config {
	return Config{CapacityBytes: capacity, Policy: pol, Shards: 1}
}

func mustRead(t *testing.T, s *CachedStore, off int64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if err := s.ReadAt(p, off); err != nil {
		t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
	}
	return p
}

func TestHitServesCachedBytes(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	first := mustRead(t, c, 100, 64)
	second := mustRead(t, c, 100, 64)
	if !bytes.Equal(first, second) {
		t.Fatal("hit returned different bytes than the miss")
	}
	want := inner.data[100:164]
	if !bytes.Equal(first, want) {
		t.Fatal("cached read returned wrong bytes")
	}
	if got := inner.reads.Load(); got != 1 {
		t.Fatalf("device reads = %d, want 1 (second read must be a hit)", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if s.ResidentBytes != 64 || s.ResidentBlocks != 1 {
		t.Fatalf("resident = %d bytes / %d blocks, want 64 / 1", s.ResidentBytes, s.ResidentBlocks)
	}
	if s.BytesFromCache != 64 || s.BytesFromDevice != 64 {
		t.Fatalf("served split = %d cache / %d device, want 64 / 64", s.BytesFromCache, s.BytesFromDevice)
	}
}

// Capacity boundary: with room for exactly two 64-byte blocks, a third
// insert must evict, and LRU must pick the least recently used victim.
func TestCapacityBoundaryEvictionLRU(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(128, PolicyLRU))
	mustRead(t, c, 0, 64)   // A
	mustRead(t, c, 64, 64)  // B
	mustRead(t, c, 0, 64)   // touch A: B is now LRU
	mustRead(t, c, 128, 64) // C: evicts B
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.ResidentBytes != 128 {
		t.Fatalf("resident bytes = %d, want exactly the 128 budget", s.ResidentBytes)
	}
	devBefore := inner.reads.Load()
	mustRead(t, c, 0, 64) // A must still be resident
	if inner.reads.Load() != devBefore {
		t.Fatal("A was evicted; LRU should have evicted B")
	}
	mustRead(t, c, 64, 64) // B must be gone
	if inner.reads.Load() != devBefore+1 {
		t.Fatal("B unexpectedly still resident")
	}
}

// CLOCK second chance: a touched block survives the sweep, a cold one is
// evicted.
func TestClockSecondChance(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(128, PolicyClock))
	mustRead(t, c, 0, 64)   // A (cold)
	mustRead(t, c, 64, 64)  // B (cold)
	mustRead(t, c, 0, 64)   // touch A: ref bit set
	mustRead(t, c, 128, 64) // C: sweep clears A's bit, evicts cold B
	devBefore := inner.reads.Load()
	mustRead(t, c, 0, 64) // A survived its second chance
	if inner.reads.Load() != devBefore {
		t.Fatal("A was evicted despite its reference bit")
	}
	mustRead(t, c, 64, 64) // B was the victim
	if inner.reads.Load() != devBefore+1 {
		t.Fatal("B unexpectedly still resident")
	}
}

// A block larger than the whole budget must be served but never cached.
func TestOversizedBlockNotCached(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(128, PolicyLRU))
	mustRead(t, c, 0, 256)
	if s := c.Stats(); s.ResidentBytes != 0 {
		t.Fatalf("oversized block resident: %+v", s)
	}
	mustRead(t, c, 0, 256)
	if got := inner.reads.Load(); got != 2 {
		t.Fatalf("device reads = %d, want 2 (oversized blocks bypass)", got)
	}
}

// Zero capacity is bypass mode: reads forward, nothing is retained, and the
// cache is transparent to writes.
func TestZeroCapacityBypass(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, Config{CapacityBytes: 0})
	got := mustRead(t, c, 32, 64)
	if !bytes.Equal(got, inner.data[32:96]) {
		t.Fatal("bypass read returned wrong bytes")
	}
	mustRead(t, c, 32, 64)
	if inner.reads.Load() != 2 {
		t.Fatalf("device reads = %d, want 2 (no caching at zero capacity)", inner.reads.Load())
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 2 || s.ResidentBytes != 0 || s.ResidentBlocks != 0 {
		t.Fatalf("bypass stats = %+v", s)
	}
	if err := c.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner.data[:3], []byte{1, 2, 3}) {
		t.Fatal("bypass write did not reach the store")
	}
}

// Write-through invalidation stale-read regression: a cached block
// overlapped by a write must be refetched, not served stale.
func TestWriteThroughInvalidation(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	before := mustRead(t, c, 100, 64) // cache [100, 164)
	fresh := bytes.Repeat([]byte{0xAB}, 32)
	if err := c.WriteAt(fresh, 120); err != nil { // overlaps the cached block
		t.Fatal(err)
	}
	after := mustRead(t, c, 100, 64)
	if bytes.Equal(before, after) {
		t.Fatal("stale read: cached block served after an overlapping write")
	}
	if !bytes.Equal(after[20:52], fresh) {
		t.Fatal("refetched block does not contain the written bytes")
	}
	s := c.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
	// A non-overlapping write must not disturb the (re-cached) block.
	devBefore := inner.reads.Load()
	if err := c.WriteAt([]byte{1}, 2000); err != nil {
		t.Fatal(err)
	}
	mustRead(t, c, 100, 64)
	if inner.reads.Load() != devBefore {
		t.Fatal("non-overlapping write invalidated an unrelated block")
	}
}

// Blocks cached under different lengths at the same offset are distinct
// entries, and a write overlapping both invalidates both.
func TestOverlappingKeysInvalidatedTogether(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	mustRead(t, c, 0, 64)
	mustRead(t, c, 0, 128)
	if s := c.Stats(); s.ResidentBlocks != 2 {
		t.Fatalf("resident blocks = %d, want 2 distinct keys", s.ResidentBlocks)
	}
	if err := c.WriteAt([]byte{9, 9}, 10); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.ResidentBlocks != 0 || s.Invalidations != 2 {
		t.Fatalf("after overlapping write: %+v, want both entries invalidated", s)
	}
}

// A failed fetch must propagate the error and never leave an entry behind
// (fault-injection composes without poisoning the cache).
func TestFailedFetchNotCached(t *testing.T) {
	inner := newMemStore(4096)
	boom := errors.New("injected")
	fail := true
	inner.readHook = func(int64, int) error {
		if fail {
			return boom
		}
		return nil
	}
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	p := make([]byte, 64)
	if err := c.ReadAt(p, 0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if s := c.Stats(); s.ResidentBlocks != 0 || s.ResidentBytes != 0 {
		t.Fatalf("failed fetch left residue: %+v", s)
	}
	fail = false
	got := mustRead(t, c, 0, 64)
	if !bytes.Equal(got, inner.data[:64]) {
		t.Fatal("recovered read returned wrong bytes")
	}
	if s := c.Stats(); s.ResidentBlocks != 1 {
		t.Fatalf("recovered read not cached: %+v", s)
	}
}

func TestClearReleasesResidency(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	mustRead(t, c, 0, 64)
	mustRead(t, c, 64, 64)
	c.Clear()
	if s := c.Stats(); s.ResidentBytes != 0 || s.ResidentBlocks != 0 {
		t.Fatalf("after Clear: %+v", s)
	}
	mustRead(t, c, 0, 64) // cache still functional after Clear
	if s := c.Stats(); s.ResidentBlocks != 1 {
		t.Fatalf("cache dead after Clear: %+v", s)
	}
}

func TestCountersDelegateToDevice(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, oneShard(1024, PolicyLRU))
	mustRead(t, c, 0, 64)
	for i := 0; i < 9; i++ {
		mustRead(t, c, 0, 64) // hits: must not move device counters
	}
	readBytes, readOps, _, _ := c.Counters()
	if readOps != 1 || readBytes != 64 {
		t.Fatalf("device counters = %d ops / %d bytes, want 1 / 64 (hits excluded)", readOps, readBytes)
	}
	if c.PagesRead() != inner.PagesRead() {
		t.Fatal("PagesRead must delegate to the wrapped store")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"lru": PolicyLRU, "LRU": PolicyLRU, " clock ": PolicyClock} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if PolicyLRU.String() != "lru" || PolicyClock.String() != "clock" {
		t.Fatal("policy names do not round-trip")
	}
}

func TestTinyBudgetCollapsesShards(t *testing.T) {
	inner := newMemStore(4096)
	c := Wrap(inner, Config{CapacityBytes: 500, Shards: 16})
	if got := c.Config().Shards; got != 1 {
		t.Fatalf("shards = %d, want 1 (500-byte budget must not splinter)", got)
	}
	mustRead(t, c, 0, 200)
	if s := c.Stats(); s.ResidentBlocks != 1 {
		t.Fatalf("tiny cache holds nothing: %+v", s)
	}
}
