package blockcache

// policy is the per-shard eviction strategy. All methods are called with the
// owning shard's mutex held, so implementations need no locking of their own.
// victim returns the next candidate without removing it; the cache follows up
// with removed() via removeLocked.
type policy interface {
	added(e *entry)
	touched(e *entry)
	removed(e *entry)
	victim() *entry
}

// newPolicy constructs the policy implementation for p.
func newPolicy(p Policy) policy {
	if p == PolicyClock {
		return &clockPolicy{}
	}
	return newLRUPolicy()
}

// lruPolicy keeps an intrusive doubly-linked list in exact recency order:
// head side is most recent, tail side is the eviction end. Every hit is a
// list move, which is exact but costs two pointer splices per touch.
type lruPolicy struct {
	head, tail entry // sentinels
}

func newLRUPolicy() *lruPolicy {
	p := &lruPolicy{}
	p.head.next = &p.tail
	p.tail.prev = &p.head
	return p
}

func (p *lruPolicy) pushFront(e *entry) {
	e.prev = &p.head
	e.next = p.head.next
	p.head.next.prev = e
	p.head.next = e
}

func (p *lruPolicy) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (p *lruPolicy) added(e *entry)   { p.pushFront(e) }
func (p *lruPolicy) removed(e *entry) { p.unlink(e) }

func (p *lruPolicy) touched(e *entry) {
	p.unlink(e)
	p.pushFront(e)
}

func (p *lruPolicy) victim() *entry {
	if p.tail.prev == &p.head {
		return nil
	}
	return p.tail.prev
}

// clockPolicy is the CLOCK second-chance sweep: a ring of entries with one
// reference bit each. Hits only set the bit (no reordering), and the sweep
// hand clears bits until it finds a cold entry — an S3-FIFO-style one-bit
// recency approximation whose touch cost is a single store.
type clockPolicy struct {
	ring []*entry
	hand int
}

func (p *clockPolicy) added(e *entry) {
	// New entries start cold: a block must prove reuse before it survives a
	// sweep, which keeps one-shot scans from flushing the hot set.
	e.ref = false
	e.ring = len(p.ring)
	p.ring = append(p.ring, e)
}

func (p *clockPolicy) touched(e *entry) { e.ref = true }

func (p *clockPolicy) removed(e *entry) {
	last := len(p.ring) - 1
	moved := p.ring[last]
	p.ring[e.ring] = moved
	moved.ring = e.ring
	p.ring = p.ring[:last]
	e.ring = -1
	if p.hand >= len(p.ring) {
		p.hand = 0
	}
}

func (p *clockPolicy) victim() *entry {
	// At most two passes: the first clears every reference bit, the second
	// must find a cold entry.
	for sweep := 0; sweep < 2*len(p.ring)+1; sweep++ {
		if len(p.ring) == 0 {
			return nil
		}
		e := p.ring[p.hand]
		if e.ref {
			e.ref = false
			p.hand = (p.hand + 1) % len(p.ring)
			continue
		}
		return e
	}
	return nil
}
