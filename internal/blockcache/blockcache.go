// Package blockcache puts a concurrency-safe block cache between the
// out-of-core samplers and their backing store. TEA's §4.1 protocol fetches
// one trunk record per step straight from the device; real walk traffic is
// heavily skewed toward hot, high-degree vertices, so the same trunks are
// fetched over and over. Caching them trades a bounded slice of memory for a
// large cut in device I/O — the single-machine memory-hierarchy lever that
// Kairos-style engines show temporal graph analytics lives or dies on.
//
// The cache is keyed by exact (offset, length) block coordinates, which is
// the natural unit here: the samplers always re-read a trunk (or adjacency
// block) with identical coordinates, so no range reassembly is needed.
// Entries live in power-of-two shards, each guarded by one mutex and holding
// its slice of the byte budget, so walkers on different trunks do not contend.
// Two eviction policies are provided — strict LRU and CLOCK (second-chance,
// an S3-FIFO-style one-bit approximation that avoids list surgery on every
// hit) — selectable per cache so they can be compared on the same workload.
//
// Concurrent misses on one block are deduplicated singleflight-style: the
// first walker issues the device read, later arrivals wait for it and share
// the result. A failed fetch is delivered to every waiter but never inserted,
// so transient faults (including injected ones) cannot poison the cache.
// Writes go through to the store first and then invalidate every overlapping
// entry and mark overlapping in-flight fetches stale, so streaming merges
// (§3.5 Append/WriteAt traffic) never leave stale trunks behind.
//
// Counters() and PagesRead() delegate to the wrapped store untouched: they
// keep reporting *device* traffic only, so Figure-14-style experiments still
// measure true I/O volume with the cache in place (see DESIGN.md). Cache
// effectiveness is reported separately via Stats() and the
// tea_blockcache_* metric families.
package blockcache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
)

// Store is the backing-store contract the cache wraps; it is structurally
// identical to ooc.BlockStore (this package stays import-free of ooc so ooc
// can layer the cache without a cycle).
type Store interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Append(p []byte) (int64, error)
	Counters() (bytesRead, readOps, bytesWritten, writeOps int64)
	PagesRead() int64
}

// Cache metric families, registered eagerly (like the tea_ooc_* families) so
// /metrics shows them at zero before the first cached run. The fetch-latency
// histogram is split by source: "cache" observes hit service time, "device"
// observes the full miss path including the underlying read.
var (
	mHits          = metrics.Default.Counter("tea_blockcache_hits_total")
	mMisses        = metrics.Default.Counter("tea_blockcache_misses_total")
	mCoalesced     = metrics.Default.Counter("tea_blockcache_coalesced_total")
	mEvictions     = metrics.Default.Counter("tea_blockcache_evictions_total")
	mInvalidations = metrics.Default.Counter("tea_blockcache_invalidations_total")
	mResident      = metrics.Default.Gauge("tea_blockcache_resident_bytes")
	mCacheBytes    = metrics.Default.Counter(`tea_blockcache_served_bytes_total{source="cache"}`)
	mDeviceBytes   = metrics.Default.Counter(`tea_blockcache_served_bytes_total{source="device"}`)
	mHitSeconds    = metrics.Default.Histogram(`tea_blockcache_fetch_seconds{source="cache"}`)
	mMissSeconds   = metrics.Default.Histogram(`tea_blockcache_fetch_seconds{source="device"}`)
)

// Policy selects the eviction policy of a cache.
type Policy int

const (
	// PolicyLRU evicts the least recently used block (exact recency order).
	PolicyLRU Policy = iota
	// PolicyClock evicts by the CLOCK second-chance sweep: hits set a
	// reference bit instead of reordering, the sweep clears bits until it
	// finds a cold block. Cheaper per hit than LRU, close in quality on
	// skewed workloads.
	PolicyClock
)

// ParsePolicy maps the user-facing policy names ("lru", "clock") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "lru":
		return PolicyLRU, nil
	case "clock":
		return PolicyClock, nil
	default:
		return 0, fmt.Errorf("blockcache: unknown policy %q (want lru or clock)", s)
	}
}

// String renders the policy's flag name.
func (p Policy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	default:
		return "lru"
	}
}

// Config sizes and shapes a cache. The zero value (CapacityBytes == 0)
// selects bypass mode: reads and writes forward straight to the store,
// nothing is retained, and only the miss/device counters move — so a cache
// can be configured unconditionally and disabled by budget alone.
type Config struct {
	// CapacityBytes is the total byte budget across all shards; <= 0
	// disables caching entirely.
	CapacityBytes int64
	// Policy selects the eviction policy (default PolicyLRU).
	Policy Policy
	// Shards is rounded up to a power of two; <= 0 selects 16. More shards
	// cut mutex contention at the price of coarser per-shard budgets.
	Shards int
}

// key identifies one cached block by its exact read coordinates.
type key struct {
	off int64
	n   int
}

// entry is one resident block plus the intrusive bookkeeping of both
// policies: prev/next for the LRU list, ref/ring index for CLOCK.
type entry struct {
	key  key
	data []byte

	prev, next *entry // LRU list (LRU policy only)
	ring       int    // position in the CLOCK ring (clock policy only)
	ref        bool   // CLOCK reference bit
}

// flight is one in-progress device fetch that later arrivals wait on.
type flight struct {
	done  chan struct{}
	data  []byte
	err   error
	stale bool // set under the shard lock when an overlapping write lands
}

// shard is one lock domain: a fraction of the key space and byte budget.
type shard struct {
	mu       sync.Mutex
	entries  map[key]*entry
	flights  map[key]*flight
	pol      policy
	bytes    int64 // resident payload bytes
	capacity int64 // this shard's slice of the budget
}

// CachedStore wraps a Store with the block cache. It satisfies the same
// interface as the store it wraps (and hence ooc.BlockStore), so it drops
// into any sampler unchanged. All methods are safe for concurrent use.
type CachedStore struct {
	inner  Store
	cfg    Config
	shards []*shard
	mask   uint64

	hits          atomic.Int64
	misses        atomic.Int64
	coalesced     atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	resident      atomic.Int64
	bytesCache    atomic.Int64 // bytes served from resident entries
	bytesDevice   atomic.Int64 // bytes served by device fetches (incl. bypass)
}

// Wrap layers a cache configured by cfg over inner. With a non-positive
// capacity the returned store is a pure pass-through (bypass mode).
func Wrap(inner Store, cfg Config) *CachedStore {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	c := &CachedStore{inner: inner, cfg: cfg}
	if cfg.CapacityBytes > 0 {
		// Keep each shard's budget above a floor by collapsing shards for
		// small total budgets: a budget splintered into slices smaller than
		// a block caches nothing at all.
		const minShardBytes = 64 << 10
		per := cfg.CapacityBytes / int64(n)
		for n > 1 && per < minShardBytes {
			n >>= 1
			per = cfg.CapacityBytes / int64(n)
		}
		c.mask = uint64(n - 1)
		c.shards = make([]*shard, n)
		for i := range c.shards {
			c.shards[i] = &shard{
				entries:  make(map[key]*entry),
				flights:  make(map[key]*flight),
				pol:      newPolicy(cfg.Policy),
				capacity: per,
			}
		}
	}
	return c
}

// Config returns the configuration the cache was built with (shards rounded
// to the effective power of two).
func (c *CachedStore) Config() Config {
	cfg := c.cfg
	cfg.Shards = len(c.shards)
	return cfg
}

// Inner returns the wrapped store.
func (c *CachedStore) Inner() Store { return c.inner }

// shardFor hashes a key onto its shard (splitmix64-style finalizer).
func (c *CachedStore) shardFor(k key) *shard {
	h := uint64(k.off)*0x9e3779b97f4a7c15 ^ uint64(k.n)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return c.shards[h&c.mask]
}

// ReadSource classifies how one ReadAt was served, for per-fetch trace
// annotations (see ReadAtSource).
type ReadSource int8

const (
	// SourceDevice: a miss — the block came from the wrapped store.
	SourceDevice ReadSource = iota
	// SourceCache: a hit on a resident block.
	SourceCache
	// SourceCoalesced: the read piggybacked on another caller's in-flight
	// device fetch of the same block.
	SourceCoalesced
	// SourceBypass: the cache is in bypass mode (zero capacity).
	SourceBypass
)

// String renders the source the way trace annotations and tests expect.
func (s ReadSource) String() string {
	switch s {
	case SourceCache:
		return "hit"
	case SourceCoalesced:
		return "coalesced"
	case SourceBypass:
		return "bypass"
	default:
		return "miss"
	}
}

// ReadAt serves p from cache when resident, otherwise fetches it from the
// wrapped store (coalescing concurrent fetches of the same block) and caches
// the result. Cache hits do not touch the wrapped store, so its device
// counters and latency histograms only see real I/O.
func (c *CachedStore) ReadAt(p []byte, off int64) error {
	_, err := c.ReadAtSource(p, off)
	return err
}

// ReadAtSource is ReadAt plus the classification of how the block was
// served; the out-of-core samplers annotate their block-fetch trace spans
// with it.
func (c *CachedStore) ReadAtSource(p []byte, off int64) (ReadSource, error) {
	if c.shards == nil { // bypass mode
		c.misses.Add(1)
		mMisses.Inc()
		err := c.inner.ReadAt(p, off)
		if err == nil {
			c.bytesDevice.Add(int64(len(p)))
			mDeviceBytes.Add(int64(len(p)))
		}
		return SourceBypass, err
	}
	start := time.Now()
	k := key{off: off, n: len(p)}
	sh := c.shardFor(k)

	sh.mu.Lock()
	if e := sh.entries[k]; e != nil {
		sh.pol.touched(e)
		copy(p, e.data)
		sh.mu.Unlock()
		c.hits.Add(1)
		mHits.Inc()
		c.bytesCache.Add(int64(len(p)))
		mCacheBytes.Add(int64(len(p)))
		mHitSeconds.ObserveSince(start)
		return SourceCache, nil
	}
	if f := sh.flights[k]; f != nil {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		mCoalesced.Inc()
		<-f.done
		if f.err != nil {
			return SourceCoalesced, f.err
		}
		copy(p, f.data)
		c.bytesCache.Add(int64(len(p)))
		mCacheBytes.Add(int64(len(p)))
		mHitSeconds.ObserveSince(start)
		return SourceCoalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	mMisses.Inc()
	buf := make([]byte, len(p))
	err := c.inner.ReadAt(buf, off)

	sh.mu.Lock()
	delete(sh.flights, k)
	if err == nil && !f.stale {
		c.insertLocked(sh, k, buf)
	}
	sh.mu.Unlock()

	// Publish data/err before releasing waiters.
	if err == nil {
		f.data = buf
	}
	f.err = err
	close(f.done)

	if err != nil {
		return SourceDevice, err
	}
	copy(p, buf)
	c.bytesDevice.Add(int64(len(p)))
	mDeviceBytes.Add(int64(len(p)))
	mMissSeconds.ObserveSince(start)
	return SourceDevice, nil
}

// insertLocked adds a block to sh, evicting until it fits. Blocks larger
// than the shard's whole budget are not cached. Caller holds sh.mu.
func (c *CachedStore) insertLocked(sh *shard, k key, data []byte) {
	n := int64(len(data))
	if n > sh.capacity {
		return
	}
	for sh.bytes+n > sh.capacity {
		victim := sh.pol.victim()
		if victim == nil {
			return
		}
		c.removeLocked(sh, victim)
		c.evictions.Add(1)
		mEvictions.Inc()
	}
	e := &entry{key: k, data: data}
	sh.entries[k] = e
	sh.pol.added(e)
	sh.bytes += n
	c.resident.Add(n)
	mResident.Add(float64(n))
}

// removeLocked drops e from sh's map, policy state, and byte accounting.
// Caller holds sh.mu.
func (c *CachedStore) removeLocked(sh *shard, e *entry) {
	delete(sh.entries, e.key)
	sh.pol.removed(e)
	n := int64(len(e.data))
	sh.bytes -= n
	c.resident.Add(-n)
	mResident.Add(float64(-n))
}

// invalidate drops every resident block overlapping [off, off+n) and marks
// overlapping in-flight fetches stale so their (possibly pre-write) payloads
// are delivered to waiters but never inserted. Entries are keyed by exact
// coordinates, so this is a scan of the resident set — writes are rare
// relative to reads on every workload this cache targets.
func (c *CachedStore) invalidate(off, n int64) {
	if c.shards == nil || n <= 0 {
		return
	}
	end := off + n
	for _, sh := range c.shards {
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.off < end && off < k.off+int64(k.n) {
				c.removeLocked(sh, e)
				c.invalidations.Add(1)
				mInvalidations.Inc()
			}
		}
		for k, f := range sh.flights {
			if k.off < end && off < k.off+int64(k.n) {
				f.stale = true
			}
		}
		sh.mu.Unlock()
	}
}

// WriteAt writes through to the wrapped store and then invalidates every
// cached block the write overlaps.
func (c *CachedStore) WriteAt(p []byte, off int64) error {
	if err := c.inner.WriteAt(p, off); err != nil {
		return err
	}
	c.invalidate(off, int64(len(p)))
	return nil
}

// Append appends through to the wrapped store and invalidates the written
// range (a defensive no-op for stores that only ever hand out fresh offsets).
func (c *CachedStore) Append(p []byte) (int64, error) {
	off, err := c.inner.Append(p)
	if err != nil {
		return 0, err
	}
	c.invalidate(off, int64(len(p)))
	return off, nil
}

// Counters delegates to the wrapped store: device traffic only, by design —
// cache hits never reach the device and must not inflate I/O-volume
// experiments. Cache service volume is in Stats().
func (c *CachedStore) Counters() (bytesRead, readOps, bytesWritten, writeOps int64) {
	return c.inner.Counters()
}

// PagesRead delegates to the wrapped store (device pages only; see Counters).
func (c *CachedStore) PagesRead() int64 { return c.inner.PagesRead() }

// Stats is a point-in-time summary of cache effectiveness.
type Stats struct {
	// Hits served from resident blocks; Misses went to the device;
	// Coalesced piggybacked on another caller's in-flight fetch.
	Hits, Misses, Coalesced int64
	// Evictions counts capacity evictions; Invalidations counts blocks
	// dropped by overlapping writes.
	Evictions, Invalidations int64
	// ResidentBytes and ResidentBlocks describe current occupancy.
	ResidentBytes, ResidentBlocks int64
	// BytesFromCache and BytesFromDevice split served read volume by source
	// (coalesced waiters count toward the cache side: their bytes were
	// served without an extra device read).
	BytesFromCache, BytesFromDevice int64
}

// HitRate returns hits (including coalesced fetches) over all lookups, in
// [0, 1]; 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats reports the cache's accumulated statistics.
func (c *CachedStore) Stats() Stats {
	s := Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Coalesced:       c.coalesced.Load(),
		Evictions:       c.evictions.Load(),
		Invalidations:   c.invalidations.Load(),
		ResidentBytes:   c.resident.Load(),
		BytesFromCache:  c.bytesCache.Load(),
		BytesFromDevice: c.bytesDevice.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.ResidentBlocks += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return s
}

// Clear drops every resident block (returning their bytes to the global
// resident gauge) without touching the accumulated counters. Callers that
// retire a cache should Clear it so the gauge reflects live caches only.
func (c *CachedStore) Clear() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			c.removeLocked(sh, e)
		}
		sh.mu.Unlock()
	}
}
