package blockcache

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Singleflight: N concurrent readers of one uncached block must issue exactly
// one device read; the other N-1 coalesce onto it and share the payload.
func TestSingleflightCoalescing(t *testing.T) {
	const waiters = 8
	inner := newMemStore(4096)
	entered := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	inner.readHook = func(int64, int) error {
		gate.Do(func() {
			close(entered)
			<-release
		})
		return nil
	}
	c := Wrap(inner, oneShard(4096, PolicyLRU))

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	bufs := make([][]byte, waiters)
	wg.Add(1)
	go func() { // leader: registers the flight and blocks in the hook
		defer wg.Done()
		bufs[0] = make([]byte, 64)
		errs[0] = c.ReadAt(bufs[0], 0)
	}()
	<-entered
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bufs[i] = make([]byte, 64)
			errs[i] = c.ReadAt(bufs[i], 0)
		}(i)
	}
	// Coalesced is incremented before a waiter parks on the flight, so once it
	// reaches N-1 every follower has joined the leader's fetch.
	waitFor(t, "followers to coalesce", func() bool {
		return c.Stats().Coalesced == waiters-1
	})
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(bufs[i], inner.data[:64]) {
			t.Fatalf("reader %d got wrong bytes", i)
		}
	}
	if got := inner.reads.Load(); got != 1 {
		t.Fatalf("device reads = %d, want 1 (singleflight must dedup)", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", s, waiters-1)
	}
}

// An erroring fetch must propagate to every coalesced waiter and cache
// nothing; the next read retries the device.
func TestSingleflightErrorPropagation(t *testing.T) {
	const waiters = 4
	inner := newMemStore(4096)
	boom := errors.New("injected")
	entered := make(chan struct{})
	release := make(chan struct{})
	var failing atomic.Bool
	failing.Store(true)
	var gate sync.Once
	inner.readHook = func(int64, int) error {
		if !failing.Load() {
			return nil
		}
		gate.Do(func() {
			close(entered)
			<-release
		})
		return boom
	}
	c := Wrap(inner, oneShard(4096, PolicyLRU))

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = c.ReadAt(make([]byte, 64), 0)
	}()
	<-entered
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.ReadAt(make([]byte, 64), 0)
		}(i)
	}
	waitFor(t, "followers to coalesce", func() bool {
		return c.Stats().Coalesced == waiters-1
	})
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("reader %d err = %v, want the injected fault", i, err)
		}
	}
	if s := c.Stats(); s.ResidentBlocks != 0 {
		t.Fatalf("failed flight cached: %+v", s)
	}
	failing.Store(false)
	got := mustRead(t, c, 0, 64)
	if !bytes.Equal(got, inner.data[:64]) {
		t.Fatal("retry after failed flight returned wrong bytes")
	}
}

// A write overlapping an in-flight fetch must mark it stale: waiters still
// get a payload, but it is never inserted, so no reader can later hit
// pre-write data.
func TestInFlightFetchMarkedStaleByWrite(t *testing.T) {
	inner := newMemStore(4096)
	entered := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	inner.readHook = func(int64, int) error {
		gate.Do(func() {
			close(entered)
			<-release
		})
		return nil
	}
	c := Wrap(inner, oneShard(4096, PolicyLRU))

	var wg sync.WaitGroup
	wg.Add(1)
	var readErr error
	go func() {
		defer wg.Done()
		readErr = c.ReadAt(make([]byte, 64), 0)
	}()
	<-entered
	if err := c.WriteAt(bytes.Repeat([]byte{0xEE}, 16), 32); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if s := c.Stats(); s.ResidentBlocks != 0 {
		t.Fatalf("stale flight was cached: %+v", s)
	}
	// The next read must fetch fresh (post-write) bytes from the device.
	got := mustRead(t, c, 0, 64)
	if !bytes.Equal(got[32:48], bytes.Repeat([]byte{0xEE}, 16)) {
		t.Fatal("re-read did not observe the write")
	}
}

// Hammer: concurrent readers and writers over a small key space. Run with
// -race; correctness check is that every read observes some complete block
// state (the store writes whole blocks of one repeated byte).
func TestConcurrentReadersAndWriters(t *testing.T) {
	const (
		blocks    = 8
		blockSize = 64
		readers   = 4
		writers   = 2
		rounds    = 300
	)
	inner := newMemStore(blocks * blockSize)
	// Start from block-uniform contents: block b is filled with byte b.
	for b := 0; b < blocks; b++ {
		for i := 0; i < blockSize; i++ {
			inner.data[b*blockSize+i] = byte(b)
		}
	}
	c := Wrap(inner, Config{CapacityBytes: 3 * blockSize, Policy: PolicyClock, Shards: 1})

	var wg sync.WaitGroup
	var bad atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := make([]byte, blockSize)
			for i := 0; i < rounds; i++ {
				b := (i*7 + r) % blocks
				if err := c.ReadAt(p, int64(b*blockSize)); err != nil {
					bad.Add(1)
					return
				}
				for _, v := range p[1:] {
					if v != p[0] { // torn block: saw a mix of versions
						bad.Add(1)
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := (i*5 + w) % blocks
				fill := byte(b) + byte(i%2)*100 // two distinct valid versions
				if err := c.WriteAt(bytes.Repeat([]byte{fill}, blockSize), int64(b*blockSize)); err != nil {
					bad.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d readers/writers observed torn or failed blocks", n)
	}
	if s := c.Stats(); s.ResidentBytes > 3*blockSize {
		t.Fatalf("resident bytes %d exceed the %d budget", s.ResidentBytes, 3*blockSize)
	}
}
