package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fill appends n deterministic records and returns their payloads.
func fill(t *testing.T, l *Log, n int, start int) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("record-%04d-%s", start+i, string(bytes.Repeat([]byte{'x'}, (start+i)%37))))
		if _, err := l.Append(Entry{Type: RecEdgeBatch, Payload: p}); err != nil {
			t.Fatalf("append %d: %v", start+i, err)
		}
		payloads = append(payloads, p)
	}
	return payloads
}

// collect replays the whole log into memory.
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 25, 0)
	if lsn := l.LastLSN(); lsn != 25 {
		t.Fatalf("LastLSN = %d, want 25", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ri := l2.Recovery()
	if ri.Records != 25 || ri.TruncatedBytes != 0 || ri.FirstLSN != 1 || ri.LastLSN != 25 {
		t.Fatalf("recovery = %+v", ri)
	}
	recs := collect(t, l2)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != RecEdgeBatch || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = {lsn %d type %d %q}", i, r.LSN, r.Type, r.Payload)
		}
	}
	// Appends continue the LSN sequence after reopen.
	first, err := l2.Append(Entry{Type: RecExpire, Payload: []byte("h")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 26 {
		t.Fatalf("post-reopen LSN = %d, want 26", first)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to create several segments, got %d", len(segs))
	}

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 10, 0)
	path := filepath.Join(dir, "wal-00000001.log")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	full := st.Size()
	fill(t, l, 1, 10)
	l.Crash()

	// Shear off part of the final frame: a torn final write.
	st2, _ := os.Stat(path)
	if err := os.Truncate(path, full+(st2.Size()-full)/2); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must be repaired, got %v", err)
	}
	defer l2.Close()
	ri := l2.Recovery()
	if ri.Records != 10 {
		t.Fatalf("surviving records = %d, want 10", ri.Records)
	}
	if ri.TruncatedBytes == 0 {
		t.Fatal("expected truncated bytes to be reported")
	}
	if got := len(collect(t, l2)); got != 10 {
		t.Fatalf("replayed %d, want 10", got)
	}
	// The tail is clean again: appends land at LSN 11.
	if first, err := l2.Append(Entry{Type: RecEdgeBatch, Payload: []byte("next")}); err != nil || first != 11 {
		t.Fatalf("append after repair: lsn %d err %v", first, err)
	}
}

func TestGarbledFinalFrameTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 5, 0)
	path := filepath.Join(dir, "wal-00000001.log")
	before, _ := os.Stat(path)
	fill(t, l, 1, 5)
	l.Crash()

	// Flip a payload byte inside the final frame, leaving its length intact:
	// CRC fails with nothing after it — a torn in-place write.
	flipByte(t, path, before.Size()+frameHdr+3)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("garbled final frame must truncate, got %v", err)
	}
	defer l2.Close()
	if ri := l2.Recovery(); ri.Records != 5 || ri.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v", ri)
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 10, 0)
	l.Close()

	// Flip a byte inside the FIRST frame's payload: valid frames follow, so
	// this is damaged acknowledged history, not a torn tail.
	flipByte(t, filepath.Join(dir, "wal-00000001.log"), headerSize+frameHdr+3)

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestSealedSegmentCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, 0)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// Shear the tail off a SEALED segment: even a "torn-looking" ending is
	// corruption when later segments exist.
	st, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], st.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed-segment damage: err = %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, 0)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment gap: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncateBeforeDropsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, 0)
	cut := uint64(20)
	removed, err := l.TruncateBefore(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected at least one segment removed")
	}
	recs := collect(t, l)
	if len(recs) == 0 || recs[0].LSN >= cut {
		t.Fatalf("first surviving LSN = %d (want < %d retained boundary, > removed)", recs[0].LSN, cut)
	}
	// Every record >= cut must survive.
	seen := map[uint64]bool{}
	for _, r := range recs {
		seen[r.LSN] = true
	}
	for lsn := cut; lsn <= 40; lsn++ {
		if !seen[lsn] {
			t.Fatalf("LSN %d lost by TruncateBefore", lsn)
		}
	}
	l.Close()

	// Reopen: LSNs still line up even though early segments are gone.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if first, err := l2.Append(Entry{Type: RecEdgeBatch, Payload: []byte("z")}); err != nil || first != 41 {
		t.Fatalf("append after truncate+reopen: lsn %d err %v", first, err)
	}
}

func TestTornSegmentHeaderReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 3, 0)
	l.Close()
	// Simulate a crash during rotation: a successor file exists but its
	// header never finished writing.
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.log"), []byte{'T', 'E'}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn successor header must be rebuilt, got %v", err)
	}
	defer l2.Close()
	if got := len(collect(t, l2)); got != 3 {
		t.Fatalf("replayed %d, want 3", got)
	}
	if first, err := l2.Append(Entry{Type: RecEdgeBatch, Payload: []byte("a")}); err != nil || first != 4 {
		t.Fatalf("append into rebuilt segment: lsn %d err %v", first, err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(Entry{Type: RecEdgeBatch, Payload: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// flipByte XORs one byte of path in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
