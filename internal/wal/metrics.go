package wal

import "github.com/tea-graph/tea/internal/metrics"

// The tea_wal_* families on the default registry, mirroring the other
// subsystems (tea_ooc_*, tea_blockcache_*): append volume, fsync count and
// latency, the live segment count, and what recovery had to discard. The
// durable-graph layer adds the group-commit, snapshot, and replay families
// (it owns those phases); everything renders on /metrics.
var (
	mAppendedRecords   = metrics.Default.Counter("tea_wal_appended_records_total")
	mAppendedBytes     = metrics.Default.Counter("tea_wal_appended_bytes_total")
	mFsyncs            = metrics.Default.Counter("tea_wal_fsyncs_total")
	mFsyncErrors       = metrics.Default.Counter("tea_wal_fsync_errors_total")
	mFsyncSeconds      = metrics.Default.Histogram("tea_wal_fsync_seconds")
	mSegments          = metrics.Default.Gauge("tea_wal_segments")
	mRecoveryTruncated = metrics.Default.Gauge("tea_wal_recovery_truncated_bytes")
	mHeals             = metrics.Default.Counter("tea_wal_heals_total")
	mHealRolledBack    = metrics.Default.Counter("tea_wal_heal_rolled_back_records_total")
	mReclaimable       = metrics.Default.Gauge("tea_wal_reclaimable_bytes")
)
