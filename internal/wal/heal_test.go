package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/tea-graph/tea/internal/vfs"
)

// TestHealAfterSyncFailure degrades the log with an injected fsync failure,
// heals the filesystem, and verifies Heal rolls the live segment back to the
// durable point, probes the device, and resumes appends with correct LSNs.
func TestHealAfterSyncFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 11)
	l, err := Open(dir, Options{Policy: SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 10, 0)

	ffs.Inject(vfs.Fault{Op: vfs.OpSync, Err: errors.New("injected: fsync")})
	if _, err := l.Append(Entry{Type: RecEdgeBatch, Payload: []byte("doomed")}); err == nil {
		t.Fatal("append under injected fsync failure succeeded")
	}
	if l.Err() == nil {
		t.Fatal("log not degraded after fsync failure")
	}
	// Sticky: further appends fail without touching the disk.
	if _, err := l.Append(Entry{Type: RecEdgeBatch, Payload: []byte("also doomed")}); err == nil {
		t.Fatal("append on degraded log succeeded")
	}
	// Heal while the fault persists must fail and stay degraded.
	if err := l.Heal(); err == nil {
		t.Fatal("heal succeeded while fault still armed")
	}
	if l.Err() == nil {
		t.Fatal("failed heal cleared the sticky error")
	}

	ffs.Heal()
	if err := l.Heal(); err != nil {
		t.Fatalf("heal after clearing fault: %v", err)
	}
	if l.Err() != nil {
		t.Fatalf("sticky error survived heal: %v", l.Err())
	}

	// The doomed record was rolled back (never acknowledged); the probe noop
	// consumed one LSN. Next append lands after the probe.
	first, err := l.Append(Entry{Type: RecEdgeBatch, Payload: []byte("after heal")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 12 { // 10 records + 1 probe noop -> next is 12
		t.Fatalf("post-heal LSN = %d, want 12", first)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees 10 originals + probe + post-heal record, no doomed bytes.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var noops, edges int
	if err := l2.Replay(func(r Record) error {
		switch r.Type {
		case RecNoop:
			noops++
		case RecEdgeBatch:
			edges++
			if string(r.Payload) == "doomed" || string(r.Payload) == "also doomed" {
				t.Fatalf("rolled-back record survived: %q", r.Payload)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if noops != 1 || edges != 11 {
		t.Fatalf("recovered %d noops, %d edges; want 1, 11", noops, edges)
	}
}

// TestHealRollsBackUnsyncedInterval checks that under SyncInterval, records
// written but never fsynced are rolled back by Heal — the crash contract.
func TestHealRollsBackUnsyncedInterval(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 5)
	// Very long interval: the background flusher never fires during the test.
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: 1 << 30, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 5, 0)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fill(t, l, 3, 5) // acked but not yet synced
	ffs.Inject(vfs.Fault{Op: vfs.OpSync, Err: errors.New("injected: fsync")})
	if err := l.Sync(); err == nil {
		t.Fatal("sync under fault succeeded")
	}
	ffs.Heal()
	if err := l.Heal(); err != nil {
		t.Fatal(err)
	}
	// The 3 unsynced records are gone; LSNs 6-8 are reassigned after the
	// probe took LSN 6.
	recs := collect(t, l)
	var edges int
	for _, r := range recs {
		if r.Type == RecEdgeBatch {
			edges++
		}
	}
	if edges != 5 {
		t.Fatalf("edges after heal = %d, want 5 (unsynced rolled back)", edges)
	}
}

// TestVerifySegmentDetectsBitFlip seals a segment, flips one payload byte,
// and expects VerifySegment to refuse it with ErrCorrupt.
func TestVerifySegmentDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, 0)
	sealed := l.SealedSegments()
	if len(sealed) == 0 {
		t.Fatal("no sealed segments after rotation")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	victim := sealed[0].Path
	var billed int
	bill := func(n int) error { billed += n; return nil }
	if err := VerifySegment(nil, victim, bill); err != nil {
		t.Fatalf("clean segment failed verify: %v", err)
	}
	if billed == 0 {
		t.Fatal("bill callback never invoked")
	}

	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySegment(nil, victim, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify on flipped segment = %v, want ErrCorrupt", err)
	}
}

// TestReclaimableBefore checks the sealed-segment byte accounting behind the
// tea_wal_reclaimable_bytes gauge.
func TestReclaimableBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 40, 0)
	sealed := l.SealedSegments()
	if len(sealed) < 2 {
		t.Fatalf("want >= 2 sealed segments, got %d", len(sealed))
	}
	if got := l.ReclaimableBefore(0); got != 0 {
		t.Fatalf("ReclaimableBefore(0) = %d, want 0", got)
	}
	// Everything before the live tail is reclaimable at the last LSN + 1.
	var want int64
	for _, s := range sealed {
		want += s.Size
	}
	if got := l.ReclaimableBefore(l.LastLSN() + 1); got != want {
		t.Fatalf("ReclaimableBefore(max) = %d, want %d", got, want)
	}
	// Cut at the second segment's first LSN: only segment one is free.
	if got := l.ReclaimableBefore(sealed[1].FirstLSN); got != sealed[0].Size {
		t.Fatalf("ReclaimableBefore(seg2 first) = %d, want %d", got, sealed[0].Size)
	}
	if lsn := l.FirstLSN(); lsn != 1 {
		t.Fatalf("FirstLSN = %d, want 1", lsn)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	var onDisk int64
	for _, p := range segs {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if got := l.SizeBytes(); got != onDisk {
		t.Fatalf("SizeBytes = %d, on disk %d", got, onDisk)
	}
}

// TestReplayProgressReportsSegments checks the per-segment progress callback.
func TestReplayProgressReportsSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 40, 0)
	total := len(l.SealedSegments()) + 1
	var calls []int
	err = l.ReplayProgress(func(Record) error { return nil }, func(done, tot int) {
		if tot != total {
			t.Fatalf("progress total = %d, want %d", tot, total)
		}
		calls = append(calls, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != total || calls[0] != 1 || calls[len(calls)-1] != total {
		t.Fatalf("progress calls = %v, want 1..%d", calls, total)
	}
}
