// Package wal implements the write-ahead log behind TEA's durable streaming
// ingestion: an append-only, CRC-32C-framed record log split into numbered
// segment files. Writers append framed records (edge batches, delete batches,
// expire watermarks, snapshot markers) and choose a durability policy
// (fsync on every commit, on an interval, or never); recovery scans the
// segments in order, truncates a torn tail (a partially written final frame
// is the expected residue of a crash), and refuses mid-log corruption with
// ErrCorrupt — damage in the middle of acknowledged history is not
// silently dropped.
//
// On-disk layout (all integers little-endian):
//
//	<dir>/wal-00000001.log, wal-00000002.log, ...
//
//	segment  := header frame*
//	header   := magic[8] ("TEAWAL01") firstLSN[8]
//	frame    := length[4] crc[4] type[1] payload[length-1]
//
// length covers the type byte plus the payload; crc is the CRC-32C
// (Castagnoli) of those same bytes, so a flipped length, type, or payload
// byte fails verification. Records carry log sequence numbers (LSNs)
// implicitly: the segment header pins the LSN of its first frame and frames
// number consecutively, so LSNs survive old segments being truncated away
// after a snapshot.
//
// Torn tail vs. mid-log corruption: a frame that extends past end-of-file,
// or whose CRC fails with no bytes after it, is a torn tail — the log is
// truncated at the frame start and appends resume there. A frame whose CRC
// fails with more data after it, or any damage in a sealed (non-final)
// segment, is mid-log corruption and recovery refuses with ErrCorrupt.
//
// All filesystem access goes through an internal/vfs.FS (Options.FS; the
// real OS by default), so every failure path — ENOSPC, a failed fsync, a
// torn write — is testable under injected faults. A write or sync failure
// leaves the log sticky-degraded; Heal rolls the live segment back to the
// last fsync-covered byte and probes the device with a no-op record, which
// is how the serving layer recovers from a disk-full episode without a
// restart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/vfs"
)

// RecordType tags a WAL record. The WAL itself never interprets payloads;
// the types are defined here so writers and recovery share one vocabulary.
type RecordType byte

const (
	// RecEdgeBatch is a batch of appended edges.
	RecEdgeBatch RecordType = 1
	// RecDeleteBatch is a batch of edge deletions.
	RecDeleteBatch RecordType = 2
	// RecExpire is a sliding-window expiry watermark.
	RecExpire RecordType = 3
	// RecSnapshotMark records that a snapshot covering every LSN up to its
	// payload value was made durable.
	RecSnapshotMark RecordType = 4
	// RecNoop carries no state change; Heal appends one as the probe that
	// proves the device accepts durable writes again. Replay must skip it.
	RecNoop RecordType = 5
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// SyncAlways fsyncs once per append group before acknowledging —
	// every acknowledged record survives a crash.
	SyncAlways Policy = iota
	// SyncInterval fsyncs dirty segments on a background interval — a
	// crash may lose the last interval's worth of acknowledged records.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag spellings.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// ErrCorrupt is returned when recovery finds damage it must not repair
// silently: a bad frame with valid data after it, a damaged sealed segment,
// or an LSN discontinuity between segments.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed is returned by appends on a closed log.
var ErrClosed = errors.New("wal: log closed")

const (
	headerSize  = 16
	frameHdr    = 8
	maxFrame    = 64 << 20 // sanity cap on one frame; a larger length is damage
	defaultSeg  = 64 << 20
	defaultTick = 100 * time.Millisecond
)

var segMagic = [8]byte{'T', 'E', 'A', 'W', 'A', 'L', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// SegmentBytes is the rotation threshold; once the live segment reaches
	// it, the segment is sealed (synced) and appends move to a fresh file.
	// 0 means 64 MiB.
	SegmentBytes int64
	// Policy selects the fsync discipline; the zero value is SyncAlways.
	Policy Policy
	// Interval is the flush period under SyncInterval; 0 means 100ms.
	Interval time.Duration
	// OnSyncError, when non-nil, is invoked (once per failure) when an
	// fsync fails and the log enters its sticky-error state.
	OnSyncError func(error)
	// FS is the filesystem the log runs against; nil means the real OS.
	// Tests inject a vfs.FaultFS here to script disk failures.
	FS vfs.FS
}

// Entry is one record to append: a type plus an opaque payload.
type Entry struct {
	Type    RecordType
	Payload []byte
}

// Record is one recovered record: an Entry plus its log sequence number.
type Record struct {
	Type    RecordType
	LSN     uint64
	Payload []byte
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	// Segments is the number of segment files present after repair.
	Segments int
	// Records is the total valid records across all segments.
	Records uint64
	// FirstLSN is the LSN of the oldest surviving record (0 when empty).
	FirstLSN uint64
	// LastLSN is the LSN of the newest surviving record (0 when empty).
	LastLSN uint64
	// TruncatedBytes counts torn-tail bytes discarded during repair.
	TruncatedBytes int64
}

// segmentInfo tracks one on-disk segment file.
type segmentInfo struct {
	seq      uint64
	path     string
	firstLSN uint64
	records  uint64
	size     int64
}

// Log is an append-only segmented record log. One writer at a time may
// Append (the durable-graph committer); Sync may race with appends.
type Log struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu       sync.Mutex
	f        vfs.File // live segment
	segs     []segmentInfo
	nextLSN  uint64
	dirty    bool
	err      error // sticky: first write/sync failure; Heal may clear it
	closed   bool
	recovery RecoveryInfo

	// The durable point: live-segment size, record count, and next LSN as
	// of the last successful fsync (or segment creation). Heal rolls the
	// live segment back here — everything past it was never acknowledged
	// under SyncAlways, and under the weaker policies losing it is the same
	// contract a crash already imposes.
	syncedSize int64
	syncedRecs uint64
	syncedLSN  uint64

	tickDone chan struct{}
	tickWG   sync.WaitGroup
}

// Open opens (creating if necessary) the log in dir, repairing a torn tail
// and refusing mid-log corruption with an error wrapping ErrCorrupt. The
// returned log is positioned for appends; Replay streams the surviving
// records.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSeg
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultTick
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS}

	segs, err := listSegments(l.fs, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1, 1); err != nil {
			return nil, err
		}
	} else {
		wantLSN := uint64(0) // 0 = take the first segment's word for it
		for i := range segs {
			s := &segs[i]
			last := i == len(segs)-1
			res, err := scanSegment(l.fs, s.path, last, nil, nil)
			if err != nil {
				return nil, err
			}
			if res.reset {
				// Unusable header on the final segment (torn segment
				// creation): rebuild it empty at the expected LSN.
				if wantLSN == 0 {
					wantLSN = 1
				}
				l.recovery.TruncatedBytes += s.size
				if err := l.fs.Remove(s.path); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
				if err := l.createSegment(s.seq, wantLSN); err != nil {
					return nil, err
				}
				l.nextLSN = wantLSN
				break
			}
			if wantLSN != 0 && res.firstLSN != wantLSN {
				return nil, fmt.Errorf("%w: segment %s starts at LSN %d, want %d",
					ErrCorrupt, filepath.Base(s.path), res.firstLSN, wantLSN)
			}
			if res.truncate >= 0 {
				l.recovery.TruncatedBytes += s.size - res.truncate
				if err := truncateFile(l.fs, s.path, res.truncate); err != nil {
					return nil, err
				}
				s.size = res.truncate
			}
			s.firstLSN = res.firstLSN
			s.records = res.records
			l.segs = append(l.segs, *s)
			wantLSN = res.firstLSN + res.records
			l.nextLSN = wantLSN
		}
		if l.f == nil { // no reset path taken: open the final segment for appends
			tail := &l.segs[len(l.segs)-1]
			f, err := l.fs.OpenFile(tail.path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f = f
			// Everything scanned is verified on disk: that is the durable
			// point appends (and a later Heal) measure from.
			l.syncedSize, l.syncedRecs, l.syncedLSN = tail.size, tail.records, l.nextLSN
		}
	}

	l.recovery.Segments = len(l.segs)
	for _, s := range l.segs {
		l.recovery.Records += s.records
	}
	if l.recovery.Records > 0 {
		l.recovery.FirstLSN = l.segs[0].firstLSN
		l.recovery.LastLSN = l.nextLSN - 1
	}
	mSegments.Set(float64(len(l.segs)))
	mRecoveryTruncated.Set(float64(l.recovery.TruncatedBytes))

	if opts.Policy == SyncInterval {
		l.tickDone = make(chan struct{})
		l.tickWG.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// Recovery reports what Open found (and repaired) on disk.
func (l *Log) Recovery() RecoveryInfo { return l.recovery }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the newest assigned LSN (0 when the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Err returns the sticky error, if the log has degraded.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Replay streams every surviving record, oldest first, to fn. Replay reads
// from disk (segments were validated by Open); call it before the first
// Append. A non-nil error from fn aborts the replay.
func (l *Log) Replay(fn func(Record) error) error {
	return l.ReplayProgress(fn, nil)
}

// ReplayProgress is Replay with a per-segment progress callback: onSeg(done,
// total) fires after each segment finishes, so a serving layer can report
// how far recovery has come.
func (l *Log) ReplayProgress(fn func(Record) error, onSeg func(done, total int)) error {
	l.mu.Lock()
	segs := append([]segmentInfo(nil), l.segs...)
	l.mu.Unlock()
	for i, s := range segs {
		res, err := scanSegment(l.fs, s.path, i == len(segs)-1, fn, nil)
		if err != nil {
			return err
		}
		if res.reset || res.truncate >= 0 {
			// Open already repaired the tail; new damage means the disk is
			// changing under us.
			return fmt.Errorf("%w: segment %s changed since open", ErrCorrupt, filepath.Base(s.path))
		}
		if onSeg != nil {
			onSeg(i+1, len(segs))
		}
	}
	return nil
}

// Append frames the entries and writes them to the live segment as one
// contiguous write, assigning consecutive LSNs; under SyncAlways the frames
// are fsynced before Append returns. Returns the LSN of the first entry.
// After any write or sync failure the log is sticky-degraded: every further
// Append returns the original error.
func (l *Log) Append(entries ...Entry) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	size := 0
	for _, e := range entries {
		size += frameHdr + 1 + len(e.Payload)
	}
	buf := make([]byte, 0, size)
	for _, e := range entries {
		buf = appendFrame(buf, e)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	first := l.nextLSN
	l.nextLSN += uint64(len(entries))
	tail := &l.segs[len(l.segs)-1]
	tail.records += uint64(len(entries))
	tail.size += int64(len(buf))
	mAppendedRecords.Add(int64(len(entries)))
	mAppendedBytes.Add(int64(len(buf)))

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		l.dirty = true
	}
	if tail.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// Sync flushes the live segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// syncLocked fsyncs the live segment, feeding the fsync metrics and turning
// a failure into the sticky degraded state. Caller holds l.mu.
func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	mFsyncSeconds.ObserveSince(start)
	mFsyncs.Inc()
	l.dirty = false
	if err != nil {
		mFsyncErrors.Inc()
		l.err = fmt.Errorf("wal: fsync: %w", err)
		if l.opts.OnSyncError != nil {
			l.opts.OnSyncError(l.err)
		}
		return l.err
	}
	tail := &l.segs[len(l.segs)-1]
	l.syncedSize, l.syncedRecs, l.syncedLSN = tail.size, tail.records, l.nextLSN
	return nil
}

// rotateLocked seals the live segment (fsync + close) and starts the next
// one. The new segment is made durable (file header fsynced, then the
// directory) before appends move over, so a crash between the two leaves
// either the sealed old tail or a valid empty successor — never a
// half-registered file with acknowledged records.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: seal segment: %w", err)
		return l.err
	}
	seq := l.segs[len(l.segs)-1].seq + 1
	if err := l.createSegment(seq, l.nextLSN); err != nil {
		l.err = err
		return err
	}
	return nil
}

// createSegment creates and registers segment seq starting at firstLSN,
// leaving it as the live append target. Caller holds l.mu (or is Open).
func (l *Log) createSegment(seq, firstLSN uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.log", seq))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segmentInfo{
		seq: seq, path: path, firstLSN: firstLSN, size: headerSize,
	})
	l.nextLSN = firstLSN
	l.syncedSize, l.syncedRecs, l.syncedLSN = headerSize, 0, firstLSN
	mSegments.Set(float64(len(l.segs)))
	return nil
}

// TruncateBefore removes whole sealed segments every record of which has
// LSN < lsn — the log-trimming step after a snapshot. The live segment is
// never removed. Returns the number of segment files deleted.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 {
		s := l.segs[0]
		if s.firstLSN+s.records > lsn { // segment still holds a needed record
			break
		}
		if err := l.fs.Remove(s.path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.fs, l.dir); err != nil {
			return removed, err
		}
		mSegments.Set(float64(len(l.segs)))
	}
	return removed, nil
}

// SegmentRef is one on-disk segment, as seen by the scrubber and the
// reclaimable-space accounting.
type SegmentRef struct {
	Path     string
	Seq      uint64
	FirstLSN uint64
	Records  uint64
	Size     int64
}

// SealedSegments returns every segment except the live tail — the files
// whose content is final and whose CRCs a background scrubber may re-verify
// at any time. A segment may be removed by TruncateBefore after this
// returns; scrubbers treat a vanished file as pruned, not damaged.
func (l *Log) SealedSegments() []SegmentRef {
	l.mu.Lock()
	defer l.mu.Unlock()
	refs := make([]SegmentRef, 0, len(l.segs)-1)
	for _, s := range l.segs[:len(l.segs)-1] {
		refs = append(refs, SegmentRef{
			Path: s.path, Seq: s.seq, FirstLSN: s.firstLSN, Records: s.records, Size: s.size,
		})
	}
	return refs
}

// FirstLSN returns the first LSN the log can still serve — the oldest
// retained segment's base. Recovery uses it to refuse a snapshot-to-log gap
// (a snapshot older than the log's history cannot be replayed forward).
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].firstLSN
}

// SizeBytes returns the total on-disk size of all retained segments.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.segs {
		total += s.size
	}
	return total
}

// ReclaimableBefore reports how many on-disk bytes TruncateBefore(lsn) would
// free — sealed segments every record of which has LSN < lsn — and publishes
// the value as the tea_wal_reclaimable_bytes gauge.
func (l *Log) ReclaimableBefore(lsn uint64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.segs[:len(l.segs)-1] {
		if s.firstLSN+s.records > lsn {
			break
		}
		total += s.size
	}
	mReclaimable.Set(float64(total))
	return total
}

// Heal attempts to clear the sticky error state after the operator resolved
// the underlying fault (freed disk space, remounted the device). It rolls
// the live segment back to the durable point — everything past the last
// successful fsync is truncated away; those bytes were never acknowledged
// under SyncAlways, and under interval/never policies losing them is the
// same contract a crash already imposes (callers re-anchor durability with a
// snapshot immediately after a successful Heal). A fresh file handle is
// opened because a descriptor that saw an fsync failure cannot be trusted to
// retry one. The device is then probed with a no-op record through the
// normal append + fsync path; only a durable probe clears the error.
func (l *Log) Heal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err == nil {
		return nil
	}
	tail := &l.segs[len(l.segs)-1]
	f, err := l.fs.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: heal: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		return fmt.Errorf("wal: heal: %w", err)
	}
	if err := f.Truncate(l.syncedSize); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if _, err := f.Seek(l.syncedSize, io.SeekStart); err != nil {
		return fail(err)
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		return fail(err)
	}
	old := l.f
	l.f = f
	old.Close()
	if rolled := tail.records - l.syncedRecs; rolled > 0 {
		mHealRolledBack.Add(int64(rolled))
	}
	tail.size = l.syncedSize
	tail.records = l.syncedRecs
	l.nextLSN = l.syncedLSN
	l.err = nil
	l.dirty = false

	// Probe: a no-op record through the normal append + fsync path. Failure
	// re-degrades the log (sticky again) and the next Heal retries.
	buf := appendFrame(nil, Entry{Type: RecNoop})
	if _, err := l.f.Write(buf); err != nil {
		l.err = fmt.Errorf("wal: heal probe: %w", err)
		return l.err
	}
	l.nextLSN++
	tail.records++
	tail.size += int64(len(buf))
	if err := l.syncLocked(); err != nil {
		return l.err
	}
	mHeals.Inc()
	return nil
}

// Close flushes and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.err == nil && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	done := l.tickDone
	l.mu.Unlock()
	if done != nil {
		close(done)
		l.tickWG.Wait()
	}
	return err
}

// Crash abandons the log without flushing — the file descriptors close but
// nothing is synced. It exists so crash-recovery tests (and operators
// simulating failures) can reopen a directory exactly as a killed process
// would have left it.
func (l *Log) Crash() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.f.Close()
	}
	done := l.tickDone
	l.tickDone = nil
	l.mu.Unlock()
	if done != nil {
		close(done)
		l.tickWG.Wait()
	}
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer l.tickWG.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.tickDone:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty {
				l.syncLocked() // sticky error recorded; OnSyncError notified
			}
			l.mu.Unlock()
		}
	}
}

// appendFrame appends one framed entry to buf.
func appendFrame(buf []byte, e Entry) []byte {
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(1+len(e.Payload)))
	crc := crc32.Update(0, castagnoli, []byte{byte(e.Type)})
	crc = crc32.Update(crc, castagnoli, e.Payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(e.Type))
	return append(buf, e.Payload...)
}

// scanResult is one segment's verdict.
type scanResult struct {
	firstLSN uint64
	records  uint64
	truncate int64 // >= 0: torn tail, truncate the file to this size
	reset    bool  // header unusable on the final segment: rebuild empty
}

// scanSegment validates one segment file frame by frame. When fn is non-nil
// every valid record is delivered to it. last marks the final segment — the
// only place a torn tail is legal; everywhere else damage is ErrCorrupt.
// bill, when non-nil, is called with each chunk's byte count so a
// rate-limited scrubber can pace the read; a non-nil return aborts the scan.
func scanSegment(fsys vfs.FS, path string, last bool, fn func(Record) error, bill func(int) error) (scanResult, error) {
	res := scanResult{truncate: -1}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	size := st.Size()

	var hdr [headerSize]byte
	if size < headerSize {
		if last {
			res.reset = true
			return res, nil
		}
		return res, fmt.Errorf("%w: segment %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	if bill != nil {
		if err := bill(headerSize); err != nil {
			return res, err
		}
	}
	if [8]byte(hdr[:8]) != segMagic {
		if last {
			res.reset = true
			return res, nil
		}
		return res, fmt.Errorf("%w: segment %s: bad magic %x", ErrCorrupt, filepath.Base(path), hdr[:8])
	}
	res.firstLSN = binary.LittleEndian.Uint64(hdr[8:])

	torn := func(off int64) (scanResult, error) {
		if !last {
			return res, fmt.Errorf("%w: sealed segment %s damaged at offset %d",
				ErrCorrupt, filepath.Base(path), off)
		}
		res.truncate = off
		return res, nil
	}

	off := int64(headerSize)
	var fh [frameHdr]byte
	payload := make([]byte, 0, 4096)
	for off < size {
		if size-off < frameHdr {
			return torn(off)
		}
		if _, err := io.ReadFull(f, fh[:]); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(fh[0:])
		want := binary.LittleEndian.Uint32(fh[4:])
		if length == 0 || length > maxFrame {
			return torn(off)
		}
		frameEnd := off + frameHdr + int64(length)
		if frameEnd > size {
			return torn(off)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		if bill != nil {
			if err := bill(frameHdr + int(length)); err != nil {
				return res, err
			}
		}
		if crc32.Checksum(payload, castagnoli) != want {
			if frameEnd == size {
				// Garbled final frame with nothing after it: torn write.
				return torn(off)
			}
			// Valid data follows a bad frame: acknowledged history is
			// damaged in place. Never repaired silently.
			return res, fmt.Errorf("%w: segment %s: bad frame CRC at offset %d with %d bytes following",
				ErrCorrupt, filepath.Base(path), off, size-frameEnd)
		}
		if fn != nil {
			rec := Record{
				Type:    RecordType(payload[0]),
				LSN:     res.firstLSN + res.records,
				Payload: append([]byte(nil), payload[1:]...),
			}
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.records++
		off = frameEnd
	}
	return res, nil
}

// listSegments enumerates dir's wal-NNNNNNNN.log files in sequence order,
// verifying the numbering is gapless.
func listSegments(fsys vfs.FS, dir string) ([]segmentInfo, error) {
	names, err := fsys.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, p := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &seq); err != nil || seq == 0 {
			continue // foreign file; leave it alone
		}
		st, err := fsys.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = append(segs, segmentInfo{seq: seq, path: p, size: st.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			return nil, fmt.Errorf("%w: segment sequence gap: %s then %s",
				ErrCorrupt, filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}

// VerifySegment re-reads a sealed segment and verifies every frame CRC — the
// scrubber's check for latent damage (bit rot, lost writes) in acknowledged
// history. bill, when non-nil, paces the read (see scanSegment). Returns
// ErrCorrupt-wrapped errors on damage; a missing file surfaces as the
// underlying not-exist error so callers can treat pruned segments as gone,
// not damaged.
func VerifySegment(fsys vfs.FS, path string, bill func(int) error) error {
	if fsys == nil {
		fsys = vfs.OS
	}
	res, err := scanSegment(fsys, path, false, nil, bill)
	if err != nil {
		return err
	}
	if res.reset || res.truncate >= 0 {
		return fmt.Errorf("%w: sealed segment %s has a torn tail", ErrCorrupt, filepath.Base(path))
	}
	return nil
}

// truncateFile truncates path to size and syncs the result.
func truncateFile(fsys vfs.FS, path string, size int64) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and file creations are durable.
func syncDir(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
