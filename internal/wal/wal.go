// Package wal implements the write-ahead log behind TEA's durable streaming
// ingestion: an append-only, CRC-32C-framed record log split into numbered
// segment files. Writers append framed records (edge batches, delete batches,
// expire watermarks, snapshot markers) and choose a durability policy
// (fsync on every commit, on an interval, or never); recovery scans the
// segments in order, truncates a torn tail (a partially written final frame
// is the expected residue of a crash), and refuses mid-log corruption with
// ErrCorrupt — damage in the middle of acknowledged history is not
// silently dropped.
//
// On-disk layout (all integers little-endian):
//
//	<dir>/wal-00000001.log, wal-00000002.log, ...
//
//	segment  := header frame*
//	header   := magic[8] ("TEAWAL01") firstLSN[8]
//	frame    := length[4] crc[4] type[1] payload[length-1]
//
// length covers the type byte plus the payload; crc is the CRC-32C
// (Castagnoli) of those same bytes, so a flipped length, type, or payload
// byte fails verification. Records carry log sequence numbers (LSNs)
// implicitly: the segment header pins the LSN of its first frame and frames
// number consecutively, so LSNs survive old segments being truncated away
// after a snapshot.
//
// Torn tail vs. mid-log corruption: a frame that extends past end-of-file,
// or whose CRC fails with no bytes after it, is a torn tail — the log is
// truncated at the frame start and appends resume there. A frame whose CRC
// fails with more data after it, or any damage in a sealed (non-final)
// segment, is mid-log corruption and recovery refuses with ErrCorrupt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// RecordType tags a WAL record. The WAL itself never interprets payloads;
// the types are defined here so writers and recovery share one vocabulary.
type RecordType byte

const (
	// RecEdgeBatch is a batch of appended edges.
	RecEdgeBatch RecordType = 1
	// RecDeleteBatch is a batch of edge deletions.
	RecDeleteBatch RecordType = 2
	// RecExpire is a sliding-window expiry watermark.
	RecExpire RecordType = 3
	// RecSnapshotMark records that a snapshot covering every LSN up to its
	// payload value was made durable.
	RecSnapshotMark RecordType = 4
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// SyncAlways fsyncs once per append group before acknowledging —
	// every acknowledged record survives a crash.
	SyncAlways Policy = iota
	// SyncInterval fsyncs dirty segments on a background interval — a
	// crash may lose the last interval's worth of acknowledged records.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag spellings.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// ErrCorrupt is returned when recovery finds damage it must not repair
// silently: a bad frame with valid data after it, a damaged sealed segment,
// or an LSN discontinuity between segments.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed is returned by appends on a closed log.
var ErrClosed = errors.New("wal: log closed")

const (
	headerSize  = 16
	frameHdr    = 8
	maxFrame    = 64 << 20 // sanity cap on one frame; a larger length is damage
	defaultSeg  = 64 << 20
	defaultTick = 100 * time.Millisecond
)

var segMagic = [8]byte{'T', 'E', 'A', 'W', 'A', 'L', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// SegmentBytes is the rotation threshold; once the live segment reaches
	// it, the segment is sealed (synced) and appends move to a fresh file.
	// 0 means 64 MiB.
	SegmentBytes int64
	// Policy selects the fsync discipline; the zero value is SyncAlways.
	Policy Policy
	// Interval is the flush period under SyncInterval; 0 means 100ms.
	Interval time.Duration
	// OnSyncError, when non-nil, is invoked (once per failure) when an
	// fsync fails and the log enters its sticky-error state.
	OnSyncError func(error)
}

// Entry is one record to append: a type plus an opaque payload.
type Entry struct {
	Type    RecordType
	Payload []byte
}

// Record is one recovered record: an Entry plus its log sequence number.
type Record struct {
	Type    RecordType
	LSN     uint64
	Payload []byte
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	// Segments is the number of segment files present after repair.
	Segments int
	// Records is the total valid records across all segments.
	Records uint64
	// FirstLSN is the LSN of the oldest surviving record (0 when empty).
	FirstLSN uint64
	// LastLSN is the LSN of the newest surviving record (0 when empty).
	LastLSN uint64
	// TruncatedBytes counts torn-tail bytes discarded during repair.
	TruncatedBytes int64
}

// segmentInfo tracks one on-disk segment file.
type segmentInfo struct {
	seq      uint64
	path     string
	firstLSN uint64
	records  uint64
	size     int64
}

// Log is an append-only segmented record log. One writer at a time may
// Append (the durable-graph committer); Sync may race with appends.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // live segment
	segs     []segmentInfo
	nextLSN  uint64
	dirty    bool
	err      error // sticky: first write/sync failure
	closed   bool
	recovery RecoveryInfo

	tickDone chan struct{}
	tickWG   sync.WaitGroup
}

// Open opens (creating if necessary) the log in dir, repairing a torn tail
// and refusing mid-log corruption with an error wrapping ErrCorrupt. The
// returned log is positioned for appends; Replay streams the surviving
// records.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSeg
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultTick
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1, 1); err != nil {
			return nil, err
		}
	} else {
		wantLSN := uint64(0) // 0 = take the first segment's word for it
		for i := range segs {
			s := &segs[i]
			last := i == len(segs)-1
			res, err := scanSegment(s.path, last, nil)
			if err != nil {
				return nil, err
			}
			if res.reset {
				// Unusable header on the final segment (torn segment
				// creation): rebuild it empty at the expected LSN.
				if wantLSN == 0 {
					wantLSN = 1
				}
				l.recovery.TruncatedBytes += s.size
				if err := os.Remove(s.path); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
				if err := l.createSegment(s.seq, wantLSN); err != nil {
					return nil, err
				}
				l.nextLSN = wantLSN
				break
			}
			if wantLSN != 0 && res.firstLSN != wantLSN {
				return nil, fmt.Errorf("%w: segment %s starts at LSN %d, want %d",
					ErrCorrupt, filepath.Base(s.path), res.firstLSN, wantLSN)
			}
			if res.truncate >= 0 {
				l.recovery.TruncatedBytes += s.size - res.truncate
				if err := truncateFile(s.path, res.truncate); err != nil {
					return nil, err
				}
				s.size = res.truncate
			}
			s.firstLSN = res.firstLSN
			s.records = res.records
			l.segs = append(l.segs, *s)
			wantLSN = res.firstLSN + res.records
			l.nextLSN = wantLSN
		}
		if l.f == nil { // no reset path taken: open the final segment for appends
			tail := &l.segs[len(l.segs)-1]
			f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f = f
		}
	}

	l.recovery.Segments = len(l.segs)
	for _, s := range l.segs {
		l.recovery.Records += s.records
	}
	if l.recovery.Records > 0 {
		l.recovery.FirstLSN = l.segs[0].firstLSN
		l.recovery.LastLSN = l.nextLSN - 1
	}
	mSegments.Set(float64(len(l.segs)))
	mRecoveryTruncated.Set(float64(l.recovery.TruncatedBytes))

	if opts.Policy == SyncInterval {
		l.tickDone = make(chan struct{})
		l.tickWG.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// Recovery reports what Open found (and repaired) on disk.
func (l *Log) Recovery() RecoveryInfo { return l.recovery }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the newest assigned LSN (0 when the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Err returns the sticky error, if the log has degraded.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Replay streams every surviving record, oldest first, to fn. Replay reads
// from disk (segments were validated by Open); call it before the first
// Append. A non-nil error from fn aborts the replay.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segmentInfo(nil), l.segs...)
	l.mu.Unlock()
	for i, s := range segs {
		res, err := scanSegment(s.path, i == len(segs)-1, fn)
		if err != nil {
			return err
		}
		if res.reset || res.truncate >= 0 {
			// Open already repaired the tail; new damage means the disk is
			// changing under us.
			return fmt.Errorf("%w: segment %s changed since open", ErrCorrupt, filepath.Base(s.path))
		}
	}
	return nil
}

// Append frames the entries and writes them to the live segment as one
// contiguous write, assigning consecutive LSNs; under SyncAlways the frames
// are fsynced before Append returns. Returns the LSN of the first entry.
// After any write or sync failure the log is sticky-degraded: every further
// Append returns the original error.
func (l *Log) Append(entries ...Entry) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	size := 0
	for _, e := range entries {
		size += frameHdr + 1 + len(e.Payload)
	}
	buf := make([]byte, 0, size)
	for _, e := range entries {
		buf = appendFrame(buf, e)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	first := l.nextLSN
	l.nextLSN += uint64(len(entries))
	tail := &l.segs[len(l.segs)-1]
	tail.records += uint64(len(entries))
	tail.size += int64(len(buf))
	mAppendedRecords.Add(int64(len(entries)))
	mAppendedBytes.Add(int64(len(buf)))

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		l.dirty = true
	}
	if tail.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// Sync flushes the live segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// syncLocked fsyncs the live segment, feeding the fsync metrics and turning
// a failure into the sticky degraded state. Caller holds l.mu.
func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	mFsyncSeconds.ObserveSince(start)
	mFsyncs.Inc()
	l.dirty = false
	if err != nil {
		mFsyncErrors.Inc()
		l.err = fmt.Errorf("wal: fsync: %w", err)
		if l.opts.OnSyncError != nil {
			l.opts.OnSyncError(l.err)
		}
		return l.err
	}
	return nil
}

// rotateLocked seals the live segment (fsync + close) and starts the next
// one. The new segment is made durable (file header fsynced, then the
// directory) before appends move over, so a crash between the two leaves
// either the sealed old tail or a valid empty successor — never a
// half-registered file with acknowledged records.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: seal segment: %w", err)
		return l.err
	}
	seq := l.segs[len(l.segs)-1].seq + 1
	if err := l.createSegment(seq, l.nextLSN); err != nil {
		l.err = err
		return err
	}
	return nil
}

// createSegment creates and registers segment seq starting at firstLSN,
// leaving it as the live append target. Caller holds l.mu (or is Open).
func (l *Log) createSegment(seq, firstLSN uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.log", seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segmentInfo{
		seq: seq, path: path, firstLSN: firstLSN, size: headerSize,
	})
	l.nextLSN = firstLSN
	mSegments.Set(float64(len(l.segs)))
	return nil
}

// TruncateBefore removes whole sealed segments every record of which has
// LSN < lsn — the log-trimming step after a snapshot. The live segment is
// never removed. Returns the number of segment files deleted.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 {
		s := l.segs[0]
		if s.firstLSN+s.records > lsn { // segment still holds a needed record
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
		mSegments.Set(float64(len(l.segs)))
	}
	return removed, nil
}

// Close flushes and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.err == nil && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	done := l.tickDone
	l.mu.Unlock()
	if done != nil {
		close(done)
		l.tickWG.Wait()
	}
	return err
}

// Crash abandons the log without flushing — the file descriptors close but
// nothing is synced. It exists so crash-recovery tests (and operators
// simulating failures) can reopen a directory exactly as a killed process
// would have left it.
func (l *Log) Crash() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.f.Close()
	}
	done := l.tickDone
	l.tickDone = nil
	l.mu.Unlock()
	if done != nil {
		close(done)
		l.tickWG.Wait()
	}
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer l.tickWG.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.tickDone:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty {
				l.syncLocked() // sticky error recorded; OnSyncError notified
			}
			l.mu.Unlock()
		}
	}
}

// appendFrame appends one framed entry to buf.
func appendFrame(buf []byte, e Entry) []byte {
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(1+len(e.Payload)))
	crc := crc32.Update(0, castagnoli, []byte{byte(e.Type)})
	crc = crc32.Update(crc, castagnoli, e.Payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(e.Type))
	return append(buf, e.Payload...)
}

// scanResult is one segment's verdict.
type scanResult struct {
	firstLSN uint64
	records  uint64
	truncate int64 // >= 0: torn tail, truncate the file to this size
	reset    bool  // header unusable on the final segment: rebuild empty
}

// scanSegment validates one segment file frame by frame. When fn is non-nil
// every valid record is delivered to it. last marks the final segment — the
// only place a torn tail is legal; everywhere else damage is ErrCorrupt.
func scanSegment(path string, last bool, fn func(Record) error) (scanResult, error) {
	res := scanResult{truncate: -1}
	f, err := os.Open(path)
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	size := st.Size()

	var hdr [headerSize]byte
	if size < headerSize {
		if last {
			res.reset = true
			return res, nil
		}
		return res, fmt.Errorf("%w: segment %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return res, fmt.Errorf("wal: %w", err)
	}
	if [8]byte(hdr[:8]) != segMagic {
		if last {
			res.reset = true
			return res, nil
		}
		return res, fmt.Errorf("%w: segment %s: bad magic %x", ErrCorrupt, filepath.Base(path), hdr[:8])
	}
	res.firstLSN = binary.LittleEndian.Uint64(hdr[8:])

	torn := func(off int64) (scanResult, error) {
		if !last {
			return res, fmt.Errorf("%w: sealed segment %s damaged at offset %d",
				ErrCorrupt, filepath.Base(path), off)
		}
		res.truncate = off
		return res, nil
	}

	off := int64(headerSize)
	var fh [frameHdr]byte
	payload := make([]byte, 0, 4096)
	for off < size {
		if size-off < frameHdr {
			return torn(off)
		}
		if _, err := io.ReadFull(f, fh[:]); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(fh[0:])
		want := binary.LittleEndian.Uint32(fh[4:])
		if length == 0 || length > maxFrame {
			return torn(off)
		}
		frameEnd := off + frameHdr + int64(length)
		if frameEnd > size {
			return torn(off)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			if frameEnd == size {
				// Garbled final frame with nothing after it: torn write.
				return torn(off)
			}
			// Valid data follows a bad frame: acknowledged history is
			// damaged in place. Never repaired silently.
			return res, fmt.Errorf("%w: segment %s: bad frame CRC at offset %d with %d bytes following",
				ErrCorrupt, filepath.Base(path), off, size-frameEnd)
		}
		if fn != nil {
			rec := Record{
				Type:    RecordType(payload[0]),
				LSN:     res.firstLSN + res.records,
				Payload: append([]byte(nil), payload[1:]...),
			}
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.records++
		off = frameEnd
	}
	return res, nil
}

// listSegments enumerates dir's wal-NNNNNNNN.log files in sequence order,
// verifying the numbering is gapless.
func listSegments(dir string) ([]segmentInfo, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, p := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &seq); err != nil || seq == 0 {
			continue // foreign file; leave it alone
		}
		st, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = append(segs, segmentInfo{seq: seq, path: p, size: st.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			return nil, fmt.Errorf("%w: segment sequence gap: %s then %s",
				ErrCorrupt, filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}

// truncateFile truncates path to size and syncs the result.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and file creations are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
