package reqcost

import (
	"sort"
	"sync"
)

// Record is one finished request as retained by the top ring: identity, how
// long it took, and what it consumed (with the per-shard split when the
// router assembled one).
type Record struct {
	RequestID   string `json:"request_id"`
	Endpoint    string `json:"endpoint"`
	Status      int    `json:"status"`
	StartMicros int64  `json:"start_us"` // Unix microseconds
	WallMicros  int64  `json:"wall_us"`
	Cost        Cost   `json:"cost"`
}

// Top is a fixed-capacity ring of recent request records, queryable for the
// K most expensive — `top` for walks. Writes take one short mutex-guarded
// slot store per request completion (never on the walk hot path); reads
// copy and sort outside the lock.
type Top struct {
	mu   sync.Mutex
	ring []Record
	used []bool
	pos  int
}

// NewTop builds a ring retaining the last capacity completed requests
// (default 256 when capacity <= 0).
func NewTop(capacity int) *Top {
	if capacity <= 0 {
		capacity = 256
	}
	return &Top{ring: make([]Record, capacity), used: make([]bool, capacity)}
}

// Record retains one completed request, evicting the oldest entry once the
// ring is full. Safe for concurrent use; free on a nil receiver.
func (t *Top) Record(r Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.pos] = r
	t.used[t.pos] = true
	t.pos = (t.pos + 1) % len(t.ring)
	t.mu.Unlock()
}

// Top returns the k most expensive retained requests, ordered by wall time
// descending (ties by request ID for stable output). k <= 0 means every
// retained record.
func (t *Top) Top(k int) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Record, 0, len(t.ring))
	for i, u := range t.used {
		if u {
			out = append(out, t.ring[i])
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallMicros != out[j].WallMicros {
			return out[i].WallMicros > out[j].WallMicros
		}
		return out[i].RequestID < out[j].RequestID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
