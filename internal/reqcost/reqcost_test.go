package reqcost

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/tea-graph/tea/internal/stats"
)

func TestNilCollectorIsFree(t *testing.T) {
	var c *Collector
	c.AddEngine(stats.Cost{Steps: 10})
	c.AddMigration(5, 280)
	c.CacheRead(true, 64)
	c.DeviceRead(4096)
	c.AddCost(Cost{Steps: 3})
	if got := c.Snapshot(); !reflect.DeepEqual(got, Cost{}) {
		t.Fatalf("nil collector snapshot = %+v, want zero", got)
	}
}

func TestCollectorAccumulates(t *testing.T) {
	ctx, c := Attach(context.Background())
	if From(ctx) != c {
		t.Fatal("From did not return the attached collector")
	}
	if !Active(ctx) {
		t.Fatal("Active false on attached context")
	}
	if Active(context.Background()) {
		t.Fatal("Active true on bare context")
	}
	c.AddEngine(stats.Cost{Steps: 100, EdgesEvaluated: 250, WalksStarted: 4, ReadRetries: 2})
	c.AddMigration(7, 500)
	c.AddMigration(3, 200)
	c.CacheRead(true, 64)
	c.CacheRead(false, 4096)
	c.DeviceRead(8192)
	snap := c.Snapshot()
	want := Cost{
		Steps: 100, EdgesEvaluated: 250, Walks: 4, ReadRetries: 2,
		Migrations: 10, Frames: 2, MigrationBytes: 700,
		CacheHits: 1, CacheMisses: 1, DeviceBytes: 4096 + 8192, ReadOps: 2,
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %+v, want %+v", snap, want)
	}
}

func TestCostAddAndCollectorAddCost(t *testing.T) {
	a := Cost{Steps: 1, EdgesEvaluated: 2, Walks: 3, Migrations: 4, Frames: 5,
		MigrationBytes: 6, CacheHits: 7, CacheMisses: 8, DeviceBytes: 9, ReadOps: 10, ReadRetries: 11}
	var sum Cost
	sum.Add(a)
	sum.Add(a)
	if sum.Steps != 2 || sum.ReadRetries != 22 || sum.MigrationBytes != 12 {
		t.Fatalf("Cost.Add wrong: %+v", sum)
	}
	var c Collector
	c.AddCost(a)
	c.AddCost(a)
	got := c.Snapshot()
	if !reflect.DeepEqual(got, sum) {
		t.Fatalf("AddCost snapshot = %+v, want %+v", got, sum)
	}
}

func TestTopOrdersByWallTime(t *testing.T) {
	top := NewTop(8)
	for i := 0; i < 5; i++ {
		top.Record(Record{
			RequestID:  fmt.Sprintf("req-%d", i),
			Endpoint:   "walk",
			WallMicros: int64(i * 100),
			Cost:       Cost{Steps: int64(i)},
		})
	}
	got := top.Top(3)
	if len(got) != 3 {
		t.Fatalf("Top(3) returned %d records", len(got))
	}
	if got[0].RequestID != "req-4" || got[1].RequestID != "req-3" || got[2].RequestID != "req-2" {
		t.Fatalf("Top(3) order wrong: %v %v %v", got[0].RequestID, got[1].RequestID, got[2].RequestID)
	}
	if all := top.Top(0); len(all) != 5 {
		t.Fatalf("Top(0) returned %d records, want all 5", len(all))
	}
}

func TestTopEvictsOldest(t *testing.T) {
	top := NewTop(4)
	for i := 0; i < 10; i++ {
		top.Record(Record{RequestID: fmt.Sprintf("req-%d", i), WallMicros: int64(i)})
	}
	got := top.Top(0)
	if len(got) != 4 {
		t.Fatalf("ring retained %d records, want 4", len(got))
	}
	for _, r := range got {
		if r.WallMicros < 6 {
			t.Fatalf("evicted record %s still present", r.RequestID)
		}
	}
}

func TestNilTop(t *testing.T) {
	var top *Top
	top.Record(Record{RequestID: "x"})
	if got := top.Top(5); got != nil {
		t.Fatalf("nil Top returned %v", got)
	}
}

// TestTopConcurrentHammer drives writers and readers through the ring at
// once; run with -race this is the satellite's concurrency check for the
// top-K ring.
func TestTopConcurrentHammer(t *testing.T) {
	top := NewTop(64)
	var wg sync.WaitGroup
	const writers, readers, perWriter = 8, 4, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				top.Record(Record{
					RequestID:  fmt.Sprintf("w%d-%d", w, i),
					Endpoint:   "walk",
					WallMicros: int64(i),
					Cost:       Cost{Steps: int64(i), Shards: map[string]*Cost{"0": {Steps: int64(i)}}},
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				recs := top.Top(10)
				if len(recs) > 10 {
					t.Errorf("Top(10) returned %d records", len(recs))
					return
				}
				for j := 1; j < len(recs); j++ {
					if recs[j].WallMicros > recs[j-1].WallMicros {
						t.Errorf("Top order violated: %d after %d", recs[j].WallMicros, recs[j-1].WallMicros)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := top.Top(0); len(got) != 64 {
		t.Fatalf("after hammer ring holds %d records, want 64", len(got))
	}
}

// TestCollectorConcurrent exercises concurrent adds from walk workers and
// migration goroutines (run with -race).
func TestCollectorConcurrent(t *testing.T) {
	_, c := Attach(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.CacheRead(i%2 == 0, 128)
				c.AddMigration(1, 56)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.CacheHits != 4000 || snap.CacheMisses != 4000 || snap.Migrations != 8000 || snap.Frames != 8000 {
		t.Fatalf("concurrent totals wrong: %+v", snap)
	}
}
