// Package reqcost attributes resource consumption to individual requests.
// Where package metrics aggregates across all traffic and package stats
// accumulates per-run worker counters, this package answers "what did THIS
// request cost, across every process it touched": a Collector rides the
// request context from the HTTP layer through the engine and the shard
// coordinator, layers along the way (block fetches, walker migrations) add
// to it, and the handler snapshots it into the response's opt-in "cost"
// block, the top-K expensive-request ring (top.go), and the slow-request
// log.
//
// Discipline: the walk hot loop never touches the collector. Step and edge
// totals are folded in once at run end from the engine's stats.Cost; only
// inherently slow operations (device reads, cross-shard frames) add live,
// and those adds are single atomics against an I/O- or network-bound
// operation. A nil *Collector (accounting off) is the free path: every
// method no-ops.
package reqcost

import (
	"context"
	"sync/atomic"

	"github.com/tea-graph/tea/internal/stats"
)

// Cost is one request's resource snapshot — the JSON shape of the response
// "cost" block, /debug/tea/top entries, and the slow-request log fields.
// On a router-assembled response, Shards carries the per-shard split keyed
// by shard id.
type Cost struct {
	Steps          int64 `json:"steps"`
	EdgesEvaluated int64 `json:"edges_evaluated"`
	Walks          int64 `json:"walks,omitempty"`
	Migrations     int64 `json:"migrations,omitempty"`
	Frames         int64 `json:"frames,omitempty"`
	MigrationBytes int64 `json:"migration_bytes,omitempty"`
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	DeviceBytes    int64 `json:"device_bytes,omitempty"`
	ReadOps        int64 `json:"read_ops,omitempty"`
	ReadRetries    int64 `json:"read_retries,omitempty"`
	WallMicros     int64 `json:"wall_us,omitempty"`

	Shards map[string]*Cost `json:"shards,omitempty"`
}

// Add merges other's totals into c (Shards maps are not merged — the split
// belongs to whoever assembled it).
func (c *Cost) Add(other Cost) {
	c.Steps += other.Steps
	c.EdgesEvaluated += other.EdgesEvaluated
	c.Walks += other.Walks
	c.Migrations += other.Migrations
	c.Frames += other.Frames
	c.MigrationBytes += other.MigrationBytes
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.DeviceBytes += other.DeviceBytes
	c.ReadOps += other.ReadOps
	c.ReadRetries += other.ReadRetries
}

// Collector accumulates one request's cost. All methods are safe for
// concurrent use (walk workers and migration goroutines add concurrently)
// and free on a nil receiver.
type Collector struct {
	steps          atomic.Int64
	edgesEvaluated atomic.Int64
	walks          atomic.Int64
	migrations     atomic.Int64
	frames         atomic.Int64
	migrationBytes atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	deviceBytes    atomic.Int64
	readOps        atomic.Int64
	readRetries    atomic.Int64
}

// AddEngine folds a finished run's aggregate cost in: steps, edges, walks,
// and the engine-side I/O retry count. Called once per run, off the hot
// path.
func (c *Collector) AddEngine(cost stats.Cost) {
	if c == nil {
		return
	}
	c.steps.Add(cost.Steps)
	c.edgesEvaluated.Add(cost.EdgesEvaluated)
	c.walks.Add(cost.WalksStarted)
	c.readRetries.Add(cost.ReadRetries)
}

// AddMigration accounts one cross-shard step frame carrying walkers walkers
// in bytes on-wire bytes.
func (c *Collector) AddMigration(walkers, bytes int64) {
	if c == nil {
		return
	}
	c.migrations.Add(walkers)
	c.frames.Add(1)
	c.migrationBytes.Add(bytes)
}

// CacheRead accounts one block read served by the cache (hit) or the device
// behind it (miss).
func (c *Collector) CacheRead(hit bool, bytes int64) {
	if c == nil {
		return
	}
	if hit {
		c.cacheHits.Add(1)
		return
	}
	c.cacheMisses.Add(1)
	c.deviceBytes.Add(bytes)
	c.readOps.Add(1)
}

// DeviceRead accounts one uncached device read.
func (c *Collector) DeviceRead(bytes int64) {
	if c == nil {
		return
	}
	c.deviceBytes.Add(bytes)
	c.readOps.Add(1)
}

// AddCost merges an externally assembled Cost (e.g. a shard's cost_detail
// merged at the router).
func (c *Collector) AddCost(cost Cost) {
	if c == nil {
		return
	}
	c.steps.Add(cost.Steps)
	c.edgesEvaluated.Add(cost.EdgesEvaluated)
	c.walks.Add(cost.Walks)
	c.migrations.Add(cost.Migrations)
	c.frames.Add(cost.Frames)
	c.migrationBytes.Add(cost.MigrationBytes)
	c.cacheHits.Add(cost.CacheHits)
	c.cacheMisses.Add(cost.CacheMisses)
	c.deviceBytes.Add(cost.DeviceBytes)
	c.readOps.Add(cost.ReadOps)
	c.readRetries.Add(cost.ReadRetries)
}

// Snapshot copies the collector's current totals.
func (c *Collector) Snapshot() Cost {
	if c == nil {
		return Cost{}
	}
	return Cost{
		Steps:          c.steps.Load(),
		EdgesEvaluated: c.edgesEvaluated.Load(),
		Walks:          c.walks.Load(),
		Migrations:     c.migrations.Load(),
		Frames:         c.frames.Load(),
		MigrationBytes: c.migrationBytes.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		DeviceBytes:    c.deviceBytes.Load(),
		ReadOps:        c.readOps.Load(),
		ReadRetries:    c.readRetries.Load(),
	}
}

// ctxKey keys the collector in a context.
type ctxKey struct{}

// Attach returns a context carrying a fresh collector. The server attaches
// one per request; everything downstream finds it via From.
func Attach(ctx context.Context) (context.Context, *Collector) {
	c := &Collector{}
	return context.WithValue(ctx, ctxKey{}, c), c
}

// From returns the context's collector, or nil when the request is not
// being accounted.
func From(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// Active reports whether ctx carries a collector. Layers that must opt in
// to a context-threaded path (the scalar walk kernel resolving its
// ContextSampler) check it once up front.
func Active(ctx context.Context) bool { return From(ctx) != nil }
