package core

import (
	"context"
	"testing"
	"unsafe"

	"github.com/tea-graph/tea/internal/temporal"
)

// The per-worker accumulator must be padded so no 64-byte cache line can
// hold fields of two adjacent workers: its size must be a multiple of the
// line size and the fields must sit at least one line past the struct start.
func TestWalkerStatePadding(t *testing.T) {
	if s := unsafe.Sizeof(walkerState{}); s%64 != 0 {
		t.Fatalf("sizeof(walkerState) = %d, want a multiple of 64", s)
	}
	if off := unsafe.Offsetof(walkerState{}.cost); off < 64 {
		t.Fatalf("cost offset = %d, want ≥ 64 (leading guard)", off)
	}
}

// A run must publish its aggregates to the default metrics registry at run
// end: started/completed counters and the walk/step totals move by exactly
// the run's cost. Deltas (not absolute values) keep the test independent of
// other tests sharing the process-wide registry.
func TestRunPublishesMetrics(t *testing.T) {
	eng, err := NewEngine(temporal.CommuteGraph(), Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	started0 := mRunsStarted.Value()
	completed0 := mRunsCompleted.Value()
	walks0 := mWalks.Value()
	steps0 := mSteps.Value()
	runs0 := mRunSeconds.Count()

	res, err := eng.Run(WalkConfig{Length: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := mRunsStarted.Value() - started0; d != 1 {
		t.Fatalf("runs started delta = %d", d)
	}
	if d := mRunsCompleted.Value() - completed0; d != 1 {
		t.Fatalf("runs completed delta = %d", d)
	}
	if d := mWalks.Value() - walks0; d != res.Cost.WalksStarted {
		t.Fatalf("walks delta = %d, want %d", d, res.Cost.WalksStarted)
	}
	if d := mSteps.Value() - steps0; d != res.Cost.Steps {
		t.Fatalf("steps delta = %d, want %d", d, res.Cost.Steps)
	}
	if d := mRunSeconds.Count() - runs0; d != 1 {
		t.Fatalf("run duration observations delta = %d", d)
	}
}

// A cancelled run counts as cancelled, not completed.
func TestCancelledRunPublishesCancelled(t *testing.T) {
	eng, err := NewEngine(temporal.CommuteGraph(), Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cancelled0 := mRunsCancelled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, WalkConfig{Length: 5}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if d := mRunsCancelled.Value() - cancelled0; d != 1 {
		t.Fatalf("runs cancelled delta = %d", d)
	}
}
