package core

import (
	"math"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func allMethods() []Method {
	return []Method{MethodHPAT, MethodHPATNoIndex, MethodPAT, MethodITS}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		MethodHPAT: "HPAT+Index", MethodHPATNoIndex: "HPAT",
		MethodPAT: "PAT", MethodITS: "ITS", Method(42): "Method(42)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestAppValidate(t *testing.T) {
	bad := App{Name: "bad", Parameter: func(*temporal.Graph, temporal.Vertex, temporal.Vertex) float64 { return 1 }}
	if bad.Validate() == nil {
		t.Fatal("missing MaxParameter accepted")
	}
	if LinearTime().Validate() != nil || TemporalNode2Vec(0.5, 2, 1).Validate() != nil {
		t.Fatal("built-in app failed validation")
	}
}

func TestNode2VecPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=0")
		}
	}()
	TemporalNode2Vec(0, 2, 1)
}

func TestNode2VecBeta(t *testing.T) {
	g := temporal.CommuteGraph()
	g.BuildNeighborIndex()
	app := TemporalNode2Vec(0.5, 2, 1)
	if got := app.Parameter(g, 7, 7); got != 2 {
		t.Fatalf("return-to-prev β = %v, want 1/p = 2", got)
	}
	if got := app.Parameter(g, 7, 4); got != 1 {
		t.Fatalf("neighbor β = %v, want 1", got)
	}
	if got := app.Parameter(g, 4, 9); got != 0.5 {
		t.Fatalf("distant β = %v, want 1/q = 0.5", got)
	}
	if app.MaxParameter != 2 {
		t.Fatalf("MaxParameter = %v", app.MaxParameter)
	}
}

// Every sampler method must produce temporally valid paths: strictly
// increasing edge times along every walk.
func TestWalksAreTemporalPaths(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 6000, 1000, 3)
	for _, m := range allMethods() {
		eng, err := NewEngine(g, ExponentialWalk(0.01), Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(WalkConfig{Length: 20, Seed: 7, KeepPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Paths) != g.NumVertices() {
			t.Fatalf("%v: %d paths", m, len(res.Paths))
		}
		checkedSteps := 0
		for _, p := range res.Paths {
			if len(p.Vertices) != len(p.Times)+1 {
				t.Fatalf("%v: path shape %d vertices, %d times", m, len(p.Vertices), len(p.Times))
			}
			for i := 1; i < len(p.Times); i++ {
				if p.Times[i] <= p.Times[i-1] {
					t.Fatalf("%v: non-increasing times %v", m, p.Times)
				}
			}
			// Every traversed edge must exist in the graph.
			for i := 0; i+1 < len(p.Vertices); i++ {
				if !g.HasNeighbor(p.Vertices[i], p.Vertices[i+1]) {
					t.Fatalf("%v: path uses non-edge %d->%d", m, p.Vertices[i], p.Vertices[i+1])
				}
				checkedSteps++
			}
		}
		if int64(checkedSteps) != res.Cost.Steps {
			t.Fatalf("%v: steps %d != path edges %d", m, res.Cost.Steps, checkedSteps)
		}
	}
}

// All four methods sample from the same distribution; their step-transition
// frequencies out of a hub must agree with the exact weights.
func TestMethodsAgreeOnDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	for _, m := range allMethods() {
		eng, err := NewEngine(g, LinearRank(), Options{Method: m, SmallDegreeCutoff: -1})
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(5)
		// Sample vertex 7's full candidate set through the engine's sampler.
		want := []float64{7, 6, 5, 4, 3, 2, 1}
		testutil.CheckDistribution(t, m.String(), want, 40000, func() (int, bool) {
			e, _, ok := eng.Sampler().Sample(7, 7, r)
			return e, ok
		})
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 500, 11)
	eng, err := NewEngine(g, LinearTime(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Run(WalkConfig{Length: 15, Seed: 42, KeepPaths: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(WalkConfig{Length: 15, Seed: 42, KeepPaths: true, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Steps != b.Cost.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Cost.Steps, b.Cost.Steps)
	}
	for i := range a.Paths {
		if len(a.Paths[i].Vertices) != len(b.Paths[i].Vertices) {
			t.Fatalf("path %d differs across thread counts", i)
		}
		for j := range a.Paths[i].Vertices {
			if a.Paths[i].Vertices[j] != b.Paths[i].Vertices[j] {
				t.Fatalf("path %d vertex %d differs", i, j)
			}
		}
	}
}

func TestRunRespectsWalksPerVertexAndSources(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{
		WalksPerVertex: 3,
		Length:         5,
		StartVertices:  []temporal.Vertex{7, 8},
		KeepPaths:      true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 6 {
		t.Fatalf("paths = %d, want 6", len(res.Paths))
	}
	if res.Cost.WalksStarted != 6 {
		t.Fatalf("WalksStarted = %d", res.Cost.WalksStarted)
	}
	for i, p := range res.Paths {
		wantSrc := temporal.Vertex(7)
		if i >= 3 {
			wantSrc = 8
		}
		if p.Vertices[0] != wantSrc {
			t.Fatalf("path %d starts at %d, want %d", i, p.Vertices[0], wantSrc)
		}
	}
}

func TestRunRejectsBadSource(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(WalkConfig{StartVertices: []temporal.Vertex{99}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestDeadEndAccounting(t *testing.T) {
	// A path graph 0->1->2 with increasing times: every walk dead-ends.
	g := temporal.MustFromEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 1, Dst: 2, Time: 2}})
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{Length: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.WalksCompleted != 0 {
		t.Fatalf("WalksCompleted = %d on a dead-end graph", res.Cost.WalksCompleted)
	}
	if res.Cost.WalksDeadEnded != 3 {
		t.Fatalf("WalksDeadEnded = %d, want 3", res.Cost.WalksDeadEnded)
	}
	// Walk from 0 takes 2 steps, from 1 takes 1, from 2 takes 0.
	if res.Cost.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", res.Cost.Steps)
	}
	if res.Lengths.Count(0) != 1 || res.Lengths.Count(1) != 1 || res.Lengths.Count(2) != 1 {
		t.Fatal("length histogram wrong")
	}
}

// Temporal connectivity of Figure 1: from vertex 9 (edge at t=4) the only
// reachable second hops out of 7 are 4, 5, 6 — "only three paths 9→7→4,
// 9→7→5, and 9→7→6 are valid".
func TestFigure1TemporalConnectivity(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{
		WalksPerVertex: 3000,
		Length:         2,
		StartVertices:  []temporal.Vertex{9},
		KeepPaths:      true,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[temporal.Vertex]bool{}
	for _, p := range res.Paths {
		if len(p.Vertices) != 3 {
			t.Fatalf("path %v should have 2 steps", p.Vertices)
		}
		if p.Vertices[1] != 7 {
			t.Fatalf("first hop %d, want 7", p.Vertices[1])
		}
		seen[p.Vertices[2]] = true
	}
	for _, v := range []temporal.Vertex{4, 5, 6} {
		if !seen[v] {
			t.Errorf("valid endpoint %d never sampled", v)
		}
	}
	for v := range seen {
		if v != 4 && v != 5 && v != 6 {
			t.Errorf("invalid endpoint %d sampled (violates temporal order)", v)
		}
	}
}

func TestNode2VecBiasObservable(t *testing.T) {
	// Star + triangle: from hub 0 the walk goes to 1; then candidates are
	// {0 (return), 2 (neighbor of 0), 3 (distant)} at equal times.
	edges := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 5}, // makes 2 a neighbor of 0
		{Src: 1, Dst: 0, Time: 2},
		{Src: 1, Dst: 2, Time: 2},
		{Src: 1, Dst: 3, Time: 2},
	}
	g := temporal.MustFromEdges(edges)
	// Uniform weights isolate the β effect; p=0.25 favors returning.
	app := TemporalNode2Vec(0.25, 4, 1)
	app.Weight = sampling.WeightSpec{Kind: sampling.WeightUniform}
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{
		WalksPerVertex: 30000, Length: 2,
		StartVertices: []temporal.Vertex{0}, KeepPaths: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[temporal.Vertex]int{}
	for _, p := range res.Paths {
		if len(p.Vertices) == 3 {
			counts[p.Vertices[2]]++
		}
	}
	// Expected ratios ∝ β: return=4, neighbor=1, distant=0.25.
	if !(counts[0] > counts[2] && counts[2] > counts[3]) {
		t.Fatalf("β ordering violated: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[2])
	if math.Abs(ratio-4) > 0.5 {
		t.Fatalf("return/neighbor ratio %.2f, want ≈4", ratio)
	}
	if res.Cost.Trials == 0 {
		t.Fatal("β rejection trials not counted")
	}
}

// TEA's headline property: per-step sampling cost is tiny and nearly
// degree-independent for HPAT, but O(k) for a full-scan approach.
func TestHPATEdgesPerStepSmall(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 8192)
	eng, err := NewEngine(g, ExponentialWalk(0.001), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{Length: 10, Seed: 9, StartVertices: manyZeros(500)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Steps == 0 {
		t.Fatal("no steps taken")
	}
	if eps := res.Cost.EdgesPerStep(); eps > 25 {
		t.Fatalf("HPAT edges/step = %.1f on a degree-8192 hub", eps)
	}
}

func manyZeros(n int) []temporal.Vertex {
	return make([]temporal.Vertex, n)
}

func TestExternalSamplerAndWeights(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	its := NewITSSampler(w)
	eng, err := NewEngine(g, LinearRank(), Options{ExternalSampler: its, ExternalWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Sampler() != Sampler(its) {
		t.Fatal("external sampler not used")
	}
	if eng.Weights() != w {
		t.Fatal("external weights not used")
	}
	if _, err := eng.Run(WalkConfig{Length: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPreprocessStatsPopulated(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 700, 13)
	eng, err := NewEngine(g, TemporalNode2Vec(0.5, 2, 0.01), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.Preprocess()
	if p.CandidateSearch <= 0 || p.IndexBuild <= 0 || p.AuxIndexBuild <= 0 ||
		p.NeighborIndex <= 0 || p.Total <= 0 {
		t.Fatalf("preprocess stats not populated: %+v", p)
	}
	if !g.HasCandidatePrecompute() || !g.HasNeighborIndex() {
		t.Fatal("graph indices missing after preprocessing")
	}
	if eng.MemoryBytes() <= 0 {
		t.Fatal("memory estimate not positive")
	}
	if eng.Graph() != g || eng.App().Name != TemporalNode2Vec(0.5, 2, 0.01).Name {
		t.Fatal("accessors broken")
	}
}

func TestSkipCandidatePrecompute(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 2000, 300, 17)
	eng, err := NewEngine(g, LinearTime(), Options{SkipCandidatePrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasCandidatePrecompute() {
		t.Fatal("candidate precompute ran despite skip")
	}
	if _, err := eng.Run(WalkConfig{Length: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestITSSamplerDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	its := NewITSSampler(w)
	if its.Name() != "ITS" {
		t.Fatal("name")
	}
	r := xrand.New(6)
	for k := 1; k <= 7; k++ {
		want := make([]float64, k)
		for i := range want {
			want[i] = float64(7 - i)
		}
		testutil.CheckDistribution(t, "its-core", want, 20000, func() (int, bool) {
			e, _, ok := its.Sample(7, k, r)
			return e, ok
		})
	}
	if _, _, ok := its.Sample(7, 0, r); ok {
		t.Fatal("k=0 sampled")
	}
	if _, _, ok := its.Sample(1, 1, r); ok {
		t.Fatal("degree-0 sampled")
	}
	if its.MemoryBytes() <= 0 {
		t.Fatal("memory")
	}
}

func TestEngineErrorPaths(t *testing.T) {
	g := temporal.CommuteGraph()
	if _, err := NewEngine(g, App{Name: "x", Parameter: func(*temporal.Graph, temporal.Vertex, temporal.Vertex) float64 { return 1 }}, Options{}); err == nil {
		t.Fatal("invalid app accepted")
	}
	if _, err := NewEngine(g, Unbiased(), Options{Method: Method(77)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	bad := App{Name: "badweight", Weight: sampling.WeightSpec{Custom: func(temporal.Time) float64 { return -1 }}}
	if _, err := NewEngine(g, bad, Options{}); err == nil {
		t.Fatal("bad custom weight accepted")
	}
}

func BenchmarkEngineWalkHPAT(b *testing.B) {
	benchWalk(b, MethodHPAT)
}

func BenchmarkEngineWalkITS(b *testing.B) {
	benchWalk(b, MethodITS)
}

func benchWalk(b *testing.B, m Method) {
	g := testutil.RandomGraph(b, 5000, 200000, 100000, 1)
	eng, err := NewEngine(g, ExponentialWalk(0.0001), Options{Method: m})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(WalkConfig{Length: 80, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
