package core

// batch.go implements the step-synchronous walk kernel (ROADMAP item 3): live
// walkers are kept in flat struct-of-arrays state and the whole frontier is
// advanced one synchronized step at a time — the layout GPU temporal-walk
// samplers use for coalesced sampling-structure lookups, and the one a future
// SIMD/GPU backend needs. Each step, workers claim fixed-size chunks of the
// frontier off a shared cursor (dynamic distribution), gather their walkers'
// positions into flat arrays, and hand them to the sampler in one
// BatchSampler.SampleBatch call; for disk-backed samplers the frontier is
// additionally sorted by vertex (FrontierGrouper) so fetches for walkers
// parked on the same vertex coalesce deliberately instead of relying on
// blockcache singleflight luck.
//
// Determinism: walker wi's randomness comes exclusively from its private
// stream root.Split(wi), and the batched trial rounds consume that stream in
// exactly the scalar order (sample draw, then β draw per rejection trial), so
// this kernel replays byte-identical seeded walks versus the scalar path —
// the scalar kernel is the batched kernel's correctness oracle.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

const (
	// DefaultBatchWave bounds how many walks are resident in the batched
	// kernel's flat state at once. At ~32 bytes of SoA state per walker a
	// wave is ~2 MiB regardless of the run's total walk count.
	DefaultBatchWave = 1 << 16
	// batchChunk is the number of frontier entries a worker claims per bump
	// of the shared cursor within one step. It is also the kernel's
	// cancellation latency bound: a worker checks the run context between
	// chunks, so a cancelled run overruns by at most threads×batchChunk
	// steps.
	batchChunk = 64
	// batchAutoMinWalks is the smallest run KernelAuto sends to the batched
	// kernel; below it no frontier worth synchronizing forms and the scalar
	// kernel's per-walk latency wins. The threshold sits just above the
	// measured crossover on the quick bench profiles (~1-2k walks), where
	// the per-step worker synchronization stops dominating the sweep work.
	batchAutoMinWalks = 2048
)

// waveState is the flat struct-of-arrays walker state for one wave of the
// batched kernel. Index i is walker waveLo+i; frontier holds the indices of
// walkers still alive, and dead walkers are marked by writing -1 into their
// frontier slot (compacted between steps by the coordinator).
type waveState struct {
	waveLo   int               // walk id of index 0 in the current wave
	cur      []temporal.Vertex // current vertex
	prev     []temporal.Vertex // previous vertex (β test), valid when hasPrev
	kcand    []int32           // candidate count at cur (the walker's clock)
	steps    []int32           // steps taken so far
	rng      []xrand.Rand      // private random stream, seeded via SplitTo
	hasPrev  []bool
	started  []bool // first swept by a worker; WalksStarted counted then
	frontier []int32
}

func (ws *waveState) resize(n int) {
	if cap(ws.cur) < n {
		ws.cur = make([]temporal.Vertex, n)
		ws.prev = make([]temporal.Vertex, n)
		ws.kcand = make([]int32, n)
		ws.steps = make([]int32, n)
		ws.rng = make([]xrand.Rand, n)
		ws.hasPrev = make([]bool, n)
		ws.started = make([]bool, n)
		ws.frontier = make([]int32, 0, n)
	}
	ws.cur = ws.cur[:n]
	ws.prev = ws.prev[:n]
	ws.kcand = ws.kcand[:n]
	ws.steps = ws.steps[:n]
	ws.rng = ws.rng[:n]
	ws.hasPrev = ws.hasPrev[:n]
	ws.started = ws.started[:n]
	ws.frontier = ws.frontier[:0]
}

// batchScratch is one worker's reusable gather/scatter buffers, sized to the
// chunk so a sweep allocates nothing. lastE/lastD/lastT hold each pending
// walker's most recent rejected proposal (indexed by chunk position) for the
// trial-cap force-accept.
type batchScratch struct {
	us    [batchChunk]temporal.Vertex
	ks    [batchChunk]int32
	rs    [batchChunk]*xrand.Rand
	edges [batchChunk]int32
	evals [batchChunk]int64
	oks   [batchChunk]bool
	pend  [batchChunk]int32
	lastE [batchChunk]int32
	lastD [batchChunk]temporal.Vertex
	lastT [batchChunk]temporal.Time
}

// runBatch executes the run on the step-synchronous kernel. Waves of at most
// cfg.BatchWave walks are initialized into ws; within a wave the coordinator
// releases the worker pool once per step (one token per worker through
// stepGate), workers sweep frontier chunks off the shared cursor, and the
// coordinator compacts the frontier after the step barrier. Classification
// during wave init (zero-candidate sources) and cancellation drain happen on
// the coordinator between barriers, so results[0] is only touched while
// workers are parked.
func (e *Engine) runBatch(runCtx context.Context, runSpan *trace.Span, cfg WalkConfig, bs BatchSampler, sources []temporal.Vertex, totalWalks, threads int, root *xrand.Rand, result *Result, results []walkerState, fail func(error)) {
	grouped := false
	if fg, ok := bs.(FrontierGrouper); ok {
		grouped = fg.WantsGroupedFrontier()
	}
	waveSize := cfg.BatchWave
	if waveSize > totalWalks {
		waveSize = totalWalks
	}
	var ws waveState
	ws.resize(waveSize)

	var (
		wwg      sync.WaitGroup // worker lifetimes
		swg      sync.WaitGroup // per-step barrier
		cursor   atomic.Int64
		stepGate = make(chan struct{})
	)
	for w := 0; w < threads; w++ {
		wwg.Add(1)
		go func(worker int) {
			defer wwg.Done()
			bctx := runCtx
			var bsp *trace.Span
			if runSpan != nil {
				bctx, bsp = trace.Start(runCtx, "walk_batch")
				bsp.SetInt("worker", int64(worker))
			}
			st := &results[worker]
			var sc batchScratch
			for range stepGate {
				e.sweepStep(bctx, runCtx, bs, &cfg, &ws, &sc, st, &cursor, sources, result, fail)
				swg.Done()
			}
			if bsp != nil {
				bsp.SetInt("steps", st.cost.Steps)
				bsp.SetInt("edges_evaluated", st.cost.EdgesEvaluated)
				bsp.SetInt("trials", st.cost.Trials)
				bsp.SetInt("rejected", st.cost.Rejected)
				bsp.End()
			}
		}(w)
	}

	st0 := &results[0]
	for waveLo := 0; waveLo < totalWalks; waveLo += waveSize {
		if runCtx.Err() != nil {
			break // remaining waves never start; their walks stay uncounted
		}
		waveHi := waveLo + waveSize
		if waveHi > totalWalks {
			waveHi = totalWalks
		}
		e.initWave(&cfg, sources, waveLo, waveHi, &ws, root, st0, result)
		ws.waveLo = waveLo
		for s := 0; s < cfg.Length && len(ws.frontier) > 0; s++ {
			if runCtx.Err() != nil {
				break
			}
			if grouped && len(ws.frontier) > 1 {
				sortFrontier(&ws)
			}
			cursor.Store(0)
			swg.Add(threads)
			for i := 0; i < threads; i++ {
				stepGate <- struct{}{}
			}
			swg.Wait()
			compactFrontier(&ws)
		}
		// Walkers still on the frontier here were cut short by cancellation
		// (a natural wave end drains the frontier through completion or
		// dead-end classification inside the sweep). Walkers no sweep ever
		// touched were never started — like the scalar kernel's unclaimed
		// walk ids, they are neither counted nor classified.
		for _, i := range ws.frontier {
			if i >= 0 && ws.started[i] {
				st0.finishWalk(runCtx, int(ws.steps[i]), cfg.Length)
			}
		}
		ws.frontier = ws.frontier[:0]
	}
	close(stepGate)
	wwg.Wait()
}

// initWave seeds walkers [waveLo, waveHi) into ws: start vertex, initial
// candidate count under cfg.StartTime, and the walker's private random stream
// (root.SplitTo keeps the per-walk stream identical to the scalar kernel's
// root.Split). Sources whose candidate set is empty at the start time
// dead-end immediately at length 0, exactly as in the scalar loop.
func (e *Engine) initWave(cfg *WalkConfig, sources []temporal.Vertex, waveLo, waveHi int, ws *waveState, root *xrand.Rand, st *walkerState, result *Result) {
	n := waveHi - waveLo
	ws.resize(n)
	for i := 0; i < n; i++ {
		wi := waveLo + i
		src := sources[wi/cfg.WalksPerVertex]
		root.SplitTo(uint64(wi), &ws.rng[i])
		ws.cur[i] = src
		ws.hasPrev[i] = false
		ws.started[i] = false
		ws.steps[i] = 0
		k := e.g.CandidateCount(src, cfg.StartTime)
		ws.kcand[i] = int32(k)
		if cfg.KeepPaths {
			vs := make([]temporal.Vertex, 1, cfg.Length+1)
			vs[0] = src
			result.Paths[wi] = Path{Vertices: vs, Times: make([]temporal.Time, 0, cfg.Length)}
		}
		if k == 0 {
			// Dead on arrival: started and classified right here, exactly
			// like the scalar loop's zero-candidate source.
			st.cost.WalksStarted++
			st.lengths.Observe(0)
			st.cost.WalksDeadEnded++
			continue
		}
		ws.frontier = append(ws.frontier, int32(i))
	}
}

// sortFrontier orders the frontier by current vertex (walker index as the
// tiebreaker, keeping the order deterministic) so that a grouping sampler
// sees same-vertex walkers adjacently.
func sortFrontier(ws *waveState) {
	f, cur := ws.frontier, ws.cur
	sort.Slice(f, func(a, b int) bool {
		va, vb := cur[f[a]], cur[f[b]]
		if va != vb {
			return va < vb
		}
		return f[a] < f[b]
	})
}

// compactFrontier removes walkers marked dead (-1) during the last sweep.
func compactFrontier(ws *waveState) {
	live := ws.frontier[:0]
	for _, i := range ws.frontier {
		if i >= 0 {
			live = append(live, i)
		}
	}
	ws.frontier = live
}

// sweepStep advances the sweeping worker through the current step: claim a
// chunk of the frontier off the shared cursor, process it, repeat until the
// frontier is exhausted or the run is torn down.
func (e *Engine) sweepStep(bctx, runCtx context.Context, bs BatchSampler, cfg *WalkConfig, ws *waveState, sc *batchScratch, st *walkerState, cursor *atomic.Int64, sources []temporal.Vertex, result *Result, fail func(error)) {
	n := int64(len(ws.frontier))
	for runCtx.Err() == nil {
		lo := cursor.Add(batchChunk) - batchChunk
		if lo >= n {
			return
		}
		hi := lo + batchChunk
		if hi > n {
			hi = n
		}
		if err := e.sweepChunk(bctx, runCtx, bs, cfg, ws, sc, st, ws.frontier[lo:hi], sources, result); err != nil {
			fail(err)
			return
		}
	}
}

// sweepChunk advances every walker in chunk (a slice of the frontier owned
// exclusively by this worker for the step) by exactly one walk step,
// replaying the scalar trial loop batch-wise: each trial round gathers the
// still-pending walkers, draws their proposals in one SampleBatch call, and
// applies the Dynamic_parameter accept/reject test per walker in the scalar
// rand-consumption order. A panic in user code (Visitor, App.Parameter) is
// recovered here, accounted to the offending walk, and returned as an error
// naming it, mirroring walkOneSafe.
func (e *Engine) sweepChunk(bctx, runCtx context.Context, bs BatchSampler, cfg *WalkConfig, ws *waveState, sc *batchScratch, st *walkerState, chunk []int32, sources []temporal.Vertex, result *Result) (err error) {
	curWalk, curPos := -1, -1
	defer func() {
		if rec := recover(); rec != nil {
			if curWalk >= 0 {
				st.cost.WalksPanicked++
				chunk[curPos] = -1
				err = fmt.Errorf("core: walk %d from vertex %d panicked: %v",
					curWalk, sources[curWalk/cfg.WalksPerVertex], rec)
			} else {
				err = fmt.Errorf("core: batched sample over %d walkers panicked: %v", len(chunk), rec)
			}
		}
	}()

	// A walk "starts" the first time a sweep picks it up; walks the run never
	// reaches (cancellation before their first step) stay unstarted, matching
	// the scalar kernel.
	pend := sc.pend[:0]
	for pos := range chunk {
		i := chunk[pos]
		if !ws.started[i] {
			ws.started[i] = true
			st.cost.WalksStarted++
		}
		pend = append(pend, int32(pos))
	}
	param := e.app.Parameter
	for trial := 0; trial < betaTrialCap && len(pend) > 0; trial++ {
		m := len(pend)
		for j, pos := range pend {
			i := chunk[pos]
			sc.us[j] = ws.cur[i]
			sc.ks[j] = ws.kcand[i]
			sc.rs[j] = &ws.rng[i]
		}
		curWalk, curPos = -1, -1
		bs.SampleBatch(bctx, sc.us[:m], sc.ks[:m], sc.rs[:m], sc.edges[:m], sc.evals[:m], sc.oks[:m])
		// keep reuses pend's backing array: by the time pend[j] is read, at
		// most j entries have been rewritten behind it.
		keep := pend[:0]
		for j := 0; j < m; j++ {
			pos := pend[j]
			i := chunk[pos]
			st.cost.EdgesEvaluated += sc.evals[j]
			if !sc.oks[j] {
				// Zero-weight candidate prefix — or the sampler observed
				// the cancelled context; finishWalk tells them apart.
				st.finishWalk(runCtx, int(ws.steps[i]), cfg.Length)
				chunk[pos] = -1
				continue
			}
			u := ws.cur[i]
			dst, at := e.g.EdgeAt(u, int(sc.edges[j]))
			if param != nil && ws.hasPrev[i] {
				st.cost.Trials++
				curWalk, curPos = ws.waveLo+int(i), int(pos)
				draw := ws.rng[i].Range(e.app.MaxParameter)
				if draw > param(e.g, ws.prev[i], dst) {
					st.cost.Rejected++
					sc.lastE[pos] = sc.edges[j]
					sc.lastD[pos] = dst
					sc.lastT[pos] = at
					keep = append(keep, pos)
					curWalk, curPos = -1, -1
					continue
				}
			}
			curWalk, curPos = ws.waveLo+int(i), int(pos)
			e.applyStep(runCtx, cfg, ws, st, chunk, pos, int(sc.edges[j]), dst, at, result)
			curWalk, curPos = -1, -1
		}
		pend = keep
	}
	// Trial cap reached; force-accept each pending walker's last proposal to
	// guarantee progress (same documented deviation as the scalar loop).
	for _, pos := range pend {
		i := chunk[pos]
		curWalk, curPos = ws.waveLo+int(i), int(pos)
		e.applyStep(runCtx, cfg, ws, st, chunk, pos, int(sc.lastE[pos]), sc.lastD[pos], sc.lastT[pos], result)
		curWalk, curPos = -1, -1
	}
	return nil
}

// applyStep commits an accepted proposal for the walker at chunk[pos]: path
// append, visitor callback, clock advance (candidate count after the taken
// edge), and terminal classification when the walker reaches the configured
// length or the new vertex has no temporal candidates.
func (e *Engine) applyStep(runCtx context.Context, cfg *WalkConfig, ws *waveState, st *walkerState, chunk []int32, pos int32, edgeIdx int, dst temporal.Vertex, at temporal.Time, result *Result) {
	i := chunk[pos]
	wi := ws.waveLo + int(i)
	u := ws.cur[i]
	stepNo := int(ws.steps[i])
	st.cost.Steps++
	if cfg.KeepPaths {
		p := &result.Paths[wi]
		p.Vertices = append(p.Vertices, dst)
		p.Times = append(p.Times, at)
	}
	if cfg.Visitor != nil {
		cfg.Visitor(wi, stepNo, u, dst, at)
	}
	k := e.g.CandidateCountAfterEdge(u, edgeIdx)
	ws.prev[i], ws.hasPrev[i] = u, true
	ws.cur[i] = dst
	ws.kcand[i] = int32(k)
	ws.steps[i] = int32(stepNo + 1)
	if stepNo+1 == cfg.Length || k == 0 {
		st.finishWalk(runCtx, stepNo+1, cfg.Length)
		chunk[pos] = -1
	}
}
