package core

import (
	"sync"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// The Visitor callback must observe exactly the steps the paths record.
func TestVisitorSeesEveryStep(t *testing.T) {
	g := testutil.RandomGraph(t, 120, 3000, 500, 37)
	eng, err := NewEngine(g, LinearTime(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	type hop struct {
		from, to temporal.Vertex
		at       temporal.Time
	}
	var mu sync.Mutex
	seen := map[int][]hop{}
	res, err := eng.Run(WalkConfig{
		Length:    12,
		Seed:      4,
		KeepPaths: true,
		Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
			mu.Lock()
			defer mu.Unlock()
			if step != len(seen[walkID]) {
				t.Errorf("walk %d: step %d out of order", walkID, step)
			}
			seen[walkID] = append(seen[walkID], hop{from, to, at})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	totalHops := 0
	for wi, p := range res.Paths {
		hops := seen[wi]
		if len(hops) != len(p.Times) {
			t.Fatalf("walk %d: visitor saw %d hops, path has %d", wi, len(hops), len(p.Times))
		}
		for i, h := range hops {
			if h.from != p.Vertices[i] || h.to != p.Vertices[i+1] || h.at != p.Times[i] {
				t.Fatalf("walk %d hop %d mismatch: %+v vs path", wi, i, h)
			}
		}
		totalHops += len(hops)
	}
	if int64(totalHops) != res.Cost.Steps {
		t.Fatalf("visitor hops %d vs steps %d", totalHops, res.Cost.Steps)
	}
}

// Exact second-hop distribution of temporal node2vec: P(v) ∝ δ(v)·β(v),
// verified against the engine's measured frequencies.
func TestNode2VecExactDistribution(t *testing.T) {
	// From hub 0 the walker goes to 1 (only edge). At 1 the candidates with
	// their times: back to 0 (t=2), to 2 (t=3, a neighbor of 0), to 3 (t=4,
	// distant). Exponential weights with λ=0.5 give δ = e^{0.5(t-4)}.
	edges := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 1}, // makes 2 a neighbor of 0; equal time keeps the first hop 50/50
		{Src: 1, Dst: 0, Time: 2},
		{Src: 1, Dst: 2, Time: 3},
		{Src: 1, Dst: 3, Time: 4},
	}
	g := temporal.MustFromEdges(edges)
	p, q := 0.5, 2.0
	app := TemporalNode2Vec(p, q, 0.5)
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{
		WalksPerVertex: 60000, Length: 2,
		StartVertices: []temporal.Vertex{0}, KeepPaths: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[temporal.Vertex]float64{}
	total := 0.0
	for _, path := range res.Paths {
		if len(path.Vertices) == 3 {
			counts[path.Vertices[2]]++
			total++
		}
	}
	// δ: e^{-1} (t=2), e^{-0.5} (t=3), 1 (t=4); β: 1/p=2 (return to 0),
	// 1 (neighbor 2), 1/q=0.5 (distant 3).
	w0 := 2.0 * expNeg(1)
	w2 := 1.0 * expNeg(0.5)
	w3 := 0.5 * 1.0
	sum := w0 + w2 + w3
	for v, w := range map[temporal.Vertex]float64{0: w0, 2: w2, 3: w3} {
		want := w / sum
		got := counts[v] / total
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Fatalf("second hop %d frequency %.4f, want %.4f", v, got, want)
		}
	}
}

func expNeg(x float64) float64 {
	// Tiny helper keeping the expectation arithmetic readable.
	e := 1.0
	const terms = 30
	pow, fact := 1.0, 1.0
	for i := 1; i <= terms; i++ {
		pow *= -x
		fact *= float64(i)
		e += pow / fact
	}
	return e
}

// CustomWeightSpec with per-application spec must flow through the engine.
func TestCustomWeightDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	app := App{
		Name: "squared-time",
		Weight: sampling.WeightSpec{Custom: func(t temporal.Time) float64 {
			return float64(t*t) + 1
		}},
	}
	eng, err := NewEngine(g, app, Options{SmallDegreeCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 7)
	for i := range want {
		tm := float64(7 - i)
		want[i] = tm*tm + 1
	}
	r := xrand.New(9)
	testutil.CheckDistribution(t, "custom", want, 40000, func() (int, bool) {
		e, _, ok := eng.Sampler().Sample(7, 7, r)
		return e, ok
	})
}
