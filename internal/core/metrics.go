package core

import (
	"context"
	"errors"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/stats"
)

// Engine-level metric families, registered eagerly so GET /metrics shows
// them (at zero) before the first run. The walk hot path never touches
// these: workers accumulate private stats.Cost counters and merge at run
// end (see walkerState), and only the merged aggregates are published here.
var (
	mRunsStarted   = metrics.Default.Counter("tea_engine_runs_started_total")
	mRunsCompleted = metrics.Default.Counter("tea_engine_runs_completed_total")
	mRunsCancelled = metrics.Default.Counter("tea_engine_runs_cancelled_total")
	mRunsPanicked  = metrics.Default.Counter("tea_engine_runs_panicked_total")

	mWalks          = metrics.Default.Counter("tea_engine_walks_total")
	mSteps          = metrics.Default.Counter("tea_engine_steps_total")
	mEdgesEvaluated = metrics.Default.Counter("tea_engine_edges_evaluated_total")

	// Per-walk terminal classifications; the four sum to tea_engine_walks_total
	// because every started walk is classified exactly once (walk.go).
	// Cancellation is split from dead ends so a cancelled run does not
	// masquerade as a graph full of temporal dead ends.
	mWalksCompleted = metrics.Default.Counter("tea_engine_walks_completed_total")
	mWalksDeadEnded = metrics.Default.Counter("tea_engine_walks_dead_ended_total")
	mWalksCancelled = metrics.Default.Counter("tea_engine_walks_cancelled_total")
	mWalksPanicked  = metrics.Default.Counter("tea_engine_walks_panicked_total")

	mRunSeconds = metrics.Default.Histogram("tea_engine_run_seconds")

	mLastWalksPerSec = metrics.Default.Gauge("tea_engine_last_run_walks_per_second")
	mLastStepsPerSec = metrics.Default.Gauge("tea_engine_last_run_steps_per_second")
	mLastEdgesPerSec = metrics.Default.Gauge("tea_engine_last_run_edges_per_second")
)

// publishRun records one finished (or aborted) run's aggregates. err
// classifies the outcome: nil is a completed run, a context error a
// cancelled one, anything else (a recovered walk panic) a panicked one.
func publishRun(cost stats.Cost, dur time.Duration, err error) {
	switch {
	case err == nil:
		mRunsCompleted.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		mRunsCancelled.Inc()
	default:
		mRunsPanicked.Inc()
	}
	mWalks.Add(cost.WalksStarted)
	mWalksCompleted.Add(cost.WalksCompleted)
	mWalksDeadEnded.Add(cost.WalksDeadEnded)
	mWalksCancelled.Add(cost.WalksCancelled)
	mWalksPanicked.Add(cost.WalksPanicked)
	mSteps.Add(cost.Steps)
	mEdgesEvaluated.Add(cost.EdgesEvaluated)
	mRunSeconds.Observe(dur.Seconds())
	if secs := dur.Seconds(); secs > 0 {
		mLastWalksPerSec.Set(float64(cost.WalksStarted) / secs)
		mLastStepsPerSec.Set(float64(cost.Steps) / secs)
		mLastEdgesPerSec.Set(float64(cost.EdgesEvaluated) / secs)
	}
}
