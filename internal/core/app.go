// Package core implements the TEA random walk engine: the temporal-centric
// programming model of §4.1 (Dynamic_weight / Dynamic_parameter /
// Edges_interval, Table 2), the walk driver of Algorithm 2, parallel
// preprocessing (§4.2), and the sampler abstraction that lets the same walk
// loop run over HPAT, PAT, plain ITS, or the baseline strategies.
package core

import (
	"fmt"
	"math"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
)

// ParameterFunc is the Dynamic_parameter API of Table 2: a multiplicative
// bias depending on the previous vertex and the candidate destination,
// applied through rejection sampling in the walk loop (Algorithm 2, lines
// 18–22). Implementations must be safe for concurrent use.
type ParameterFunc func(g *temporal.Graph, prev, cand temporal.Vertex) float64

// App describes a temporal random walk application in the temporal-centric
// model: how edge timestamps become sampling weights, and (optionally) a
// dynamic parameter with its rejection envelope.
type App struct {
	// Name labels the application in experiment output.
	Name string
	// Weight is the Dynamic_weight definition: how temporal information maps
	// to the transition bias (Eq. 2/3).
	Weight sampling.WeightSpec
	// Parameter, if non-nil, is the Dynamic_parameter component (Eq. 4's β);
	// MaxParameter must then bound it from above.
	Parameter ParameterFunc
	// MaxParameter is the rejection envelope for Parameter.
	MaxParameter float64
	// NeedsPrev reports that Parameter inspects the previous vertex, which
	// requires the neighbor index (ISNEIGHBOR) during preprocessing.
	NeedsPrev bool
}

// Validate checks internal consistency.
func (a App) Validate() error {
	if a.Parameter != nil && !(a.MaxParameter > 0) {
		return fmt.Errorf("core: app %q has a dynamic parameter but MaxParameter %v", a.Name, a.MaxParameter)
	}
	return nil
}

// Unbiased returns the uniform temporal walk: every candidate edge is equally
// likely (§2.3 notes TEA supports unbiased walks via uniform weights).
func Unbiased() App {
	return App{Name: "unbiased", Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}}
}

// LinearTime returns the linear temporal weight walk with δ = t (§2.3 I).
func LinearTime() App {
	return App{Name: "linear", Weight: sampling.WeightSpec{Kind: sampling.WeightLinearTime}}
}

// LinearRank returns the linear temporal weight walk with δ = rank (§2.3 I).
func LinearRank() App {
	return App{Name: "linear-rank", Weight: sampling.WeightSpec{Kind: sampling.WeightLinearRank}}
}

// ExponentialWalk returns the CTDNE exponential temporal weight walk
// (§2.3 II) with decay lambda (0 selects 1.0).
func ExponentialWalk(lambda float64) App {
	return App{Name: "exponential", Weight: sampling.Exponential(lambda)}
}

// TemporalNode2Vec returns the temporal node2vec walk of §2.3 III: the
// exponential temporal weight combined with node2vec's β ∈ {1/p, 1, 1/q}
// dynamic parameter, matching Algorithm 1 of the paper.
func TemporalNode2Vec(p, q, lambda float64) App {
	if p <= 0 || q <= 0 {
		panic("core: node2vec parameters must be positive")
	}
	beta := func(g *temporal.Graph, prev, cand temporal.Vertex) float64 {
		switch {
		case prev == cand:
			return 1 / p // d(w, v) = 0: return to the previous vertex
		case g.HasNeighbor(prev, cand):
			return 1 // d(w, v) = 1
		default:
			return 1 / q // d(w, v) = 2
		}
	}
	return App{
		Name:         fmt.Sprintf("node2vec(p=%g,q=%g)", p, q),
		Weight:       sampling.Exponential(lambda),
		Parameter:    beta,
		MaxParameter: math.Max(1, math.Max(1/p, 1/q)),
		NeedsPrev:    true,
	}
}
