package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

// An already-expired deadline must abort before any walk starts.
func TestRunContextExpiredDeadline(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 4000, 600, 11)
	eng, err := NewEngine(g, LinearTime(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	res, err := eng.RunContext(ctx, WalkConfig{Length: 80, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if res.Cost.WalksStarted != 0 {
		t.Fatalf("expired deadline still started %d walks", res.Cost.WalksStarted)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("expired deadline did not return promptly")
	}
}

// Cancelling mid-run must return within about one walk length per worker,
// with the partial cost accounting of the walks that did run intact.
func TestRunContextCancelMidRun(t *testing.T) {
	g := testutil.RandomGraph(t, 500, 20000, 100000, 13)
	eng, err := NewEngine(g, LinearTime(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WalkConfig{WalksPerVertex: 30, Length: 40, Seed: 3, Threads: 4}

	ref, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cost.Steps < 10000 {
		t.Fatalf("reference run too small to test cancellation: %d steps", ref.Cost.Steps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var hops atomic.Int64
	const threshold = 1000
	cfg.Visitor = func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
		if hops.Add(1) == threshold {
			cancel()
		}
	}
	res, err := eng.RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if res.Cost.Steps < threshold {
		t.Fatalf("partial accounting lost steps: %d < %d", res.Cost.Steps, threshold)
	}
	// Each of the 4 workers can finish at most its in-flight walk after the
	// cancel, so the overrun is bounded by threads * length.
	bound := int64(threshold + 4*cfg.Length + 4*cfg.Length)
	if res.Cost.Steps > bound {
		t.Fatalf("cancel did not take effect within one walk length: %d steps > %d", res.Cost.Steps, bound)
	}
	if res.Cost.Steps >= ref.Cost.Steps {
		t.Fatalf("cancelled run did all the work: %d vs %d steps", res.Cost.Steps, ref.Cost.Steps)
	}
	if res.Cost.WalksStarted == 0 || res.Cost.WalksStarted >= ref.Cost.WalksStarted {
		t.Fatalf("walks started %d, want in (0, %d)", res.Cost.WalksStarted, ref.Cost.WalksStarted)
	}
}

// A panicking Visitor must fail the run with an error naming the walk; the
// process and a concurrent run on the same engine survive.
func TestVisitorPanicIsIsolated(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 5000, 17)
	eng, err := NewEngine(g, LinearTime(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	goodDone := make(chan error, 1)
	go func() {
		_, err := eng.Run(WalkConfig{WalksPerVertex: 2, Length: 20, Seed: 5})
		goodDone <- err
	}()

	res, err := eng.Run(WalkConfig{
		Length: 20,
		Seed:   6,
		Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
			if walkID == 7 && step == 1 {
				panic("visitor exploded")
			}
		},
	})
	if err == nil {
		t.Fatal("panicking visitor did not fail the run")
	}
	if !strings.Contains(err.Error(), "walk 7") || !strings.Contains(err.Error(), "visitor exploded") {
		t.Fatalf("panic error does not identify the walk: %v", err)
	}
	if res == nil {
		t.Fatal("no partial result on panic")
	}

	if err := <-goodDone; err != nil {
		t.Fatalf("concurrent run on the same engine failed: %v", err)
	}
	// The engine stays usable after a panicked run.
	if _, err := eng.Run(WalkConfig{Length: 10, Seed: 7}); err != nil {
		t.Fatalf("engine unusable after panic: %v", err)
	}
}

// A panicking Dynamic_parameter callback is isolated the same way.
func TestParameterPanicIsIsolated(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 4000, 2000, 23)
	app := App{
		Name:   "boom",
		Weight: LinearTime().Weight,
		Parameter: func(g *temporal.Graph, prev, cand temporal.Vertex) float64 {
			panic("parameter exploded")
		},
		MaxParameter: 1,
		NeedsPrev:    true,
	}
	eng, err := NewEngine(g, app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(WalkConfig{Length: 20, Seed: 2})
	if err == nil || !strings.Contains(err.Error(), "parameter exploded") {
		t.Fatalf("parameter panic not surfaced: %v", err)
	}
}

// Regression: StartTime zero must be expressible. On a graph whose timestamps
// straddle zero, HasStartTime with StartTime 0 must restrict candidates to
// strictly positive edge times, while the legacy zero-value config still
// means "walk from the beginning of time".
func TestStartTimeZeroIsExpressible(t *testing.T) {
	edges := []temporal.Edge{
		{Src: 0, Dst: 1, Time: -5},
		{Src: 0, Dst: 2, Time: 0},
		{Src: 0, Dst: 3, Time: 5},
	}
	g := temporal.MustFromEdges(edges)
	eng, err := NewEngine(g, Unbiased(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	strict, err := eng.Run(WalkConfig{
		WalksPerVertex: 200,
		Length:         1,
		StartVertices:  []temporal.Vertex{0},
		StartTime:      0,
		HasStartTime:   true,
		KeepPaths:      true,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range strict.Paths {
		if len(p.Vertices) != 2 || p.Vertices[1] != 3 {
			t.Fatalf("StartTime=0 walk took a non-positive edge: %+v", p)
		}
	}

	legacy, err := eng.Run(WalkConfig{
		WalksPerVertex: 200,
		Length:         1,
		StartVertices:  []temporal.Vertex{0},
		KeepPaths:      true,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[temporal.Vertex]bool{}
	for _, p := range legacy.Paths {
		if len(p.Vertices) == 2 {
			seen[p.Vertices[1]] = true
		}
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("legacy zero-value StartTime no longer walks every edge: %v", seen)
	}
}
