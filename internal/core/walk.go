package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// betaTrialCap bounds the Dynamic_parameter rejection loop so a pathological
// parameter function cannot stall a walker; with the paper's p=0.5, q=2 the
// acceptance probability per trial is ≥ 1/4 and the cap is unreachable in
// practice. Hitting the cap force-accepts the last proposal.
const betaTrialCap = 4096

// ctxCheckMask amortizes the in-walk cancellation poll: the scalar step loop
// checks ctx.Err() whenever steps&ctxCheckMask == ctxCheckMask, so a single
// walk of config-overridable length (up to 2×10⁹ steps) honors cancellation
// within at most ctxCheckMask+1 steps while the default 80-step walk pays no
// extra check at all.
const ctxCheckMask = 1023

// scalarGrain is the number of walks a scalar-kernel worker claims per bump
// of the shared cursor: small enough that skewed walk lengths cannot idle a
// worker behind one overloaded static chunk, large enough that the atomic
// add is amortized over many walks.
const scalarGrain = 16

// Kernel selects the walk execution strategy of a run.
type Kernel int

const (
	// KernelAuto picks the batched step-synchronous kernel when the engine's
	// sampler implements BatchSampler and the run is large enough to fill a
	// frontier, and the scalar kernel otherwise (small runs, external
	// samplers without a batch path).
	KernelAuto Kernel = iota
	// KernelScalar walks one walker at a time per worker — the original loop
	// and the batched kernel's correctness oracle.
	KernelScalar
	// KernelBatch executes walks as synchronized batched steps over flat
	// struct-of-arrays state (see batch.go). Requires a BatchSampler; the
	// engine falls back to KernelScalar when the sampler has none.
	KernelBatch
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBatch:
		return "batch"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel converts a flag value into a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "batch":
		return KernelBatch, nil
	default:
		return KernelAuto, fmt.Errorf("core: unknown kernel %q (want auto, scalar, or batch)", s)
	}
}

// WalkConfig parameterizes a walk run: R walks of length L per start vertex,
// mirroring the paper's evaluation setup (R=1, L=80 for Table 4).
type WalkConfig struct {
	// WalksPerVertex is R; default 1.
	WalksPerVertex int
	// Length is the maximum number of steps L; default 80.
	Length int
	// StartTime is the arrival time of the virtual edge that drops the walker
	// on its start vertex; default MinTime (every out-edge is a candidate).
	//
	// A zero StartTime historically meant "unset" and was remapped to
	// MinTime, which made an actual start time of 0 inexpressible on graphs
	// with zero or negative timestamps. Set HasStartTime to use StartTime
	// verbatim, including zero.
	StartTime temporal.Time
	// HasStartTime marks StartTime as explicitly set: the value is used
	// verbatim, even when it is zero. When false, the legacy convention
	// applies (zero means MinTime, non-zero values are used as given).
	HasStartTime bool
	// StartVertices restricts the walk sources; nil walks from every vertex.
	StartVertices []temporal.Vertex
	// Threads for parallel walking; <1 means GOMAXPROCS.
	Threads int
	// Seed makes runs reproducible; walker i uses stream Split(i).
	Seed uint64
	// KeepPaths stores the sampled paths in the result (memory-heavy on big
	// runs; experiments leave it off, examples turn it on).
	KeepPaths bool
	// Kernel selects the execution strategy; the zero value (KernelAuto)
	// chooses automatically. Both kernels replay byte-identical seeded walks
	// — walker randomness is derived from (walk id, step) regardless of how
	// walkers are scheduled — so the choice affects only throughput.
	Kernel Kernel
	// BatchWave bounds how many walks the batched kernel keeps resident in
	// its flat state at once; <=0 selects DefaultBatchWave. Ignored by the
	// scalar kernel.
	BatchWave int
	// Visitor, if non-nil, is invoked for every step as it is sampled —
	// walker-centric stream processing without storing paths. Walkers run in
	// parallel, so the callback MUST be safe for concurrent use; walkID
	// identifies the walk (source-major order), step counts from 0.
	Visitor func(walkID, step int, from, to temporal.Vertex, at temporal.Time)
}

func (c *WalkConfig) normalize() {
	if c.WalksPerVertex <= 0 {
		c.WalksPerVertex = 1
	}
	if c.Length <= 0 {
		c.Length = 80
	}
	if !c.HasStartTime && c.StartTime == 0 {
		c.StartTime = temporal.MinTime
	}
	if c.BatchWave <= 0 {
		c.BatchWave = DefaultBatchWave
	}
}

// Path is one sampled temporal walk: the visited vertices and the timestamps
// of the traversed edges (len(Times) == len(Vertices)-1). The timestamps are
// strictly increasing — the defining property of a temporal path (§2.1).
type Path struct {
	Vertices []temporal.Vertex
	Times    []temporal.Time
}

// Result aggregates a walk run.
type Result struct {
	Cost     stats.Cost
	Duration time.Duration
	// Lengths histograms the realized walk lengths (steps per walk) of every
	// walk that ran to a graph- or context-determined end; walks aborted by
	// a recovered panic are excluded (they are counted in
	// Cost.WalksPanicked instead).
	Lengths *stats.Histogram
	// Paths holds the sampled walks when WalkConfig.KeepPaths is set, in
	// deterministic (source-major) order.
	Paths []Path
}

// Run executes the configured walks in parallel and returns the merged
// result. It is safe to call Run concurrently on one engine. Run is a
// context.Background() shim over RunContext.
func (e *Engine) Run(cfg WalkConfig) (*Result, error) {
	return e.RunContext(context.Background(), cfg)
}

// RunContext executes the configured walks in parallel under ctx.
//
// Execution is kernel-dispatched (WalkConfig.Kernel): the scalar kernel
// walks one walker at a time per worker, claiming walks off a shared cursor
// so skewed walk lengths cannot idle workers behind a static chunk split;
// the batched kernel (batch.go) advances the whole frontier one synchronized
// step at a time over flat struct-of-arrays state. Walker randomness is
// derived from (walk id, step) via root.Split(walkID) in both, so the two
// kernels — and any worker/wave schedule within them — replay byte-identical
// seeded walks.
//
// Cancellation is honored between walks, every ctxCheckMask+1 steps inside a
// walk, and (in the batched kernel) between frontier chunks, so a deadline
// aborts the run promptly even when a single walk is billions of steps long;
// the partial Result accumulated so far is returned together with ctx.Err().
// Every started walk is classified exactly once in Result.Cost:
// WalksCompleted (reached Length), WalksDeadEnded (ran out of temporal
// candidates), WalksCancelled (cut short by ctx), or WalksPanicked (aborted
// by a recovered panic in user code), so WalksStarted ==
// Cost.WalksFinished() always holds. A panic in a user callback (Visitor,
// App.Parameter, a custom weight) is recovered, aborts the run, and is
// reported as an error naming the offending walk — the process and any
// concurrent runs on the same engine survive. It is safe to call RunContext
// concurrently on one engine.
func (e *Engine) RunContext(ctx context.Context, cfg WalkConfig) (*Result, error) {
	cfg.normalize()
	mRunsStarted.Inc()
	threads := cfg.Threads
	if threads < 1 {
		threads = defaultThreads()
	}
	sources := cfg.StartVertices
	if sources == nil {
		sources = make([]temporal.Vertex, e.g.NumVertices())
		for i := range sources {
			sources[i] = temporal.Vertex(i)
		}
	} else {
		for _, s := range sources {
			if int(s) >= e.g.NumVertices() {
				return nil, fmt.Errorf("core: start vertex %d outside graph with %d vertices", s, e.g.NumVertices())
			}
		}
	}
	totalWalks := len(sources) * cfg.WalksPerVertex
	kern, bs := e.resolveKernel(cfg.Kernel, totalWalks, threads)

	// Tracing: nil runSpan (the overwhelmingly common case) keeps the run on
	// the exact pre-trace path — workers skip batch spans and the sampler is
	// called without a context. The context-threaded sampler route is only
	// resolved when this run is recorded or cost-accounted; in-memory
	// samplers don't implement ContextSampler, so their hot loop is
	// unchanged either way.
	ctx, runSpan := trace.Start(ctx, "engine.run")
	var ctxSampler ContextSampler
	if runSpan != nil {
		runSpan.SetStr("sampler", e.sampler.Name())
		runSpan.SetStr("kernel", kern.String())
		runSpan.SetInt("walks", int64(totalWalks))
		runSpan.SetInt("length", int64(cfg.Length))
		runSpan.SetInt("threads", int64(threads))
	}
	if runSpan != nil || reqcost.Active(ctx) {
		ctxSampler, _ = e.sampler.(ContextSampler)
	}

	root := xrand.New(cfg.Seed)
	result := &Result{Lengths: stats.NewHistogram(cfg.Length + 1)}
	if err := ctx.Err(); err != nil {
		publishRun(result.Cost, 0, err)
		runSpan.SetError(err)
		runSpan.End()
		return result, err
	}
	if cfg.KeepPaths {
		result.Paths = make([]Path, totalWalks)
	}

	// runCtx lets a panicking walk abort sibling workers promptly without
	// cancelling the caller's context.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failMu sync.Mutex
		runErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if runErr == nil {
			runErr = err
		}
		failMu.Unlock()
		cancel()
	}

	start := time.Now()
	results := make([]walkerState, threads)
	for i := range results {
		results[i].lengths = stats.NewHistogram(cfg.Length + 1)
	}
	if kern == KernelBatch {
		e.runBatch(runCtx, runSpan, cfg, bs, sources, totalWalks, threads, root, result, results, fail)
	} else {
		e.runScalar(runCtx, runSpan, cfg, ctxSampler, sources, totalWalks, threads, root, result, results, fail)
	}
	for i := range results {
		result.Cost.Add(results[i].cost)
		result.Lengths.Merge(results[i].lengths)
	}
	result.Duration = time.Since(start)
	failMu.Lock()
	err := runErr
	failMu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	publishRun(result.Cost, result.Duration, err)
	if runSpan != nil {
		runSpan.SetInt("steps", result.Cost.Steps)
		runSpan.SetInt("edges_evaluated", result.Cost.EdgesEvaluated)
		runSpan.SetInt("walks_dead_ended", result.Cost.WalksDeadEnded)
		runSpan.SetInt("walks_cancelled", result.Cost.WalksCancelled)
		if err != nil {
			runSpan.SetError(err)
			kind := trace.KindError
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				kind = trace.KindCancel
			}
			trace.EventCtx(ctx, kind, "engine.run aborted", trace.Str("cause", err.Error()))
		}
		runSpan.End()
	}
	if err != nil {
		return result, err
	}
	return result, nil
}

// resolveKernel maps the configured kernel to the one that will actually
// run. The batched kernel needs a BatchSampler; KernelAuto additionally
// requires the run to be large enough that a frontier forms — tiny runs
// (single API walks) stay on the scalar kernel, whose per-walk latency is
// lower than a step-synchronized wave.
func (e *Engine) resolveKernel(k Kernel, totalWalks, threads int) (Kernel, BatchSampler) {
	if k == KernelScalar {
		return KernelScalar, nil
	}
	bs, ok := e.sampler.(BatchSampler)
	if !ok {
		return KernelScalar, nil
	}
	if k == KernelBatch {
		return KernelBatch, bs
	}
	if totalWalks >= batchAutoMinWalks && totalWalks >= 4*threads {
		return KernelBatch, bs
	}
	return KernelScalar, nil
}

// runScalar is the scalar kernel: workers claim scalarGrain-sized runs of
// walk ids off a shared cursor (dynamic distribution — a worker that drew
// short, dead-ending walks immediately claims more instead of idling behind
// a static chunk) and walk each one to completion.
func (e *Engine) runScalar(runCtx context.Context, runSpan *trace.Span, cfg WalkConfig, ctxSampler ContextSampler, sources []temporal.Vertex, totalWalks, threads int, root *xrand.Rand, result *Result, results []walkerState, fail func(error)) {
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
	)
	workers := threads
	if workers > totalWalks {
		workers = totalWalks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			bctx := runCtx
			var bsp *trace.Span
			if runSpan != nil {
				bctx, bsp = trace.Start(runCtx, "walk_batch")
				bsp.SetInt("worker", int64(worker))
			}
			st := &results[worker]
			walked := 0
		claim:
			for {
				lo := int(cursor.Add(scalarGrain)) - scalarGrain
				if lo >= totalWalks {
					break
				}
				hi := lo + scalarGrain
				if hi > totalWalks {
					hi = totalWalks
				}
				for wi := lo; wi < hi; wi++ {
					if runCtx.Err() != nil {
						break claim
					}
					src := sources[wi/cfg.WalksPerVertex]
					r := root.Split(uint64(wi))
					p, err := e.walkOneSafe(bctx, ctxSampler, wi, src, cfg, r, st)
					walked++
					if err != nil {
						fail(err)
						break claim
					}
					if cfg.KeepPaths {
						result.Paths[wi] = p
					}
				}
			}
			if bsp != nil {
				// Per-batch hot-layer aggregates: sampled steps, slots the
				// sampler examined (trunk/level traffic for HPAT/PAT), and
				// the Dynamic_parameter rejection counters.
				bsp.SetInt("walks", int64(walked))
				bsp.SetInt("steps", st.cost.Steps)
				bsp.SetInt("edges_evaluated", st.cost.EdgesEvaluated)
				bsp.SetInt("trials", st.cost.Trials)
				bsp.SetInt("rejected", st.cost.Rejected)
				bsp.End()
			}
		}(w)
	}
	wg.Wait()
}

// walkOneSafe runs one walk, converting a panic in user code into an error
// that names the walk instead of crashing the process. The panicked walk is
// accounted explicitly (Cost.WalksPanicked) so the started ==
// completed + dead-ended + cancelled + panicked invariant survives the
// abort; its length is not observed in the histogram because the walk has no
// graph-determined end.
func (e *Engine) walkOneSafe(ctx context.Context, cs ContextSampler, walkID int, src temporal.Vertex, cfg WalkConfig, r *xrand.Rand, st *walkerState) (p Path, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			st.cost.WalksPanicked++
			err = fmt.Errorf("core: walk %d from vertex %d panicked: %v", walkID, src, rec)
		}
	}()
	return e.walkOne(ctx, cs, walkID, src, cfg, r, st), nil
}

// walkerState is one worker's private accumulator. Workers update their
// element of a shared []walkerState on every step, so the fields must never
// share a 64-byte cache line with a sibling's fields. The leading guard keeps
// the hot cost counters clear of the previous element (the old layout padded
// only the tail, and by less than a line, so the leading cost field still
// false-shared), and the trailing pad rounds the struct to a multiple of the
// line size; together the gap between any two elements' field regions
// exceeds a line regardless of the slice's base alignment.
type walkerState struct {
	_       [64]byte // guard before the hot counters
	cost    stats.Cost
	lengths *stats.Histogram
	_       [64 - (unsafe.Sizeof(stats.Cost{})+8)%64]byte // round fields up to a line
}

// finishWalk classifies one terminated walk: completion when it reached the
// configured length, cancellation when it ended early while the run's
// context was being torn down (a cancelled sampler returning ok=false is
// indistinguishable from a temporal dead end at the sampler contract, so the
// context is the tiebreaker), and a genuine temporal dead end otherwise.
func (st *walkerState) finishWalk(ctx context.Context, steps, length int) {
	st.lengths.Observe(steps)
	switch {
	case steps == length:
		st.cost.WalksCompleted++
	case ctx.Err() != nil:
		st.cost.WalksCancelled++
	default:
		st.cost.WalksDeadEnded++
	}
}

// walkOne runs a single temporal walk from src, implementing the main loop of
// Algorithm 2: sample an edge from the candidate set via the engine's
// sampler, apply the Dynamic_parameter rejection test, advance. cs is non-nil
// only when the run is traced and the sampler supports context threading; on
// the untraced path the sampler is called exactly as before.
func (e *Engine) walkOne(ctx context.Context, cs ContextSampler, walkID int, src temporal.Vertex, cfg WalkConfig, r *xrand.Rand, st *walkerState) Path {
	var p Path
	if cfg.KeepPaths {
		p.Vertices = make([]temporal.Vertex, 1, cfg.Length+1)
		p.Vertices[0] = src
		p.Times = make([]temporal.Time, 0, cfg.Length)
	}
	st.cost.WalksStarted++

	u := src
	k := e.g.CandidateCount(u, cfg.StartTime)
	var prev temporal.Vertex
	hasPrev := false
	steps := 0
	for steps < cfg.Length {
		if k == 0 {
			break
		}
		if steps&ctxCheckMask == ctxCheckMask && ctx.Err() != nil {
			break // long walk: honor cancellation mid-walk, keep the partial walk
		}
		var (
			edgeIdx int
			dst     temporal.Vertex
			at      temporal.Time
			ok      bool
		)
		accepted := false
		for trial := 0; trial < betaTrialCap; trial++ {
			var ev int64
			if cs != nil {
				edgeIdx, ev, ok = cs.SampleCtx(ctx, u, k, r)
			} else {
				edgeIdx, ev, ok = e.sampler.Sample(u, k, r)
			}
			st.cost.EdgesEvaluated += ev
			if !ok {
				break
			}
			dst, at = e.g.EdgeAt(u, edgeIdx)
			if e.app.Parameter == nil || !hasPrev {
				accepted = true
				break
			}
			st.cost.Trials++
			if r.Range(e.app.MaxParameter) <= e.app.Parameter(e.g, prev, dst) {
				accepted = true
				break
			}
			st.cost.Rejected++
		}
		if !ok {
			break // zero-weight candidate prefix: dead end
		}
		if !accepted {
			// Trial cap reached; force-accept the last proposal to
			// guarantee progress (documented deviation, unreachable with
			// the paper's parameters).
			accepted = true
		}
		st.cost.Steps++
		if cfg.KeepPaths {
			p.Vertices = append(p.Vertices, dst)
			p.Times = append(p.Times, at)
		}
		if cfg.Visitor != nil {
			cfg.Visitor(walkID, steps, u, dst, at)
		}
		// O(1) candidate lookup for the next step (§4.2) when the
		// precomputed table exists, binary search otherwise.
		k = e.g.CandidateCountAfterEdge(u, edgeIdx)
		prev, hasPrev = u, true
		u = dst
		steps++
	}
	st.finishWalk(ctx, steps, cfg.Length)
	return p
}
