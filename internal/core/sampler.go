package core

import (
	"context"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// Sampler draws one edge from the k newest out-edges of a vertex with
// probability proportional to the application's edge weights. It is the
// pluggable heart of the engine: HPAT, PAT, plain ITS, the per-candidate-set
// alias method, and the GraphWalker/KnightKing baseline strategies all
// implement it, so every experiment runs the identical walk loop.
//
// evaluated counts edges/array slots examined during the draw — the Figure 2
// "average sampling cost" metric. Implementations must be safe for concurrent
// use by multiple goroutines each holding its own *xrand.Rand.
type Sampler interface {
	// Name identifies the sampler in experiment output.
	Name() string
	// Sample draws an edge index in [0, k) of vertex u. ok is false when the
	// candidate prefix is empty or carries no weight.
	Sample(u temporal.Vertex, k int, r *xrand.Rand) (edgeIdx int, evaluated int64, ok bool)
	// MemoryBytes reports the sampler's index footprint (Figures 9, 12b).
	MemoryBytes() int64
}

// ContextSampler is optionally implemented by samplers that can thread a
// request context into their sampling path. The disk-backed samplers use it
// to open per-block-fetch trace spans under the caller's walk-batch span;
// in-memory samplers have no I/O worth a span and skip it. RunContext only
// routes through SampleCtx when the run is actually being traced, so the
// untraced hot path is byte-for-byte the old Sample call.
type ContextSampler interface {
	Sampler
	// SampleCtx is Sample with the run's context attached.
	SampleCtx(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (edgeIdx int, evaluated int64, ok bool)
}

// BatchSampler is optionally implemented by samplers that can draw for a
// whole frontier in one call. The batched walk kernel (see batch.go) gathers
// the live walkers' positions into flat arrays and hands them over together,
// which lets implementations amortize per-call overhead (slice-header loads,
// dynamic dispatch) and — for the disk-backed samplers — deliberately
// coalesce block fetches for walkers parked on the same vertex.
//
// The contract is element-wise identical to Sample: for every i,
// (edges[i], evals[i], oks[i]) must equal what Sample(us[i], ks[i], rs[i])
// would have produced, consuming rs[i] identically — the scalar path is the
// batched path's correctness oracle. All five slices share one length.
// Implementations must be safe for concurrent use by multiple goroutines
// operating on disjoint frontier chunks.
//
// ctx follows the ContextSampler convention: the engine threads the run
// context only when the run is traced or the sampler performs I/O;
// in-memory samplers ignore it.
type BatchSampler interface {
	Sampler
	// SampleBatch draws one edge per frontier entry: us[i] is the walker's
	// vertex, ks[i] its candidate count, rs[i] its private random stream.
	SampleBatch(ctx context.Context, us []temporal.Vertex, ks []int32, rs []*xrand.Rand, edges []int32, evals []int64, oks []bool)
}

// FrontierGrouper is optionally implemented by BatchSamplers whose per-draw
// cost drops when walkers on the same vertex arrive adjacently (the
// disk-backed samplers: one trunk/adjacency fetch then serves the whole
// group through the block cache). When it returns true the batched kernel
// sorts each step's frontier by vertex before sampling; in-memory samplers
// skip the sort because a RAM lookup is cheaper than ordering the frontier.
type FrontierGrouper interface {
	WantsGroupedFrontier() bool
}

// ITSSampler samples candidate prefixes by inverse transform sampling over
// per-vertex per-edge prefix sums: O(log D) per draw and O(D) space. §5.4
// notes ITS slots directly into TEA because the newest-first edge order
// matches the prefix-sum layout; it is the "ITS" row of Figure 12.
type ITSSampler struct {
	g   *temporal.Graph
	w   *sampling.GraphWeights
	cum []float64
	off []int64
}

// NewITSSampler builds per-vertex cumulative arrays for the weighted graph.
func NewITSSampler(w *sampling.GraphWeights) *ITSSampler {
	g := w.Graph()
	numV := g.NumVertices()
	off := make([]int64, numV+1)
	for u := 0; u < numV; u++ {
		off[u+1] = off[u] + int64(g.Degree(temporal.Vertex(u))) + 1
	}
	cum := make([]float64, off[numV])
	for u := 0; u < numV; u++ {
		ws := w.Vertex(temporal.Vertex(u))
		sum := 0.0
		base := off[u]
		cum[base] = 0
		for i, x := range ws {
			sum += x
			cum[base+int64(i)+1] = sum
		}
	}
	return &ITSSampler{g: g, w: w, cum: cum, off: off}
}

// Name implements Sampler.
func (s *ITSSampler) Name() string { return "ITS" }

// Sample implements Sampler via binary search over the cumulative array.
func (s *ITSSampler) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := s.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	cum := s.cum[s.off[u] : s.off[u]+int64(deg)+1]
	total := cum[k]
	if !(total > 0) {
		return 0, 0, false
	}
	x := r.Range(total)
	lo, hi := 0, k-1
	var eval int64
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		eval++
		if cum[mid+1] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, eval + 1, true
}

// SampleBatch implements BatchSampler: the per-entry draw is exactly Sample,
// with the index's slice headers hoisted out of the loop.
func (s *ITSSampler) SampleBatch(_ context.Context, us []temporal.Vertex, ks []int32, rs []*xrand.Rand, edges []int32, evals []int64, oks []bool) {
	cumAll, offAll := s.cum, s.off
	for i, u := range us {
		k := int(ks[i])
		if k <= 0 {
			edges[i], evals[i], oks[i] = 0, 0, false
			continue
		}
		deg := s.g.Degree(u)
		if deg == 0 {
			edges[i], evals[i], oks[i] = 0, 0, false
			continue
		}
		if k > deg {
			k = deg
		}
		cum := cumAll[offAll[u] : offAll[u]+int64(deg)+1]
		total := cum[k]
		if !(total > 0) {
			edges[i], evals[i], oks[i] = 0, 0, false
			continue
		}
		x := rs[i].Range(total)
		lo, hi := 0, k-1
		var eval int64
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			eval++
			if cum[mid+1] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		edges[i], evals[i], oks[i] = int32(lo), eval+1, true
	}
}

// MemoryBytes implements Sampler: the cumulative arrays plus shared weights.
func (s *ITSSampler) MemoryBytes() int64 {
	return int64(len(s.cum))*8 + int64(len(s.off))*8 + s.w.MemoryBytes()
}
