package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/pat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
)

// defaultThreads returns the worker count used when a config leaves the
// thread count unset.
func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// Method selects the sampling structure the engine builds.
type Method int

const (
	// MethodHPAT is the paper's default: hierarchical persistent alias tables
	// with the auxiliary index (§3.3–§3.4).
	MethodHPAT Method = iota
	// MethodHPATNoIndex is HPAT with on-the-fly trunk decomposition, the
	// "HPAT" bar of Figure 11.
	MethodHPATNoIndex
	// MethodPAT is the flat persistent alias table (§3.2), also the structure
	// used by out-of-core execution.
	MethodPAT
	// MethodITS is plain inverse transform sampling (Figure 12's ITS row).
	MethodITS
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodHPAT:
		return "HPAT+Index"
	case MethodHPATNoIndex:
		return "HPAT"
	case MethodPAT:
		return "PAT"
	case MethodITS:
		return "ITS"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures engine construction.
type Options struct {
	// Method selects the sampler structure; default MethodHPAT.
	Method Method
	// Threads for parallel preprocessing; <1 means GOMAXPROCS.
	Threads int
	// PATTrunkSize overrides the ⌊√D⌋ trunk policy for MethodPAT.
	PATTrunkSize int
	// SmallDegreeCutoff forwards to the HPAT fast path; 0 keeps the default.
	SmallDegreeCutoff int
	// SkipCandidatePrecompute disables the O(1) candidate-count table (§4.2),
	// forcing per-step binary searches. The baselines of Table 4 run this way
	// ("both GraphWalker and KnightKing use binary search to search candidate
	// edge sets on sampling, while TEA does not").
	SkipCandidatePrecompute bool
	// ExternalSampler plugs a pre-built sampler (baseline strategies); when
	// set, Method is ignored and no index is constructed.
	ExternalSampler Sampler
	// ExternalWeights reuses an existing weight array instead of rebuilding.
	ExternalWeights *sampling.GraphWeights
}

// PreprocessStats reports where §4.2 preprocessing time went; the Figure 13
// experiments read these.
type PreprocessStats struct {
	CandidateSearch time.Duration // per-in-edge candidate set sizes
	WeightBuild     time.Duration // Dynamic_weight evaluation over all edges
	IndexBuild      time.Duration // PAT/HPAT trunk alias construction
	AuxIndexBuild   time.Duration // §3.4 auxiliary index
	NeighborIndex   time.Duration // ISNEIGHBOR support for node2vec
	Total           time.Duration
}

// Engine executes temporal random walks for one application over one graph,
// following the workflow of Figure 8: preprocess (candidate search, weight
// evaluation, index construction), then repeatedly sample steps.
type Engine struct {
	g       *temporal.Graph
	app     App
	opts    Options
	weights *sampling.GraphWeights
	sampler Sampler
	prep    PreprocessStats
}

// NewEngine preprocesses the graph for the application and returns a ready
// engine. The graph may be shared between engines; the candidate-count and
// neighbor indices are built on it in place (idempotently).
func NewEngine(g *temporal.Graph, app App, opts Options) (*Engine, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	threads := opts.Threads
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	e := &Engine{g: g, app: app, opts: opts}
	totalStart := time.Now()

	if !opts.SkipCandidatePrecompute {
		start := time.Now()
		g.PrecomputeCandidates(threads)
		e.prep.CandidateSearch = time.Since(start)
	}
	if app.NeedsPrev {
		start := time.Now()
		g.BuildNeighborIndex()
		e.prep.NeighborIndex = time.Since(start)
	}

	start := time.Now()
	switch {
	case opts.ExternalWeights != nil:
		e.weights = opts.ExternalWeights
	case opts.ExternalSampler != nil:
		// External samplers (the baseline strategies) evaluate weights on
		// demand; building TEA's arrays would charge them TEA's cost.
	default:
		w, err := sampling.BuildGraphWeights(g, app.Weight, threads)
		if err != nil {
			return nil, fmt.Errorf("core: building weights for %q: %w", app.Name, err)
		}
		e.weights = w
	}
	e.prep.WeightBuild = time.Since(start)

	start = time.Now()
	switch {
	case opts.ExternalSampler != nil:
		e.sampler = opts.ExternalSampler
	case opts.Method == MethodHPAT || opts.Method == MethodHPATNoIndex:
		idx := hpat.Build(e.weights, hpat.Config{
			Threads:           threads,
			DisableAuxIndex:   opts.Method == MethodHPATNoIndex,
			SmallDegreeCutoff: opts.SmallDegreeCutoff,
		})
		hpatNS, auxNS := idx.BuildTimings()
		e.prep.IndexBuild = time.Duration(hpatNS)
		e.prep.AuxIndexBuild = time.Duration(auxNS)
		e.sampler = idx
	case opts.Method == MethodPAT:
		e.sampler = pat.Build(e.weights, pat.Config{TrunkSize: opts.PATTrunkSize, Threads: threads})
		e.prep.IndexBuild = time.Since(start)
	case opts.Method == MethodITS:
		e.sampler = NewITSSampler(e.weights)
		e.prep.IndexBuild = time.Since(start)
	default:
		return nil, fmt.Errorf("core: unknown method %v", opts.Method)
	}
	e.prep.Total = time.Since(totalStart)
	return e, nil
}

// Graph returns the engine's temporal graph.
func (e *Engine) Graph() *temporal.Graph { return e.g }

// App returns the application the engine was built for.
func (e *Engine) App() App { return e.app }

// Sampler returns the active sampling structure.
func (e *Engine) Sampler() Sampler { return e.sampler }

// Weights returns the per-edge weight array.
func (e *Engine) Weights() *sampling.GraphWeights { return e.weights }

// Preprocess returns the preprocessing time breakdown.
func (e *Engine) Preprocess() PreprocessStats { return e.prep }

// MemoryBytes reports the engine's index footprint: sampler plus the graph's
// auxiliary tables (candidate counts, neighbor index).
func (e *Engine) MemoryBytes() int64 {
	return e.sampler.MemoryBytes() + e.g.MemoryBytes()
}
