package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/tea-graph/tea/internal/ooc"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// The golden determinism suite: the scalar kernel is the batched kernel's
// correctness oracle. Walker randomness comes only from root.Split(walkID),
// so for every sampler, thread count, and workload shape the two kernels
// must produce byte-identical seeded paths, identical cost counters, and
// identical length histograms.

// assertWalkInvariant checks the accounting identity every run must satisfy:
// each started walk is classified exactly once.
func assertWalkInvariant(t *testing.T, label string, c stats.Cost) {
	t.Helper()
	if c.WalksStarted != c.WalksFinished() {
		t.Fatalf("%s: started %d != finished %d (completed %d + dead %d + cancelled %d + panicked %d)",
			label, c.WalksStarted, c.WalksFinished(),
			c.WalksCompleted, c.WalksDeadEnded, c.WalksCancelled, c.WalksPanicked)
	}
}

func assertSameHistogram(t *testing.T, label string, length int, a, b *stats.Histogram) {
	t.Helper()
	for v := 0; v <= length; v++ {
		if a.Count(v) != b.Count(v) {
			t.Fatalf("%s: length histogram differs at %d: %d vs %d", label, v, a.Count(v), b.Count(v))
		}
	}
	if a.Overflow() != b.Overflow() {
		t.Fatalf("%s: histogram overflow differs: %d vs %d", label, a.Overflow(), b.Overflow())
	}
}

func assertSamePaths(t *testing.T, label string, a, b []Path) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: path count differs: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i].Vertices) != len(b[i].Vertices) {
			t.Fatalf("%s: walk %d length differs: %d vs %d", label, i, len(a[i].Vertices), len(b[i].Vertices))
		}
		for j := range a[i].Vertices {
			if a[i].Vertices[j] != b[i].Vertices[j] {
				t.Fatalf("%s: walk %d vertex %d differs: %d vs %d", label, i, j, a[i].Vertices[j], b[i].Vertices[j])
			}
		}
		for j := range a[i].Times {
			if a[i].Times[j] != b[i].Times[j] {
				t.Fatalf("%s: walk %d time %d differs: %d vs %d", label, i, j, a[i].Times[j], b[i].Times[j])
			}
		}
	}
}

// runBothKernels executes cfg once per kernel and asserts full equivalence.
func runBothKernels(t *testing.T, label string, eng *Engine, cfg WalkConfig) {
	t.Helper()
	cfg.KeepPaths = true
	cfg.Kernel = KernelScalar
	scalar, err := eng.Run(cfg)
	if err != nil {
		t.Fatalf("%s scalar: %v", label, err)
	}
	cfg.Kernel = KernelBatch
	batch, err := eng.Run(cfg)
	if err != nil {
		t.Fatalf("%s batch: %v", label, err)
	}
	assertWalkInvariant(t, label+" scalar", scalar.Cost)
	assertWalkInvariant(t, label+" batch", batch.Cost)
	if scalar.Cost != batch.Cost {
		t.Fatalf("%s: cost differs\nscalar %+v\nbatch  %+v", label, scalar.Cost, batch.Cost)
	}
	assertSameHistogram(t, label, cfg.Length, scalar.Lengths, batch.Lengths)
	assertSamePaths(t, label, scalar.Paths, batch.Paths)
}

func TestBatchKernelMatchesScalarInMemory(t *testing.T) {
	g := testutil.RandomGraph(t, 400, 12000, 50000, 29)
	apps := []struct {
		name string
		app  App
	}{
		{"linear", LinearTime()},
		{"node2vec", TemporalNode2Vec(0.5, 2, 1)}, // exercises the β-rejection path
	}
	methods := []Method{MethodHPAT, MethodHPATNoIndex, MethodPAT, MethodITS}
	for _, a := range apps {
		for _, m := range methods {
			eng, err := NewEngine(g, a.app, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{1, 3, 8} {
				label := fmt.Sprintf("%s/%s/t%d", a.name, m, threads)
				runBothKernels(t, label, eng, WalkConfig{
					WalksPerVertex: 3,
					Length:         20,
					Seed:           1234,
					Threads:        threads,
				})
			}
		}
	}
}

// Skewed workloads: most walks hammer one hub, the rest scatter — the load
// shape the dynamic distribution and the grouped frontier exist for.
func TestBatchKernelMatchesScalarSkewedStarts(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 40000, 31)
	eng, err := NewEngine(g, LinearTime(), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]temporal.Vertex, 0, 600)
	for i := 0; i < 500; i++ {
		starts = append(starts, 7) // hub
	}
	for i := 0; i < 100; i++ {
		starts = append(starts, temporal.Vertex(i*3%300))
	}
	for _, threads := range []int{2, 5} {
		runBothKernels(t, fmt.Sprintf("skew/t%d", threads), eng, WalkConfig{
			Length:        25,
			Seed:          77,
			Threads:       threads,
			StartVertices: starts,
		})
	}
}

func TestBatchKernelMatchesScalarOOC(t *testing.T) {
	g := testutil.RandomGraph(t, 150, 5000, 20000, 37)
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearTime})

	store, err := ooc.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store.Close() })
	dpat, err := ooc.BuildDiskPAT(w, store, 4)
	if err != nil {
		t.Fatal(err)
	}

	store2, err := ooc.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store2.Close() })
	dgw, err := ooc.BuildDiskGraphWalker(g, sampling.WeightSpec{Kind: sampling.WeightLinearTime}, store2)
	if err != nil {
		t.Fatal(err)
	}

	samplers := []struct {
		name string
		s    Sampler
	}{
		{"diskpat", dpat},
		{"diskgw", dgw},
	}
	for _, sc := range samplers {
		if _, ok := sc.s.(BatchSampler); !ok {
			t.Fatalf("%s does not implement BatchSampler", sc.name)
		}
		if fg, ok := sc.s.(FrontierGrouper); !ok || !fg.WantsGroupedFrontier() {
			t.Fatalf("%s should want a grouped frontier", sc.name)
		}
		eng, err := NewEngine(g, LinearTime(), Options{ExternalSampler: sc.s})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4} {
			runBothKernels(t, fmt.Sprintf("%s/t%d", sc.name, threads), eng, WalkConfig{
				WalksPerVertex: 3,
				Length:         15,
				Seed:           555,
				Threads:        threads,
			})
		}
	}
}

// Cancellation mid-run: the two kernels may legitimately stop at different
// walks, but both must keep the accounting identity and report the context
// error, and the batched kernel must actually record cancelled walks.
func TestBatchKernelCancelAccounting(t *testing.T) {
	g := testutil.RandomGraph(t, 500, 20000, 100000, 41)
	eng, err := NewEngine(g, LinearTime(), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []Kernel{KernelScalar, KernelBatch} {
		ctx, cancel := context.WithCancel(context.Background())
		var hops atomic.Int64
		cfg := WalkConfig{
			WalksPerVertex: 30,
			Length:         40,
			Seed:           9,
			Threads:        4,
			Kernel:         kern,
			Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
				if hops.Add(1) == 800 {
					cancel()
				}
			},
		}
		res, err := eng.RunContext(ctx, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want Canceled", kern, err)
		}
		assertWalkInvariant(t, kern.String(), res.Cost)
		if res.Cost.WalksCancelled == 0 {
			t.Fatalf("%v: cancelled run recorded no cancelled walks: %+v", kern, res.Cost)
		}
		if res.Cost.WalksStarted >= int64(500*30) {
			t.Fatalf("%v: cancelled run started every walk", kern)
		}
	}
}

// A cancelled run must not masquerade as a graph full of temporal dead ends:
// walks cut short by ctx land in WalksCancelled, not WalksDeadEnded, even on
// a graph where genuine dead ends are rare.
func TestCancelledWalksAreNotDeadEnds(t *testing.T) {
	// Chain graph: every walk has exactly one candidate per step, so only
	// walks starting within 10 vertices of the chain's end ever dead-end.
	g := chainGraph(t, 200)
	eng, err := NewEngine(g, Unbiased(), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Run(WalkConfig{WalksPerVertex: 20, Length: 10, Seed: 2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cost.WalksDeadEnded*10 > ref.Cost.WalksStarted {
		t.Fatalf("chain graph unexpectedly dead-endy: %+v", ref.Cost)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var hops atomic.Int64
	res, err := eng.RunContext(ctx, WalkConfig{
		WalksPerVertex: 20,
		Length:         10,
		Seed:           2,
		Threads:        4,
		Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
			if hops.Add(1) == 500 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	assertWalkInvariant(t, "cancelled", res.Cost)
	if res.Cost.WalksCancelled == 0 {
		t.Fatalf("no walks classified cancelled: %+v", res.Cost)
	}
	if res.Cost.WalksDeadEnded > ref.Cost.WalksDeadEnded {
		t.Fatalf("cancellation inflated dead ends: %d > reference %d", res.Cost.WalksDeadEnded, ref.Cost.WalksDeadEnded)
	}
}

// A panicking visitor under the batched kernel must fail the run with an
// error naming the walk (like the scalar path) and keep the accounting
// identity on the partial result.
func TestBatchKernelPanicAccounting(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 5000, 47)
	eng, err := NewEngine(g, LinearTime(), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []Kernel{KernelScalar, KernelBatch} {
		res, err := eng.Run(WalkConfig{
			Length: 20,
			Seed:   6,
			Kernel: kern,
			Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
				if walkID == 7 && step == 1 {
					panic("visitor exploded")
				}
			},
		})
		if err == nil || !strings.Contains(err.Error(), "walk 7") || !strings.Contains(err.Error(), "visitor exploded") {
			t.Fatalf("%v: panic error does not identify the walk: %v", kern, err)
		}
		assertWalkInvariant(t, kern.String(), res.Cost)
		if res.Cost.WalksPanicked != 1 {
			t.Fatalf("%v: WalksPanicked = %d, want 1", kern, res.Cost.WalksPanicked)
		}
	}
}

// Amortized mid-walk cancellation: a single walk far longer than the poll
// interval must stop within ~ctxCheckMask+1 steps of the deadline instead of
// running its full configured length.
func TestScalarLongWalkHonorsCancellation(t *testing.T) {
	// A 4000-vertex chain forces one deterministic ~4000-step walk — far
	// past the poll interval, so only the amortized mid-walk check can stop
	// it near the cancellation point.
	g := chainGraph(t, 4000)
	eng, err := NewEngine(g, Unbiased(), Options{Method: MethodITS})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var hops atomic.Int64
	res, err := eng.RunContext(ctx, WalkConfig{
		Length:        2_000_000,
		Seed:          3,
		Threads:       1,
		Kernel:        KernelScalar,
		StartVertices: []temporal.Vertex{0},
		Visitor: func(walkID, step int, from, to temporal.Vertex, at temporal.Time) {
			if hops.Add(1) == 100 {
				cancel()
			}
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	assertWalkInvariant(t, "long walk", res.Cost)
	if res.Cost.WalksCancelled != 1 {
		t.Fatalf("long walk not classified cancelled: %+v", res.Cost)
	}
	// The walk must have been cut off within one poll interval of the cancel.
	if res.Cost.Steps > 100+ctxCheckMask+1 {
		t.Fatalf("walk ignored cancellation for %d steps", res.Cost.Steps-100)
	}
}

// chainGraph builds a path graph 0→1→…→n-1 with strictly increasing edge
// times, so every walk has exactly one temporal candidate per step.
func chainGraph(t *testing.T, n int) *temporal.Graph {
	t.Helper()
	edges := make([]temporal.Edge, n-1)
	for i := range edges {
		edges[i] = temporal.Edge{Src: temporal.Vertex(i), Dst: temporal.Vertex(i + 1), Time: temporal.Time(i)}
	}
	return temporal.MustFromEdges(edges)
}

func TestKernelResolution(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 6000, 10000, 53)
	eng, err := NewEngine(g, LinearTime(), Options{Method: MethodHPAT})
	if err != nil {
		t.Fatal(err)
	}
	// Auto: big run on a BatchSampler resolves to batch.
	if k, bs := eng.resolveKernel(KernelAuto, 10000, 4); k != KernelBatch || bs == nil {
		t.Fatalf("auto on big run = %v", k)
	}
	// Auto: tiny run stays scalar.
	if k, _ := eng.resolveKernel(KernelAuto, 8, 4); k != KernelScalar {
		t.Fatalf("auto on tiny run = %v", k)
	}
	// Forced scalar stays scalar.
	if k, _ := eng.resolveKernel(KernelScalar, 10000, 4); k != KernelScalar {
		t.Fatalf("forced scalar = %v", k)
	}
	// A non-batch external sampler falls back to scalar even when forced.
	eng2, err := NewEngine(g, LinearTime(), Options{ExternalSampler: scalarOnlySampler{eng.Sampler()}})
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := eng2.resolveKernel(KernelBatch, 10000, 4); k != KernelScalar {
		t.Fatalf("forced batch without BatchSampler = %v", k)
	}
	for _, s := range []string{"auto", "scalar", "batch", ""} {
		if _, err := ParseKernel(s); err != nil {
			t.Fatalf("ParseKernel(%q): %v", s, err)
		}
	}
	if _, err := ParseKernel("vector"); err == nil {
		t.Fatal("ParseKernel accepted garbage")
	}
}

// scalarOnlySampler hides the batch path of an underlying sampler.
type scalarOnlySampler struct{ s Sampler }

func (w scalarOnlySampler) Name() string { return w.s.Name() }
func (w scalarOnlySampler) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return w.s.Sample(u, k, r)
}
func (w scalarOnlySampler) MemoryBytes() int64 { return w.s.MemoryBytes() }
