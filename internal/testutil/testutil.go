// Package testutil provides shared helpers for the engine's test suites:
// chi-square distribution checks for samplers and reproducible random
// temporal graphs.
package testutil

import (
	"math/rand"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
)

// CheckDistribution draws n samples and verifies the empirical distribution
// matches the unnormalized weights via a chi-square test with a generous
// threshold (systematic bias fails; statistical noise passes).
func CheckDistribution(t testing.TB, name string, want []float64, n int, draw func() (int, bool)) {
	t.Helper()
	total := 0.0
	for _, w := range want {
		total += w
	}
	if !(total > 0) {
		t.Fatalf("%s: degenerate expected weights %v", name, want)
	}
	counts := make([]int64, len(want))
	for i := 0; i < n; i++ {
		idx, ok := draw()
		if !ok {
			t.Fatalf("%s: draw %d failed", name, i)
		}
		if idx < 0 || idx >= len(want) {
			t.Fatalf("%s: index %d out of range %d", name, idx, len(want))
		}
		counts[idx]++
	}
	chi2, df, err := stats.ChiSquare(counts, want)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if limit := stats.ChiSquareGenerousLimit(df); chi2 > limit {
		t.Fatalf("%s: chi-square %.1f exceeds %.1f (counts %v, weights %v)", name, chi2, limit, counts, want)
	}
}

// RandomGraph builds a reproducible random temporal multigraph with v
// vertices, e edges, and timestamps in [0, tmax).
func RandomGraph(t testing.TB, v, e int, tmax int64, seed int64) *temporal.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]temporal.Edge, e)
	for i := range edges {
		edges[i] = temporal.Edge{
			Src:  temporal.Vertex(r.Intn(v)),
			Dst:  temporal.Vertex(r.Intn(v)),
			Time: temporal.Time(r.Int63n(tmax)),
		}
	}
	g, err := temporal.FromEdges(edges, temporal.WithNumVertices(v))
	if err != nil {
		t.Fatalf("RandomGraph: %v", err)
	}
	return g
}

// SkewedGraph builds a graph where vertex 0 is a hub with degree hubDeg (one
// edge per timestamp 1..hubDeg) and the rest form a sparse ring, exercising
// high-degree sampling paths.
func SkewedGraph(t testing.TB, v, hubDeg int) *temporal.Graph {
	t.Helper()
	edges := make([]temporal.Edge, 0, hubDeg+v)
	for i := 0; i < hubDeg; i++ {
		edges = append(edges, temporal.Edge{
			Src: 0, Dst: temporal.Vertex(1 + i%(v-1)), Time: temporal.Time(i + 1),
		})
	}
	for u := 1; u < v; u++ {
		edges = append(edges, temporal.Edge{
			Src: temporal.Vertex(u), Dst: temporal.Vertex((u + 1) % v), Time: temporal.Time(u),
		})
	}
	g, err := temporal.FromEdges(edges, temporal.WithNumVertices(v))
	if err != nil {
		t.Fatalf("SkewedGraph: %v", err)
	}
	return g
}

// Weights builds graph weights for tests, failing the test on error.
func Weights(t testing.TB, g *temporal.Graph, spec sampling.WeightSpec) *sampling.GraphWeights {
	t.Helper()
	w, err := sampling.BuildGraphWeights(g, spec, 0)
	if err != nil {
		t.Fatalf("BuildGraphWeights: %v", err)
	}
	return w
}
