package hpat

import (
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/xrand"
)

// Table is a self-contained HPAT over one contiguous, newest-first weight
// run. The streaming engine (§3.5) keeps one Table per segment of a vertex's
// edge list and merges segments LSM-style, so Tables must own their storage
// (unlike Index, which packs the whole graph into flat arrays).
type Table struct {
	w     []float64
	cum   []float64
	prob  []float64
	alias []int32
	base  []int32
}

// NewTable builds a standalone HPAT for the given weights (newest first).
// The weight slice is copied so callers may reuse their buffers.
func NewTable(w []float64) *Table {
	n := len(w)
	t := &Table{
		w:   append([]float64(nil), w...),
		cum: make([]float64, n+1),
	}
	if kTop := topLevel(n); kTop >= 0 {
		t.base = make([]int32, kTop+1)
		slots := slotCount(n)
		t.prob = make([]float64, slots)
		t.alias = make([]int32, slots)
		levelBases(n, t.base)
		buildBlock(t.w, t.cum, t.prob, t.alias, t.base, nil)
	} else {
		t.cum[0] = 0
	}
	return t
}

// Len returns the number of edges the table covers.
func (t *Table) Len() int { return len(t.w) }

// Total returns the combined weight of the k newest edges (k ≤ Len).
func (t *Table) Total(k int) float64 { return t.cum[k] }

// Weights returns the table's weight array, newest first. Read-only.
func (t *Table) Weights() []float64 { return t.w }

// Sample draws an index from the k newest edges of the table. aux may be nil,
// in which case the decomposition is computed on the fly.
func (t *Table) Sample(k int, aux *AuxIndex, r *xrand.Rand) (idx int, evaluated int64, ok bool) {
	if k <= 0 || len(t.w) == 0 {
		return 0, 0, false
	}
	if k > len(t.w) {
		k = len(t.w)
	}
	var dec []DecompEntry
	if aux != nil && k <= aux.MaxSize() {
		dec = aux.Decomp(k)
	} else {
		var buf [maxLevels]DecompEntry
		dec = Decompose(k, buf[:0])
	}
	return sampleBlock(t.cum, t.w, t.prob, t.alias, t.base, dec, r)
}

// SampleOffset draws like Sample but against a weight scale already chosen by
// an outer ITS: x must be uniform in [0, Total(k)). Used by the segmented
// sampler, which first ITS-samples across segment totals and then descends
// into one segment.
func (t *Table) SampleOffset(k int, x float64, r *xrand.Rand) (idx int, evaluated int64, ok bool) {
	if k <= 0 || len(t.w) == 0 || !(t.cum[k] > 0) {
		return 0, 0, false
	}
	if k > len(t.w) {
		k = len(t.w)
	}
	var buf [maxLevels]DecompEntry
	dec := Decompose(k, buf[:0])
	// Binary search over trunk boundaries for the trunk containing x.
	lo, hi := 0, len(dec)-1
	var eval int64
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		end := int(dec[mid].Pos) + dec[mid].Size()
		eval++
		if t.cum[end] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	d := dec[lo]
	if d.Level == 0 {
		return int(d.Pos), eval + 1, true
	}
	s := int(t.base[d.Level]) + int(d.Pos)
	size := d.Size()
	slot, sok := sampling.SampleAliasSlots(t.prob[s:s+size], t.alias[s:s+size], r)
	eval += 2
	if !sok {
		start := int(d.Pos)
		i, lok := sampling.LinearITS(t.w[start:start+size], t.cum[start+size]-t.cum[start], r)
		eval += int64(size)
		if !lok {
			return 0, eval, false
		}
		return start + i, eval, true
	}
	return int(d.Pos) + slot, eval, true
}

// MemoryBytes returns the table footprint.
func (t *Table) MemoryBytes() int64 {
	return int64(len(t.w))*8 + int64(len(t.cum))*8 +
		int64(len(t.prob))*8 + int64(len(t.alias))*4 + int64(len(t.base))*4
}
