// Package hpat implements the Hierarchical Persistent Alias Table of §3.3 of
// the TEA paper together with its auxiliary index (§3.4).
//
// For a vertex with n out-edges (newest first), HPAT keeps, for every level
// k ≤ ⌊log2 n⌋, alias tables over the trunks τ^{k,i} = edges
// [i·2^k, (i+1)·2^k). A temporal candidate set is always a prefix of length
// m, and m binary-decomposes into at most ⌊log2 m⌋+1 aligned trunks; inverse
// transform sampling over those trunk boundaries (using the vertex's per-edge
// prefix-sum array C) picks a trunk in O(log log D), and the trunk's alias
// table picks the edge in O(1).
//
// The auxiliary index exploits that the decomposition depends only on m, not
// on the vertex: one global table for m = 1..maxDegree gives O(1) lookup.
package hpat

import (
	"fmt"
	"math/bits"
)

// DecompEntry is one trunk of a prefix decomposition: the trunk spans edges
// [Pos, Pos+2^Level).
type DecompEntry struct {
	Pos   int32
	Level uint8
}

// Size returns the trunk length 2^Level.
func (d DecompEntry) Size() int { return 1 << d.Level }

// Decompose appends the binary decomposition of the prefix length m to buf:
// greedy largest-power-of-two trunks from position 0. Every produced trunk is
// aligned (Pos is a multiple of its size), which is what makes the HPAT trunk
// tables applicable.
func Decompose(m int, buf []DecompEntry) []DecompEntry {
	pos := int32(0)
	for m > 0 {
		level := uint8(bits.Len(uint(m)) - 1)
		buf = append(buf, DecompEntry{Pos: pos, Level: level})
		pos += 1 << level
		m -= 1 << level
	}
	return buf
}

// AuxIndex is the global auxiliary index of §3.4: the precomputed trunk
// decomposition of every candidate-set size 1..MaxSize. Lookup is O(1); the
// table holds Σ_{m≤D} popcount(m) entries.
type AuxIndex struct {
	off     []int64
	entries []DecompEntry
}

// BuildAuxIndex precomputes decompositions for sizes 1..maxSize. The
// construction is embarrassingly parallel in principle; at Σ popcount(m)
// entries it is so cheap that a single linear pass suffices and is what we
// time for Figure 13c (the parallel variant lives in BuildAuxIndexParallel).
func BuildAuxIndex(maxSize int) *AuxIndex {
	if maxSize < 0 {
		maxSize = 0
	}
	off := make([]int64, maxSize+2)
	total := int64(0)
	for m := 0; m <= maxSize; m++ {
		total += int64(bits.OnesCount(uint(m)))
		off[m+1] = total
	}
	entries := make([]DecompEntry, total)
	for m := 1; m <= maxSize; m++ {
		fillDecomp(m, entries[off[m]:off[m+1]])
	}
	return &AuxIndex{off: off, entries: entries}
}

// fillDecomp writes the decomposition of m into dst, which must have exactly
// popcount(m) entries.
func fillDecomp(m int, dst []DecompEntry) {
	pos := int32(0)
	i := 0
	for m > 0 {
		level := uint8(bits.Len(uint(m)) - 1)
		dst[i] = DecompEntry{Pos: pos, Level: level}
		pos += 1 << level
		m -= 1 << level
		i++
	}
}

// MaxSize returns the largest size the index covers.
func (a *AuxIndex) MaxSize() int { return len(a.off) - 2 }

// Decomp returns the decomposition of size m as a shared read-only slice.
// It panics if m is outside [0, MaxSize].
func (a *AuxIndex) Decomp(m int) []DecompEntry {
	if m < 0 || m > a.MaxSize() {
		panic(fmt.Sprintf("hpat: decomposition size %d outside index range [0,%d]", m, a.MaxSize()))
	}
	return a.entries[a.off[m]:a.off[m+1]]
}

// MemoryBytes returns the footprint of the index.
func (a *AuxIndex) MemoryBytes() int64 {
	return int64(len(a.off))*8 + int64(len(a.entries))*8
}
