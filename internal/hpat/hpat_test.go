package hpat

import (
	"math/bits"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func TestDecomposeKnownValues(t *testing.T) {
	// The paper's example: 7 = 4+2+1 yields trunks {6,5,4,3}, {2,1}, {0} —
	// levels 2,1,0 at positions 0,4,6 (Figure 6d).
	got := Decompose(7, nil)
	want := []DecompEntry{{Pos: 0, Level: 2}, {Pos: 4, Level: 1}, {Pos: 6, Level: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decompose(7) = %v, want %v", got, want)
	}
	if got := Decompose(4, nil); !reflect.DeepEqual(got, []DecompEntry{{Pos: 0, Level: 2}}) {
		t.Fatalf("Decompose(4) = %v", got)
	}
	if got := Decompose(0, nil); len(got) != 0 {
		t.Fatalf("Decompose(0) = %v", got)
	}
}

// Property: a decomposition tiles [0, m) with aligned power-of-two trunks in
// strictly descending level order.
func TestDecomposeProperty(t *testing.T) {
	f := func(raw uint32) bool {
		m := int(raw % 1_000_000)
		dec := Decompose(m, nil)
		if len(dec) != bits.OnesCount(uint(m)) {
			return false
		}
		pos := 0
		prevLevel := 255
		for _, d := range dec {
			if int(d.Pos) != pos {
				return false
			}
			if int(d.Level) >= prevLevel {
				return false // levels must strictly decrease
			}
			if pos%(1<<d.Level) != 0 {
				return false // alignment: Pos multiple of size
			}
			prevLevel = int(d.Level)
			pos += d.Size()
		}
		return pos == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAuxIndexMatchesDecompose(t *testing.T) {
	aux := BuildAuxIndex(300)
	if aux.MaxSize() != 300 {
		t.Fatalf("MaxSize = %d", aux.MaxSize())
	}
	if len(aux.Decomp(0)) != 0 {
		t.Fatalf("Decomp(0) = %v", aux.Decomp(0))
	}
	for m := 1; m <= 300; m++ {
		if !reflect.DeepEqual(aux.Decomp(m), Decompose(m, nil)) {
			t.Fatalf("aux.Decomp(%d) = %v, want %v", m, aux.Decomp(m), Decompose(m, nil))
		}
	}
}

func TestAuxIndexParallelMatchesSerial(t *testing.T) {
	a := BuildAuxIndex(5000)
	b := BuildAuxIndexParallel(5000, 8)
	if !reflect.DeepEqual(a.off, b.off) || !reflect.DeepEqual(a.entries, b.entries) {
		t.Fatal("parallel auxiliary index differs from serial")
	}
}

func TestAuxIndexPanicsOutOfRange(t *testing.T) {
	aux := BuildAuxIndex(10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range size")
		}
	}()
	aux.Decomp(11)
}

func TestSlotCountAndLevelBases(t *testing.T) {
	// n=7: levels 1 (3 trunks of 2 → 6 slots) and 2 (1 trunk of 4 → 4 slots).
	if got := slotCount(7); got != 10 {
		t.Fatalf("slotCount(7) = %d, want 10", got)
	}
	base := make([]int32, 3)
	if k := levelBases(7, base); k != 2 {
		t.Fatalf("topLevel = %d", k)
	}
	if base[1] != 0 || base[2] != 6 {
		t.Fatalf("bases = %v, want [_,0,6]", base)
	}
	if slotCount(1) != 0 || slotCount(0) != 0 {
		t.Fatal("degenerate slot counts")
	}
}

func buildCommuteIndex(t *testing.T, cfg Config) *Index {
	t.Helper()
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	if cfg.SmallDegreeCutoff == 0 {
		cfg.SmallDegreeCutoff = -1 // exercise the full hierarchy on the toy graph
	}
	return Build(w, cfg)
}

// Figure 6 scenario: candidate set {6,5,4} (arrival from 9 at t=4) decomposes
// into trunks {6,5} and {4}; sampled distribution must match weights 7,6,5.
func TestFigure6Distribution(t *testing.T) {
	idx := buildCommuteIndex(t, Config{Threads: 1})
	r := xrand.New(1)
	k := idx.Graph().CandidateCount(7, 4)
	if k != 3 {
		t.Fatalf("candidates = %d", k)
	}
	testutil.CheckDistribution(t, "fig6", []float64{7, 6, 5}, 40000, func() (int, bool) {
		e, _, ok := idx.Sample(7, k, r)
		return e, ok
	})
}

func TestEveryPrefixEveryConfig(t *testing.T) {
	for _, disableAux := range []bool{false, true} {
		idx := buildCommuteIndex(t, Config{Threads: 1, DisableAuxIndex: disableAux})
		r := xrand.New(2)
		for k := 1; k <= 7; k++ {
			want := make([]float64, k)
			for i := range want {
				want[i] = float64(7 - i)
			}
			testutil.CheckDistribution(t, "prefix", want, 20000, func() (int, bool) {
				e, _, ok := idx.Sample(7, k, r)
				return e, ok
			})
		}
	}
}

func TestSmallDegreeCutoffPath(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{SmallDegreeCutoff: 16}) // degree 7 < 16 → scan path
	if len(idx.prob) != 0 {
		t.Fatalf("cutoff did not suppress alias slots: %d", len(idx.prob))
	}
	r := xrand.New(3)
	testutil.CheckDistribution(t, "cutoff", []float64{7, 6, 5, 4}, 40000, func() (int, bool) {
		e, _, ok := idx.Sample(7, 4, r)
		return e, ok
	})
}

func TestZeroAndDegenerate(t *testing.T) {
	idx := buildCommuteIndex(t, Config{})
	r := xrand.New(4)
	if _, _, ok := idx.Sample(7, 0, r); ok {
		t.Fatal("k=0 sampled")
	}
	if _, _, ok := idx.Sample(1, 3, r); ok {
		t.Fatal("degree-0 vertex sampled")
	}
	if _, _, ok := idx.Sample(7, -2, r); ok {
		t.Fatal("negative k sampled")
	}
}

func TestKClamped(t *testing.T) {
	idx := buildCommuteIndex(t, Config{})
	r := xrand.New(5)
	for i := 0; i < 2000; i++ {
		e, _, ok := idx.Sample(7, 1000, r)
		if !ok || e < 0 || e >= 7 {
			t.Fatalf("clamped sample (%d,%v)", e, ok)
		}
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 20000, 2000, 9)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))
	a := Build(w, Config{Threads: 1})
	b := Build(w, Config{Threads: 8})
	if !reflect.DeepEqual(a.cum, b.cum) || !reflect.DeepEqual(a.prob, b.prob) ||
		!reflect.DeepEqual(a.alias, b.alias) || !reflect.DeepEqual(a.lvl, b.lvl) {
		t.Fatal("parallel HPAT build differs from serial")
	}
}

func TestRandomGraphDistributionAllWeights(t *testing.T) {
	g := testutil.RandomGraph(t, 40, 2500, 800, 10)
	specs := []sampling.WeightSpec{
		{Kind: sampling.WeightUniform},
		{Kind: sampling.WeightLinearTime},
		{Kind: sampling.WeightLinearRank},
		sampling.Exponential(0.01),
	}
	best := temporal.Vertex(0)
	for u := 0; u < g.NumVertices(); u++ {
		if g.Degree(temporal.Vertex(u)) > g.Degree(best) {
			best = temporal.Vertex(u)
		}
	}
	deg := g.Degree(best)
	for si, spec := range specs {
		w := testutil.Weights(t, g, spec)
		idx := Build(w, Config{})
		r := xrand.New(uint64(20 + si))
		for _, k := range []int{1, 3, deg / 2, deg} {
			if k < 1 {
				continue
			}
			want := append([]float64(nil), w.Vertex(best)[:k]...)
			testutil.CheckDistribution(t, spec.Kind.String(), want, 25000, func() (int, bool) {
				e, _, ok := idx.Sample(best, k, r)
				return e, ok
			})
		}
	}
}

// HPAT and PAT-level exactness: sampling cost must be O(log log D)-ish, far
// below the degree, even on a 2^14-degree hub.
func TestEvaluatedCostTiny(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 1<<14)
	w := testutil.Weights(t, g, sampling.Exponential(0.0005))
	idx := Build(w, Config{})
	r := xrand.New(11)
	deg := g.Degree(0)
	var maxEval int64
	for i := 0; i < 5000; i++ {
		k := 1 + r.IntN(deg)
		_, ev, ok := idx.Sample(0, k, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if ev > maxEval {
			maxEval = ev
		}
	}
	if maxEval > 24 {
		t.Fatalf("HPAT evaluated %d slots on a degree-%d vertex", maxEval, deg)
	}
}

func TestHPATNameReflectsAux(t *testing.T) {
	with := buildCommuteIndex(t, Config{})
	without := buildCommuteIndex(t, Config{DisableAuxIndex: true})
	if with.Name() != "HPAT+Index" || !with.HasAuxIndex() {
		t.Fatalf("with-aux name %q", with.Name())
	}
	if without.Name() != "HPAT" || without.HasAuxIndex() {
		t.Fatalf("without-aux name %q", without.Name())
	}
}

func TestMemoryLargerThanPATScale(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 4096)
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	idx := Build(w, Config{})
	// O(D log D) slots: for the hub alone ≥ 11*2048 slots.
	if idx.MemoryBytes() < 11*2048*12 {
		t.Fatalf("suspiciously small HPAT: %d bytes", idx.MemoryBytes())
	}
	hp, ax := idx.BuildTimings()
	if hp <= 0 || ax <= 0 {
		t.Fatalf("build timings not recorded: hpat=%d aux=%d", hp, ax)
	}
}

func TestTotalMatchesPrefixSum(t *testing.T) {
	idx := buildCommuteIndex(t, Config{})
	want := []float64{0, 7, 13, 18, 22, 25, 27, 28}
	for k, v := range want {
		if got := idx.Total(7, k); got != v {
			t.Fatalf("Total(7,%d) = %v, want %v", k, got, v)
		}
	}
}

func TestTableMatchesIndexDistribution(t *testing.T) {
	w := []float64{7, 6, 5, 4, 3, 2, 1}
	tab := NewTable(w)
	if tab.Len() != 7 {
		t.Fatalf("Len = %d", tab.Len())
	}
	aux := BuildAuxIndex(8)
	r := xrand.New(12)
	for _, useAux := range []bool{true, false} {
		for k := 1; k <= 7; k++ {
			want := w[:k]
			a := aux
			if !useAux {
				a = nil
			}
			testutil.CheckDistribution(t, "table", want, 15000, func() (int, bool) {
				e, _, ok := tab.Sample(k, a, r)
				return e, ok
			})
		}
	}
}

func TestTableSampleOffset(t *testing.T) {
	w := []float64{5, 4, 3, 2, 1}
	tab := NewTable(w)
	r := xrand.New(13)
	// Drawing x uniformly ourselves must reproduce the weighted distribution.
	testutil.CheckDistribution(t, "table-offset", w, 40000, func() (int, bool) {
		x := r.Range(tab.Total(5))
		e, _, ok := tab.SampleOffset(5, x, r)
		return e, ok
	})
}

func TestTableDegenerate(t *testing.T) {
	r := xrand.New(14)
	empty := NewTable(nil)
	if _, _, ok := empty.Sample(1, nil, r); ok {
		t.Fatal("empty table sampled")
	}
	if empty.MemoryBytes() < 0 {
		t.Fatal("negative memory")
	}
	single := NewTable([]float64{2})
	e, _, ok := single.Sample(1, nil, r)
	if !ok || e != 0 {
		t.Fatalf("single-edge table sample (%d,%v)", e, ok)
	}
	zero := NewTable([]float64{0, 0})
	if _, _, ok := zero.Sample(2, nil, r); ok {
		t.Fatal("zero-weight table sampled")
	}
}

func TestTableCopiesWeights(t *testing.T) {
	w := []float64{3, 2, 1}
	tab := NewTable(w)
	w[0] = 999
	if tab.Weights()[0] != 3 {
		t.Fatal("table aliases caller weights")
	}
}

func BenchmarkHPATSampleWithAux(b *testing.B) {
	benchSample(b, Config{})
}

func BenchmarkHPATSampleNoAux(b *testing.B) {
	benchSample(b, Config{DisableAuxIndex: true})
}

func benchSample(b *testing.B, cfg Config) {
	g := testutil.SkewedGraph(b, 64, 1<<14)
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(0.0005), 0)
	if err != nil {
		b.Fatal(err)
	}
	idx := Build(w, cfg)
	r := xrand.New(1)
	deg := g.Degree(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Sample(0, 1+r.IntN(deg), r)
	}
}

func BenchmarkHPATBuild(b *testing.B) {
	g := testutil.RandomGraph(b, 2000, 200000, 10000, 1)
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(0.001), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(w, Config{})
	}
}

func BenchmarkAuxIndexBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BuildAuxIndexParallel(1<<20, 0)
	}
}
