package hpat

import (
	"runtime"
	"sync"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// DefaultSmallDegreeCutoff is the degree below which the hierarchy is skipped
// and candidates are sampled by a direct scan — the paper's second ad-hoc
// optimization in §3.3 (low out-degree vertices get special-cased).
const DefaultSmallDegreeCutoff = 8

// Config controls HPAT index construction.
type Config struct {
	// Threads used for parallel construction; <1 means GOMAXPROCS.
	Threads int
	// DisableAuxIndex turns off the §3.4 auxiliary index so prefix
	// decompositions are recomputed per sample. Used by the Figure 11
	// ablation ("HPAT" vs "HPAT+Index").
	DisableAuxIndex bool
	// SmallDegreeCutoff overrides DefaultSmallDegreeCutoff; negative disables
	// the small-degree fast path entirely.
	SmallDegreeCutoff int
}

func (c Config) cutoff() int {
	switch {
	case c.SmallDegreeCutoff < 0:
		return 0
	case c.SmallDegreeCutoff == 0:
		return DefaultSmallDegreeCutoff
	default:
		return c.SmallDegreeCutoff
	}
}

// Index is the HPAT over a whole graph: per-edge prefix sums, packed alias
// tables for every trunk of every level ≥ 1, per-vertex level offsets, and
// (optionally) the global auxiliary index. All storage positions are computed
// before construction so vertices build lock-free in parallel.
type Index struct {
	g       *temporal.Graph
	weights *sampling.GraphWeights

	cum     []float64 // per-vertex prefix sums, deg+1 entries each
	cumOff  []int64
	prob    []float64
	alias   []int32
	slotOff []int64
	lvl     []int32 // per-vertex level bases, topLevel+1 entries each
	lvlOff  []int64

	aux     *AuxIndex
	cutoff  int
	buildNS buildTiming
}

// buildTiming records the wall-clock nanoseconds of each §4.2 preprocessing
// phase, reported by the Figure 13 experiments.
type buildTiming struct {
	hpatNS int64
	auxNS  int64
}

// Build constructs the HPAT index over the weighted graph.
func Build(w *sampling.GraphWeights, cfg Config) *Index {
	g := w.Graph()
	threads := cfg.Threads
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	numV := g.NumVertices()
	idx := &Index{
		g:       g,
		weights: w,
		cumOff:  make([]int64, numV+1),
		slotOff: make([]int64, numV+1),
		lvlOff:  make([]int64, numV+1),
		cutoff:  cfg.cutoff(),
	}
	// Phase 1: layout. Every vertex's storage range is fixed up front.
	for u := 0; u < numV; u++ {
		deg := g.Degree(temporal.Vertex(u))
		idx.cumOff[u+1] = idx.cumOff[u] + int64(deg) + 1
		idx.lvlOff[u+1] = idx.lvlOff[u] + int64(topLevel(deg)) + 1
		if deg > idx.cutoff {
			idx.slotOff[u+1] = idx.slotOff[u] + slotCount(deg)
		} else {
			idx.slotOff[u+1] = idx.slotOff[u]
		}
	}
	idx.cum = make([]float64, idx.cumOff[numV])
	idx.prob = make([]float64, idx.slotOff[numV])
	idx.alias = make([]int32, idx.slotOff[numV])
	if lv := idx.lvlOff[numV]; lv > 0 {
		idx.lvl = make([]int32, lv)
	}

	// Phase 2: lock-free parallel per-vertex construction.
	start := nanotime()
	var wg sync.WaitGroup
	chunk := (numV + threads - 1) / threads
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < numV; lo += chunk {
		hi := lo + chunk
		if hi > numV {
			hi = numV
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch []int32
			for u := lo; u < hi; u++ {
				scratch = idx.buildVertex(temporal.Vertex(u), scratch)
			}
		}(lo, hi)
	}
	wg.Wait()
	idx.buildNS.hpatNS = nanotime() - start

	// Phase 3: global auxiliary index (§3.4).
	if !cfg.DisableAuxIndex {
		start = nanotime()
		idx.aux = BuildAuxIndexParallel(g.MaxDegree(), threads)
		idx.buildNS.auxNS = nanotime() - start
	}
	return idx
}

func (idx *Index) buildVertex(u temporal.Vertex, scratch []int32) []int32 {
	deg := idx.g.Degree(u)
	if deg == 0 {
		return scratch
	}
	w := idx.weights.Vertex(u)
	cum := idx.cum[idx.cumOff[u]:idx.cumOff[u+1]]
	base := idx.lvl[idx.lvlOff[u]:idx.lvlOff[u+1]]
	if deg <= idx.cutoff {
		// Small-degree fast path: only the prefix sums are needed.
		sum := 0.0
		cum[0] = 0
		for i, x := range w {
			sum += x
			cum[i+1] = sum
		}
		levelBases(deg, base)
		return scratch
	}
	need := 2 << uint(topLevel(deg))
	if cap(scratch) < need {
		scratch = make([]int32, need)
	}
	levelBases(deg, base)
	prob := idx.prob[idx.slotOff[u]:idx.slotOff[u+1]]
	alias := idx.alias[idx.slotOff[u]:idx.slotOff[u+1]]
	buildBlock(w, cum, prob, alias, base, scratch[:need])
	return scratch
}

// Name identifies the sampler; it reflects whether the auxiliary index is
// active so experiment output distinguishes the Figure 11 configurations.
func (idx *Index) Name() string {
	if idx.aux == nil {
		return "HPAT"
	}
	return "HPAT+Index"
}

// HasAuxIndex reports whether the §3.4 auxiliary index is attached.
func (idx *Index) HasAuxIndex() bool { return idx.aux != nil }

// BuildTimings returns the nanoseconds spent building the trunk tables and
// the auxiliary index, for the Figure 13 preprocessing breakdown.
func (idx *Index) BuildTimings() (hpatNS, auxNS int64) {
	return idx.buildNS.hpatNS, idx.buildNS.auxNS
}

// Total returns the total weight of u's k newest out-edges.
func (idx *Index) Total(u temporal.Vertex, k int) float64 {
	return idx.cum[idx.cumOff[u]+int64(k)]
}

// Sample draws one edge index from the k newest out-edges of u with
// probability proportional to edge weight. evaluated counts array slots
// examined. ok is false when k <= 0 or the prefix carries no weight.
func (idx *Index) Sample(u temporal.Vertex, k int, r *xrand.Rand) (edge int, evaluated int64, ok bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := idx.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	w := idx.weights.Vertex(u)
	cum := idx.cum[idx.cumOff[u]:idx.cumOff[u+1]]
	if deg <= idx.cutoff {
		i, sok := sampling.LinearITS(w[:k], cum[k], r)
		return i, int64(k), sok
	}
	base := idx.lvl[idx.lvlOff[u]:idx.lvlOff[u+1]]
	prob := idx.prob[idx.slotOff[u]:idx.slotOff[u+1]]
	alias := idx.alias[idx.slotOff[u]:idx.slotOff[u+1]]
	var dec []DecompEntry
	if idx.aux != nil {
		dec = idx.aux.Decomp(k)
	} else {
		var buf [maxLevels]DecompEntry
		dec = Decompose(k, buf[:0])
	}
	return sampleBlock(cum, w, prob, alias, base, dec, r)
}

// MemoryBytes reports the index footprint including the shared weight array
// and the auxiliary index; the HPAT trunk tables dominate, matching the
// paper's observation that the HPAT index is 82–91% of total memory.
func (idx *Index) MemoryBytes() int64 {
	n := int64(len(idx.cum))*8 +
		int64(len(idx.prob))*8 +
		int64(len(idx.alias))*4 +
		int64(len(idx.lvl))*4 +
		int64(len(idx.cumOff)+len(idx.slotOff)+len(idx.lvlOff))*8 +
		idx.weights.MemoryBytes()
	if idx.aux != nil {
		n += idx.aux.MemoryBytes()
	}
	return n
}

// Graph returns the underlying temporal graph.
func (idx *Index) Graph() *temporal.Graph { return idx.g }

// Weights returns the shared per-edge weight array.
func (idx *Index) Weights() *sampling.GraphWeights { return idx.weights }
