package hpat

import (
	"math/bits"
	"runtime"
	"sync"
	"time"
)

// nanotime returns a monotonic nanosecond timestamp for build-phase timing.
func nanotime() int64 { return time.Now().UnixNano() }

// BuildAuxIndexParallel builds the §3.4 auxiliary index with the given number
// of worker threads. Decompositions of different sizes are independent, so
// the fill is embarrassingly parallel (§4.2 "auxiliary index generation").
// threads < 1 selects GOMAXPROCS.
func BuildAuxIndexParallel(maxSize, threads int) *AuxIndex {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	if maxSize < 0 {
		maxSize = 0
	}
	off := make([]int64, maxSize+2)
	total := int64(0)
	for m := 0; m <= maxSize; m++ {
		total += int64(bits.OnesCount(uint(m)))
		off[m+1] = total
	}
	entries := make([]DecompEntry, total)
	var wg sync.WaitGroup
	chunk := (maxSize + threads) / threads
	if chunk == 0 {
		chunk = 1
	}
	for lo := 1; lo <= maxSize; lo += chunk {
		hi := lo + chunk
		if hi > maxSize+1 {
			hi = maxSize + 1
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for m := lo; m < hi; m++ {
				fillDecomp(m, entries[off[m]:off[m+1]])
			}
		}(lo, hi)
	}
	wg.Wait()
	return &AuxIndex{off: off, entries: entries}
}
