package hpat

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func TestSerializeRoundTrip(t *testing.T) {
	g := testutil.RandomGraph(t, 250, 12000, 2000, 21)
	w := testutil.Weights(t, g, sampling.Exponential(0.005))
	idx := Build(w, Config{})

	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx.cum, got.cum) || !reflect.DeepEqual(idx.prob, got.prob) ||
		!reflect.DeepEqual(idx.alias, got.alias) || !reflect.DeepEqual(idx.lvl, got.lvl) ||
		!reflect.DeepEqual(idx.weights.Flat, got.weights.Flat) {
		t.Fatal("round trip changed index contents")
	}
	if got.HasAuxIndex() != idx.HasAuxIndex() {
		t.Fatal("aux index presence lost")
	}

	// Loaded index must sample identically to the original.
	r1, r2 := xrand.New(3), xrand.New(3)
	for i := 0; i < 5000; i++ {
		u := 0
		for g.Degree(0) == 0 {
			u++
		}
		k := 1 + int(r1.Uint64N(uint64(g.Degree(0))))
		_ = r2.Uint64N(uint64(g.Degree(0))) // keep streams aligned
		e1, _, ok1 := idx.Sample(0, k, r1)
		e2, _, ok2 := got.Sample(0, k, r2)
		if e1 != e2 || ok1 != ok2 {
			t.Fatalf("sample divergence at draw %d: (%d,%v) vs (%d,%v)", i, e1, ok1, e2, ok2)
		}
		_ = u
	}
}

func TestSerializeNoAux(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 500, 23)
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	idx := Build(w, Config{DisableAuxIndex: true})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasAuxIndex() {
		t.Fatal("aux index appeared from nowhere")
	}
}

func TestReadIndexRejectsWrongGraph(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 500, 25)
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	idx := Build(w, Config{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := testutil.RandomGraph(t, 120, 3000, 500, 25)
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("wrong-graph err = %v", err)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	g := testutil.RandomGraph(t, 10, 50, 50, 27)
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index")), g); !errors.Is(err, ErrIndexFormat) {
		t.Fatalf("garbage err = %v", err)
	}
	// Truncated stream.
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	idx := Build(w, Config{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadIndex(bytes.NewReader(trunc), g); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestWrapGraphWeightsPanicsOnMismatch(t *testing.T) {
	g := testutil.RandomGraph(t, 10, 50, 50, 29)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sampling.WrapGraphWeights(g, make([]float64, 3))
}
