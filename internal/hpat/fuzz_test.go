package hpat

import (
	"testing"

	"github.com/tea-graph/tea/internal/xrand"
)

// FuzzDecompose verifies the trunk decomposition tiles any prefix length
// exactly with aligned power-of-two trunks.
func FuzzDecompose(f *testing.F) {
	f.Add(0)
	f.Add(1)
	f.Add(7)
	f.Add(1 << 20)
	f.Add((1 << 20) - 1)
	f.Fuzz(func(t *testing.T, m int) {
		if m < 0 || m > 1<<30 {
			return
		}
		dec := Decompose(m, nil)
		pos := 0
		for _, d := range dec {
			if int(d.Pos) != pos {
				t.Fatalf("Decompose(%d): trunk at %d, expected %d", m, d.Pos, pos)
			}
			if pos%(d.Size()) != 0 {
				t.Fatalf("Decompose(%d): misaligned trunk %+v", m, d)
			}
			pos += d.Size()
		}
		if pos != m {
			t.Fatalf("Decompose(%d) tiles %d", m, pos)
		}
	})
}

// FuzzTableSample builds a Table from arbitrary weights and hammers every
// prefix: no panics, indices in range, ok iff the prefix has positive mass.
func FuzzTableSample(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		w := make([]float64, len(raw))
		for i, b := range raw {
			w[i] = float64(b)
		}
		tab := NewTable(w)
		r := xrand.New(1)
		for k := 0; k <= len(w); k++ {
			mass := 0.0
			for _, x := range w[:k] {
				mass += x
			}
			idx, _, ok := tab.Sample(k, nil, r)
			if ok != (mass > 0) {
				t.Fatalf("k=%d mass=%v ok=%v", k, mass, ok)
			}
			if ok {
				if idx < 0 || idx >= k {
					t.Fatalf("k=%d sampled %d", k, idx)
				}
				if w[idx] == 0 {
					t.Fatalf("k=%d sampled zero-weight index %d", k, idx)
				}
			}
		}
	})
}
