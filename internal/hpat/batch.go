package hpat

import (
	"context"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// SampleBatch implements the engine's BatchSampler contract: one draw per
// frontier entry, element-wise identical to Sample (same edge, same
// evaluated count, same consumption of the walker's stream). The index is
// immutable after build, so disjoint chunks may be sampled concurrently. The
// hierarchy lives in RAM — the batched win is amortizing the per-step
// dynamic dispatch, not I/O coalescing — so the context is ignored.
func (idx *Index) SampleBatch(_ context.Context, us []temporal.Vertex, ks []int32, rs []*xrand.Rand, edges []int32, evals []int64, oks []bool) {
	for i, u := range us {
		e, ev, ok := idx.Sample(u, int(ks[i]), rs[i])
		edges[i], evals[i], oks[i] = int32(e), ev, ok
	}
}
