package hpat

import (
	"math/bits"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/xrand"
)

// maxLevels bounds the trunk hierarchy depth; degrees are < 2^40.
const maxLevels = 40

// topLevel returns K = ⌊log2 n⌋ for n ≥ 1, the deepest trunk level of a
// vertex with n edges (Eq. 5).
func topLevel(n int) int {
	if n <= 0 {
		return -1
	}
	return bits.Len(uint(n)) - 1
}

// slotCount returns the total alias-table slots of levels 1..K for a vertex
// with n edges: Σ_k ⌊n/2^k⌋·2^k, the O(D log D) space of §3.3. Level 0
// trunks are single edges sampled directly and need no table.
func slotCount(n int) int64 {
	total := int64(0)
	for k := 1; k <= topLevel(n); k++ {
		total += int64(n>>k) << k
	}
	return total
}

// levelBases fills base[k] (for k = 1..K) with the slot offset of level k's
// trunk tables within the vertex's slot block, and returns K. base must have
// at least topLevel(n)+1 elements; base[0] is unused and set to 0.
func levelBases(n int, base []int32) int {
	kTop := topLevel(n)
	off := int32(0)
	if len(base) > 0 {
		base[0] = 0
	}
	for k := 1; k <= kTop; k++ {
		base[k] = off
		off += int32(n>>k) << k
	}
	return kTop
}

// buildBlock constructs one vertex's HPAT storage in place:
//
//   - cum: per-edge prefix sums, len n+1 (the ITS array C of Figure 6),
//   - prob/alias: packed alias tables of levels 1..K, len slotCount(n),
//   - base: level offsets as produced by levelBases.
//
// scratch is FillAlias working space of at least 2^(K+1) int32s; pass nil to
// allocate. The function touches only the provided slices, so disjoint
// vertices build lock-free in parallel (§4.2).
func buildBlock(w []float64, cum []float64, prob []float64, alias []int32, base []int32, scratch []int32) {
	n := len(w)
	sum := 0.0
	cum[0] = 0
	for i, x := range w {
		sum += x
		cum[i+1] = sum
	}
	kTop := topLevel(n)
	if kTop < 1 {
		return
	}
	if scratch == nil {
		scratch = make([]int32, 2<<uint(kTop))
	}
	for k := 1; k <= kTop; k++ {
		size := 1 << k
		trunks := n >> k
		lvl := int(base[k])
		for i := 0; i < trunks; i++ {
			lo := i * size
			sampling.FillAlias(w[lo:lo+size], prob[lvl+lo:lvl+lo+size], alias[lvl+lo:lvl+lo+size], scratch[:2*size])
		}
	}
}

// sampleBlock draws an edge index from the k-element prefix of a vertex block
// built by buildBlock. dec must be the decomposition of k (from the auxiliary
// index or Decompose). evaluated counts array slots examined: the Figure 2
// "edges per step" metric.
func sampleBlock(cum, w, prob []float64, alias []int32, base []int32, dec []DecompEntry, r *xrand.Rand) (edge int, evaluated int64, ok bool) {
	k := 0
	for _, d := range dec {
		k += d.Size()
	}
	total := cum[k]
	if !(total > 0) {
		return 0, 0, false
	}
	x := r.Range(total)
	// ITS over the ≤ log2(k) trunk boundaries: O(log log D).
	lo, hi := 0, len(dec)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		end := int(dec[mid].Pos) + dec[mid].Size()
		evaluated++
		if cum[end] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	d := dec[lo]
	if d.Level == 0 {
		evaluated++
		return int(d.Pos), evaluated, true
	}
	s := int(base[d.Level]) + int(d.Pos)
	size := d.Size()
	slot, sok := sampling.SampleAliasSlots(prob[s:s+size], alias[s:s+size], r)
	evaluated += 2
	if !sok {
		// A trunk is selected only when it carries positive mass, so its
		// alias table cannot be degenerate; guard for float round-off by
		// falling back to a local scan.
		start := int(d.Pos)
		i, lok := sampling.LinearITS(w[start:start+size], cum[start+size]-cum[start], r)
		evaluated += int64(size)
		if !lok {
			return 0, evaluated, false
		}
		return start + i, evaluated, true
	}
	return int(d.Pos) + slot, evaluated, true
}
