package hpat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/tea-graph/tea/internal/chksum"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
)

// indexMagic identifies the serialized HPAT format ("TEAI" + version 1).
var indexMagic = [8]byte{'T', 'E', 'A', 'I', 0, 0, 0, 1}

// ErrIndexFormat is returned for malformed serialized indices.
var ErrIndexFormat = errors.New("hpat: malformed serialized index")

// ErrIndexCorrupt is returned when a serialized index parses but fails its
// CRC-32C integrity footer. Indices written before footers existed carry no
// trailer and are still accepted.
var ErrIndexCorrupt = errors.New("hpat: corrupt serialized index")

// ErrIndexMismatch is returned when a serialized index does not match the
// graph it is being attached to.
var ErrIndexMismatch = errors.New("hpat: serialized index does not match graph")

// WriteTo serializes the index (including the per-edge weights it samples
// from) so preprocessing can be done once and reused across runs. The
// auxiliary index is not stored — it depends only on the maximum degree and
// is rebuilt on load faster than it can be read from disk.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	hw := chksum.NewWriter(bw)
	cw := &countingWriter{w: hw}
	write := func(p []byte) error {
		_, err := cw.Write(p)
		return err
	}
	if err := write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(idx.g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(idx.g.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(idx.prob)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(idx.lvl)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(idx.cutoff))
	if err := write(hdr[:]); err != nil {
		return cw.n, err
	}
	hasAux := byte(0)
	if idx.aux != nil {
		hasAux = 1
	}
	if err := write([]byte{hasAux}); err != nil {
		return cw.n, err
	}
	for _, arr := range [][]float64{idx.weights.Flat, idx.cum, idx.prob} {
		if err := writeF64s(cw, arr); err != nil {
			return cw.n, err
		}
	}
	if err := writeI32s(cw, idx.alias); err != nil {
		return cw.n, err
	}
	if err := writeI32s(cw, idx.lvl); err != nil {
		return cw.n, err
	}
	footer := hw.Footer()
	if err := write(footer[:]); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadIndex deserializes an index produced by WriteTo and attaches it to g,
// which must be the same graph (vertex and edge counts are verified; the
// layout is then recomputed and must match the stored array sizes).
func ReadIndex(r io.Reader, g *temporal.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hr := chksum.NewReader(br)
	var magic [8]byte
	if _, err := io.ReadFull(hr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrIndexFormat, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %x", ErrIndexFormat, magic)
	}
	var hdr [40]byte
	if _, err := io.ReadFull(hr, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrIndexFormat, err)
	}
	numV := int(binary.LittleEndian.Uint64(hdr[0:]))
	numE := int(binary.LittleEndian.Uint64(hdr[8:]))
	slots := int(binary.LittleEndian.Uint64(hdr[16:]))
	lvls := int(binary.LittleEndian.Uint64(hdr[24:]))
	cutoff := int(binary.LittleEndian.Uint64(hdr[32:]))
	if numV != g.NumVertices() || numE != g.NumEdges() {
		return nil, fmt.Errorf("%w: stored V=%d E=%d, graph V=%d E=%d",
			ErrIndexMismatch, numV, numE, g.NumVertices(), g.NumEdges())
	}
	var auxByte [1]byte
	if _, err := io.ReadFull(hr, auxByte[:]); err != nil {
		return nil, fmt.Errorf("%w: aux flag: %v", ErrIndexFormat, err)
	}

	// Recompute the layout from the graph; it must agree with the stored
	// array lengths or the cutoff/graph changed.
	idx := &Index{
		g:       g,
		cumOff:  make([]int64, numV+1),
		slotOff: make([]int64, numV+1),
		lvlOff:  make([]int64, numV+1),
		cutoff:  cutoff,
	}
	for u := 0; u < numV; u++ {
		deg := g.Degree(temporal.Vertex(u))
		idx.cumOff[u+1] = idx.cumOff[u] + int64(deg) + 1
		idx.lvlOff[u+1] = idx.lvlOff[u] + int64(topLevel(deg)) + 1
		if deg > cutoff {
			idx.slotOff[u+1] = idx.slotOff[u] + slotCount(deg)
		} else {
			idx.slotOff[u+1] = idx.slotOff[u]
		}
	}
	if int(idx.slotOff[numV]) != slots || int(idx.lvlOff[numV]) != lvls {
		return nil, fmt.Errorf("%w: layout mismatch (slots %d vs %d, levels %d vs %d)",
			ErrIndexMismatch, idx.slotOff[numV], slots, idx.lvlOff[numV], lvls)
	}

	flat := make([]float64, numE)
	if err := readF64s(hr, flat); err != nil {
		return nil, err
	}
	idx.weights = sampling.WrapGraphWeights(g, flat)
	idx.cum = make([]float64, idx.cumOff[numV])
	if err := readF64s(hr, idx.cum); err != nil {
		return nil, err
	}
	idx.prob = make([]float64, slots)
	if err := readF64s(hr, idx.prob); err != nil {
		return nil, err
	}
	idx.alias = make([]int32, slots)
	if err := readI32s(hr, idx.alias); err != nil {
		return nil, err
	}
	idx.lvl = make([]int32, lvls)
	if err := readI32s(hr, idx.lvl); err != nil {
		return nil, err
	}
	// The footer is read from br directly so its bytes stay out of the sum.
	if _, err := hr.Verify(br); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIndexCorrupt, err)
	}
	if auxByte[0] != 0 {
		idx.aux = BuildAuxIndexParallel(g.MaxDegree(), 0)
	}
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

// Write implements io.Writer, tracking the byte total.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

const chunkElems = 8192

func writeF64s(w io.Writer, arr []float64) error {
	var lenHdr [8]byte
	binary.LittleEndian.PutUint64(lenHdr[:], uint64(len(arr)))
	if _, err := w.Write(lenHdr[:]); err != nil {
		return err
	}
	buf := make([]byte, chunkElems*8)
	for off := 0; off < len(arr); off += chunkElems {
		end := off + chunkElems
		if end > len(arr) {
			end = len(arr)
		}
		n := 0
		for _, v := range arr[off:end] {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			n += 8
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

func readF64s(r io.Reader, arr []float64) error {
	var lenHdr [8]byte
	if _, err := io.ReadFull(r, lenHdr[:]); err != nil {
		return fmt.Errorf("%w: array header: %v", ErrIndexFormat, err)
	}
	if n := binary.LittleEndian.Uint64(lenHdr[:]); n != uint64(len(arr)) {
		return fmt.Errorf("%w: array length %d, want %d", ErrIndexFormat, n, len(arr))
	}
	buf := make([]byte, chunkElems*8)
	for off := 0; off < len(arr); off += chunkElems {
		end := off + chunkElems
		if end > len(arr) {
			end = len(arr)
		}
		chunk := buf[:(end-off)*8]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return fmt.Errorf("%w: array body: %v", ErrIndexFormat, err)
		}
		for i := off; i < end; i++ {
			arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[(i-off)*8:]))
		}
	}
	return nil
}

func writeI32s(w io.Writer, arr []int32) error {
	var lenHdr [8]byte
	binary.LittleEndian.PutUint64(lenHdr[:], uint64(len(arr)))
	if _, err := w.Write(lenHdr[:]); err != nil {
		return err
	}
	buf := make([]byte, chunkElems*4)
	for off := 0; off < len(arr); off += chunkElems {
		end := off + chunkElems
		if end > len(arr) {
			end = len(arr)
		}
		n := 0
		for _, v := range arr[off:end] {
			binary.LittleEndian.PutUint32(buf[n:], uint32(v))
			n += 4
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

func readI32s(r io.Reader, arr []int32) error {
	var lenHdr [8]byte
	if _, err := io.ReadFull(r, lenHdr[:]); err != nil {
		return fmt.Errorf("%w: array header: %v", ErrIndexFormat, err)
	}
	if n := binary.LittleEndian.Uint64(lenHdr[:]); n != uint64(len(arr)) {
		return fmt.Errorf("%w: array length %d, want %d", ErrIndexFormat, n, len(arr))
	}
	buf := make([]byte, chunkElems*4)
	for off := 0; off < len(arr); off += chunkElems {
		end := off + chunkElems
		if end > len(arr) {
			end = len(arr)
		}
		chunk := buf[:(end-off)*4]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return fmt.Errorf("%w: array body: %v", ErrIndexFormat, err)
		}
		for i := off; i < end; i++ {
			arr[i] = int32(binary.LittleEndian.Uint32(chunk[(i-off)*4:]))
		}
	}
	return nil
}
