package apps

import (
	"math"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

// Figure 1 ground truth: from vertex 9 (edge into 7 at t=4) the reachable
// set is {7, 4, 5, 6} — the paper's "only three paths" example plus the
// interchange itself.
func TestEarliestArrivalCommute(t *testing.T) {
	g := temporal.CommuteGraph()
	arr := EarliestArrival(g, 9, temporal.MinTime)
	want := map[temporal.Vertex]temporal.Time{
		9: temporal.MinTime, 7: 4, 4: 5, 5: 6, 6: 7,
	}
	for v := temporal.Vertex(0); v < 10; v++ {
		if wantT, ok := want[v]; ok {
			if arr[v] != wantT {
				t.Errorf("arrival[%d] = %d, want %d", v, arr[v], wantT)
			}
		} else if arr[v] != Unreachable {
			t.Errorf("arrival[%d] = %d, want unreachable", v, arr[v])
		}
	}
}

func TestEarliestArrivalStrictness(t *testing.T) {
	// 0 -(t=5)-> 1 -(t=5)-> 2: equal times cannot chain.
	g := temporal.MustFromEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 5}, {Src: 1, Dst: 2, Time: 5}})
	arr := EarliestArrival(g, 0, temporal.MinTime)
	if arr[1] != 5 {
		t.Fatalf("arrival[1] = %d", arr[1])
	}
	if arr[2] != Unreachable {
		t.Fatalf("arrival[2] = %d, equal-time chaining allowed", arr[2])
	}
}

func TestEarliestArrivalStartTime(t *testing.T) {
	g := temporal.CommuteGraph()
	// Starting at vertex 8 after time 0: the 8->7 edge (t=0) is unusable.
	arr := EarliestArrival(g, 8, 0)
	if arr[7] != Unreachable {
		t.Fatalf("arrival[7] = %d, want unreachable after start 0", arr[7])
	}
	arr = EarliestArrival(g, 8, -1)
	if arr[7] != 0 {
		t.Fatalf("arrival[7] = %d, want 0 with start -1", arr[7])
	}
}

func TestReachableSet(t *testing.T) {
	g := temporal.CommuteGraph()
	got := ReachableSet(g, 9, temporal.MinTime)
	want := []temporal.Vertex{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("reachable = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reachable = %v, want %v", got, want)
		}
	}
}

func TestLatestDeparture(t *testing.T) {
	g := temporal.CommuteGraph()
	// To reach vertex 6 (only via 7->6 at t=7) one must be at 7 no later
	// than "able to take t=7": departure[7] = 7. From 9 the 9->7 edge
	// departs at 4 < 7 → departure[9] = 4. From 8: edge at t=0 → 0.
	dep := LatestDeparture(g, 6, temporal.MaxTime)
	if dep[7] != 7 {
		t.Fatalf("departure[7] = %d, want 7", dep[7])
	}
	if dep[9] != 4 {
		t.Fatalf("departure[9] = %d, want 4", dep[9])
	}
	if dep[8] != 0 {
		t.Fatalf("departure[8] = %d, want 0", dep[8])
	}
	if dep[1] != temporal.MinTime {
		t.Fatalf("departure[1] = %d, want MinTime", dep[1])
	}
}

// Integration invariant: every vertex visited by engine walks must be in the
// exact temporal reachable set of its source.
func TestWalksStayWithinReachability(t *testing.T) {
	g := testutil.RandomGraph(t, 120, 2500, 400, 13)
	eng, err := core.NewEngine(g, core.ExponentialWalk(0.01), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(core.WalkConfig{Length: 25, Seed: 5, KeepPaths: true, WalksPerVertex: 2})
	if err != nil {
		t.Fatal(err)
	}
	arrCache := map[temporal.Vertex][]temporal.Time{}
	for _, p := range res.Paths {
		src := p.Vertices[0]
		arr, ok := arrCache[src]
		if !ok {
			arr = EarliestArrival(g, src, temporal.MinTime)
			arrCache[src] = arr
		}
		for i, v := range p.Vertices[1:] {
			if arr[v] == Unreachable {
				t.Fatalf("walk from %d visited unreachable vertex %d", src, v)
			}
			if temporal.Time(arr[v]) > p.Times[i] {
				t.Fatalf("walk from %d reached %d at %d before earliest arrival %d",
					src, v, p.Times[i], arr[v])
			}
		}
	}
}

func TestTemporalPPRCommute(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := TemporalPPR(eng, 9, PPRConfig{Walks: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	bySrc := map[temporal.Vertex]float64{}
	for _, s := range scores {
		total += s.Score
		bySrc[s.Vertex] = s.Score
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("scores sum to %v", total)
	}
	// The source holds the restart mass and must rank first; only the
	// temporally reachable set {7,4,5,6} may appear beyond it.
	if scores[0].Vertex != 9 {
		t.Fatalf("top vertex %d, want source 9", scores[0].Vertex)
	}
	for v := range bySrc {
		switch v {
		case 9, 7, 4, 5, 6:
		default:
			t.Fatalf("PPR mass on temporally unreachable vertex %d", v)
		}
	}
	if bySrc[7] <= bySrc[4] {
		t.Fatalf("interchange 7 (%v) should outrank leaf 4 (%v)", bySrc[7], bySrc[4])
	}
}

func TestTemporalPPRErrors(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TemporalPPR(eng, 99, PPRConfig{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestTemporalPPRDeterministic(t *testing.T) {
	g := testutil.RandomGraph(t, 80, 1500, 300, 17)
	eng, err := core.NewEngine(g, core.LinearTime(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := TemporalPPR(eng, 3, PPRConfig{Walks: 3000, Seed: 9, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TemporalPPR(eng, 3, PPRConfig{Walks: 3000, Seed: 9, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across thread counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTemporalPPRAlphaEffect(t *testing.T) {
	// High restart probability concentrates mass on the source.
	g := testutil.RandomGraph(t, 80, 3000, 300, 19)
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := TemporalPPR(eng, 0, PPRConfig{Alpha: 0.9, Walks: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	low, err := TemporalPPR(eng, 0, PPRConfig{Alpha: 0.05, Walks: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(high[0].Vertex == 0 && high[0].Score > low[0].Score) {
		t.Fatalf("alpha effect missing: high %+v, low %+v", high[0], low[0])
	}
}
