// Package apps builds classic graph analytics on top of the walk engine, the
// way §5.2 of the paper suggests ("Personalized PageRank ... can be
// conveniently achieved by deploying them atop TEA"): temporal personalized
// PageRank via walks with restart, and exact earliest-arrival temporal
// reachability (Wu et al., "Path problems in temporal graphs") both as an
// analysis in its own right and as ground truth for validating that sampled
// walks respect temporal connectivity.
package apps

import (
	"context"
	"sort"

	"github.com/tea-graph/tea/internal/temporal"
)

// ctxCheckStride is how many edges the exact scans process between context
// checks: frequent enough to abort large scans promptly, rare enough to stay
// off the hot path.
const ctxCheckStride = 1 << 16

// Unreachable marks a vertex with no time-respecting path from the source.
const Unreachable = temporal.MaxTime

// EarliestArrival computes, for every vertex, the earliest time a
// time-respecting path starting at src after startTime can arrive there
// (strictly increasing edge times, the walk semantics of §2.1). The source
// itself is assigned startTime. Unreachable vertices get Unreachable.
//
// The algorithm is the classic one-pass edge-stream scan: edges sorted by
// ascending time relax arrival[dst] = min(arrival[dst], t) whenever
// t > arrival[src]. O(|E| log |E|) for the sort, O(|E|) for the scan.
func EarliestArrival(g *temporal.Graph, src temporal.Vertex, startTime temporal.Time) []temporal.Time {
	arrival, _ := EarliestArrivalContext(context.Background(), g, src, startTime)
	return arrival
}

// EarliestArrivalContext is EarliestArrival under a context: the edge-stream
// scan checks ctx periodically and aborts with ctx.Err() on cancellation, so
// HTTP handlers over huge graphs can stop the exact computation when the
// client goes away.
func EarliestArrivalContext(ctx context.Context, g *temporal.Graph, src temporal.Vertex, startTime temporal.Time) ([]temporal.Time, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	arrival := make([]temporal.Time, g.NumVertices())
	for i := range arrival {
		arrival[i] = Unreachable
	}
	arrival[src] = startTime

	edges := g.Edges(nil)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Time != edges[j].Time {
			return edges[i].Time < edges[j].Time
		}
		// Same-timestamp edges cannot chain (strict inequality), so any
		// deterministic tie-break is correct.
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	for i, e := range edges {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if arrival[e.Src] != Unreachable && e.Time > arrival[e.Src] && e.Time < arrival[e.Dst] {
			arrival[e.Dst] = e.Time
		}
	}
	return arrival, nil
}

// ReachableSet returns the vertices with a time-respecting path from src
// after startTime, excluding the source itself, in ascending id order.
func ReachableSet(g *temporal.Graph, src temporal.Vertex, startTime temporal.Time) []temporal.Vertex {
	out, _ := ReachableSetContext(context.Background(), g, src, startTime)
	return out
}

// ReachableSetContext is ReachableSet under a context; see
// EarliestArrivalContext for the cancellation contract.
func ReachableSetContext(ctx context.Context, g *temporal.Graph, src temporal.Vertex, startTime temporal.Time) ([]temporal.Vertex, error) {
	arrival, err := EarliestArrivalContext(ctx, g, src, startTime)
	if err != nil {
		return nil, err
	}
	var out []temporal.Vertex
	for v, t := range arrival {
		if temporal.Vertex(v) != src && t != Unreachable {
			out = append(out, temporal.Vertex(v))
		}
	}
	return out, nil
}

// LatestDeparture computes, for every vertex, the latest edge time on which
// one can leave it and still reach dst strictly before deadline over a
// time-respecting path: the dual of EarliestArrival, obtained by scanning
// the stream in descending time order (pass deadline+1 for an inclusive
// bound). dst itself is assigned deadline; vertices that cannot reach dst
// get temporal.MinTime.
func LatestDeparture(g *temporal.Graph, dst temporal.Vertex, deadline temporal.Time) []temporal.Time {
	departure := make([]temporal.Time, g.NumVertices())
	for i := range departure {
		departure[i] = temporal.MinTime
	}
	departure[dst] = deadline

	edges := g.Edges(nil)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Time != edges[j].Time {
			return edges[i].Time > edges[j].Time
		}
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	for _, e := range edges {
		// Taking edge (u,v,t) requires a continuation leaving v strictly
		// after t; it lets us depart u as late as t.
		if e.Time < departure[e.Dst] && e.Time > departure[e.Src] {
			departure[e.Src] = e.Time
		}
	}
	return departure
}
