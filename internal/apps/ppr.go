package apps

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// PPRConfig parameterizes temporal personalized PageRank estimation.
type PPRConfig struct {
	// Alpha is the per-step restart probability; default 0.15.
	Alpha float64
	// Walks is the Monte Carlo sample count; default 10,000.
	Walks int
	// MaxLength caps a single walk; default 80. Temporal walks also end
	// naturally at temporal dead ends.
	MaxLength int
	// StartTime is the walker's initial arrival time; zero value means
	// temporal.MinTime (every out-edge eligible) unless HasStartTime is set.
	StartTime temporal.Time
	// HasStartTime marks StartTime as explicitly set, so a start time of
	// exactly zero is expressible on graphs with zero/negative timestamps.
	HasStartTime bool
	// Seed drives the Monte Carlo sampling.
	Seed uint64
	// Threads bounds parallel walkers; <1 selects the engine default.
	Threads int
}

func (c *PPRConfig) normalize() {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.15
	}
	if c.Walks <= 0 {
		c.Walks = 10000
	}
	if c.MaxLength <= 0 {
		c.MaxLength = 80
	}
	if !c.HasStartTime && c.StartTime == 0 {
		c.StartTime = temporal.MinTime
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
}

// PPRScore is one vertex's estimated temporal personalized PageRank mass.
type PPRScore struct {
	Vertex temporal.Vertex
	Score  float64
}

// TemporalPPR estimates personalized PageRank from source on the engine's
// temporal graph by random walks with restart: each walk steps with the
// engine's (temporally biased) transition distribution and terminates with
// probability Alpha per step; the visit distribution converges to the
// temporal PPR vector. This is the §5.2 "Personalized PageRank atop TEA"
// deployment: the engine's HPAT sampler does all the heavy lifting.
//
// Scores over all visited vertices sum to 1 and are returned sorted by
// descending score (ties by vertex id).
func TemporalPPR(eng *core.Engine, source temporal.Vertex, cfg PPRConfig) ([]PPRScore, error) {
	return TemporalPPRContext(context.Background(), eng, source, cfg)
}

// TemporalPPRContext is TemporalPPR under a context: workers check ctx
// between walks, so cancellation or a deadline aborts the estimation and
// returns ctx.Err(). A panic in user-supplied engine callbacks is recovered
// and reported as an error naming the walk instead of crashing the process.
func TemporalPPRContext(ctx context.Context, eng *core.Engine, source temporal.Vertex, cfg PPRConfig) ([]PPRScore, error) {
	cfg.normalize()
	g := eng.Graph()
	if int(source) >= g.NumVertices() {
		return nil, fmt.Errorf("apps: ppr source %d outside graph with %d vertices", source, g.NumVertices())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sampler := eng.Sampler()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failMu sync.Mutex
		runErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if runErr == nil {
			runErr = err
		}
		failMu.Unlock()
		cancel()
	}

	counts := make([]int64, g.NumVertices())
	var wg sync.WaitGroup
	perWorker := (cfg.Walks + cfg.Threads - 1) / cfg.Threads
	workerCounts := make([][]int64, cfg.Threads)
	root := xrand.New(cfg.Seed)
	for w := 0; w < cfg.Threads; w++ {
		lo := w * perWorker
		if lo >= cfg.Walks {
			break
		}
		hi := lo + perWorker
		if hi > cfg.Walks {
			hi = cfg.Walks
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			local := make([]int64, g.NumVertices())
			workerCounts[worker] = local
			for i := lo; i < hi; i++ {
				if runCtx.Err() != nil {
					return
				}
				if err := pprWalkSafe(g, sampler, source, cfg, i, root, local); err != nil {
					fail(err)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	failMu.Lock()
	err := runErr
	failMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := int64(0)
	for _, local := range workerCounts {
		if local == nil {
			continue
		}
		for v, c := range local {
			counts[v] += c
			total += c
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("apps: ppr sampled no visits")
	}
	var out []PPRScore
	for v, c := range counts {
		if c > 0 {
			out = append(out, PPRScore{Vertex: temporal.Vertex(v), Score: float64(c) / float64(total)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out, nil
}

// pprWalkSafe runs one walk-with-restart, converting a panic in user code
// (custom samplers or weight callbacks) into an error naming the walk.
func pprWalkSafe(g *temporal.Graph, sampler core.Sampler, source temporal.Vertex, cfg PPRConfig, walk int, root *xrand.Rand, local []int64) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("apps: ppr walk %d panicked: %v", walk, rec)
		}
	}()
	r := root.Split(uint64(walk))
	u := source
	t := cfg.StartTime
	local[u]++
	for step := 0; step < cfg.MaxLength; step++ {
		if r.Float64() < cfg.Alpha {
			break // restart: this walk's endpoint is recorded
		}
		k := g.CandidateCount(u, t)
		if k == 0 {
			break
		}
		idx, _, ok := sampler.Sample(u, k, r)
		if !ok {
			break
		}
		dst, at := g.EdgeAt(u, idx)
		u, t = dst, at
		local[u]++
	}
	return nil
}
