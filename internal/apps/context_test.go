package apps

import (
	"context"
	"errors"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

func TestPPRContextCancelled(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 6000, 900, 31)
	eng, err := core.NewEngine(g, core.LinearTime(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TemporalPPRContext(ctx, eng, 0, PPRConfig{Walks: 100000, Threads: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestPPRStartTimeZeroIsExpressible(t *testing.T) {
	// From 0, the only strictly-positive-time edge leads to 3; the t<=0
	// edges must be out of reach when StartTime 0 is explicit.
	edges := []temporal.Edge{
		{Src: 0, Dst: 1, Time: -2},
		{Src: 0, Dst: 2, Time: 0},
		{Src: 0, Dst: 3, Time: 4},
	}
	g := temporal.MustFromEdges(edges)
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := TemporalPPR(eng, 0, PPRConfig{
		Walks: 2000, Alpha: 0.2, Seed: 3, StartTime: 0, HasStartTime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.Vertex == 1 || s.Vertex == 2 {
			t.Fatalf("explicit StartTime=0 walked a t<=0 edge: %+v", scores)
		}
	}
}

func TestReachableSetContextCancelled(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 2000, 500, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReachableSetContext(ctx, g, 0, temporal.MinTime); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
