package temporal

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromEdgesEmpty(t *testing.T) {
	if _, err := FromEdges(nil); err != ErrNoEdges {
		t.Fatalf("FromEdges(nil) err = %v, want ErrNoEdges", err)
	}
	g, err := FromEdges(nil, WithNumVertices(5))
	if err != nil {
		t.Fatalf("FromEdges(nil, 5 vertices): %v", err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got V=%d E=%d, want 5, 0", g.NumVertices(), g.NumEdges())
	}
	for u := Vertex(0); u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatalf("vertex %d degree %d, want 0", u, g.Degree(u))
		}
	}
}

func TestVertexRangeError(t *testing.T) {
	_, err := FromEdges([]Edge{{Src: 0, Dst: 9, Time: 1}}, WithNumVertices(5))
	if err == nil {
		t.Fatal("expected range error")
	}
}

func TestCommuteGraphShape(t *testing.T) {
	g := CommuteGraph()
	if g.NumVertices() != 10 {
		t.Fatalf("V = %d, want 10", g.NumVertices())
	}
	if g.NumEdges() != 10 {
		t.Fatalf("E = %d, want 10", g.NumEdges())
	}
	if g.Degree(7) != 7 {
		t.Fatalf("deg(7) = %d, want 7", g.Degree(7))
	}
	if g.MaxDegree() != 7 {
		t.Fatalf("MaxDegree = %d, want 7", g.MaxDegree())
	}
	wantDst := []Vertex{6, 5, 4, 3, 2, 1, 0}
	wantTs := []Time{7, 6, 5, 4, 3, 2, 1}
	if !reflect.DeepEqual(g.OutDst(7), wantDst) {
		t.Fatalf("OutDst(7) = %v, want %v", g.OutDst(7), wantDst)
	}
	if !reflect.DeepEqual(g.OutTimes(7), wantTs) {
		t.Fatalf("OutTimes(7) = %v, want %v", g.OutTimes(7), wantTs)
	}
}

// The paper's running example: arriving at 7 from 9 (t=4) leaves candidates
// {6,5,4}; from 0 (t=3) leaves {6,5,4,3}; from 8 (t=0) leaves all 7.
func TestCommuteCandidates(t *testing.T) {
	g := CommuteGraph()
	cases := []struct {
		after Time
		want  int
	}{
		{4, 3}, {3, 4}, {0, 7}, {7, 0}, {6, 1}, {-100, 7}, {100, 0},
	}
	for _, c := range cases {
		if got := g.CandidateCount(7, c.after); got != c.want {
			t.Errorf("CandidateCount(7, %d) = %d, want %d", c.after, got, c.want)
		}
	}
}

func TestCandidateStrictInequality(t *testing.T) {
	// An out-edge at exactly the arrival time is NOT a candidate (t_i > t).
	g := MustFromEdges([]Edge{
		{0, 1, 5}, {0, 2, 5}, {0, 3, 6},
	})
	if got := g.CandidateCount(0, 5); got != 1 {
		t.Fatalf("CandidateCount(0,5) = %d, want 1 (strict >)", got)
	}
}

func TestTimesDescendingInvariant(t *testing.T) {
	g := randomGraph(t, 500, 8000, 12345)
	for u := 0; u < g.NumVertices(); u++ {
		times := g.OutTimes(Vertex(u))
		for i := 1; i < len(times); i++ {
			if times[i] > times[i-1] {
				t.Fatalf("vertex %d times not descending at %d: %v > %v", u, i, times[i], times[i-1])
			}
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	edges := []Edge{{0, 5, 7}, {0, 2, 7}, {0, 9, 7}, {0, 1, 8}}
	g := MustFromEdges(edges)
	want := []Vertex{1, 2, 5, 9} // time 8 first, then time-7 ties by dst asc
	if !reflect.DeepEqual(g.OutDst(0), want) {
		t.Fatalf("OutDst(0) = %v, want %v", g.OutDst(0), want)
	}
	// Build again from a shuffled stream; result must be identical.
	shuffled := []Edge{{0, 9, 7}, {0, 1, 8}, {0, 2, 7}, {0, 5, 7}}
	g2 := MustFromEdges(shuffled)
	if !reflect.DeepEqual(g2.OutDst(0), want) {
		t.Fatalf("shuffled build OutDst(0) = %v, want %v", g2.OutDst(0), want)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := randomGraph(t, 200, 3000, 42)
	edges := g.Edges(nil)
	g2 := MustFromEdges(edges, WithNumVertices(g.NumVertices()))
	if !reflect.DeepEqual(g.offsets, g2.offsets) ||
		!reflect.DeepEqual(g.dst, g2.dst) ||
		!reflect.DeepEqual(g.ts, g2.ts) {
		t.Fatal("Edges -> FromEdges round trip changed the graph")
	}
}

func TestPrecomputeCandidatesMatchesSearch(t *testing.T) {
	g := randomGraph(t, 300, 5000, 7)
	g.PrecomputeCandidates(4)
	if !g.HasCandidatePrecompute() {
		t.Fatal("precompute flag not set")
	}
	for u := 0; u < g.NumVertices(); u++ {
		for i := 0; i < g.Degree(Vertex(u)); i++ {
			dst, at := g.EdgeAt(Vertex(u), i)
			want := g.CandidateCount(dst, at)
			got := g.CandidateCountAfterEdge(Vertex(u), i)
			if got != want {
				t.Fatalf("edge (%d,%d,%d): precomputed %d, search %d", u, dst, at, got, want)
			}
		}
	}
}

func TestPrecomputeSingleThreadMatchesParallel(t *testing.T) {
	g1 := randomGraph(t, 300, 5000, 99)
	g2 := randomGraph(t, 300, 5000, 99)
	g1.PrecomputeCandidates(1)
	g2.PrecomputeCandidates(16)
	if !reflect.DeepEqual(g1.candAtDst, g2.candAtDst) {
		t.Fatal("thread count changed candidate precompute results")
	}
}

func TestEdgesInterval(t *testing.T) {
	g := CommuteGraph()
	sub := g.EdgesInterval(3, 5)
	if sub.NumVertices() != g.NumVertices() {
		t.Fatalf("interval changed vertex space: %d", sub.NumVertices())
	}
	// Edges with 3 <= t <= 5: (0,7,3), (9,7,4), (7,2,3), (7,3,4), (7,4,5).
	if sub.NumEdges() != 5 {
		t.Fatalf("interval edges = %d, want 5", sub.NumEdges())
	}
	if sub.Degree(7) != 3 {
		t.Fatalf("interval deg(7) = %d, want 3", sub.Degree(7))
	}
	lo, hi := sub.TimeRange()
	if lo < 3 || hi > 5 {
		t.Fatalf("interval time range [%d,%d] outside [3,5]", lo, hi)
	}
}

func TestEdgesIntervalEmpty(t *testing.T) {
	g := CommuteGraph()
	sub := g.EdgesInterval(100, 200)
	if sub.NumEdges() != 0 || sub.NumVertices() != 10 {
		t.Fatalf("empty interval: E=%d V=%d", sub.NumEdges(), sub.NumVertices())
	}
}

func TestHasNeighbor(t *testing.T) {
	g := CommuteGraph()
	for _, withIndex := range []bool{false, true} {
		if withIndex {
			g.BuildNeighborIndex()
			if !g.HasNeighborIndex() {
				t.Fatal("neighbor index flag not set")
			}
		}
		if !g.HasNeighbor(7, 4) {
			t.Errorf("withIndex=%v: HasNeighbor(7,4) = false", withIndex)
		}
		if g.HasNeighbor(7, 8) {
			t.Errorf("withIndex=%v: HasNeighbor(7,8) = true", withIndex)
		}
		if g.HasNeighbor(1, 7) {
			t.Errorf("withIndex=%v: HasNeighbor(1,7) = true (1 has no out-edges)", withIndex)
		}
	}
}

func TestNeighborIndexDedup(t *testing.T) {
	// Parallel temporal edges to the same neighbor must appear once.
	g := MustFromEdges([]Edge{{0, 1, 1}, {0, 1, 2}, {0, 1, 3}, {0, 2, 1}})
	g.BuildNeighborIndex()
	ids := g.nbr.ids[g.nbr.offsets[0]:g.nbr.offsets[1]]
	if !reflect.DeepEqual(ids, []Vertex{1, 2}) {
		t.Fatalf("deduped neighbors = %v, want [1 2]", ids)
	}
}

func TestTimeRange(t *testing.T) {
	g := CommuteGraph()
	lo, hi := g.TimeRange()
	if lo != 0 || hi != 7 {
		t.Fatalf("TimeRange = [%d,%d], want [0,7]", lo, hi)
	}
}

func TestMemoryBytesGrowsWithIndices(t *testing.T) {
	g := CommuteGraph()
	base := g.MemoryBytes()
	if base <= 0 {
		t.Fatal("non-positive memory estimate")
	}
	g.PrecomputeCandidates(1)
	withCand := g.MemoryBytes()
	if withCand <= base {
		t.Fatal("candidate table did not increase memory estimate")
	}
	g.BuildNeighborIndex()
	if g.MemoryBytes() <= withCand {
		t.Fatal("neighbor index did not increase memory estimate")
	}
}

// Property: CandidateCount agrees with a naive scan for arbitrary times.
func TestCandidateCountProperty(t *testing.T) {
	g := randomGraph(t, 100, 2000, 2024)
	f := func(uRaw uint32, after int64) bool {
		u := Vertex(uRaw % uint32(g.NumVertices()))
		at := Time(after % 1000)
		naive := 0
		for _, ts := range g.OutTimes(u) {
			if ts > at {
				naive++
			}
		}
		return g.CandidateCount(u, at) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: radix sort by time matches sort.SliceStable results.
func TestRadixTimeDescMatchesStdSort(t *testing.T) {
	f := func(raw []int64) bool {
		edges := make([]Edge, len(raw))
		for i, v := range raw {
			edges[i] = Edge{Src: 0, Dst: Vertex(i), Time: Time(v)}
		}
		scratch := make([]Edge, len(edges))
		got := make([]Edge, len(edges))
		copy(got, edges)
		radixByTimeDesc(got, scratch)
		want := make([]Edge, len(edges))
		copy(want, edges)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Time > want[j].Time })
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixHandlesNegativeTimes(t *testing.T) {
	edges := []Edge{{0, 1, -5}, {0, 2, 10}, {0, 3, -1}, {0, 4, 0}}
	g := MustFromEdges(edges)
	want := []Time{10, 0, -1, -5}
	if !reflect.DeepEqual(g.OutTimes(0), want) {
		t.Fatalf("OutTimes(0) = %v, want %v", g.OutTimes(0), want)
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{Src: 7, Dst: 6, Time: 7}
	if e.String() != "(7, 6, 7)" {
		t.Fatalf("Edge.String() = %q", e.String())
	}
}

// randomGraph builds a reproducible random temporal graph for tests.
func randomGraph(t testing.TB, v, e int, seed int64) *Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{
			Src:  Vertex(r.Intn(v)),
			Dst:  Vertex(r.Intn(v)),
			Time: Time(r.Intn(1000)),
		}
	}
	g, err := FromEdges(edges, WithNumVertices(v))
	if err != nil {
		t.Fatalf("randomGraph: %v", err)
	}
	return g
}

func BenchmarkCandidateCount(b *testing.B) {
	g := randomGraph(b, 1000, 100000, 1)
	for i := 0; i < b.N; i++ {
		_ = g.CandidateCount(Vertex(i%1000), Time(i%1000))
	}
}

func BenchmarkFromEdges(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := make([]Edge, 100000)
	for i := range edges {
		edges[i] = Edge{Src: Vertex(r.Intn(5000)), Dst: Vertex(r.Intn(5000)), Time: Time(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(edges); err != nil {
			b.Fatal(err)
		}
	}
}
