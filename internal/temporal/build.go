package temporal

import (
	"fmt"
	"runtime"
	"sync"
)

// BuildOption configures FromEdges.
type BuildOption func(*buildConfig)

type buildConfig struct {
	numVertices int // 0 = infer max id + 1
	threads     int // 0 = GOMAXPROCS
}

// WithNumVertices forces the vertex id space to [0, n) even if the stream
// references fewer vertices. FromEdges fails if an edge exceeds the range.
func WithNumVertices(n int) BuildOption {
	return func(c *buildConfig) { c.numVertices = n }
}

// WithThreads sets the worker count used by parallel build phases. Values
// below 1 select runtime.GOMAXPROCS(0).
func WithThreads(n int) BuildOption {
	return func(c *buildConfig) { c.threads = n }
}

// FromEdges builds an immutable Graph from a temporal edge stream.
//
// Construction follows §4.2 of the paper: the stream is radix-sorted so that
// each vertex's out-edges end up in decreasing time order (ties broken by
// ascending destination), in O(|E|) time. The stream may arrive in any order.
func FromEdges(edges []Edge, opts ...BuildOption) (*Graph, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	numV := cfg.numVertices
	if numV == 0 {
		if len(edges) == 0 {
			return nil, ErrNoEdges
		}
		maxID := Vertex(0)
		for _, e := range edges {
			if e.Src > maxID {
				maxID = e.Src
			}
			if e.Dst > maxID {
				maxID = e.Dst
			}
		}
		numV = int(maxID) + 1
	} else {
		for _, e := range edges {
			if int(e.Src) >= numV || int(e.Dst) >= numV {
				return nil, fmt.Errorf("%w: edge %v with %d vertices", ErrVertexRange, e, numV)
			}
		}
	}

	// Stable multi-pass sort: dst ascending, then time descending, then a
	// counting sort by src. Stability of each pass makes the per-vertex order
	// exactly (time desc, dst asc).
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	scratch := make([]Edge, len(edges))
	radixByDstAsc(sorted, scratch)
	radixByTimeDesc(sorted, scratch)

	offsets := make([]int64, numV+1)
	for _, e := range sorted {
		offsets[e.Src+1]++
	}
	maxDeg := int64(0)
	for u := 1; u <= numV; u++ {
		if offsets[u] > maxDeg {
			maxDeg = offsets[u]
		}
		offsets[u] += offsets[u-1]
	}
	dst := make([]Vertex, len(sorted))
	ts := make([]Time, len(sorted))
	cursor := make([]int64, numV)
	for _, e := range sorted {
		p := offsets[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		dst[p] = e.Dst
		ts[p] = e.Time
	}

	g := &Graph{offsets: offsets, dst: dst, ts: ts, maxDegree: int(maxDeg)}
	if len(sorted) > 0 {
		lo, hi := sorted[0].Time, sorted[0].Time
		for _, e := range sorted {
			if e.Time < lo {
				lo = e.Time
			}
			if e.Time > hi {
				hi = e.Time
			}
		}
		g.minTime, g.maxTime = lo, hi
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests,
// examples, and embedded toy graphs.
func MustFromEdges(edges []Edge, opts ...BuildOption) *Graph {
	g, err := FromEdges(edges, opts...)
	if err != nil {
		panic(err)
	}
	return g
}

// PrecomputeCandidates computes, for every edge (u, v, t), the candidate set
// size |Γ_t(v)| at the destination, so walks can look it up in O(1). This is
// the parallel "searching candidate edge sets" phase of §4.2: a binary search
// per edge, embarrassingly parallel over edges.
//
// threads < 1 selects runtime.GOMAXPROCS(0). Calling it again recomputes the
// table (it is idempotent for an immutable graph).
func (g *Graph) PrecomputeCandidates(threads int) {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := len(g.dst)
	cand := make([]int32, n)
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for e := lo; e < hi; e++ {
				cand[e] = int32(g.CandidateCount(g.dst[e], g.ts[e]))
			}
		}(start, end)
	}
	wg.Wait()
	g.candAtDst = cand
}
