package temporal

// Radix sorts used by graph construction. The paper (§4.2) sorts out-edges by
// time with a radix sort to get O(|E|) preprocessing; we use stable LSD
// counting passes so that multi-key ordering falls out of pass composition.

// timeKeyDesc maps a signed Time onto a uint64 whose ascending order equals
// descending Time order. Flipping the sign bit converts two's-complement
// order to unsigned order, and complementing reverses it.
func timeKeyDesc(t Time) uint64 {
	return ^(uint64(t) ^ (1 << 63))
}

// radixByTimeDesc stably sorts edges so timestamps are descending.
// scratch must have the same length as edges.
func radixByTimeDesc(edges, scratch []Edge) {
	const passes = 8
	var counts [passes][257]int
	for _, e := range edges {
		k := timeKeyDesc(e.Time)
		for p := 0; p < passes; p++ {
			counts[p][int(byte(k>>(8*p)))+1]++
		}
	}
	src, dst := edges, scratch
	for p := 0; p < passes; p++ {
		c := &counts[p]
		// Skip passes where all keys share the byte value.
		if skipPass(c, len(edges)) {
			continue
		}
		for i := 1; i < 257; i++ {
			c[i] += c[i-1]
		}
		for _, e := range src {
			b := byte(timeKeyDesc(e.Time) >> (8 * p))
			dst[c[b]] = e
			c[b]++
		}
		src, dst = dst, src
	}
	if len(edges) > 0 && &src[0] != &edges[0] {
		copy(edges, src)
	}
}

// radixByDstAsc stably sorts edges by ascending destination vertex.
func radixByDstAsc(edges, scratch []Edge) {
	const passes = 4
	var counts [passes][257]int
	for _, e := range edges {
		k := uint32(e.Dst)
		for p := 0; p < passes; p++ {
			counts[p][int(byte(k>>(8*p)))+1]++
		}
	}
	src, dst := edges, scratch
	for p := 0; p < passes; p++ {
		c := &counts[p]
		if skipPass(c, len(edges)) {
			continue
		}
		for i := 1; i < 257; i++ {
			c[i] += c[i-1]
		}
		for _, e := range src {
			b := byte(uint32(e.Dst) >> (8 * p))
			dst[c[b]] = e
			c[b]++
		}
		src, dst = dst, src
	}
	if len(edges) > 0 && &src[0] != &edges[0] {
		copy(edges, src)
	}
}

// skipPass reports whether one bucket holds every element, i.e. the pass
// would be an identity permutation.
func skipPass(c *[257]int, n int) bool {
	if n == 0 {
		return true
	}
	for i := 1; i < 257; i++ {
		if c[i] == n {
			return true
		}
		if c[i] != 0 {
			return false
		}
	}
	return false
}
