package temporal

import (
	"sort"
)

// Graph is an immutable temporal graph in CSR form. Out-edges of each vertex
// are sorted by decreasing timestamp (ties broken by ascending destination so
// construction is deterministic), which makes every candidate edge set a
// prefix of the adjacency list.
//
// A Graph is safe for concurrent readers. Mutating it after construction is
// not supported; streaming updates live in package stream.
type Graph struct {
	offsets []int64 // len numVertices+1; offsets[u]..offsets[u+1] index dst/ts
	dst     []Vertex
	ts      []Time

	// candAtDst[e] is |Γ_t(dst)| for edge e = (u, dst, t): the number of
	// out-edges of dst strictly later than t. Built by PrecomputeCandidates
	// (the "searching candidate edge sets" preprocessing of §4.2); nil until
	// then, in which case CandidateCount performs a binary search.
	candAtDst []int32

	// nbr is the sorted-unique neighbor index used by temporal node2vec's
	// ISNEIGHBOR test. Built by BuildNeighborIndex; nil until then.
	nbr *neighborIndex

	maxDegree        int
	minTime, maxTime Time
}

type neighborIndex struct {
	offsets []int64
	ids     []Vertex
}

// NumVertices returns the number of vertices (the id space is [0, NumVertices)).
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of temporal edges.
func (g *Graph) NumEdges() int { return len(g.dst) }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u Vertex) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// MaxDegree returns the maximum out-degree D used in the paper's complexity
// analysis.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// TimeRange returns the smallest and largest edge timestamps. For an empty
// graph it returns (0, 0).
func (g *Graph) TimeRange() (lo, hi Time) { return g.minTime, g.maxTime }

// OutDst returns the destination vertices of u's out-edges, newest first.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) OutDst(u Vertex) []Vertex {
	return g.dst[g.offsets[u]:g.offsets[u+1]]
}

// OutTimes returns the timestamps of u's out-edges, newest first. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) OutTimes(u Vertex) []Time {
	return g.ts[g.offsets[u]:g.offsets[u+1]]
}

// EdgeRange returns the half-open interval [lo, hi) of u's edges within the
// graph's flat CSR edge arrays. Index structures use it to align per-edge
// side arrays (weights, alias slots) with the adjacency storage.
func (g *Graph) EdgeRange(u Vertex) (lo, hi int) {
	return int(g.offsets[u]), int(g.offsets[u+1])
}

// EdgeAt returns the i-th newest out-edge of u.
func (g *Graph) EdgeAt(u Vertex, i int) (dst Vertex, at Time) {
	e := g.offsets[u] + int64(i)
	return g.dst[e], g.ts[e]
}

// CandidateCount returns |Γ_after(u)|: the number of out-edges of u with
// timestamp strictly greater than after. Because adjacency lists are sorted
// newest-first, the candidates are exactly the first CandidateCount edges.
//
// The search is O(log deg(u)); walks that traverse an edge use the O(1)
// precomputed form via CandidateCountAfterEdge when available.
func (g *Graph) CandidateCount(u Vertex, after Time) int {
	times := g.OutTimes(u)
	// First index whose timestamp is <= after; everything before it is newer.
	return sort.Search(len(times), func(i int) bool { return times[i] <= after })
}

// HasCandidatePrecompute reports whether PrecomputeCandidates has run.
func (g *Graph) HasCandidatePrecompute() bool { return g.candAtDst != nil }

// CandidateCountAfterEdge returns |Γ_t(dst)| for the i-th newest out-edge
// (u, dst, t). It is O(1) after PrecomputeCandidates and falls back to a
// binary search otherwise.
func (g *Graph) CandidateCountAfterEdge(u Vertex, i int) int {
	e := g.offsets[u] + int64(i)
	if g.candAtDst != nil {
		return int(g.candAtDst[e])
	}
	return g.CandidateCount(g.dst[e], g.ts[e])
}

// HasNeighborIndex reports whether BuildNeighborIndex has run.
func (g *Graph) HasNeighborIndex() bool { return g.nbr != nil }

// HasNeighbor reports whether the graph contains any edge u->v (at any time).
// It requires BuildNeighborIndex; without the index it scans the adjacency
// list. This is the ISNEIGHBOR predicate of Algorithm 1.
func (g *Graph) HasNeighbor(u, v Vertex) bool {
	if g.nbr != nil {
		ids := g.nbr.ids[g.nbr.offsets[u]:g.nbr.offsets[u+1]]
		j := sort.Search(len(ids), func(i int) bool { return ids[i] >= v })
		return j < len(ids) && ids[j] == v
	}
	for _, d := range g.OutDst(u) {
		if d == v {
			return true
		}
	}
	return false
}

// Edges appends every edge of the graph to buf (in per-vertex newest-first
// order) and returns the extended slice. It is intended for tests, export,
// and rebuilds, not for hot paths.
func (g *Graph) Edges(buf []Edge) []Edge {
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for e := lo; e < hi; e++ {
			buf = append(buf, Edge{Src: Vertex(u), Dst: g.dst[e], Time: g.ts[e]})
		}
	}
	return buf
}

// EdgesInterval extracts the temporal subgraph containing the edges with
// start <= t <= end, preserving the vertex id space. It implements the
// Edges_interval primitive of Table 2 / Algorithm 1.
func (g *Graph) EdgesInterval(start, end Time) *Graph {
	var edges []Edge
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for e := lo; e < hi; e++ {
			if t := g.ts[e]; t >= start && t <= end {
				edges = append(edges, Edge{Src: Vertex(u), Dst: g.dst[e], Time: t})
			}
		}
	}
	sub, err := FromEdges(edges, WithNumVertices(g.NumVertices()))
	if err != nil {
		// Only possible failure is an empty interval; represent it as an
		// edgeless graph over the same vertex set.
		empty, _ := FromEdges(nil, WithNumVertices(g.NumVertices()))
		return empty
	}
	return sub
}

// MemoryBytes estimates the resident size of the CSR arrays plus optional
// indices. Used by the Figure 9 / Figure 12b memory experiments.
func (g *Graph) MemoryBytes() int64 {
	n := int64(len(g.offsets))*8 + int64(len(g.dst))*4 + int64(len(g.ts))*8
	if g.candAtDst != nil {
		n += int64(len(g.candAtDst)) * 4
	}
	if g.nbr != nil {
		n += int64(len(g.nbr.offsets))*8 + int64(len(g.nbr.ids))*4
	}
	return n
}

// BuildNeighborIndex materializes the sorted-unique neighbor lists used by
// HasNeighbor. Calling it twice is a no-op. It is not safe to race with
// readers; run it during preprocessing.
func (g *Graph) BuildNeighborIndex() {
	if g.nbr != nil {
		return
	}
	v := g.NumVertices()
	offsets := make([]int64, v+1)
	ids := make([]Vertex, 0, len(g.dst))
	scratch := make([]Vertex, 0, 64)
	for u := 0; u < v; u++ {
		scratch = append(scratch[:0], g.OutDst(Vertex(u))...)
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		prevValid := false
		var prev Vertex
		for _, d := range scratch {
			if prevValid && d == prev {
				continue
			}
			ids = append(ids, d)
			prev, prevValid = d, true
		}
		offsets[u+1] = int64(len(ids))
	}
	g.nbr = &neighborIndex{offsets: offsets, ids: ids}
}
