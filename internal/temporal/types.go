// Package temporal implements the temporal-graph substrate of the TEA engine:
// an immutable CSR representation whose per-vertex out-edge lists are sorted
// by decreasing timestamp, linear-time construction via radix sort (§4.2 of
// the paper), candidate-edge-set search, and temporal subgraph extraction
// (the Edges_interval primitive of Table 2).
//
// The central invariant is that, because out-edges are stored newest-first,
// the candidate edge set Γ_t(u) = {(u,v,t') : t' > t} is always a prefix of
// u's adjacency list. Every sampler in the engine builds on that prefix
// property.
package temporal

import (
	"errors"
	"fmt"
	"math"
)

// Vertex identifies a vertex. Graphs are limited to 2^32 vertices, which
// covers every dataset in the paper with a 2x smaller edge array than int64
// ids would need.
type Vertex uint32

// Time is the timestamp attached to an edge: the instant the edge appeared in
// the stream. Any int64 clock (epoch seconds, milliseconds, logical counters)
// works; the engine only compares timestamps.
type Time int64

// MinTime and MaxTime bound the Time domain. A walk that starts "from a
// vertex" rather than from an edge uses MinTime as its arrival time so that
// every out-edge is a candidate.
const (
	MinTime Time = math.MinInt64
	MaxTime Time = math.MaxInt64
)

// Edge is one element of a temporal edge stream: a directed edge from Src to
// Dst that appeared at Time.
type Edge struct {
	Src, Dst Vertex
	Time     Time
}

// String renders the edge as (src, dst, t), the triplet notation of §2.1.
func (e Edge) String() string {
	return fmt.Sprintf("(%d, %d, %d)", e.Src, e.Dst, e.Time)
}

// ErrNoEdges is returned when a graph is constructed from an empty stream and
// the caller did not force a vertex count.
var ErrNoEdges = errors.New("temporal: edge stream is empty")

// ErrVertexRange is returned when an edge references a vertex outside the
// declared vertex range.
var ErrVertexRange = errors.New("temporal: vertex id out of range")
