package temporal

// CommuteEdges returns the edge stream of the commuting network of Figure 1
// in the paper, the running example used across the manuscript. Edge labels
// are departure times.
//
// Vertex 7's in-edges arrive from 0 (t=3), 8 (t=0), and 9 (t=4); its
// out-edges, newest first, have times 7,6,5,4,3,2,1 toward vertices
// 6,5,4,3,2,1,0 respectively — the trunk layouts of Figures 5 and 6 are built
// from exactly this adjacency list.
func CommuteEdges() []Edge {
	return []Edge{
		{Src: 0, Dst: 7, Time: 3},
		{Src: 8, Dst: 7, Time: 0},
		{Src: 9, Dst: 7, Time: 4},
		{Src: 7, Dst: 0, Time: 1},
		{Src: 7, Dst: 1, Time: 2},
		{Src: 7, Dst: 2, Time: 3},
		{Src: 7, Dst: 3, Time: 4},
		{Src: 7, Dst: 4, Time: 5},
		{Src: 7, Dst: 5, Time: 6},
		{Src: 7, Dst: 6, Time: 7},
	}
}

// CommuteGraph builds the Figure 1 commuting network.
func CommuteGraph() *Graph {
	return MustFromEdges(CommuteEdges(), WithNumVertices(10))
}
