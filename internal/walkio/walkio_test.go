package walkio

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
)

func samplePaths() []core.Path {
	return []core.Path{
		{Vertices: []temporal.Vertex{0, 1, 2}, Times: []temporal.Time{5, 9}},
		{Vertices: []temporal.Vertex{7}, Times: nil},
		{Vertices: []temporal.Vertex{3, 4}, Times: []temporal.Time{-2}},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, samplePaths()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "0 1 2\n7\n3 4\n" {
		t.Fatalf("text = %q", got)
	}
	walks, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]temporal.Vertex{{0, 1, 2}, {7}, {3, 4}}
	if !reflect.DeepEqual(walks, want) {
		t.Fatalf("walks = %v", walks)
	}
}

func TestReadTextSkipsBlanksAndErrors(t *testing.T) {
	walks, err := ReadText(strings.NewReader("1 2\n\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != 2 {
		t.Fatalf("walks = %v", walks)
	}
	if _, err := ReadText(strings.NewReader("1 x 2\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, samplePaths()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := samplePaths()
	if len(got) != len(want) {
		t.Fatalf("walks = %d", len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Vertices, want[i].Vertices) {
			t.Fatalf("walk %d vertices %v, want %v", i, got[i].Vertices, want[i].Vertices)
		}
		if len(want[i].Times) == 0 {
			if len(got[i].Times) != 0 {
				t.Fatalf("walk %d times %v", i, got[i].Times)
			}
			continue
		}
		if !reflect.DeepEqual(got[i].Times, want[i].Times) {
			t.Fatalf("walk %d times %v, want %v", i, got[i].Times, want[i].Times)
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("walks = %v", got)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("nope")); !errors.Is(err, ErrBadFormat) {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, samplePaths()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-6]
	if _, err := ReadBinary(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Fatal("truncation accepted")
	}
	// Malformed path shape on write.
	bad := []core.Path{{Vertices: []temporal.Vertex{1, 2}, Times: []temporal.Time{1, 2, 3}}}
	if err := WriteBinary(&buf, bad); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestEngineCorpusRoundTrip(t *testing.T) {
	g := temporal.CommuteGraph()
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(core.WalkConfig{Length: 4, Seed: 2, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, res.Paths); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Paths) {
		t.Fatalf("corpus size %d", len(back))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i].Vertices, res.Paths[i].Vertices) {
			t.Fatalf("walk %d differs", i)
		}
	}
}
