// Package walkio serializes walk corpora — the output artifact of a random
// walk engine (GraphWalker and TEA both flush completed walks to disk;
// §4.1). Two formats:
//
//   - Text: one walk per line, space-separated vertex ids (the format
//     word2vec-style trainers consume).
//   - Binary: length-prefixed (vertex, time) records, lossless including
//     edge timestamps.
package walkio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
)

// Magic identifies the binary walk-corpus format ("TEAW" + version 1).
var Magic = [8]byte{'T', 'E', 'A', 'W', 0, 0, 0, 1}

// ErrBadFormat is returned for malformed corpora.
var ErrBadFormat = errors.New("walkio: malformed walk corpus")

// WriteText writes one walk per line as space-separated vertex ids.
// Timestamps are dropped (the embedding-trainer interchange format).
func WriteText(w io.Writer, paths []core.Path) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, p := range paths {
		for i, v := range p.Vertices {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(v), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text corpus back into vertex sequences.
func ReadText(r io.Reader) ([][]temporal.Vertex, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var walks [][]temporal.Vertex
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var walk []temporal.Vertex
		start := -1
		flush := func(end int) error {
			if start < 0 {
				return nil
			}
			id, err := strconv.ParseUint(text[start:end], 10, 32)
			if err != nil {
				return fmt.Errorf("%w: line %d: %v", ErrBadFormat, line, err)
			}
			walk = append(walk, temporal.Vertex(id))
			start = -1
			return nil
		}
		for i := 0; i < len(text); i++ {
			if text[i] == ' ' || text[i] == '\t' {
				if err := flush(i); err != nil {
					return nil, err
				}
				continue
			}
			if start < 0 {
				start = i
			}
		}
		if err := flush(len(text)); err != nil {
			return nil, err
		}
		if len(walk) > 0 {
			walks = append(walks, walk)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("walkio: %w", err)
	}
	return walks, nil
}

// WriteBinary writes the lossless binary corpus.
func WriteBinary(w io.Writer, paths []core.Path) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(paths)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, p := range paths {
		if len(p.Times) != len(p.Vertices)-1 && !(len(p.Vertices) == 0 && len(p.Times) == 0) {
			return fmt.Errorf("walkio: path shape %d vertices / %d times", len(p.Vertices), len(p.Times))
		}
		binary.LittleEndian.PutUint32(rec[:4], uint32(len(p.Vertices)))
		if _, err := bw.Write(rec[:4]); err != nil {
			return err
		}
		for i, v := range p.Vertices {
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			t := int64(0)
			if i > 0 {
				t = int64(p.Times[i-1])
			}
			binary.LittleEndian.PutUint64(rec[4:], uint64(t))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary corpus.
func ReadBinary(r io.Reader) ([]core.Path, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadFormat, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %x", ErrBadFormat, magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxWalks = 1 << 33
	if n > maxWalks {
		return nil, fmt.Errorf("%w: implausible walk count %d", ErrBadFormat, n)
	}
	paths := make([]core.Path, 0, n)
	var rec [12]byte
	for wi := uint64(0); wi < n; wi++ {
		if _, err := io.ReadFull(br, rec[:4]); err != nil {
			return nil, fmt.Errorf("%w: walk %d header: %v", ErrBadFormat, wi, err)
		}
		length := binary.LittleEndian.Uint32(rec[:4])
		const maxLen = 1 << 24
		if length > maxLen {
			return nil, fmt.Errorf("%w: implausible walk length %d", ErrBadFormat, length)
		}
		p := core.Path{}
		if length > 0 {
			p.Vertices = make([]temporal.Vertex, length)
			p.Times = make([]temporal.Time, length-1)
		}
		for i := uint32(0); i < length; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("%w: walk %d hop %d: %v", ErrBadFormat, wi, i, err)
			}
			p.Vertices[i] = temporal.Vertex(binary.LittleEndian.Uint32(rec[0:]))
			if i > 0 {
				p.Times[i-1] = temporal.Time(binary.LittleEndian.Uint64(rec[4:]))
			}
		}
		paths = append(paths, p)
	}
	return paths, nil
}
