package gen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tea-graph/tea/internal/temporal"
)

// Description summarizes a temporal graph's shape: the quantities Table 3 of
// the paper reports plus degree-distribution percentiles, so generated
// workloads can be compared against their targets.
type Description struct {
	Vertices, Edges  int
	MeanDegree       float64
	MaxDegree        int
	DegreeP50        int
	DegreeP90        int
	DegreeP99        int
	Isolated         int // vertices with no out-edges
	TimeLo, TimeHi   temporal.Time
	DistinctVertices int // vertices appearing as source or destination
}

// Describe computes the summary for a graph.
func Describe(g *temporal.Graph) Description {
	numV := g.NumVertices()
	d := Description{
		Vertices:  numV,
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
	}
	d.TimeLo, d.TimeHi = g.TimeRange()
	degrees := make([]int, numV)
	touched := make([]bool, numV)
	for u := 0; u < numV; u++ {
		deg := g.Degree(temporal.Vertex(u))
		degrees[u] = deg
		if deg == 0 {
			d.Isolated++
		} else {
			touched[u] = true
			for _, v := range g.OutDst(temporal.Vertex(u)) {
				touched[v] = true
			}
		}
	}
	for _, t := range touched {
		if t {
			d.DistinctVertices++
		}
	}
	if numV > 0 {
		d.MeanDegree = float64(d.Edges) / float64(numV)
		sort.Ints(degrees)
		d.DegreeP50 = degrees[numV/2]
		d.DegreeP90 = degrees[numV*9/10]
		d.DegreeP99 = degrees[numV*99/100]
	}
	return d
}

// String renders the description as aligned key/value lines.
func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices          %d\n", d.Vertices)
	fmt.Fprintf(&b, "edges             %d\n", d.Edges)
	fmt.Fprintf(&b, "mean out-degree   %.2f\n", d.MeanDegree)
	fmt.Fprintf(&b, "degree p50/90/99  %d / %d / %d\n", d.DegreeP50, d.DegreeP90, d.DegreeP99)
	fmt.Fprintf(&b, "max degree        %d\n", d.MaxDegree)
	fmt.Fprintf(&b, "isolated sources  %d\n", d.Isolated)
	fmt.Fprintf(&b, "touched vertices  %d\n", d.DistinctVertices)
	fmt.Fprintf(&b, "time range        [%d, %d]\n", d.TimeLo, d.TimeHi)
	return b.String()
}
