package gen

// The paper's Table 3 datasets, reproduced in shape at 1/1000 scale (see
// DESIGN.md). Skew exponents are chosen so that the generated max-degree to
// mean-degree ratios land in the regimes of the originals: growth has a
// moderate tail, edit/delicious/twitter are heavy power laws whose hubs are
// four orders of magnitude above the mean.

// Growth mirrors the Wikipedia growth network: 1.87 M vertices, 40 M edges in
// the original (mean degree 42.7, max 226 k).
func Growth() Profile {
	return Profile{Name: "growth", Vertices: 1_870, Edges: 39_953, Skew: 0.55, Seed: 101}
}

// Edit mirrors the Wikipedia edit network: 21.5 M vertices, 267 M edges in
// the original (mean degree 21.1, max 3.27 M).
func Edit() Profile {
	return Profile{Name: "edit", Vertices: 21_504, Edges: 266_769, Skew: 0.75, Seed: 102}
}

// Delicious mirrors the delicious tagging network: 33.8 M vertices, 301 M
// edges in the original (mean degree 66.8, max 4.36 M).
func Delicious() Profile {
	return Profile{Name: "delicious", Vertices: 33_777, Edges: 301_183, Skew: 0.78, Seed: 103}
}

// Twitter mirrors the twitter follower stream: 41.7 M vertices, 1.47 B edges
// in the original (mean degree 74.7, max 3.69 M).
func Twitter() Profile {
	return Profile{Name: "twitter", Vertices: 41_652, Edges: 1_468_365, Skew: 0.72, Seed: 104}
}

// Profiles returns the four Table 3 datasets in the paper's order.
func Profiles() []Profile {
	return []Profile{Growth(), Edit(), Delicious(), Twitter()}
}

// SmallProfiles returns reduced variants (a further 10× down) for quick
// benchmarks and CI runs; shapes are preserved.
func SmallProfiles() []Profile {
	ps := Profiles()
	out := make([]Profile, len(ps))
	for i, p := range ps {
		p.Name = p.Name + "-s"
		p.Vertices = p.Vertices/10 + 2
		p.Edges = p.Edges / 10
		out[i] = p
	}
	return out
}
