package gen

import (
	"reflect"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/temporal"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "t", Vertices: 100, Edges: 2000, Skew: 0.8, Seed: 7}
	a := p.Generate()
	b := p.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateShape(t *testing.T) {
	p := Profile{Name: "t", Vertices: 500, Edges: 10000, Skew: 0.8, Seed: 9}
	edges := p.Generate()
	if len(edges) != p.Edges {
		t.Fatalf("edges = %d, want %d", len(edges), p.Edges)
	}
	for i, e := range edges {
		if e.Time != temporal.Time(i+1) {
			t.Fatalf("edge %d time %d: stream must have increasing timestamps", i, e.Time)
		}
		if int(e.Src) >= p.Vertices || int(e.Dst) >= p.Vertices {
			t.Fatalf("edge %v out of vertex range", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self-loop at %d", i)
		}
	}
}

func TestGenerateSkewProducesHubs(t *testing.T) {
	flat := Profile{Name: "flat", Vertices: 400, Edges: 20000, Skew: 0.0, Seed: 3}
	skewed := Profile{Name: "skew", Vertices: 400, Edges: 20000, Skew: 0.9, Seed: 3}
	gf, err := flat.Build()
	if err != nil {
		t.Fatal(err)
	}
	gs, err := skewed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if gs.MaxDegree() < 3*gf.MaxDegree() {
		t.Fatalf("skewed max degree %d vs flat %d: no heavy tail", gs.MaxDegree(), gf.MaxDegree())
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if (Profile{Vertices: 1, Edges: 10}).Generate() != nil {
		t.Fatal("1-vertex graph generated")
	}
	if (Profile{Vertices: 10, Edges: 0}).Generate() != nil {
		t.Fatal("0-edge graph generated")
	}
}

func TestProfilesMatchTable3Shape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := []string{"growth", "edit", "delicious", "twitter"}
	for i, p := range ps {
		if p.Name != names[i] {
			t.Fatalf("profile %d name %q", i, p.Name)
		}
		// The profiles are the Table 3 datasets at 1/1000 scale: |V| and |E|
		// must match the originals' thousands columns.
		wantV := []int{1_870, 21_504, 33_777, 41_652}[i]
		wantE := []int{39_953, 266_769, 301_183, 1_468_365}[i]
		if p.Vertices != wantV || p.Edges != wantE {
			t.Fatalf("%s scaled size V=%d E=%d, want V=%d E=%d", p.Name, p.Vertices, p.Edges, wantV, wantE)
		}
	}
}

func TestGrowthBuildsWithHeavyTail(t *testing.T) {
	g, err := Growth().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != Growth().Edges {
		t.Fatalf("E = %d", g.NumEdges())
	}
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("max degree %d vs mean %.1f: tail too light", g.MaxDegree(), mean)
	}
}

func TestSmallProfiles(t *testing.T) {
	for _, p := range SmallProfiles() {
		g, err := p.Build()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s empty", p.Name)
		}
	}
}

func TestLambdaCalibration(t *testing.T) {
	p := Growth()
	if l := p.Lambda(50); l*float64(p.TimeSpan()) != 50 {
		t.Fatalf("lambda span = %v", l*float64(p.TimeSpan()))
	}
	if l := p.Lambda(0); l*float64(p.TimeSpan()) != 50 {
		t.Fatal("default contrast wrong")
	}
}

func TestProfileString(t *testing.T) {
	s := Growth().String()
	if s == "" || s[:6] != "growth" {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkGenerateGrowth(b *testing.B) {
	p := Growth()
	for i := 0; i < b.N; i++ {
		p.Generate()
	}
}

func TestDescribe(t *testing.T) {
	g := temporal.CommuteGraph()
	d := Describe(g)
	if d.Vertices != 10 || d.Edges != 10 || d.MaxDegree != 7 {
		t.Fatalf("describe: %+v", d)
	}
	if d.MeanDegree != 1.0 {
		t.Fatalf("mean = %v", d.MeanDegree)
	}
	// Sources: 0, 7, 8, 9 → 6 isolated-source vertices.
	if d.Isolated != 6 {
		t.Fatalf("isolated = %d", d.Isolated)
	}
	if d.DistinctVertices != 10 {
		t.Fatalf("touched = %d", d.DistinctVertices)
	}
	if d.TimeLo != 0 || d.TimeHi != 7 {
		t.Fatalf("time range [%d,%d]", d.TimeLo, d.TimeHi)
	}
	s := d.String()
	if !strings.Contains(s, "max degree        7") {
		t.Fatalf("String:\n%s", s)
	}
}

func TestDescribeSkewPercentiles(t *testing.T) {
	g, err := Growth().Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Describe(g)
	if !(d.DegreeP50 <= d.DegreeP90 && d.DegreeP90 <= d.DegreeP99 && d.DegreeP99 <= d.MaxDegree) {
		t.Fatalf("percentiles not monotone: %+v", d)
	}
	if d.DegreeP99 <= d.DegreeP50 {
		t.Fatalf("no skew visible: %+v", d)
	}
}
