// Package gen synthesizes temporal graph workloads. The paper evaluates on
// four KONECT edge streams (growth, edit, delicious, twitter — Table 3, up to
// 1.5 B edges); those downloads are not available here, so gen reproduces
// their *shape* — vertex/edge counts, heavy-tailed out-degree skew, and
// increasing-timestamp edge-stream order — at a configurable scale
// (DESIGN.md, substitutions). All generation is deterministic in the seed.
package gen

import (
	"fmt"
	"math"
	"sort"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// Profile describes one synthetic dataset.
type Profile struct {
	// Name labels the dataset in experiment output.
	Name string
	// Vertices and Edges size the graph.
	Vertices, Edges int
	// Skew is the Zipf exponent of the out-degree distribution; 0 produces a
	// near-uniform degree profile, 1.0 a heavy power law.
	Skew float64
	// Seed drives all randomness.
	Seed uint64
}

// String renders the profile header.
func (p Profile) String() string {
	return fmt.Sprintf("%s(V=%d, E=%d, skew=%.2f)", p.Name, p.Vertices, p.Edges, p.Skew)
}

// Generate produces the temporal edge stream: timestamps are 1..Edges in
// stream order (the edge-stream representation of §2.1), sources follow a
// Zipf out-degree law, destinations follow the same law so in-degrees are
// skewed too, self-loop-free where possible.
func (p Profile) Generate() []temporal.Edge {
	if p.Vertices < 2 || p.Edges < 1 {
		return nil
	}
	r := xrand.New(p.Seed)

	// Deterministic out-degree assignment: weight_i ∝ (i+1)^-skew over a
	// random permutation of vertex ids (so vertex 0 is not always the hub).
	perm := make([]temporal.Vertex, p.Vertices)
	for i := range perm {
		perm[i] = temporal.Vertex(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	weights := make([]float64, p.Vertices)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -p.Skew)
		total += weights[i]
	}
	// Largest-remainder rounding so Σdeg == Edges exactly.
	degrees := make([]int, p.Vertices)
	assigned := 0
	fracs := make([]frac, p.Vertices)
	for i, w := range weights {
		exact := float64(p.Edges) * w / total
		d := int(exact)
		degrees[i] = d
		assigned += d
		fracs[i] = frac{idx: i, rem: exact - float64(d)}
	}
	if missing := p.Edges - assigned; missing > 0 {
		sortFracsByRemainder(fracs)
		for i := 0; i < missing; i++ {
			degrees[fracs[i%len(fracs)].idx]++
		}
	}

	// Emit one source slot per edge, shuffle, stamp with increasing times.
	sources := make([]temporal.Vertex, 0, p.Edges)
	for i, d := range degrees {
		for j := 0; j < d; j++ {
			sources = append(sources, perm[i])
		}
	}
	for i := len(sources) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		sources[i], sources[j] = sources[j], sources[i]
	}

	// Destination sampling by the same skewed law via an alias-free inverse:
	// cumulative weights with binary search.
	cum := make([]float64, p.Vertices+1)
	for i, w := range weights {
		cum[i+1] = cum[i] + w
	}
	pickDst := func() temporal.Vertex {
		x := r.Range(cum[p.Vertices])
		lo, hi := 0, p.Vertices-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cum[mid+1] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return perm[lo]
	}

	edges := make([]temporal.Edge, p.Edges)
	for i := range edges {
		src := sources[i]
		dst := pickDst()
		if dst == src {
			dst = temporal.Vertex((uint32(dst) + 1) % uint32(p.Vertices))
		}
		edges[i] = temporal.Edge{Src: src, Dst: dst, Time: temporal.Time(i + 1)}
	}
	return edges
}

// frac is a largest-remainder rounding candidate.
type frac struct {
	idx int
	rem float64
}

// sortFracsByRemainder orders the rounding candidates by descending
// remainder (ties by index, for determinism).
func sortFracsByRemainder(fracs []frac) {
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].idx < fracs[j].idx
	})
}

// Build generates the stream and constructs the CSR graph.
func (p Profile) Build() (*temporal.Graph, error) {
	return temporal.FromEdges(p.Generate(), temporal.WithNumVertices(p.Vertices))
}

// TimeSpan returns the stream's timestamp range (1..Edges).
func (p Profile) TimeSpan() temporal.Time { return temporal.Time(p.Edges) }

// Lambda returns an exponential-decay constant calibrated so the acceptance
// ratio of rejection sampling degrades visibly (the Figure 2 regime): the
// weight span across the stream is e^-contrast.
func (p Profile) Lambda(contrast float64) float64 {
	if contrast <= 0 {
		contrast = 50
	}
	return contrast / float64(p.TimeSpan())
}
