// Package scrub implements background integrity verification for TEA's
// durable storage: a rate-limited goroutine that periodically re-reads
// sealed WAL segments, snapshot generations, and out-of-core store blocks,
// re-verifying their CRCs so latent damage (bit rot, lost writes, a cable
// gone bad) is detected while the redundancy to recover from it — older
// snapshot generations, the WAL suffix — still exists, rather than at the
// next restart when it is the only copy.
//
// The scrubber knows nothing about file formats. Each store registers a
// Target whose Scrub callback re-verifies its own files, pacing every read
// through the bill callback — the scrubber's token bucket turns the
// configured MB/s budget into sleeps, so a pass trickles along without
// stealing I/O from serving. Damage flips the target into the scrubber's
// damage map (feeding /healthz and tea_scrub_errors_total); a later clean
// pass clears it.
package scrub

import (
	"context"
	"errors"
	"io/fs"
	"log/slog"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
)

// Scrub metric family on the default registry.
var (
	mPasses      = metrics.Default.Counter("tea_scrub_passes_total")
	mErrors      = metrics.Default.Counter("tea_scrub_errors_total")
	mBytes       = metrics.Default.Counter("tea_scrub_bytes_total")
	mLastPass    = metrics.Default.Gauge("tea_scrub_last_pass_unix_seconds")
	mPassSeconds = metrics.Default.Gauge("tea_scrub_pass_seconds")
	mDamaged     = metrics.Default.Gauge("tea_scrub_damaged_targets")
)

// Target is one scrubbable store. Implementations re-verify their own files
// and report the first damage found; a file that vanishes mid-pass (pruned
// by a checkpoint or WAL truncation) must be treated as gone, not damaged.
type Target interface {
	// Name labels the target in metrics, logs, and the damage map.
	Name() string
	// Scrub re-verifies the target, billing every read through bill (which
	// may sleep to enforce the rate budget, and returns non-nil when the
	// scrubber is stopping). Returns how many objects were checked and the
	// first integrity error.
	Scrub(ctx context.Context, bill func(int) error) (objects int, err error)
}

// Config tunes a Scrubber.
type Config struct {
	// Interval between passes; 0 means 5 minutes.
	Interval time.Duration
	// RateMBps caps the scrub read bandwidth; 0 means 32 MB/s, negative
	// means unlimited.
	RateMBps float64
	// Logger, when non-nil, receives damage reports and pass summaries.
	Logger *slog.Logger
}

// Scrubber runs periodic integrity passes over its targets.
type Scrubber struct {
	cfg     Config
	targets []Target
	lim     *limiter

	mu      sync.Mutex
	damage  map[string]string // target name -> first error of the last pass
	passes  uint64
	started bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a scrubber over the given targets. Call Start to begin passes,
// or RunOnce to scrub synchronously (tests, a pre-serving fsck).
func New(cfg Config, targets ...Target) *Scrubber {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	if cfg.RateMBps == 0 {
		cfg.RateMBps = 32
	}
	return &Scrubber{
		cfg:     cfg,
		targets: targets,
		lim:     newLimiter(cfg.RateMBps * 1e6),
		damage:  make(map[string]string),
		quit:    make(chan struct{}),
	}
}

// Start launches the background pass loop. Safe to call once.
func (s *Scrubber) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.wg.Add(1)
	go s.loop()
}

// Stop halts the loop and waits for an in-flight pass to abort.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Scrubber) loop() {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-s.quit; cancel() }()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.RunOnce(ctx)
		}
	}
}

// RunOnce performs one full pass over every target, updating the damage map
// and metrics. Returns the first error found (nil = everything verified).
func (s *Scrubber) RunOnce(ctx context.Context) error {
	start := time.Now()
	bill := func(n int) error {
		mBytes.Add(int64(n))
		return s.lim.bill(ctx, n)
	}
	var first error
	for _, tgt := range s.targets {
		objects, err := tgt.Scrub(ctx, bill)
		if ctx.Err() != nil {
			return ctx.Err() // stopping: don't record an aborted pass as damage
		}
		s.mu.Lock()
		if err != nil {
			s.damage[tgt.Name()] = err.Error()
		} else {
			delete(s.damage, tgt.Name())
		}
		damaged := len(s.damage)
		s.mu.Unlock()
		mDamaged.Set(float64(damaged))
		if err != nil {
			mErrors.Inc()
			if first == nil {
				first = err
			}
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("scrub found damage",
					"target", tgt.Name(), "objects", objects, "error", err)
			}
		}
	}
	s.mu.Lock()
	s.passes++
	s.mu.Unlock()
	mPasses.Inc()
	mLastPass.Set(float64(time.Now().Unix()))
	mPassSeconds.Set(time.Since(start).Seconds())
	return first
}

// Damage returns the current target-name → error map; empty means every
// target verified clean on its last pass.
func (s *Scrubber) Damage() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.damage))
	for k, v := range s.damage {
		out[k] = v
	}
	return out
}

// Passes returns how many full passes have completed.
func (s *Scrubber) Passes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passes
}

// Files is a generic Target over an enumerable set of verifiable files:
// List enumerates current paths, Verify checks one. A path that no longer
// exists when Verify runs is skipped — stores prune files concurrently.
type Files struct {
	// TargetName labels the target.
	TargetName string
	// List enumerates the paths to verify this pass.
	List func() ([]string, error)
	// Verify checks one file, billing reads through bill.
	Verify func(path string, bill func(int) error) error
}

// Name implements Target.
func (f Files) Name() string { return f.TargetName }

// Scrub implements Target.
func (f Files) Scrub(ctx context.Context, bill func(int) error) (int, error) {
	paths, err := f.List()
	if err != nil {
		return 0, err
	}
	objects := 0
	var first error
	for _, p := range paths {
		if ctx.Err() != nil {
			return objects, ctx.Err()
		}
		err := f.Verify(p, bill)
		if errors.Is(err, fs.ErrNotExist) {
			continue // pruned between List and Verify
		}
		objects++
		if err != nil && first == nil {
			first = err
		}
	}
	return objects, first
}

// limiter is a token bucket over bytes: bill(n) debits and sleeps long
// enough that the long-run rate stays at bytesPerSec.
type limiter struct {
	bytesPerSec float64

	mu     sync.Mutex
	budget float64
	last   time.Time
}

func newLimiter(bytesPerSec float64) *limiter {
	return &limiter{bytesPerSec: bytesPerSec, last: time.Now()}
}

// bill debits n bytes, sleeping when the bucket runs dry. Returns early with
// the context's error when the scrubber stops mid-sleep.
func (l *limiter) bill(ctx context.Context, n int) error {
	if l.bytesPerSec <= 0 {
		return ctx.Err()
	}
	l.mu.Lock()
	now := time.Now()
	l.budget += now.Sub(l.last).Seconds() * l.bytesPerSec
	l.last = now
	if burst := l.bytesPerSec / 4; l.budget > burst {
		l.budget = burst
	}
	l.budget -= float64(n)
	var wait time.Duration
	if l.budget < 0 {
		wait = time.Duration(-l.budget / l.bytesPerSec * float64(time.Second))
	}
	l.mu.Unlock()
	if wait <= 0 {
		return ctx.Err()
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
