package scrub

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChunkBaseline scrubs a file that carries no checksums of its own (the
// out-of-core store's block file): the first pass records a CRC-32C per
// fixed-size chunk as the baseline, and every later pass re-reads and
// compares. This only detects *change*, not original damage — the contract
// is that the file is immutable while being served (the OOC store is written
// once by teabuild and then only read), so any divergence from the first
// pass is bit rot or a lost write, exactly what a scrubber exists to catch.
// If the file legitimately changes (rebuilt index), the baseline must be
// reset (Reset or a new ChunkBaseline).
type ChunkBaseline struct {
	// TargetName labels the target.
	TargetName string
	// Path is the file to scrub.
	Path string
	// ChunkBytes is the baseline granularity; 0 means 1 MiB.
	ChunkBytes int

	mu   sync.Mutex
	base []uint32
	size int64
}

// Name implements Target.
func (c *ChunkBaseline) Name() string { return c.TargetName }

// Reset forgets the baseline; the next pass records a fresh one.
func (c *ChunkBaseline) Reset() {
	c.mu.Lock()
	c.base, c.size = nil, 0
	c.mu.Unlock()
}

// Scrub implements Target: record the baseline on the first pass, verify
// against it afterwards.
func (c *ChunkBaseline) Scrub(ctx context.Context, bill func(int) error) (int, error) {
	chunk := c.ChunkBytes
	if chunk <= 0 {
		chunk = 1 << 20
	}
	f, err := os.Open(c.Path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}

	c.mu.Lock()
	baseline := c.base
	baseSize := c.size
	c.mu.Unlock()

	name := filepath.Base(c.Path)
	if baseline != nil && st.Size() != baseSize {
		return 0, fmt.Errorf("scrub: %s: size changed %d -> %d (immutable file)", name, baseSize, st.Size())
	}

	var sums []uint32
	buf := make([]byte, chunk)
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		n, err := io.ReadFull(f, buf)
		if n > 0 {
			if berr := bill(n); berr != nil {
				return i, berr
			}
			sum := crc32.Checksum(buf[:n], castagnoli)
			if baseline != nil {
				if i >= len(baseline) || sum != baseline[i] {
					return i, fmt.Errorf("scrub: %s: chunk %d CRC mismatch (offset %d)", name, i, int64(i)*int64(chunk))
				}
			}
			sums = append(sums, sum)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return i, err
		}
	}
	if baseline != nil && len(sums) != len(baseline) {
		return len(sums), fmt.Errorf("scrub: %s: chunk count changed %d -> %d", name, len(baseline), len(sums))
	}
	if baseline == nil {
		c.mu.Lock()
		c.base, c.size = sums, st.Size()
		c.mu.Unlock()
	}
	return len(sums), nil
}
