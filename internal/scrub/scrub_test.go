package scrub

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// verifyCRCFile is a toy format for tests: last byte = XOR of the rest.
func writeCRCFile(t *testing.T, path string, n int) {
	t.Helper()
	data := make([]byte, n+1)
	for i := 0; i < n; i++ {
		data[i] = byte(i * 31)
		data[n] ^= data[i]
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func verifyCRCFile(path string, bill func(int) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bill != nil {
		if err := bill(len(data)); err != nil {
			return err
		}
	}
	var x byte
	for _, b := range data[:len(data)-1] {
		x ^= b
	}
	if x != data[len(data)-1] {
		return fmt.Errorf("checksum mismatch in %s", filepath.Base(path))
	}
	return nil
}

func TestFilesTargetDetectsAndClears(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		writeCRCFile(t, filepath.Join(dir, fmt.Sprintf("f%d", i)), 64)
	}
	target := Files{
		TargetName: "toy",
		List:       func() ([]string, error) { return filepath.Glob(filepath.Join(dir, "f*")) },
		Verify:     verifyCRCFile,
	}
	s := New(Config{RateMBps: -1}, target)

	if err := s.RunOnce(context.Background()); err != nil {
		t.Fatalf("clean pass: %v", err)
	}
	if len(s.Damage()) != 0 {
		t.Fatalf("damage after clean pass: %v", s.Damage())
	}

	// Flip a byte: the next pass must catch it within one pass.
	victim := filepath.Join(dir, "f1")
	data, _ := os.ReadFile(victim)
	data[10] ^= 0xFF
	os.WriteFile(victim, data, 0o644)
	if err := s.RunOnce(context.Background()); err == nil {
		t.Fatal("pass over damaged file reported clean")
	}
	if _, ok := s.Damage()["toy"]; !ok {
		t.Fatalf("damage map missing target: %v", s.Damage())
	}

	// Repair: the pass after that clears the damage state.
	writeCRCFile(t, victim, 64)
	if err := s.RunOnce(context.Background()); err != nil {
		t.Fatalf("pass after repair: %v", err)
	}
	if len(s.Damage()) != 0 {
		t.Fatalf("damage did not clear: %v", s.Damage())
	}
	if s.Passes() != 3 {
		t.Fatalf("passes = %d, want 3", s.Passes())
	}
}

func TestFilesTargetSkipsVanished(t *testing.T) {
	dir := t.TempDir()
	writeCRCFile(t, filepath.Join(dir, "keep"), 16)
	target := Files{
		TargetName: "toy",
		List: func() ([]string, error) {
			return []string{filepath.Join(dir, "keep"), filepath.Join(dir, "pruned")}, nil
		},
		Verify: func(p string, bill func(int) error) error {
			if filepath.Base(p) == "pruned" {
				return fs.ErrNotExist
			}
			return verifyCRCFile(p, bill)
		},
	}
	s := New(Config{RateMBps: -1}, target)
	if err := s.RunOnce(context.Background()); err != nil {
		t.Fatalf("vanished file counted as damage: %v", err)
	}
}

func TestChunkBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blocks")
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := &ChunkBaseline{TargetName: "ooc", Path: path, ChunkBytes: 1024}
	nobill := func(int) error { return nil }
	if n, err := c.Scrub(context.Background(), nobill); err != nil || n != 10 {
		t.Fatalf("baseline pass: n=%d err=%v", n, err)
	}
	if _, err := c.Scrub(context.Background(), nobill); err != nil {
		t.Fatalf("clean verify pass: %v", err)
	}
	data[5000] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scrub(context.Background(), nobill); err == nil {
		t.Fatal("bit flip not detected")
	}
	c.Reset()
	if _, err := c.Scrub(context.Background(), nobill); err != nil {
		t.Fatalf("pass after reset: %v", err)
	}
}

func TestLimiterPaces(t *testing.T) {
	// 1 MB/s budget, 256 KB burst: billing ~1.25 MB must take >= ~1s of
	// sleep. Use a generous lower bound to stay robust on slow CI.
	l := newLimiter(1e6)
	start := time.Now()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := l.bill(ctx, 250_000); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("limiter let 1.25MB through in %v at 1MB/s", elapsed)
	}
}

func TestLimiterAbortsOnCancel(t *testing.T) {
	l := newLimiter(1) // 1 byte/s: any bill sleeps ~forever
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.bill(ctx, 1000) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("bill returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bill did not abort on cancel")
	}
}
