package embed

import (
	"errors"
	"math"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 0, Config{}); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := Train(nil, 10, Config{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("empty corpus err = %v", err)
	}
	if _, err := Train([][]temporal.Vertex{{1}}, 10, Config{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("singleton-walk corpus err = %v", err)
	}
	if _, err := Train([][]temporal.Vertex{{1, 99}}, 10, Config{}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestModelShape(t *testing.T) {
	corpus := [][]temporal.Vertex{{0, 1, 2}, {2, 1, 0}}
	m, err := Train(corpus, 3, Config{Dim: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 8 || m.NumVertices() != 3 {
		t.Fatalf("shape dim=%d V=%d", m.Dim(), m.NumVertices())
	}
	if len(m.Vector(1)) != 8 {
		t.Fatalf("vector len %d", len(m.Vector(1)))
	}
	if s := m.Similarity(0, 0); math.Abs(s-1) > 1e-6 {
		t.Fatalf("self-similarity %v", s)
	}
}

func TestDeterministic(t *testing.T) {
	corpus := [][]temporal.Vertex{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}}
	a, err := Train(corpus, 4, Config{Dim: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(corpus, 4, Config{Dim: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := temporal.Vertex(0); v < 4; v++ {
		va, vb := a.Vector(v), b.Vector(v)
		for d := range va {
			if va[d] != vb[d] {
				t.Fatalf("vertex %d dim %d differs", v, d)
			}
		}
	}
}

// Community recovery: walks over two tight communities with a weak bridge
// must embed same-community vertices closer than cross-community ones.
func TestCommunityStructureRecovered(t *testing.T) {
	const half = 10
	r := xrand.New(11)
	var edges []temporal.Edge
	tm := temporal.Time(1)
	addClique := func(base int) {
		for i := 0; i < 600; i++ {
			a := base + r.IntN(half)
			b := base + r.IntN(half)
			if a == b {
				b = base + (a-base+1)%half
			}
			edges = append(edges, temporal.Edge{Src: temporal.Vertex(a), Dst: temporal.Vertex(b), Time: tm})
			tm++
		}
	}
	// Interleave the two communities in time so walks stay alive in both.
	for round := 0; round < 4; round++ {
		addClique(0)
		addClique(half)
	}
	g, err := temporal.FromEdges(edges, temporal.WithNumVertices(2*half))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(g, core.Unbiased(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(core.WalkConfig{WalksPerVertex: 40, Length: 10, Seed: 7, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	corpus := make([][]temporal.Vertex, len(res.Paths))
	for i, p := range res.Paths {
		corpus[i] = p.Vertices
	}
	m, err := Train(corpus, 2*half, Config{Dim: 32, Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for a := 0; a < 2*half; a++ {
		for b := a + 1; b < 2*half; b++ {
			s := m.Similarity(temporal.Vertex(a), temporal.Vertex(b))
			if (a < half) == (b < half) {
				intra += s
				nIntra++
			} else {
				inter += s
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter+0.1 {
		t.Fatalf("communities not separated: intra %.3f vs inter %.3f", intra, inter)
	}
}

func TestMostSimilar(t *testing.T) {
	corpus := [][]temporal.Vertex{}
	// 0 and 1 always co-occur; 2 and 3 always co-occur.
	for i := 0; i < 200; i++ {
		corpus = append(corpus, []temporal.Vertex{0, 1}, []temporal.Vertex{2, 3})
	}
	m, err := Train(corpus, 4, Config{Dim: 16, Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := m.MostSimilar(0, 1)
	if len(top) != 1 || top[0].Vertex != 1 {
		t.Fatalf("MostSimilar(0) = %+v, want vertex 1", top)
	}
	all := m.MostSimilar(0, 100)
	if len(all) != 3 {
		t.Fatalf("MostSimilar cap: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Cosine > all[i-1].Cosine {
			t.Fatal("MostSimilar not sorted")
		}
	}
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	c.normalize()
	if c.Dim != 64 || c.Window != 5 || c.Negatives != 5 || c.Epochs != 3 || c.LearningRate != 0.025 {
		t.Fatalf("defaults: %+v", c)
	}
}

func BenchmarkTrain(b *testing.B) {
	r := xrand.New(1)
	corpus := make([][]temporal.Vertex, 500)
	for i := range corpus {
		w := make([]temporal.Vertex, 20)
		for j := range w {
			w[j] = temporal.Vertex(r.IntN(1000))
		}
		corpus[i] = w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(corpus, 1000, Config{Dim: 32, Epochs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
