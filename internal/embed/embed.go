// Package embed trains skip-gram-with-negative-sampling (SGNS) vertex
// embeddings from a temporal walk corpus — the downstream half of the CTDNE
// pipeline whose upstream (walk generation) is what TEA accelerates (§1, §6
// of the paper). The trainer is dependency-free: a word2vec-style SGNS with
// a unigram^0.75 negative table built on the engine's alias sampler.
package embed

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// ErrEmptyCorpus is returned when the corpus contains no usable pairs.
var ErrEmptyCorpus = errors.New("embed: corpus contains no co-occurrence pairs")

// Config parameterizes SGNS training.
type Config struct {
	// Dim is the embedding dimensionality; default 64.
	Dim int
	// Window is the skip-gram context radius; default 5.
	Window int
	// Negatives is the number of negative samples per positive; default 5.
	Negatives int
	// Epochs is the number of passes over the corpus; default 3.
	Epochs int
	// LearningRate is the initial SGD step, decayed linearly to 1e-4 of
	// itself across training; default 0.025.
	LearningRate float64
	// Seed drives initialization and sampling.
	Seed uint64
}

func (c *Config) normalize() {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
}

// Model holds trained vertex embeddings.
type Model struct {
	dim int
	in  []float32 // input (vertex) vectors, len numVertices*dim
	out []float32 // context vectors
}

// Train fits SGNS embeddings to the walk corpus. Each walk is a vertex
// sequence (typically Result.Paths from the engine with KeepPaths). Vertices
// never appearing in the corpus keep their small random initialization.
func Train(walks [][]temporal.Vertex, numVertices int, cfg Config) (*Model, error) {
	cfg.normalize()
	if numVertices <= 0 {
		return nil, fmt.Errorf("embed: non-positive vertex count %d", numVertices)
	}
	// Unigram^0.75 negative-sampling distribution over corpus frequency.
	freq := make([]float64, numVertices)
	pairs := 0
	for _, w := range walks {
		for _, v := range w {
			if int(v) >= numVertices {
				return nil, fmt.Errorf("embed: corpus vertex %d outside space of %d", v, numVertices)
			}
			freq[v]++
		}
		if len(w) > 1 {
			pairs += len(w) - 1
		}
	}
	if pairs == 0 {
		return nil, ErrEmptyCorpus
	}
	for v := range freq {
		freq[v] = math.Pow(freq[v], 0.75)
	}
	negTable := sampling.NewAliasTable(freq)

	r := xrand.New(cfg.Seed)
	m := &Model{
		dim: cfg.Dim,
		in:  make([]float32, numVertices*cfg.Dim),
		out: make([]float32, numVertices*cfg.Dim),
	}
	for i := range m.in {
		m.in[i] = (float32(r.Float64()) - 0.5) / float32(cfg.Dim)
	}

	totalSteps := cfg.Epochs * len(walks)
	step := 0
	grad := make([]float32, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, walk := range walks {
			lr := cfg.LearningRate * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LearningRate*1e-4 {
				lr = cfg.LearningRate * 1e-4
			}
			step++
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					m.trainPair(center, walk[j], 1, float32(lr), grad)
					for n := 0; n < cfg.Negatives; n++ {
						neg, ok := negTable.Sample(r)
						if !ok {
							break
						}
						if temporal.Vertex(neg) == walk[j] {
							continue
						}
						m.trainPair(center, temporal.Vertex(neg), 0, float32(lr), grad)
					}
					// Apply the accumulated input-vector gradient.
					base := int(center) * m.dim
					for d := 0; d < m.dim; d++ {
						m.in[base+d] += grad[d]
						grad[d] = 0
					}
				}
			}
		}
	}
	return m, nil
}

// trainPair performs one SGNS update for (center, context, label) and
// accumulates the center-vector gradient into grad.
func (m *Model) trainPair(center, context temporal.Vertex, label float32, lr float32, grad []float32) {
	cb := int(center) * m.dim
	ob := int(context) * m.dim
	dot := float32(0)
	for d := 0; d < m.dim; d++ {
		dot += m.in[cb+d] * m.out[ob+d]
	}
	g := (label - sigmoid(dot)) * lr
	for d := 0; d < m.dim; d++ {
		grad[d] += g * m.out[ob+d]
		m.out[ob+d] += g * m.in[cb+d]
	}
}

func sigmoid(x float32) float32 {
	switch {
	case x > 8:
		return 1
	case x < -8:
		return 0
	default:
		return float32(1 / (1 + math.Exp(-float64(x))))
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// NumVertices returns the embedded vertex-space size.
func (m *Model) NumVertices() int { return len(m.in) / m.dim }

// Vector returns v's embedding as a read-only view.
func (m *Model) Vector(v temporal.Vertex) []float32 {
	return m.in[int(v)*m.dim : (int(v)+1)*m.dim]
}

// Similarity returns the cosine similarity of two vertex embeddings.
func (m *Model) Similarity(a, b temporal.Vertex) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	dot, na, nb := 0.0, 0.0, 0.0
	for d := 0; d < m.dim; d++ {
		dot += float64(va[d]) * float64(vb[d])
		na += float64(va[d]) * float64(va[d])
		nb += float64(vb[d]) * float64(vb[d])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Vertex temporal.Vertex
	Cosine float64
}

// MostSimilar returns the k vertices most cosine-similar to v, descending
// (ties by id), excluding v itself.
func (m *Model) MostSimilar(v temporal.Vertex, k int) []Neighbor {
	out := make([]Neighbor, 0, m.NumVertices()-1)
	for u := 0; u < m.NumVertices(); u++ {
		if temporal.Vertex(u) == v {
			continue
		}
		out = append(out, Neighbor{Vertex: temporal.Vertex(u), Cosine: m.Similarity(v, temporal.Vertex(u))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cosine != out[j].Cosine {
			return out[i].Cosine > out[j].Cosine
		}
		return out[i].Vertex < out[j].Vertex
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
