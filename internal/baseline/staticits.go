package baseline

import (
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// staticITS is the sampler §4.3 prescribes for the baselines on *static*
// temporal weights (uniform/linear): the weights do not depend on the
// walker, so per-vertex cumulative arrays can be precomputed once and every
// candidate prefix is sampled by an O(log D) binary search. Both GraphWalker
// and KnightKing fall back to this strategy for the linear temporal weight
// walk; their Table 4 gap on that algorithm is the paper's 1-node-vs-8-node
// hardware difference, not an algorithmic one.
type staticITS struct {
	g   *temporal.Graph
	cum []float64
	off []int64
}

func newStaticITS(g *temporal.Graph, ev weightEval) *staticITS {
	numV := g.NumVertices()
	off := make([]int64, numV+1)
	for u := 0; u < numV; u++ {
		off[u+1] = off[u] + int64(g.Degree(temporal.Vertex(u))) + 1
	}
	cum := make([]float64, off[numV])
	for u := 0; u < numV; u++ {
		times := g.OutTimes(temporal.Vertex(u))
		base := off[u]
		sum := 0.0
		cum[base] = 0
		for i := range times {
			sum += ev.at(times, i)
			cum[base+int64(i)+1] = sum
		}
	}
	return &staticITS{g: g, cum: cum, off: off}
}

func (s *staticITS) sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	deg := s.g.Degree(u)
	if k <= 0 || deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	cum := s.cum[s.off[u] : s.off[u]+int64(deg)+1]
	if !(cum[k] > 0) {
		return 0, 0, false
	}
	x := r.Range(cum[k])
	lo, hi := 0, k-1
	var eval int64
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		eval++
		if cum[mid+1] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, eval + 1, true
}

func (s *staticITS) memoryBytes() int64 {
	return int64(len(s.cum))*8 + int64(len(s.off))*8
}
