package baseline

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// DefaultAliasBudget caps the full alias method at 8 GiB of table storage,
// comfortably above any reasonable in-memory configuration and far below the
// petabyte the paper reports for preprocessing twitter (§1).
const DefaultAliasBudget = 8 << 30

// AliasFull is the naive alias-method strategy of §3.1: one alias table per
// possible candidate edge set. Because a temporal candidate set is a prefix
// of the newest-first adjacency list, vertex u needs deg(u) tables of sizes
// 1..deg(u) — O(D²) space per vertex, which is what rules the method out on
// all but tiny graphs (the OOM bars of Figure 12).
//
// Sampling is O(1): pick the prefix-k table, draw.
type AliasFull struct {
	g     *temporal.Graph
	w     *sampling.GraphWeights
	off   []int64 // per-vertex offset into prob/alias
	prob  []float64
	alias []int32
}

// aliasSlots returns the packed slot count for one vertex: Σ_{k=1..d} k.
func aliasSlots(d int) int64 { return int64(d) * int64(d+1) / 2 }

// NewAliasFull builds every per-prefix alias table, refusing with
// ErrOutOfMemory if the tables would exceed budget bytes (0 selects
// DefaultAliasBudget). threads <1 selects GOMAXPROCS.
func NewAliasFull(w *sampling.GraphWeights, budget int64, threads int) (*AliasFull, error) {
	if budget <= 0 {
		budget = DefaultAliasBudget
	}
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	g := w.Graph()
	numV := g.NumVertices()
	off := make([]int64, numV+1)
	for u := 0; u < numV; u++ {
		off[u+1] = off[u] + aliasSlots(g.Degree(temporal.Vertex(u)))
	}
	totalSlots := off[numV]
	if bytes := totalSlots * 12; bytes > budget {
		return nil, fmt.Errorf("%w: %d table slots need %d bytes (budget %d)",
			ErrOutOfMemory, totalSlots, bytes, budget)
	}
	af := &AliasFull{
		g:     g,
		w:     w,
		off:   off,
		prob:  make([]float64, totalSlots),
		alias: make([]int32, totalSlots),
	}
	var wg sync.WaitGroup
	chunk := (numV + threads - 1) / threads
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < numV; lo += chunk {
		hi := lo + chunk
		if hi > numV {
			hi = numV
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch []int32
			for u := lo; u < hi; u++ {
				deg := g.Degree(temporal.Vertex(u))
				if deg == 0 {
					continue
				}
				if cap(scratch) < 2*deg {
					scratch = make([]int32, 2*deg)
				}
				ws := w.Vertex(temporal.Vertex(u))
				base := off[u]
				for k := 1; k <= deg; k++ {
					s := base + int64(k)*int64(k-1)/2
					sampling.FillAlias(ws[:k], af.prob[s:s+int64(k)], af.alias[s:s+int64(k)], scratch[:2*k])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return af, nil
}

// Name implements the engine's Sampler contract.
func (af *AliasFull) Name() string { return "AliasMethod" }

// Sample implements the Sampler contract with a single O(1) alias draw from
// the prefix-k table.
func (af *AliasFull) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := af.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	s := af.off[u] + int64(k)*int64(k-1)/2
	idx, ok := sampling.SampleAliasSlots(af.prob[s:s+int64(k)], af.alias[s:s+int64(k)], r)
	return idx, 2, ok
}

// MemoryBytes implements the Sampler contract: the O(ΣD²) table storage plus
// the shared weights.
func (af *AliasFull) MemoryBytes() int64 {
	return int64(len(af.prob))*8 + int64(len(af.alias))*4 +
		int64(len(af.off))*8 + af.w.MemoryBytes()
}

// EstimateAliasBytes reports the table bytes the full alias method would
// need on graph g, letting experiments print OOM rows without attempting the
// allocation.
func EstimateAliasBytes(g *temporal.Graph) int64 {
	total := int64(0)
	for u := 0; u < g.NumVertices(); u++ {
		total += aliasSlots(g.Degree(temporal.Vertex(u)))
	}
	return total * 12
}
