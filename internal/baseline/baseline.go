// Package baseline reimplements the sampling strategies of the systems TEA
// is evaluated against (§5.1): GraphWalker's full-scan sampling, KnightKing's
// rejection sampling, the CTDNE reference walker, and the naive
// per-candidate-set alias method of §3.1. Each implements the engine's
// Sampler contract, so Table 4 / Figures 2, 9–12 compare strategies under an
// identical walk loop.
//
// The baselines deliberately do NOT use TEA's insight that the walker-time
// dependency of exponential weights cancels within a vertex (Eq. 3): they
// recompute the temporal weight of every edge they touch, exactly as engines
// unaware of the trick must.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
)

// ErrCustomWeight is returned for user-defined Dynamic_weight functions: the
// baseline reimplementations model the published systems, which only ship
// the paper's built-in temporal weights.
var ErrCustomWeight = errors.New("baseline: custom weight functions are not supported by baseline samplers")

// ErrOutOfMemory is returned by the full alias method when its O(ΣD²) tables
// exceed the configured budget — the "OOM" entries of Figure 12.
var ErrOutOfMemory = errors.New("baseline: alias method exceeds memory budget")

// weightEval evaluates one edge's temporal weight on demand, the way a
// temporal-oblivious engine must. times is the vertex's newest-first
// timestamp list; normalization for the exponential kind uses times[0] (the
// newest out-edge), constant within a vertex, so ratios match Eq. 3.
type weightEval struct {
	kind   sampling.WeightKind
	lambda float64
	minT   temporal.Time
}

func newWeightEval(g *temporal.Graph, spec sampling.WeightSpec) (weightEval, error) {
	if spec.Custom != nil {
		return weightEval{}, ErrCustomWeight
	}
	lambda := spec.Lambda
	if lambda == 0 {
		lambda = 1
	}
	minT, _ := g.TimeRange()
	switch spec.Kind {
	case sampling.WeightUniform, sampling.WeightLinearTime, sampling.WeightLinearRank, sampling.WeightExponential:
		return weightEval{kind: spec.Kind, lambda: lambda, minT: minT}, nil
	default:
		return weightEval{}, fmt.Errorf("baseline: unknown weight kind %v", spec.Kind)
	}
}

// at computes the weight of edge i of a vertex whose newest-first timestamps
// are times.
func (w weightEval) at(times []temporal.Time, i int) float64 {
	switch w.kind {
	case sampling.WeightUniform:
		return 1
	case sampling.WeightLinearTime:
		return float64(times[i]-w.minT) + 1
	case sampling.WeightLinearRank:
		return float64(len(times) - i)
	default: // exponential
		return math.Exp(w.lambda * float64(times[i]-times[0]))
	}
}

// dynamic reports whether the weight depends on temporal information in a
// way that forces per-step recomputation in engines without TEA's
// normalization trick (§3.1): the exponential family.
func (w weightEval) dynamic() bool {
	return w.kind == sampling.WeightExponential
}
