package baseline

import (
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// KnightKing models KnightKing's rejection-based strategy (§2.2, Figure 3d):
// propose a uniform candidate, accept with probability weight/envelope,
// repeat. No per-vertex index is needed (the strength of rejection sampling —
// weight changes never invalidate precomputed state), but skewed temporal
// weights collapse the accept area: expected trials are 1/ε = k·max/Σw, which
// approaches the degree for exponential weights (§3.1, §4.3).
//
// The envelope is the weight of the newest candidate — an O(1) bound because
// every built-in temporal weight is non-increasing along the newest-first
// list. When the trial budget is exhausted (astronomically unlikely below the
// paper's skew levels, routine beyond them), the sampler falls back to one
// exact full scan so walks always make progress; the fallback's cost is
// charged to the step.
type KnightKing struct {
	g      *temporal.Graph
	eval   weightEval
	static *staticITS // non-nil for walker-independent weights (§4.3)
	// maxTrials bounds the rejection loop; 0 selects 64·k.
	maxTrials int
}

// NewKnightKing builds the baseline for the given graph and weight spec.
func NewKnightKing(g *temporal.Graph, spec sampling.WeightSpec) (*KnightKing, error) {
	ev, err := newWeightEval(g, spec)
	if err != nil {
		return nil, err
	}
	kk := &KnightKing{g: g, eval: ev}
	if !ev.dynamic() {
		// §4.3: for the linear temporal weight walk KnightKing uses ITS.
		kk.static = newStaticITS(g, ev)
	}
	return kk, nil
}

// Name implements the engine's Sampler contract.
func (kk *KnightKing) Name() string { return "KnightKing" }

// Sample implements the Sampler contract via bounded rejection sampling.
func (kk *KnightKing) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	if kk.static != nil {
		return kk.static.sample(u, k, r)
	}
	deg := kk.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	times := kk.g.OutTimes(u)
	envelope := kk.eval.at(times, 0) // newest candidate bounds the prefix
	if !(envelope > 0) {
		return 0, 0, false
	}
	maxTrials := kk.maxTrials
	if maxTrials <= 0 {
		maxTrials = 64 * k
		if maxTrials < 1024 {
			maxTrials = 1024
		}
	}
	var evaluated int64
	for trial := 0; trial < maxTrials; trial++ {
		i := r.IntN(k)
		evaluated++
		if r.Range(envelope) < kk.eval.at(times, i) {
			return i, evaluated, true
		}
	}
	// Exact fallback: a single full scan, charged to this step.
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += kk.eval.at(times, i)
	}
	evaluated += int64(k)
	if !(sum > 0) {
		return 0, evaluated, false
	}
	x := r.Range(sum)
	acc := 0.0
	for i := 0; i < k; i++ {
		acc += kk.eval.at(times, i)
		evaluated++
		if x < acc {
			return i, evaluated, true
		}
	}
	return k - 1, evaluated, true
}

// MemoryBytes implements the Sampler contract: rejection sampling keeps no
// index; the static-weight ITS arrays are counted when present.
func (kk *KnightKing) MemoryBytes() int64 {
	if kk.static != nil {
		return kk.static.memoryBytes()
	}
	return 0
}
