package baseline

import (
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// CTDNE models the reference CTDNE walker of Figure 10: a straightforward
// research implementation with no system-level optimizations. Each step it
// materializes the candidate edge list afresh (allocation included),
// recomputes every temporal weight, normalizes into explicit probabilities,
// and scans the distribution — the behaviour of the published model code,
// which favours clarity over reuse.
type CTDNE struct {
	g    *temporal.Graph
	eval weightEval
}

// NewCTDNE builds the reference walker for the given graph and weight spec.
func NewCTDNE(g *temporal.Graph, spec sampling.WeightSpec) (*CTDNE, error) {
	ev, err := newWeightEval(g, spec)
	if err != nil {
		return nil, err
	}
	return &CTDNE{g: g, eval: ev}, nil
}

// Name implements the engine's Sampler contract.
func (c *CTDNE) Name() string { return "CTDNE" }

// Sample implements the Sampler contract in reference style: build the
// candidate list, build the normalized distribution, scan. Three passes and
// two allocations per step, deliberately unoptimized.
func (c *CTDNE) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := c.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	times := c.g.OutTimes(u)
	candidates := make([]temporal.Time, k)
	copy(candidates, times[:k])

	weights := make([]float64, k)
	total := 0.0
	for i := range candidates {
		weights[i] = c.eval.at(times, i)
		total += weights[i]
	}
	if !(total > 0) {
		return 0, int64(2 * k), false
	}
	probs := make([]float64, k)
	for i, w := range weights {
		probs[i] = w / total
	}
	x := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i, int64(4 * k), true
		}
	}
	return k - 1, int64(4 * k), true
}

// MemoryBytes implements the Sampler contract: no persistent index, only
// per-step transients.
func (c *CTDNE) MemoryBytes() int64 { return 0 }
