package baseline

import (
	"errors"
	"math"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// sampler is the structural contract shared with the core engine.
type sampler interface {
	Name() string
	Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool)
	MemoryBytes() int64
}

func commuteSamplers(t *testing.T, spec sampling.WeightSpec) map[string]sampler {
	t.Helper()
	g := temporal.CommuteGraph()
	gw, err := NewGraphWalker(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	kk, err := NewKnightKing(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewCTDNE(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	w := testutil.Weights(t, g, spec)
	af, err := NewAliasFull(w, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sampler{"gw": gw, "kk": kk, "ctdne": ct, "alias": af}
}

// All four baselines must sample the exact transition distribution for every
// candidate prefix — they differ in cost, never in correctness.
func TestBaselinesMatchExactDistribution(t *testing.T) {
	specs := map[string]sampling.WeightSpec{
		"uniform": {Kind: sampling.WeightUniform},
		"linear":  {Kind: sampling.WeightLinearRank},
		"exp":     sampling.Exponential(0.3),
	}
	g := temporal.CommuteGraph()
	for sname, spec := range specs {
		w := testutil.Weights(t, g, spec)
		for name, s := range commuteSamplers(t, spec) {
			r := xrand.New(1)
			for _, k := range []int{1, 3, 4, 7} {
				want := append([]float64(nil), w.Vertex(7)[:k]...)
				testutil.CheckDistribution(t, sname+"/"+name, want, 20000, func() (int, bool) {
					e, _, ok := s.Sample(7, k, r)
					return e, ok
				})
			}
		}
	}
}

func TestBaselineDegenerateCases(t *testing.T) {
	for name, s := range commuteSamplers(t, sampling.WeightSpec{Kind: sampling.WeightUniform}) {
		r := xrand.New(2)
		if _, _, ok := s.Sample(7, 0, r); ok {
			t.Errorf("%s: k=0 sampled", name)
		}
		if _, _, ok := s.Sample(1, 1, r); ok {
			t.Errorf("%s: degree-0 vertex sampled", name)
		}
		// k beyond the degree must clamp, not crash.
		if e, _, ok := s.Sample(7, 99, r); !ok || e < 0 || e >= 7 {
			t.Errorf("%s: clamped sample (%d,%v)", name, e, ok)
		}
		if s.MemoryBytes() < 0 {
			t.Errorf("%s: negative memory", name)
		}
	}
}

func TestCustomWeightRejected(t *testing.T) {
	g := temporal.CommuteGraph()
	spec := sampling.WeightSpec{Custom: func(temporal.Time) float64 { return 1 }}
	if _, err := NewGraphWalker(g, spec); !errors.Is(err, ErrCustomWeight) {
		t.Fatalf("GraphWalker err = %v", err)
	}
	if _, err := NewKnightKing(g, spec); !errors.Is(err, ErrCustomWeight) {
		t.Fatalf("KnightKing err = %v", err)
	}
	if _, err := NewCTDNE(g, spec); !errors.Is(err, ErrCustomWeight) {
		t.Fatalf("CTDNE err = %v", err)
	}
}

func TestNames(t *testing.T) {
	want := map[string]string{"gw": "GraphWalker", "kk": "KnightKing", "ctdne": "CTDNE", "alias": "AliasMethod"}
	for key, s := range commuteSamplers(t, sampling.WeightSpec{}) {
		if s.Name() != want[key] {
			t.Errorf("%s name = %q, want %q", key, s.Name(), want[key])
		}
	}
}

// The Figure 2 effect: on skewed exponential weights, KnightKing's rejection
// evaluates orders of magnitude more edges per draw than an exact method,
// and GraphWalker's full scan evaluates O(k); both dwarf the alias method.
func TestCostSeparationOnSkewedWeights(t *testing.T) {
	g := testutil.SkewedGraph(t, 32, 2048)
	spec := sampling.Exponential(0.1) // acceptance ratio ≈ 10/2048 on the hub
	gw, err := NewGraphWalker(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	kk, err := NewKnightKing(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	deg := g.Degree(0)
	var gwCost, kkCost int64
	const draws = 300
	for i := 0; i < draws; i++ {
		_, c1, ok1 := gw.Sample(0, deg, r)
		_, c2, ok2 := kk.Sample(0, deg, r)
		if !ok1 || !ok2 {
			t.Fatal("draw failed")
		}
		gwCost += c1
		kkCost += c2
	}
	gwAvg := float64(gwCost) / draws
	kkAvg := float64(kkCost) / draws
	if gwAvg < float64(deg) {
		t.Fatalf("GraphWalker avg cost %.0f below degree %d", gwAvg, deg)
	}
	if kkAvg < 50 {
		t.Fatalf("KnightKing rejection cost %.0f suspiciously low for skewed weights", kkAvg)
	}
}

func TestKnightKingFallbackTerminates(t *testing.T) {
	g := testutil.SkewedGraph(t, 16, 512)
	kk, err := NewKnightKing(g, sampling.Exponential(5)) // brutal skew
	if err != nil {
		t.Fatal(err)
	}
	kk.maxTrials = 8
	r := xrand.New(4)
	for i := 0; i < 200; i++ {
		e, _, ok := kk.Sample(0, g.Degree(0), r)
		if !ok || e < 0 || e >= g.Degree(0) {
			t.Fatalf("fallback draw (%d,%v)", e, ok)
		}
	}
}

func TestKnightKingFallbackDistribution(t *testing.T) {
	// With maxTrials=1 nearly every draw takes the exact fallback path, which
	// must still produce the right distribution.
	g := temporal.CommuteGraph()
	kk, err := NewKnightKing(g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	if err != nil {
		t.Fatal(err)
	}
	kk.maxTrials = 1
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	r := xrand.New(5)
	testutil.CheckDistribution(t, "kk-fallback", w.Vertex(7), 40000, func() (int, bool) {
		e, _, ok := kk.Sample(7, 7, r)
		return e, ok
	})
}

func TestAliasFullMemoryBudget(t *testing.T) {
	g := testutil.SkewedGraph(t, 32, 4096) // hub needs ~4096²/2 slots ≈ 100MB
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	if _, err := NewAliasFull(w, 1<<20, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("budget err = %v", err)
	}
	if est := EstimateAliasBytes(g); est < int64(4096)*4097/2*12 {
		t.Fatalf("estimate %d too small", est)
	}
}

func TestAliasFullQuadraticMemory(t *testing.T) {
	a := testutil.SkewedGraph(t, 16, 64)
	b := testutil.SkewedGraph(t, 16, 128)
	wa := testutil.Weights(t, a, sampling.WeightSpec{})
	wb := testutil.Weights(t, b, sampling.WeightSpec{})
	afa, err := NewAliasFull(wa, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	afb, err := NewAliasFull(wb, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hub degree doubled → hub table storage ~4×.
	ra := afa.MemoryBytes() - wa.MemoryBytes()
	rb := afb.MemoryBytes() - wb.MemoryBytes()
	if ratio := float64(rb) / float64(ra); ratio < 3 || ratio > 5 {
		t.Fatalf("alias storage ratio %.2f, want ≈4 (quadratic)", ratio)
	}
}

func TestWeightEvalMatchesGraphWeights(t *testing.T) {
	// The on-demand evaluator must agree (up to a per-vertex constant factor)
	// with the precomputed arrays TEA uses, for every kind.
	g := testutil.RandomGraph(t, 30, 1000, 300, 6)
	for _, spec := range []sampling.WeightSpec{
		{Kind: sampling.WeightUniform},
		{Kind: sampling.WeightLinearTime},
		{Kind: sampling.WeightLinearRank},
		sampling.Exponential(0.05),
	} {
		ev, err := newWeightEval(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		w := testutil.Weights(t, g, spec)
		for u := 0; u < g.NumVertices(); u++ {
			times := g.OutTimes(temporal.Vertex(u))
			if len(times) == 0 {
				continue
			}
			ws := w.Vertex(temporal.Vertex(u))
			// Ratios must match: both normalize within the vertex.
			base := ev.at(times, 0) / ws[0]
			for i := range times {
				got := ev.at(times, i) / ws[i]
				if math.Abs(got-base)/base > 1e-9 {
					t.Fatalf("%v: vertex %d edge %d ratio %v vs %v", spec.Kind, u, i, got, base)
				}
			}
		}
	}
}

func TestWeightEvalDynamicFlag(t *testing.T) {
	g := temporal.CommuteGraph()
	ev, err := newWeightEval(g, sampling.Exponential(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.dynamic() {
		t.Fatal("exponential not flagged dynamic")
	}
	ev, err = newWeightEval(g, sampling.WeightSpec{Kind: sampling.WeightLinearTime})
	if err != nil {
		t.Fatal(err)
	}
	if ev.dynamic() {
		t.Fatal("linear flagged dynamic")
	}
}

func BenchmarkGraphWalkerSample(b *testing.B) {
	benchBaseline(b, func(g *temporal.Graph, spec sampling.WeightSpec) (sampler, error) {
		return NewGraphWalker(g, spec)
	})
}

func BenchmarkKnightKingSample(b *testing.B) {
	benchBaseline(b, func(g *temporal.Graph, spec sampling.WeightSpec) (sampler, error) {
		return NewKnightKing(g, spec)
	})
}

func BenchmarkCTDNESample(b *testing.B) {
	benchBaseline(b, func(g *temporal.Graph, spec sampling.WeightSpec) (sampler, error) {
		return NewCTDNE(g, spec)
	})
}

func benchBaseline(b *testing.B, mk func(*temporal.Graph, sampling.WeightSpec) (sampler, error)) {
	g := testutil.SkewedGraph(b, 64, 4096)
	s, err := mk(g, sampling.Exponential(0.002))
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	deg := g.Degree(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(0, 1+r.IntN(deg), r)
	}
}
