package baseline

import (
	"sync"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// GraphWalker models the full-scan sampling strategy the paper measures for
// GraphWalker (§1, Figure 2): a static-graph engine has no structure for
// time-filtered candidate sets, so on every step it regenerates the
// transition distribution of the current candidate edge set — evaluating the
// temporal weight of all k candidates, building the sampling structure, and
// only then drawing. Cost O(D) per step; the 19,046 edges/step of Figure 2.
//
// For static weight kinds (uniform/linear), §4.3 instead credits GraphWalker
// with precomputed-ITS sampling at O(log D) per step; the full scan applies
// to the dynamic (exponential) family, where the engine has no valid
// precomputed distribution to reuse.
type GraphWalker struct {
	g      *temporal.Graph
	eval   weightEval
	static *staticITS // non-nil for walker-independent weights (§4.3)
	pool   sync.Pool  // *gwScratch
}

type gwScratch struct {
	w []float64
}

// NewGraphWalker builds the baseline for the given graph and weight spec.
func NewGraphWalker(g *temporal.Graph, spec sampling.WeightSpec) (*GraphWalker, error) {
	ev, err := newWeightEval(g, spec)
	if err != nil {
		return nil, err
	}
	gw := &GraphWalker{g: g, eval: ev}
	if !ev.dynamic() {
		// §4.3: for the linear temporal weight walk GraphWalker samples by
		// ITS over precomputed cumulative arrays, O(log D) per step.
		gw.static = newStaticITS(g, ev)
	}
	gw.pool.New = func() any { return &gwScratch{} }
	return gw, nil
}

// Name implements the engine's Sampler contract.
func (gw *GraphWalker) Name() string { return "GraphWalker" }

// Sample implements the Sampler contract by a full scan: one pass to evaluate
// every candidate weight, one pass of inverse transform sampling over the
// freshly built distribution.
func (gw *GraphWalker) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	if gw.static != nil {
		return gw.static.sample(u, k, r)
	}
	deg := gw.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	times := gw.g.OutTimes(u)
	sc := gw.pool.Get().(*gwScratch)
	defer gw.pool.Put(sc)
	if cap(sc.w) < k {
		sc.w = make([]float64, k)
	}
	w := sc.w[:k]
	total := 0.0
	for i := 0; i < k; i++ {
		w[i] = gw.eval.at(times, i)
		total += w[i]
	}
	idx, ok := sampling.LinearITS(w, total, r)
	// Full scan to build the distribution plus the ITS pass.
	return idx, int64(2 * k), ok
}

// MemoryBytes implements the Sampler contract. GraphWalker keeps no temporal
// index beyond the graph itself; its footprint is the per-step scratch, which
// is bounded by the maximum degree per worker.
func (gw *GraphWalker) MemoryBytes() int64 {
	if gw.static != nil {
		return gw.static.memoryBytes()
	}
	return int64(gw.g.MaxDegree()) * 8
}
