package experiments

import (
	"fmt"
	"time"

	"github.com/tea-graph/tea/internal/baseline"
	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/gen"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
)

// System identifies one engine configuration under test.
type System int

const (
	SysTEA         System = iota // HPAT + auxiliary index, candidate precompute
	SysTEANoIndex                // HPAT without the auxiliary index (Figure 11)
	SysTEAPAT                    // TEA with the flat PAT (Figure 12)
	SysTEAITS                    // TEA with plain ITS (Figure 12)
	SysTEAAlias                  // per-candidate-set alias method (Figure 12)
	SysGraphWalker               // full-scan baseline
	SysKnightKing                // rejection baseline
	SysCTDNE                     // reference walker (Figure 10)
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case SysTEA:
		return "TEA"
	case SysTEANoIndex:
		return "HPAT"
	case SysTEAPAT:
		return "PAT"
	case SysTEAITS:
		return "ITS"
	case SysTEAAlias:
		return "AliasMethod"
	case SysGraphWalker:
		return "GraphWalker"
	case SysKnightKing:
		return "KnightKing"
	case SysCTDNE:
		return "CTDNE"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// runOutcome is one timed engine execution.
type runOutcome struct {
	cost     stats.Cost
	total    time.Duration // preprocessing + walking (the Table 4 metric)
	walkOnly time.Duration
	memory   int64
	prep     core.PreprocessStats
}

// buildEngine assembles the engine for one system; TEA variants build their
// indices (charged to the outcome's total), baselines skip the candidate
// precompute the paper says they lack.
func buildEngine(g *temporal.Graph, app core.App, sys System, cfg Config) (*core.Engine, error) {
	switch sys {
	case SysTEA:
		return core.NewEngine(g, app, core.Options{Method: core.MethodHPAT, Threads: cfg.Threads})
	case SysTEANoIndex:
		return core.NewEngine(g, app, core.Options{Method: core.MethodHPATNoIndex, Threads: cfg.Threads})
	case SysTEAPAT:
		return core.NewEngine(g, app, core.Options{Method: core.MethodPAT, Threads: cfg.Threads})
	case SysTEAITS:
		return core.NewEngine(g, app, core.Options{Method: core.MethodITS, Threads: cfg.Threads})
	case SysTEAAlias:
		w, err := sampling.BuildGraphWeights(g, app.Weight, cfg.Threads)
		if err != nil {
			return nil, err
		}
		af, err := baseline.NewAliasFull(w, 0, cfg.Threads)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, app, core.Options{ExternalSampler: af, ExternalWeights: w, Threads: cfg.Threads})
	case SysGraphWalker:
		s, err := baseline.NewGraphWalker(g, app.Weight)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, app, core.Options{ExternalSampler: s, SkipCandidatePrecompute: true, Threads: cfg.Threads})
	case SysKnightKing:
		s, err := baseline.NewKnightKing(g, app.Weight)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, app, core.Options{ExternalSampler: s, SkipCandidatePrecompute: true, Threads: cfg.Threads})
	case SysCTDNE:
		s, err := baseline.NewCTDNE(g, app.Weight)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, app, core.Options{ExternalSampler: s, SkipCandidatePrecompute: true, Threads: cfg.Threads})
	default:
		return nil, fmt.Errorf("experiments: unknown system %v", sys)
	}
}

// runSystem times one full execution: engine construction (preprocessing)
// plus the walk, mirroring Table 4's "we include the preprocessing time of
// TEA in the total random walk time".
func runSystem(g *temporal.Graph, app core.App, sys System, cfg Config) (runOutcome, error) {
	start := time.Now()
	eng, err := buildEngine(g, app, sys, cfg)
	if err != nil {
		return runOutcome{}, err
	}
	walkStart := time.Now()
	res, err := eng.Run(core.WalkConfig{
		WalksPerVertex: cfg.WalksPerVertex,
		Length:         cfg.Length,
		Threads:        cfg.Threads,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{
		cost:     res.Cost,
		total:    time.Since(start),
		walkOnly: time.Since(walkStart),
		memory:   eng.MemoryBytes(),
		prep:     eng.Preprocess(),
	}, nil
}

// apps returns the three Table 4 applications for a profile.
func apps(p gen.Profile, cfg Config) []core.App {
	lambda := p.Lambda(cfg.Contrast)
	return []core.App{
		core.LinearTime(),
		core.ExponentialWalk(lambda),
		core.TemporalNode2Vec(cfg.P, cfg.Q, lambda),
	}
}
