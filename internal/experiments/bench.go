package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/trace"
)

// BenchSchema versions the BENCH_walks.json layout so future PRs can detect
// incompatible baselines instead of mis-diffing them.
const BenchSchema = "tea/bench-walks/v1"

// BenchConfigOut records the exact configuration a benchmark ran under;
// trajectory diffs are only meaningful between identical configurations.
type BenchConfigOut struct {
	Dataset        string `json:"dataset"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	Algorithm      string `json:"algorithm"`
	Sampler        string `json:"sampler"`
	WalksPerVertex int    `json:"walks_per_vertex"`
	Length         int    `json:"length"`
	Threads        int    `json:"threads"`
	Seed           uint64 `json:"seed"`
	Runs           int    `json:"runs"`
	GoMaxProcs     int    `json:"gomaxprocs"`
}

// BenchResult is the machine-readable walk-throughput baseline that
// cmd/teabench writes to BENCH_walks.json: the canonical headline metrics
// (walks/s, steps/s, edges/step) plus the run-latency distribution, so every
// future PR can diff its numbers against the recorded trajectory.
type BenchResult struct {
	Schema    string         `json:"schema"`
	Timestamp string         `json:"timestamp"`
	Config    BenchConfigOut `json:"config"`

	WalksPerSec  float64 `json:"walks_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	EdgesPerStep float64 `json:"edges_per_step"`

	TotalWalks   int64   `json:"total_walks"`
	TotalSteps   int64   `json:"total_steps"`
	TotalSeconds float64 `json:"total_seconds"`

	// Run-latency distribution across the repeated runs: exact nearest-rank
	// quantiles over the per-run wall times; RunSeconds holds the sorted
	// samples for offline analysis.
	P50RunSeconds float64   `json:"p50_run_seconds"`
	P95RunSeconds float64   `json:"p95_run_seconds"`
	P99RunSeconds float64   `json:"p99_run_seconds"`
	MaxRunSeconds float64   `json:"max_run_seconds"`
	RunSeconds    []float64 `json:"run_seconds"`

	PreprocessSeconds float64 `json:"preprocess_seconds"`
}

// WalkBench measures steady-state walk throughput: it builds an engine for
// the first profile of cfg (exponential-decay walk, the paper's headline
// application), runs the configured walk workload `runs` times, and
// aggregates throughput plus the run-latency distribution. One untimed
// warmup run precedes the measured ones.
func WalkBench(cfg Config, runs int) (*BenchResult, error) {
	res, _, _, err := walkBench(cfg, runs)
	return res, err
}

// WalkBenchTrace is WalkBench plus one extra, fully-traced run executed
// after the measured ones — tracing never touches the measured numbers — and
// written to traceOut as a Chrome trace_event document loadable in
// chrome://tracing or Perfetto.
func WalkBenchTrace(cfg Config, runs int, traceOut string) (*BenchResult, error) {
	res, eng, wcfg, err := walkBench(cfg, runs)
	if err != nil {
		return nil, err
	}
	tr := trace.New(trace.Config{SampleFraction: 1})
	id := tr.NewID()
	ctx, root := tr.StartRoot(context.Background(), "teabench.bench", id)
	root.SetStr("dataset", res.Config.Dataset)
	_, runErr := eng.RunContext(ctx, wcfg)
	root.SetError(runErr)
	root.End()
	if runErr != nil {
		return nil, fmt.Errorf("traced bench run: %w", runErr)
	}
	spans, _, ok := tr.Trace(id)
	if !ok {
		return nil, fmt.Errorf("traced bench run recorded no spans")
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return nil, err
	}
	if err := trace.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return nil, fmt.Errorf("writing %s: %w", traceOut, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

func walkBench(cfg Config, runs int) (*BenchResult, *core.Engine, core.WalkConfig, error) {
	cfg = cfg.normalized()
	if runs <= 0 {
		runs = 5
	}
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, nil, core.WalkConfig{}, err
	}
	app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
	prepStart := time.Now()
	eng, err := core.NewEngine(g, app, core.Options{Threads: cfg.Threads})
	if err != nil {
		return nil, nil, core.WalkConfig{}, err
	}
	prep := time.Since(prepStart)

	wcfg := core.WalkConfig{
		WalksPerVertex: cfg.WalksPerVertex,
		Length:         cfg.Length,
		Threads:        cfg.Threads,
		Seed:           cfg.Seed,
	}
	if _, err := eng.Run(wcfg); err != nil { // warmup
		return nil, nil, core.WalkConfig{}, err
	}

	res := &BenchResult{
		Schema:    BenchSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: BenchConfigOut{
			Dataset:        p.Name,
			Vertices:       g.NumVertices(),
			Edges:          g.NumEdges(),
			Algorithm:      app.Name,
			Sampler:        eng.Sampler().Name(),
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Threads:        cfg.Threads,
			Seed:           cfg.Seed,
			Runs:           runs,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
		},
		PreprocessSeconds: prep.Seconds(),
	}
	var edges int64
	for i := 0; i < runs; i++ {
		r, err := eng.Run(wcfg)
		if err != nil {
			return nil, nil, core.WalkConfig{}, err
		}
		secs := r.Duration.Seconds()
		res.RunSeconds = append(res.RunSeconds, secs)
		res.TotalWalks += r.Cost.WalksStarted
		res.TotalSteps += r.Cost.Steps
		edges += r.Cost.EdgesEvaluated
		res.TotalSeconds += secs
	}
	sort.Float64s(res.RunSeconds)
	res.MaxRunSeconds = res.RunSeconds[len(res.RunSeconds)-1]
	if res.TotalSeconds > 0 {
		res.WalksPerSec = float64(res.TotalWalks) / res.TotalSeconds
		res.StepsPerSec = float64(res.TotalSteps) / res.TotalSeconds
		res.EdgesPerSec = float64(edges) / res.TotalSeconds
	}
	if res.TotalSteps > 0 {
		res.EdgesPerStep = float64(edges) / float64(res.TotalSteps)
	}
	res.P50RunSeconds = nearestRank(res.RunSeconds, 0.50)
	res.P95RunSeconds = nearestRank(res.RunSeconds, 0.95)
	res.P99RunSeconds = nearestRank(res.RunSeconds, 0.99)
	return res, eng, wcfg, nil
}

// nearestRank returns the q-quantile of sorted samples by the nearest-rank
// definition (the smallest sample whose rank reaches ⌈q·n⌉).
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// WriteBench writes the result as indented JSON to path.
func WriteBench(res *BenchResult, path string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// RenderBench renders the headline numbers for the terminal.
func RenderBench(res *BenchResult) string {
	return fmt.Sprintf(
		"dataset=%s (%d vertices, %d edges) algo=%s runs=%d\n"+
			"walks/s=%.0f steps/s=%.0f edges/step=%.2f\n"+
			"run latency p50=%.4fs p95=%.4fs p99=%.4fs max=%.4fs\n",
		res.Config.Dataset, res.Config.Vertices, res.Config.Edges, res.Config.Algorithm, res.Config.Runs,
		res.WalksPerSec, res.StepsPerSec, res.EdgesPerStep,
		res.P50RunSeconds, res.P95RunSeconds, res.P99RunSeconds, res.MaxRunSeconds)
}
