package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/trace"
)

// BenchSchema versions the BENCH_walks.json layout so future PRs can detect
// incompatible baselines instead of mis-diffing them. v2 adds the per-kernel
// A/B section (kernels[]) and the kernel name to the config block.
const BenchSchema = "tea/bench-walks/v2"

// BenchConfigOut records the exact configuration a benchmark ran under;
// trajectory diffs are only meaningful between identical configurations.
type BenchConfigOut struct {
	Dataset        string `json:"dataset"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	Algorithm      string `json:"algorithm"`
	Sampler        string `json:"sampler"`
	Kernel         string `json:"kernel"`
	WalksPerVertex int    `json:"walks_per_vertex"`
	Length         int    `json:"length"`
	Threads        int    `json:"threads"`
	Seed           uint64 `json:"seed"`
	Runs           int    `json:"runs"`
	GoMaxProcs     int    `json:"gomaxprocs"`
}

// KernelBench is one walk-kernel variant's measured throughput inside an A/B
// bench: same engine, same workload, only WalkConfig.Kernel differs.
type KernelBench struct {
	Kernel string `json:"kernel"`

	WalksPerSec  float64 `json:"walks_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	EdgesPerStep float64 `json:"edges_per_step"`

	TotalWalks   int64   `json:"total_walks"`
	TotalSteps   int64   `json:"total_steps"`
	TotalSeconds float64 `json:"total_seconds"`

	P50RunSeconds float64   `json:"p50_run_seconds"`
	P95RunSeconds float64   `json:"p95_run_seconds"`
	P99RunSeconds float64   `json:"p99_run_seconds"`
	MaxRunSeconds float64   `json:"max_run_seconds"`
	RunSeconds    []float64 `json:"run_seconds"`
}

// BenchResult is the machine-readable walk-throughput baseline that
// cmd/teabench writes to BENCH_walks.json: the canonical headline metrics
// (walks/s, steps/s, edges/step) plus the run-latency distribution, so every
// future PR can diff its numbers against the recorded trajectory. When the
// bench ran more than one kernel (-kernel=both), Kernels holds every variant
// and the headline numbers mirror the last variant measured.
type BenchResult struct {
	Schema    string         `json:"schema"`
	Timestamp string         `json:"timestamp"`
	Config    BenchConfigOut `json:"config"`

	WalksPerSec  float64 `json:"walks_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	EdgesPerSec  float64 `json:"edges_per_sec"`
	EdgesPerStep float64 `json:"edges_per_step"`

	TotalWalks   int64   `json:"total_walks"`
	TotalSteps   int64   `json:"total_steps"`
	TotalSeconds float64 `json:"total_seconds"`

	// Run-latency distribution across the repeated runs: exact nearest-rank
	// quantiles over the per-run wall times; RunSeconds holds the sorted
	// samples for offline analysis.
	P50RunSeconds float64   `json:"p50_run_seconds"`
	P95RunSeconds float64   `json:"p95_run_seconds"`
	P99RunSeconds float64   `json:"p99_run_seconds"`
	MaxRunSeconds float64   `json:"max_run_seconds"`
	RunSeconds    []float64 `json:"run_seconds"`

	// Kernels holds one entry per measured kernel variant, in measurement
	// order (scalar before batch for -kernel=both, so the batch entry's
	// speedup is diffable against a warmed process).
	Kernels []KernelBench `json:"kernels"`

	PreprocessSeconds float64 `json:"preprocess_seconds"`
}

// WalkBench measures steady-state walk throughput: it builds an engine for
// the first profile of cfg (exponential-decay walk, the paper's headline
// application), runs the configured walk workload `runs` times, and
// aggregates throughput plus the run-latency distribution. One untimed
// warmup run precedes the measured ones. The kernel is left on auto.
func WalkBench(cfg Config, runs int) (*BenchResult, error) {
	res, _, _, err := walkBench(cfg, runs, []core.Kernel{core.KernelAuto})
	return res, err
}

// WalkBenchKernels is WalkBench over an explicit list of walk kernels: each
// kernel gets its own warmup plus `runs` measured runs against the same
// engine and workload, recorded as one KernelBench entry. The headline
// numbers of the result mirror the last kernel in the list.
func WalkBenchKernels(cfg Config, runs int, kernels []core.Kernel) (*BenchResult, error) {
	res, _, _, err := walkBench(cfg, runs, kernels)
	return res, err
}

// WalkBenchTrace is WalkBench plus one extra, fully-traced run executed
// after the measured ones — tracing never touches the measured numbers — and
// written to traceOut as a Chrome trace_event document loadable in
// chrome://tracing or Perfetto. The traced run uses the last kernel measured.
func WalkBenchTrace(cfg Config, runs int, traceOut string, kernels []core.Kernel) (*BenchResult, error) {
	res, eng, wcfg, err := walkBench(cfg, runs, kernels)
	if err != nil {
		return nil, err
	}
	tr := trace.New(trace.Config{SampleFraction: 1})
	id := tr.NewID()
	ctx, root := tr.StartRoot(context.Background(), "teabench.bench", id)
	root.SetStr("dataset", res.Config.Dataset)
	root.SetStr("kernel", wcfg.Kernel.String())
	_, runErr := eng.RunContext(ctx, wcfg)
	root.SetError(runErr)
	root.End()
	if runErr != nil {
		return nil, fmt.Errorf("traced bench run: %w", runErr)
	}
	spans, _, ok := tr.Trace(id)
	if !ok {
		return nil, fmt.Errorf("traced bench run recorded no spans")
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return nil, err
	}
	if err := trace.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return nil, fmt.Errorf("writing %s: %w", traceOut, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

func walkBench(cfg Config, runs int, kernels []core.Kernel) (*BenchResult, *core.Engine, core.WalkConfig, error) {
	cfg = cfg.normalized()
	if runs <= 0 {
		runs = 5
	}
	if len(kernels) == 0 {
		kernels = []core.Kernel{core.KernelAuto}
	}
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, nil, core.WalkConfig{}, err
	}
	app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
	prepStart := time.Now()
	eng, err := core.NewEngine(g, app, core.Options{Threads: cfg.Threads})
	if err != nil {
		return nil, nil, core.WalkConfig{}, err
	}
	prep := time.Since(prepStart)

	kernelName := kernels[0].String()
	if len(kernels) > 1 {
		kernelName = "both"
	}
	res := &BenchResult{
		Schema:    BenchSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: BenchConfigOut{
			Dataset:        p.Name,
			Vertices:       g.NumVertices(),
			Edges:          g.NumEdges(),
			Algorithm:      app.Name,
			Sampler:        eng.Sampler().Name(),
			Kernel:         kernelName,
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Threads:        cfg.Threads,
			Seed:           cfg.Seed,
			Runs:           runs,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
		},
		PreprocessSeconds: prep.Seconds(),
	}

	var lastCfg core.WalkConfig
	for _, kern := range kernels {
		wcfg := core.WalkConfig{
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Threads:        cfg.Threads,
			Seed:           cfg.Seed,
			Kernel:         kern,
		}
		lastCfg = wcfg
		kb, err := benchKernel(eng, wcfg, runs)
		if err != nil {
			return nil, nil, core.WalkConfig{}, err
		}
		res.Kernels = append(res.Kernels, kb)
	}

	// Headline numbers mirror the last variant so single-kernel benches keep
	// their v1 shape and A/B benches lead with the batch numbers.
	last := res.Kernels[len(res.Kernels)-1]
	res.WalksPerSec, res.StepsPerSec, res.EdgesPerSec, res.EdgesPerStep =
		last.WalksPerSec, last.StepsPerSec, last.EdgesPerSec, last.EdgesPerStep
	res.TotalWalks, res.TotalSteps, res.TotalSeconds =
		last.TotalWalks, last.TotalSteps, last.TotalSeconds
	res.P50RunSeconds, res.P95RunSeconds, res.P99RunSeconds, res.MaxRunSeconds =
		last.P50RunSeconds, last.P95RunSeconds, last.P99RunSeconds, last.MaxRunSeconds
	res.RunSeconds = last.RunSeconds
	return res, eng, lastCfg, nil
}

// benchKernel measures one kernel variant: an untimed warmup run, then `runs`
// measured runs aggregated into a KernelBench.
func benchKernel(eng *core.Engine, wcfg core.WalkConfig, runs int) (KernelBench, error) {
	kb := KernelBench{Kernel: wcfg.Kernel.String()}
	if _, err := eng.Run(wcfg); err != nil { // warmup
		return kb, err
	}
	var edges int64
	for i := 0; i < runs; i++ {
		r, err := eng.Run(wcfg)
		if err != nil {
			return kb, err
		}
		secs := r.Duration.Seconds()
		kb.RunSeconds = append(kb.RunSeconds, secs)
		kb.TotalWalks += r.Cost.WalksStarted
		kb.TotalSteps += r.Cost.Steps
		edges += r.Cost.EdgesEvaluated
		kb.TotalSeconds += secs
	}
	sort.Float64s(kb.RunSeconds)
	kb.MaxRunSeconds = kb.RunSeconds[len(kb.RunSeconds)-1]
	if kb.TotalSeconds > 0 {
		kb.WalksPerSec = float64(kb.TotalWalks) / kb.TotalSeconds
		kb.StepsPerSec = float64(kb.TotalSteps) / kb.TotalSeconds
		kb.EdgesPerSec = float64(edges) / kb.TotalSeconds
	}
	if kb.TotalSteps > 0 {
		kb.EdgesPerStep = float64(edges) / float64(kb.TotalSteps)
	}
	kb.P50RunSeconds = nearestRank(kb.RunSeconds, 0.50)
	kb.P95RunSeconds = nearestRank(kb.RunSeconds, 0.95)
	kb.P99RunSeconds = nearestRank(kb.RunSeconds, 0.99)
	return kb, nil
}

// nearestRank returns the q-quantile of sorted samples by the nearest-rank
// definition (the smallest sample whose rank reaches ⌈q·n⌉).
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// WriteBench writes the result as indented JSON to path.
func WriteBench(res *BenchResult, path string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// RenderBench renders the headline numbers for the terminal, plus one line
// per kernel variant (and the batch-over-scalar speedup) for A/B benches.
func RenderBench(res *BenchResult) string {
	s := fmt.Sprintf(
		"dataset=%s (%d vertices, %d edges) algo=%s kernel=%s runs=%d\n"+
			"walks/s=%.0f steps/s=%.0f edges/step=%.2f\n"+
			"run latency p50=%.4fs p95=%.4fs p99=%.4fs max=%.4fs\n",
		res.Config.Dataset, res.Config.Vertices, res.Config.Edges, res.Config.Algorithm,
		res.Config.Kernel, res.Config.Runs,
		res.WalksPerSec, res.StepsPerSec, res.EdgesPerStep,
		res.P50RunSeconds, res.P95RunSeconds, res.P99RunSeconds, res.MaxRunSeconds)
	if len(res.Kernels) > 1 {
		var scalar float64
		for _, k := range res.Kernels {
			s += fmt.Sprintf("  kernel=%-6s steps/s=%.0f walks/s=%.0f p50=%.4fs\n",
				k.Kernel, k.StepsPerSec, k.WalksPerSec, k.P50RunSeconds)
			if k.Kernel == "scalar" {
				scalar = k.StepsPerSec
			} else if k.Kernel == "batch" && scalar > 0 {
				s += fmt.Sprintf("  batch/scalar steps/s speedup: %.2fx\n", k.StepsPerSec/scalar)
			}
		}
	}
	return s
}
