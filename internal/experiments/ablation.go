package experiments

import (
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/pat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// AblationDegreeRow is one point of the degree-scaling ablation: per-sample
// latency of each sampling structure on a single hub of the given degree.
// This backs the §4.3 complexity table — ITS grows with log D, PAT with
// √D-ish trunk scans, HPAT stays near-flat — and explains where the Figure
// 12 runtime ordering crosses over as degrees grow.
type AblationDegreeRow struct {
	Degree    int
	ITS       time.Duration // per sample
	PAT       time.Duration
	HPAT      time.Duration // with auxiliary index
	HPATNoIdx time.Duration
}

// AblationDegreeScaling measures per-sample cost on hub vertices of
// increasing degree. degrees nil selects 2^10..2^20.
func AblationDegreeScaling(cfg Config, degrees []int) ([]AblationDegreeRow, error) {
	cfg = cfg.normalized()
	if len(degrees) == 0 {
		degrees = []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	}
	const samples = 200_000
	var rows []AblationDegreeRow
	for _, d := range degrees {
		g, err := hubGraph(d)
		if err != nil {
			return nil, err
		}
		w, err := sampling.BuildGraphWeights(g, sampling.Exponential(10.0/float64(d)), cfg.Threads)
		if err != nil {
			return nil, err
		}
		row := AblationDegreeRow{Degree: d}

		its := core.NewITSSampler(w)
		row.ITS = perSample(its.Sample, d, samples)

		p := pat.Build(w, pat.Config{Threads: cfg.Threads})
		row.PAT = perSample(p.Sample, d, samples)

		h := hpat.Build(w, hpat.Config{Threads: cfg.Threads})
		row.HPAT = perSample(h.Sample, d, samples)

		hn := hpat.Build(w, hpat.Config{Threads: cfg.Threads, DisableAuxIndex: true})
		row.HPATNoIdx = perSample(hn.Sample, d, samples)

		rows = append(rows, row)
	}
	return rows, nil
}

// hubGraph builds a two-vertex graph whose vertex 0 has the requested
// out-degree with distinct increasing timestamps.
func hubGraph(degree int) (*temporal.Graph, error) {
	edges := make([]temporal.Edge, degree)
	for i := range edges {
		edges[i] = temporal.Edge{Src: 0, Dst: 1, Time: temporal.Time(i + 1)}
	}
	return temporal.FromEdges(edges, temporal.WithNumVertices(2))
}

type sampleFn func(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool)

// perSample times draws over uniformly random candidate prefix lengths,
// the access pattern of a walk workload.
func perSample(fn sampleFn, degree, samples int) time.Duration {
	r := xrand.New(7)
	// Pre-draw prefix lengths so RNG cost inside/outside stays comparable.
	ks := make([]int, 4096)
	for i := range ks {
		ks[i] = 1 + r.IntN(degree)
	}
	start := time.Now()
	for i := 0; i < samples; i++ {
		if _, _, ok := fn(0, ks[i&4095], r); !ok {
			panic("experiments: ablation sample failed")
		}
	}
	return time.Since(start) / time.Duration(samples)
}

// AblationTrunkRow is one point of the PAT trunk-size policy ablation.
type AblationTrunkRow struct {
	TrunkSize int // 0 = the ⌊√D⌋ policy
	Label     string
	PerSample time.Duration
	Memory    int64
}

// AblationTrunkSize measures the PAT trunk-size trade-off of §3.2 on a hub
// of the given degree: small trunks push cost into the trunk ITS, large
// trunks into the in-trunk scan; ⌊√D⌋ balances them.
func AblationTrunkSize(cfg Config, degree int, trunkSizes []int) ([]AblationTrunkRow, error) {
	cfg = cfg.normalized()
	if degree <= 0 {
		degree = 1 << 16
	}
	if len(trunkSizes) == 0 {
		trunkSizes = []int{0, 2, 8, 32, 128, 1024, 8192}
	}
	g, err := hubGraph(degree)
	if err != nil {
		return nil, err
	}
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(10.0/float64(degree)), cfg.Threads)
	if err != nil {
		return nil, err
	}
	const samples = 100_000
	var rows []AblationTrunkRow
	for _, ts := range trunkSizes {
		idx := pat.Build(w, pat.Config{TrunkSize: ts, Threads: cfg.Threads})
		label := "sqrt(D)"
		if ts > 0 {
			label = ""
		}
		rows = append(rows, AblationTrunkRow{
			TrunkSize: idx.TrunkSizeOf(0),
			Label:     label,
			PerSample: perSample(idx.Sample, degree, samples),
			Memory:    idx.MemoryBytes(),
		})
	}
	return rows, nil
}
