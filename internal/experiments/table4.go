package experiments

import (
	"fmt"
	"time"

	"github.com/tea-graph/tea/internal/core"
)

// Table4Row is one (dataset, algorithm) cell group of Table 4: absolute
// runtimes of the three systems plus TEA's speedup over each baseline.
type Table4Row struct {
	Dataset     string
	Algorithm   string
	GraphWalker time.Duration
	KnightKing  time.Duration
	TEA         time.Duration
	SpeedupGW   float64
	SpeedupKK   float64
}

// Table4 reproduces Table 4: linear temporal weight, exponential temporal
// weight, and temporal node2vec walks on every profile under GraphWalker,
// KnightKing, and TEA. TEA's time includes its preprocessing (the paper's
// fairness rule).
func Table4(cfg Config) ([]Table4Row, error) {
	cfg = cfg.normalized()
	var rows []Table4Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", p.Name, err)
		}
		for _, app := range apps(p, cfg) {
			var gw, kk, tea runOutcome
			for _, sys := range []struct {
				sys System
				out *runOutcome
			}{
				{SysGraphWalker, &gw}, {SysKnightKing, &kk}, {SysTEA, &tea},
			} {
				out, err := runSystem(g, app, sys.sys, cfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s/%s: %w", p.Name, app.Name, sys.sys, err)
				}
				*sys.out = out
			}
			rows = append(rows, Table4Row{
				Dataset:     p.Name,
				Algorithm:   app.Name,
				GraphWalker: gw.total,
				KnightKing:  kk.total,
				TEA:         tea.total,
				SpeedupGW:   ratio(gw.total, tea.total),
				SpeedupKK:   ratio(kk.total, tea.total),
			})
		}
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// SensRow is one §5.2 parameter-sensitivity measurement.
type SensRow struct {
	Dataset string
	R, L    int
	Runtime time.Duration
}

// Sensitivity reproduces the §5.2 parameter study: runtime versus the walk
// multiplicity R ∈ {1,2,3}× the configured volume and walk length
// L ∈ {10, 40, 80}, on the first configured profile. Note the honest scale
// caveat recorded in EXPERIMENTS.md: on synthetic unique-timestamp streams
// temporal walks dead-end after ~a dozen steps, so unlike the paper's
// datasets, L beyond that ceiling cannot increase runtime.
func Sensitivity(cfg Config) ([]SensRow, error) {
	cfg = cfg.normalized()
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
	eng, err := core.NewEngine(g, app, core.Options{Method: core.MethodHPAT, Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}
	var rows []SensRow
	for _, r := range []int{1, 2, 3} {
		for _, l := range []int{10, 40, 80} {
			walks := r * cfg.WalksPerVertex
			start := time.Now()
			if _, err := eng.Run(core.WalkConfig{
				WalksPerVertex: walks, Length: l, Threads: cfg.Threads, Seed: cfg.Seed,
			}); err != nil {
				return nil, err
			}
			rows = append(rows, SensRow{Dataset: p.Name, R: r, L: l, Runtime: time.Since(start)})
		}
	}
	return rows, nil
}
