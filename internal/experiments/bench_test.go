package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/gen"
)

func TestWalkBenchWritesValidBaseline(t *testing.T) {
	cfg := Quick()
	cfg.Profiles = []gen.Profile{{Name: "t", Vertices: 60, Edges: 900, Skew: 0.6, Seed: 5}}
	cfg.WalksPerVertex = 2
	cfg.Length = 10

	res, err := WalkBench(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != BenchSchema {
		t.Fatalf("schema = %q", res.Schema)
	}
	if res.Config.Dataset != "t" || res.Config.Runs != 3 || res.Config.Length != 10 {
		t.Fatalf("config: %+v", res.Config)
	}
	if res.TotalWalks != 3*60*2 {
		t.Fatalf("total walks = %d, want %d", res.TotalWalks, 3*60*2)
	}
	if res.WalksPerSec <= 0 || res.StepsPerSec <= 0 || res.EdgesPerStep <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if len(res.RunSeconds) != 3 {
		t.Fatalf("run samples = %d", len(res.RunSeconds))
	}
	if res.P50RunSeconds > res.P99RunSeconds || res.P99RunSeconds > res.MaxRunSeconds {
		t.Fatalf("quantiles out of order: p50=%v p99=%v max=%v",
			res.P50RunSeconds, res.P99RunSeconds, res.MaxRunSeconds)
	}

	path := filepath.Join(t.TempDir(), "BENCH_walks.json")
	if err := WriteBench(res, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BenchResult
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("BENCH_walks.json not valid JSON: %v", err)
	}
	if decoded.Schema != BenchSchema || decoded.TotalWalks != res.TotalWalks {
		t.Fatalf("roundtrip mismatch: %+v", decoded)
	}
}

func TestWalkBenchKernelAB(t *testing.T) {
	cfg := Quick()
	cfg.Profiles = []gen.Profile{{Name: "t", Vertices: 80, Edges: 1200, Skew: 0.6, Seed: 5}}
	cfg.WalksPerVertex = 4
	cfg.Length = 12

	res, err := WalkBenchKernels(cfg, 2, []core.Kernel{core.KernelScalar, core.KernelBatch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Kernel != "both" {
		t.Fatalf("config kernel = %q, want both", res.Config.Kernel)
	}
	if len(res.Kernels) != 2 {
		t.Fatalf("kernel variants = %d, want 2", len(res.Kernels))
	}
	if res.Kernels[0].Kernel != "scalar" || res.Kernels[1].Kernel != "batch" {
		t.Fatalf("variant order: %q, %q", res.Kernels[0].Kernel, res.Kernels[1].Kernel)
	}
	for _, k := range res.Kernels {
		if k.TotalWalks != 2*80*4 {
			t.Fatalf("kernel %s total walks = %d, want %d", k.Kernel, k.TotalWalks, 2*80*4)
		}
		if k.StepsPerSec <= 0 || k.WalksPerSec <= 0 {
			t.Fatalf("kernel %s non-positive throughput: %+v", k.Kernel, k)
		}
	}
	// Both kernels replay the same seeded walks, so the work done must match
	// exactly — only the wall time may differ.
	if res.Kernels[0].TotalSteps != res.Kernels[1].TotalSteps {
		t.Fatalf("kernels disagree on steps: scalar=%d batch=%d",
			res.Kernels[0].TotalSteps, res.Kernels[1].TotalSteps)
	}
	// Headline numbers mirror the last (batch) variant.
	if res.StepsPerSec != res.Kernels[1].StepsPerSec || res.TotalSteps != res.Kernels[1].TotalSteps {
		t.Fatalf("headline numbers do not mirror the batch variant")
	}
	out := RenderBench(res)
	if !strings.Contains(out, "batch/scalar steps/s speedup") {
		t.Fatalf("render missing A/B speedup line:\n%s", out)
	}
}

func TestNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if q := nearestRank(s, 0.5); q != 2 {
		t.Fatalf("p50 = %v", q)
	}
	if q := nearestRank(s, 0.99); q != 4 {
		t.Fatalf("p99 = %v", q)
	}
	if q := nearestRank(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
}
