package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/tea-graph/tea/internal/gen"
)

func tinyCacheConfig() Config {
	cfg := Quick()
	cfg.Profiles = []gen.Profile{{Name: "t", Vertices: 60, Edges: 900, Skew: 0.6, Seed: 5}}
	cfg.WalksPerVertex = 4
	cfg.Length = 20
	cfg.Threads = 1
	return cfg
}

func TestCacheBench(t *testing.T) {
	res, err := CacheBench(tinyCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != CacheBenchSchema {
		t.Fatalf("schema %q", res.Schema)
	}
	if res.Config.StoreBytes <= 0 || res.Config.Walks != 60*4 {
		t.Fatalf("config not recorded: %+v", res.Config)
	}
	if res.Uncached.DeviceBytes <= 0 {
		t.Fatal("uncached baseline read nothing")
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	for _, pt := range res.Points {
		if pt.HitRate < 0 || pt.HitRate > 1 {
			t.Fatalf("hit rate %v out of range: %+v", pt.HitRate, pt)
		}
		if pt.DeviceBytes > res.Uncached.DeviceBytes {
			t.Fatalf("cached point read more than uncached: %+v", pt)
		}
		// The workload is identical at every point, so every byte the walk
		// requested was served either by the device or by the cache: the
		// split must sum exactly to the uncached device volume.
		if got := pt.DeviceBytes + pt.CacheServedBytes; got != res.Uncached.DeviceBytes {
			t.Fatalf("served-byte split %d != uncached %d at %+v",
				got, res.Uncached.DeviceBytes, pt)
		}
	}
	// The headline point must exist and show an actual reduction on the
	// skewed workload.
	if res.ReductionAt10Pct <= 1 {
		t.Fatalf("reduction at 10%% cache = %v, want > 1", res.ReductionAt10Pct)
	}
}

func TestWriteCacheBenchRoundTrip(t *testing.T) {
	res, err := CacheBench(tinyCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_cache.json")
	if err := WriteCacheBench(res, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back CacheBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != CacheBenchSchema || len(back.Points) != len(res.Points) {
		t.Fatalf("round trip mangled the artifact: %+v", back)
	}
	if RenderCacheBench(res) == "" {
		t.Fatal("empty render")
	}
}
