package experiments

import (
	"time"

	"github.com/tea-graph/tea/internal/dist"
	"github.com/tea-graph/tea/internal/sampling"
)

// DistRow is one partition-count measurement of the distributed-execution
// extension (§4.4 future work): walker migrations per step approximate the
// network messages a real cluster would exchange, and the per-partition
// index footprint shows the memory scale-out.
type DistRow struct {
	Partitions      int
	Runtime         time.Duration
	Rounds          int
	Steps           int64
	Messages        int64
	MessagesPerStep float64
	MemoryPerPart   int64
}

// DistScaling runs the exponential walk on the first configured profile
// across partition counts. partitionCounts nil selects {1, 2, 4, 8}.
func DistScaling(cfg Config, partitionCounts []int) ([]DistRow, error) {
	cfg = cfg.normalized()
	if len(partitionCounts) == 0 {
		partitionCounts = []int{1, 2, 4, 8}
	}
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	spec := sampling.Exponential(p.Lambda(cfg.Contrast))
	var rows []DistRow
	for _, parts := range partitionCounts {
		c, err := dist.New(g, spec, dist.Config{Partitions: parts, Threads: cfg.Threads})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(dist.RunConfig{
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		row := DistRow{
			Partitions:    parts,
			Runtime:       res.Duration,
			Rounds:        res.Rounds,
			Steps:         res.Cost.Steps,
			Messages:      res.Messages,
			MemoryPerPart: c.MemoryBytes() / int64(parts),
		}
		if res.Cost.Steps > 0 {
			row.MessagesPerStep = float64(res.Messages) / float64(res.Cost.Steps)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
