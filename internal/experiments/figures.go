package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/tea-graph/tea/internal/baseline"
	"github.com/tea-graph/tea/internal/core"
)

// Fig2Row is one dataset's average sampling cost (edges evaluated per step)
// under the three sampling strategies — Figure 2.
type Fig2Row struct {
	Dataset     string
	TEA         float64 // hybrid sampling
	KnightKing  float64 // rejection sampling
	GraphWalker float64 // full-scan sampling
}

// Fig2 reproduces Figure 2 on the exponential temporal weight walk, the
// regime where rejection sampling collapses.
func Fig2(cfg Config) ([]Fig2Row, error) {
	cfg = cfg.normalized()
	var rows []Fig2Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
		row := Fig2Row{Dataset: p.Name}
		for _, sc := range []struct {
			sys System
			val *float64
		}{
			{SysTEA, &row.TEA}, {SysKnightKing, &row.KnightKing}, {SysGraphWalker, &row.GraphWalker},
		} {
			out, err := runSystem(g, app, sc.sys, cfg)
			if err != nil {
				return nil, err
			}
			*sc.val = out.cost.EdgesPerStep()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Row is one dataset's engine memory footprint — Figure 9.
type Fig9Row struct {
	Dataset     string
	TEA         int64 // HPAT index + graph tables
	GraphWalker int64
	KnightKing  int64
}

// Fig9 reproduces Figure 9: resident index memory per system (TEA runs the
// full HPAT under the in-memory mode; the baselines keep only the graph).
func Fig9(cfg Config) ([]Fig9Row, error) {
	cfg = cfg.normalized()
	var rows []Fig9Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
		row := Fig9Row{Dataset: p.Name}
		for _, sc := range []struct {
			sys System
			val *int64
		}{
			{SysTEA, &row.TEA}, {SysGraphWalker, &row.GraphWalker}, {SysKnightKing, &row.KnightKing},
		} {
			eng, err := buildEngine(g, app, sc.sys, cfg)
			if err != nil {
				return nil, err
			}
			*sc.val = eng.MemoryBytes()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Row compares TEA against single-node KnightKing and the CTDNE
// reference on temporal node2vec — Figure 10.
type Fig10Row struct {
	Dataset    string
	TEA        time.Duration
	KnightKing time.Duration // "K-1-node"
	CTDNE      time.Duration
}

// Fig10 reproduces Figure 10.
func Fig10(cfg Config) ([]Fig10Row, error) {
	cfg = cfg.normalized()
	var rows []Fig10Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		app := core.TemporalNode2Vec(cfg.P, cfg.Q, p.Lambda(cfg.Contrast))
		row := Fig10Row{Dataset: p.Name}
		for _, sc := range []struct {
			sys System
			val *time.Duration
		}{
			{SysTEA, &row.TEA}, {SysKnightKing, &row.KnightKing}, {SysCTDNE, &row.CTDNE},
		} {
			out, err := runSystem(g, app, sc.sys, cfg)
			if err != nil {
				return nil, err
			}
			*sc.val = out.total
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig11Row is the piecewise optimization breakdown of Figure 11.
type Fig11Row struct {
	Dataset     string
	GraphWalker time.Duration // baseline
	HPAT        time.Duration // HPAT sampling without the auxiliary index
	HPATIndex   time.Duration // HPAT + auxiliary index (full TEA)
}

// Fig11 reproduces Figure 11 on temporal node2vec.
func Fig11(cfg Config) ([]Fig11Row, error) {
	cfg = cfg.normalized()
	var rows []Fig11Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		app := core.TemporalNode2Vec(cfg.P, cfg.Q, p.Lambda(cfg.Contrast))
		row := Fig11Row{Dataset: p.Name}
		for _, sc := range []struct {
			sys System
			val *time.Duration
		}{
			{SysGraphWalker, &row.GraphWalker}, {SysTEANoIndex, &row.HPAT}, {SysTEA, &row.HPATIndex},
		} {
			out, err := runSystem(g, app, sc.sys, cfg)
			if err != nil {
				return nil, err
			}
			*sc.val = out.total
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row compares the sampling methods of §5.4 on one dataset: runtime
// (12a) and memory (12b), with OOM recorded when the alias method exceeds
// its budget.
type Fig12Row struct {
	Dataset  string
	Method   string
	Runtime  time.Duration
	Memory   int64
	OOM      bool
	Estimate int64 // bytes the method would need when OOM
}

// Fig12 reproduces Figures 12a and 12b on temporal node2vec with the alias
// method, HPAT, PAT, and ITS.
func Fig12(cfg Config) ([]Fig12Row, error) {
	cfg = cfg.normalized()
	var rows []Fig12Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		app := core.TemporalNode2Vec(cfg.P, cfg.Q, p.Lambda(cfg.Contrast))
		for _, sys := range []System{SysTEAAlias, SysTEA, SysTEAPAT, SysTEAITS} {
			name := sys.String()
			if sys == SysTEA {
				name = "HPAT"
			}
			out, err := runSystem(g, app, sys, cfg)
			if errors.Is(err, baseline.ErrOutOfMemory) {
				rows = append(rows, Fig12Row{
					Dataset: p.Name, Method: name, OOM: true,
					Estimate: baseline.EstimateAliasBytes(g),
				})
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: fig12 %s/%s: %w", p.Name, name, err)
			}
			rows = append(rows, Fig12Row{
				Dataset: p.Name, Method: name, Runtime: out.total, Memory: out.memory,
			})
		}
	}
	return rows, nil
}
