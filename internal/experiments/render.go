package experiments

import (
	"fmt"
	"strings"
	"time"
)

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

func mib(b int64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

// RenderTable4 formats Table 4 rows.
func RenderTable4(rows []Table4Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Algorithm,
			fmt.Sprintf("%s (%.1fx)", dur(r.GraphWalker), r.SpeedupGW),
			fmt.Sprintf("%s (%.1fx)", dur(r.KnightKing), r.SpeedupKK),
			dur(r.TEA),
		})
	}
	return table([]string{"dataset", "algorithm", "GraphWalker", "KnightKing", "TEA"}, out)
}

// RenderFig2 formats Figure 2 rows.
func RenderFig2(rows []Fig2Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprintf("%.2f", r.TEA),
			fmt.Sprintf("%.1f", r.KnightKing),
			fmt.Sprintf("%.1f", r.GraphWalker),
		})
	}
	return table([]string{"dataset", "TEA (hybrid)", "KnightKing (rejection)", "GraphWalker (full-scan)"}, out)
}

// RenderFig9 formats Figure 9 rows.
func RenderFig9(rows []Fig9Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{r.Dataset, mib(r.TEA), mib(r.GraphWalker), mib(r.KnightKing)})
	}
	return table([]string{"dataset", "TEA", "GraphWalker", "KnightKing"}, out)
}

// RenderFig10 formats Figure 10 rows.
func RenderFig10(rows []Fig10Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, dur(r.TEA),
			fmt.Sprintf("%s (%.1fx)", dur(r.KnightKing), ratio(r.KnightKing, r.TEA)),
			fmt.Sprintf("%s (%.1fx)", dur(r.CTDNE), ratio(r.CTDNE, r.TEA)),
		})
	}
	return table([]string{"dataset", "TEA", "K-1-node", "CTDNE"}, out)
}

// RenderFig11 formats Figure 11 rows.
func RenderFig11(rows []Fig11Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, dur(r.GraphWalker),
			fmt.Sprintf("%s (%.1fx)", dur(r.HPAT), ratio(r.GraphWalker, r.HPAT)),
			fmt.Sprintf("%s (%.1fx)", dur(r.HPATIndex), ratio(r.GraphWalker, r.HPATIndex)),
		})
	}
	return table([]string{"dataset", "GraphWalker", "HPAT", "HPAT+Index"}, out)
}

// RenderFig12 formats Figure 12 rows.
func RenderFig12(rows []Fig12Row) string {
	out := [][]string{}
	for _, r := range rows {
		if r.OOM {
			out = append(out, []string{r.Dataset, r.Method, "OOM", fmt.Sprintf("needs %s", mib(r.Estimate))})
			continue
		}
		out = append(out, []string{r.Dataset, r.Method, dur(r.Runtime), mib(r.Memory)})
	}
	return table([]string{"dataset", "method", "runtime", "memory"}, out)
}

// RenderFig13Scaling formats Figures 13a–c rows.
func RenderFig13Scaling(rows []Fig13ScalingRow) string {
	out := [][]string{}
	for _, r := range rows {
		speedup := 0.0
		if r.MultiThread > 0 {
			speedup = float64(r.SingleThread) / float64(r.MultiThread)
		}
		out = append(out, []string{
			r.Dataset, dur(r.SingleThread),
			fmt.Sprintf("%s (%dT)", dur(r.MultiThread), r.Threads),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	return table([]string{"dataset", "1 thread", "N threads", "speedup"}, out)
}

// RenderFig13d formats Figure 13d rows.
func RenderFig13d(rows []Fig13dRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Degree),
			fmt.Sprintf("%d", r.BatchSize),
			dur(r.Incremental), dur(r.Rebuild),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	return table([]string{"degree", "batch", "incremental", "rebuild", "speedup"}, out)
}

// RenderFig13e formats Figure 13e rows.
func RenderFig13e(rows []Fig13eRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprintf("%d", r.Threads), dur(r.Total)})
	}
	return table([]string{"threads", "preprocessing"}, out)
}

// RenderFig14 formats Figure 14 rows.
func RenderFig14(rows []Fig14Row) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			dur(r.TEARuntime), mib(r.TEABytes), dur(r.TEAIOTime),
			dur(r.GWRuntime), mib(r.GWBytes), dur(r.GWIOTime),
			fmt.Sprintf("%.1fx", safeDiv(float64(r.GWBytes), float64(r.TEABytes))),
		})
	}
	return table([]string{"dataset", "TEA time", "TEA I/O", "TEA dev", "GW time", "GW I/O", "GW dev", "I/O ratio"}, out)
}

// RenderSens formats the parameter sensitivity rows.
func RenderSens(rows []SensRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{r.Dataset, fmt.Sprintf("%d", r.R), fmt.Sprintf("%d", r.L), dur(r.Runtime)})
	}
	return table([]string{"dataset", "R", "L", "runtime"}, out)
}

// RenderAblationDegree formats the degree-scaling ablation rows.
func RenderAblationDegree(rows []AblationDegreeRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Degree),
			fmt.Sprintf("%dns", r.ITS.Nanoseconds()),
			fmt.Sprintf("%dns", r.PAT.Nanoseconds()),
			fmt.Sprintf("%dns", r.HPAT.Nanoseconds()),
			fmt.Sprintf("%dns", r.HPATNoIdx.Nanoseconds()),
		})
	}
	return table([]string{"degree", "ITS/sample", "PAT/sample", "HPAT+Index/sample", "HPAT/sample"}, out)
}

// RenderAblationTrunk formats the PAT trunk-size ablation rows.
func RenderAblationTrunk(rows []AblationTrunkRow) string {
	out := [][]string{}
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.TrunkSize)
		if r.Label != "" {
			name = fmt.Sprintf("%d (%s)", r.TrunkSize, r.Label)
		}
		out = append(out, []string{name, fmt.Sprintf("%dns", r.PerSample.Nanoseconds()), mib(r.Memory)})
	}
	return table([]string{"trunkSize", "per sample", "memory"}, out)
}

// RenderDist formats the distributed-execution scaling rows.
func RenderDist(rows []DistRow) string {
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Partitions),
			dur(r.Runtime),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Steps),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.2f", r.MessagesPerStep),
			mib(r.MemoryPerPart),
		})
	}
	return table([]string{"partitions", "runtime", "rounds", "steps", "messages", "msgs/step", "mem/part"}, out)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
