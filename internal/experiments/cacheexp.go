package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tea-graph/tea/internal/blockcache"
	"github.com/tea-graph/tea/internal/ooc"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// CacheBenchSchema versions the BENCH_cache.json layout.
const CacheBenchSchema = "tea/bench-cache/v1"

// cacheZipfExponent skews the walk-start distribution: start vertices are
// drawn over the degree-descending vertex ranking with probability
// ∝ 1/rank^s. Real walk traffic (PPR queries, embedding refresh) concentrates
// on hub vertices; s = 1.1 is a standard web/social request skew.
const cacheZipfExponent = 1.1

// cacheSweepFractions are the cache sizes exercised per policy, as fractions
// of the on-disk store size. 0.10 is the headline point: a cache one tenth
// of the store must cut device reads at least in half on the skewed
// workload for the subsystem to pay its way.
var cacheSweepFractions = []float64{0.01, 0.05, 0.10, 0.25}

// CachePoint is one sweep point: a (policy, capacity) pair run over the
// identical Zipfian workload. Device* report true device traffic (the cache
// delegates I/O accounting to the store); CacheServedBytes is the read
// volume the cache absorbed.
type CachePoint struct {
	Policy        string  `json:"policy"`
	CapacityBytes int64   `json:"capacity_bytes"`
	CapacityFrac  float64 `json:"capacity_frac"`

	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`

	DeviceBytes      int64 `json:"device_bytes"`
	DevicePages      int64 `json:"device_pages"`
	CacheServedBytes int64 `json:"cache_served_bytes"`

	// SimReadSeconds is the CostModel device time for this point's reads;
	// SimSavedSeconds is the uncached baseline's time minus this.
	SimReadSeconds  float64 `json:"sim_read_seconds"`
	SimSavedSeconds float64 `json:"sim_saved_seconds"`
	RuntimeSeconds  float64 `json:"runtime_seconds"`
}

// CacheBenchConfigOut records the workload a cache sweep ran under.
type CacheBenchConfigOut struct {
	Dataset      string  `json:"dataset"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	StoreBytes   int64   `json:"store_bytes"`
	TrunkSize    int     `json:"trunk_size"`
	Walks        int     `json:"walks"`
	Length       int     `json:"length"`
	ZipfExponent float64 `json:"zipf_exponent"`
	Seed         uint64  `json:"seed"`
}

// CacheBenchResult is the machine-readable artifact cmd/teabench writes to
// BENCH_cache.json: the uncached baseline, the per-policy size sweep, and the
// headline reduction at the ~10%-of-store point.
type CacheBenchResult struct {
	Schema    string              `json:"schema"`
	Timestamp string              `json:"timestamp"`
	Config    CacheBenchConfigOut `json:"config"`

	Uncached CachePoint   `json:"uncached"`
	Points   []CachePoint `json:"points"`

	// Headline: device-byte reduction factor (uncached / cached) and
	// simulated read time saved at the LRU ~10%-of-store point.
	ReductionAt10Pct    float64 `json:"reduction_at_10pct"`
	SimSavedAt10PctSecs float64 `json:"sim_saved_at_10pct_seconds"`
}

// zipfStarts draws n walk-start vertices over the degree-descending vertex
// ranking with P(rank i) ∝ 1/(i+1)^s, deterministically from seed.
func zipfStarts(g *temporal.Graph, n int, s float64, seed uint64) []temporal.Vertex {
	numV := g.NumVertices()
	ranked := make([]temporal.Vertex, numV)
	for v := range ranked {
		ranked[v] = temporal.Vertex(v)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return g.Degree(ranked[i]) > g.Degree(ranked[j])
	})
	cum := make([]float64, numV+1)
	for i := 0; i < numV; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -s)
	}
	r := xrand.New(seed)
	starts := make([]temporal.Vertex, n)
	for i := range starts {
		x := r.Range(cum[numV])
		lo, hi := 0, numV-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cum[mid+1] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		starts[i] = ranked[lo]
	}
	return starts
}

// CacheBench sweeps block-cache capacity (both eviction policies) against a
// Zipfian-seeded walk workload on the first profile of cfg, replaying the
// identical workload uncached and at each sweep point. The DiskPAT, its
// on-disk layout, and the start list are built once; only the cache changes
// between points, so device-byte deltas are attributable to the cache alone.
func CacheBench(cfg Config) (*CacheBenchResult, error) {
	cfg = cfg.normalized()
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	g.PrecomputeCandidates(cfg.Threads)
	spec := sampling.Exponential(p.Lambda(cfg.Contrast))
	w, err := sampling.BuildGraphWeights(g, spec, cfg.Threads)
	if err != nil {
		return nil, err
	}
	store, err := ooc.NewTempStore()
	if err != nil {
		return nil, err
	}
	defer store.Close()
	dp, err := ooc.BuildDiskPAT(w, store, 0)
	if err != nil {
		return nil, err
	}
	storeBytes, err := store.Append(nil) // end offset == store size
	if err != nil {
		return nil, err
	}

	totalWalks := g.NumVertices() * cfg.WalksPerVertex
	starts := zipfStarts(g, totalWalks, cacheZipfExponent, cfg.Seed)

	res := &CacheBenchResult{
		Schema:    CacheBenchSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: CacheBenchConfigOut{
			Dataset:      p.Name,
			Vertices:     g.NumVertices(),
			Edges:        g.NumEdges(),
			StoreBytes:   storeBytes,
			TrunkSize:    ooc.DefaultTrunkSize,
			Walks:        totalWalks,
			Length:       cfg.Length,
			ZipfExponent: cacheZipfExponent,
			Seed:         cfg.Seed,
		},
	}

	// runPoint replays the workload with the sampler's current cache setup
	// and collects device counters (always from the store: device truth) and
	// cache stats (when one is enabled).
	runPoint := func(cache *blockcache.CachedStore, capBytes int64, policy string) (CachePoint, error) {
		store.ResetCounters()
		eng := ooc.NewEngine(g, dp, nil)
		runRes, err := eng.RunStarts(context.Background(), starts, cfg.Length, cfg.Seed)
		if err != nil {
			return CachePoint{}, err
		}
		pt := CachePoint{
			Policy:         policy,
			CapacityBytes:  capBytes,
			RuntimeSeconds: runRes.Duration.Seconds(),
		}
		if storeBytes > 0 {
			pt.CapacityFrac = float64(capBytes) / float64(storeBytes)
		}
		pt.DeviceBytes, _, _, _ = store.Counters()
		pt.DevicePages = store.PagesRead()
		pt.SimReadSeconds = ooc.DefaultSSD.ReadTime(pt.DeviceBytes, pt.DevicePages).Seconds()
		if cache != nil {
			s := cache.Stats()
			pt.Hits, pt.Misses, pt.Coalesced = s.Hits, s.Misses, s.Coalesced
			pt.Evictions = s.Evictions
			pt.HitRate = s.HitRate()
			pt.CacheServedBytes = s.BytesFromCache
		}
		return pt, nil
	}

	dp.EnableCache(ooc.CacheConfig{}) // explicit uncached baseline
	res.Uncached, err = runPoint(nil, 0, "none")
	if err != nil {
		return nil, err
	}

	for _, policy := range []blockcache.Policy{blockcache.PolicyLRU, blockcache.PolicyClock} {
		for _, frac := range cacheSweepFractions {
			capBytes := int64(frac * float64(storeBytes))
			if capBytes <= 0 {
				continue
			}
			cache := dp.EnableCache(ooc.CacheConfig{CapacityBytes: capBytes, Policy: policy})
			pt, err := runPoint(cache, capBytes, policy.String())
			if err != nil {
				return nil, err
			}
			pt.SimSavedSeconds = res.Uncached.SimReadSeconds - pt.SimReadSeconds
			res.Points = append(res.Points, pt)
			if policy == blockcache.PolicyLRU && frac == 0.10 {
				if pt.DeviceBytes > 0 {
					res.ReductionAt10Pct = float64(res.Uncached.DeviceBytes) / float64(pt.DeviceBytes)
				}
				res.SimSavedAt10PctSecs = pt.SimSavedSeconds
			}
		}
	}
	dp.EnableCache(ooc.CacheConfig{}) // release the last cache's resident bytes
	return res, nil
}

// WriteCacheBench writes the result as indented JSON to path.
func WriteCacheBench(res *CacheBenchResult, path string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// RenderCacheBench renders the sweep for the terminal.
func RenderCacheBench(res *CacheBenchResult) string {
	var b strings.Builder
	c := res.Config
	fmt.Fprintf(&b, "dataset=%s (%d vertices, %d edges) store=%s walks=%d length=%d zipf=%.2f\n",
		c.Dataset, c.Vertices, c.Edges, fmtBytes(c.StoreBytes), c.Walks, c.Length, c.ZipfExponent)
	fmt.Fprintf(&b, "%-7s %10s %7s %9s %9s %11s %11s %9s\n",
		"policy", "capacity", "frac", "hit rate", "evict", "device", "from-cache", "sim-saved")
	fmt.Fprintf(&b, "%-7s %10s %7s %9s %9s %11s %11s %9s\n",
		"none", "-", "-", "-", "-", fmtBytes(res.Uncached.DeviceBytes), "-", "-")
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "%-7s %10s %6.1f%% %8.1f%% %9d %11s %11s %8.3fs\n",
			pt.Policy, fmtBytes(pt.CapacityBytes), pt.CapacityFrac*100, pt.HitRate*100,
			pt.Evictions, fmtBytes(pt.DeviceBytes), fmtBytes(pt.CacheServedBytes), pt.SimSavedSeconds)
	}
	if res.ReductionAt10Pct > 0 {
		fmt.Fprintf(&b, "device-byte reduction at 10%% cache (lru): %.1fx (sim read time saved %.3fs)\n",
			res.ReductionAt10Pct, res.SimSavedAt10PctSecs)
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
