// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic dataset profiles: one driver per artifact,
// returning typed rows that cmd/teabench renders and EXPERIMENTS.md records.
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	Fig2      – average sampling cost (edges/step)
//	Table4    – runtime & speedups, 3 algorithms × 3 systems
//	Fig9      – memory usage
//	Fig10     – TEA vs KnightKing-1-node vs CTDNE
//	Sens      – R/L parameter sensitivity (§5.2)
//	Fig11     – HPAT and auxiliary-index piecewise breakdown
//	Fig12     – sampling-method runtime & memory (alias OOM included)
//	Fig13a–e  – preprocessing: candidate search, HPAT build, aux index,
//	            incremental updates, thread scaling
//	Fig14     – out-of-core runtime & disk I/O
package experiments

import (
	"runtime"

	"github.com/tea-graph/tea/internal/gen"
)

// Config parameterizes an experiment run.
type Config struct {
	// Profiles are the datasets; defaults to the four Table 3 profiles.
	Profiles []gen.Profile
	// WalksPerVertex is R (paper: 1) and Length is L (paper: 80).
	WalksPerVertex int
	Length         int
	// Threads bounds parallelism; <1 means GOMAXPROCS.
	Threads int
	// Seed drives every random choice.
	Seed uint64
	// Contrast calibrates the exponential decay: λ = Contrast / timespan
	// (50 reproduces the rejection-sampling collapse of Figure 2).
	Contrast float64
	// P and Q are the temporal node2vec parameters (paper: 0.5 and 2).
	P, Q float64
}

// Default returns the paper's evaluation settings over the scaled profiles.
//
// One deliberate calibration: the paper runs R=1 walks of L=80 on billion-
// edge streams whose walks touch roughly as many steps as the graph has
// edges. At 1/1000 scale with strictly increasing synthetic timestamps,
// temporal walks dead-end after a few steps, which would shrink the walking
// phase below the (included) preprocessing phase and hide every sampling
// effect. R=50 restores the paper's work ratio (walking ≈ 3-4× preprocessing,
// matching the 24% preprocessing share reported in §5.5); EXPERIMENTS.md
// discusses the calibration.
func defaultWalksPerVertex() int { return 50 }

// Default returns the calibrated full-scale configuration described above.
func Default() Config {
	return Config{
		Profiles:       gen.Profiles(),
		WalksPerVertex: defaultWalksPerVertex(),
		Length:         80,
		Threads:        runtime.GOMAXPROCS(0),
		Seed:           1,
		Contrast:       50,
		P:              0.5,
		Q:              2,
	}
}

// Quick returns a configuration over the 10×-smaller profiles, used by the
// repository benchmarks and CI.
func Quick() Config {
	c := Default()
	c.Profiles = gen.SmallProfiles()
	return c
}

func (c Config) normalized() Config {
	if len(c.Profiles) == 0 {
		c.Profiles = gen.Profiles()
	}
	if c.WalksPerVertex <= 0 {
		c.WalksPerVertex = 1
	}
	if c.Length <= 0 {
		c.Length = 80
	}
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Contrast <= 0 {
		c.Contrast = 50
	}
	if c.P <= 0 {
		c.P = 0.5
	}
	if c.Q <= 0 {
		c.Q = 2
	}
	return c
}
