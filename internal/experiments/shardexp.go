package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
)

// ShardBenchSchema versions the BENCH_shard.json layout.
const ShardBenchSchema = "tea/bench-shard/v1"

// ShardBenchConfigOut records the configuration the shard sweep ran under.
type ShardBenchConfigOut struct {
	Dataset        string `json:"dataset"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	Algorithm      string `json:"algorithm"`
	Transport      string `json:"transport"`
	WalksPerVertex int    `json:"walks_per_vertex"`
	Length         int    `json:"length"`
	Seed           uint64 `json:"seed"`
	Runs           int    `json:"runs"`
	GoMaxProcs     int    `json:"gomaxprocs"`
}

// ShardRow is one partition-count measurement of the sharded walk engine
// over loopback TCP: real wire frames, real sockets, N coordinator nodes in
// one process. Migration metrics quantify the §4.4 communication model — one
// batched frame per peer per step-synchronous round.
type ShardRow struct {
	Partitions int `json:"partitions"`

	WalksPerSec  float64 `json:"walks_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	FramesPerSec float64 `json:"migration_frames_per_sec"`

	// BytesPerHop is on-wire request bytes per migrated walker-step; the
	// frame header and request envelope amortize across the batch.
	BytesPerHop float64 `json:"bytes_per_hop"`
	// MigrationShare is the fraction of steps served by a peer rather than
	// the coordinating shard (≈ (P-1)/P for hash partitioning).
	MigrationShare float64 `json:"migration_share"`
	// SpeedupVsOne is this row's walks/s over the partitions=1 row's.
	SpeedupVsOne float64 `json:"speedup_vs_one"`

	TotalWalks int64   `json:"total_walks"`
	TotalSteps int64   `json:"total_steps"`
	Migrations int64   `json:"migrations"`
	Frames     int64   `json:"frames"`
	BytesSent  int64   `json:"bytes_sent"`
	Rounds     int     `json:"rounds"`
	Seconds    float64 `json:"seconds"`

	// MemoryPerShard is the mean per-shard index footprint: the memory
	// scale-out sharding buys.
	MemoryPerShard int64 `json:"memory_per_shard_bytes"`
}

// ShardBenchResult is the machine-readable shard sweep cmd/teabench writes
// to BENCH_shard.json.
type ShardBenchResult struct {
	Schema    string              `json:"schema"`
	Timestamp string              `json:"timestamp"`
	Config    ShardBenchConfigOut `json:"config"`
	Rows      []ShardRow          `json:"rows"`
}

// ShardBench sweeps the sharded walk engine over partition counts on
// loopback TCP: every shard is a full Node with its own wire listener and
// pooled peer clients, all walks of the configured workload run to
// completion (each shard coordinating the walks whose source it owns,
// concurrently), and the row records cluster-wide throughput plus migration
// traffic. partitions=1 is the single-shard baseline the speedups are
// relative to. partCounts nil selects {1, 2, 3}; one untimed warmup precedes
// the measured runs of each partition count.
func ShardBench(cfg Config, partCounts []int, runs int) (*ShardBenchResult, error) {
	cfg = cfg.normalized()
	if len(partCounts) == 0 {
		partCounts = []int{1, 2, 3}
	}
	if runs <= 0 {
		runs = 1
	}
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	spec := sampling.Exponential(p.Lambda(cfg.Contrast))

	res := &ShardBenchResult{
		Schema:    ShardBenchSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: ShardBenchConfigOut{
			Dataset:        p.Name,
			Vertices:       g.NumVertices(),
			Edges:          g.NumEdges(),
			Algorithm:      "exp",
			Transport:      "loopback-tcp",
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Seed:           cfg.Seed,
			Runs:           runs,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
		},
	}

	var basePerSec float64
	for _, parts := range partCounts {
		row, err := shardBenchOne(g, spec, cfg, parts, runs)
		if err != nil {
			return nil, err
		}
		if parts == 1 {
			basePerSec = row.WalksPerSec
		}
		if basePerSec > 0 {
			row.SpeedupVsOne = row.WalksPerSec / basePerSec
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// shardBenchOne stands up a parts-shard loopback cluster, runs the workload
// runs times (plus one warmup), and tears the cluster down.
func shardBenchOne(g *temporal.Graph, spec sampling.WeightSpec, cfg Config, parts, runs int) (*ShardRow, error) {
	nodes := make([]*shard.Node, parts)
	for i := 0; i < parts; i++ {
		n, err := shard.NewNode(g, spec, shard.Config{
			ShardID:    i,
			Partitions: parts,
			Threads:    cfg.Threads,
			Kernel:     core.KernelBatch,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, parts, err)
		}
		nodes[i] = n
	}

	// Loopback wire cluster: one listener per shard, pooled clients between
	// every pair. partitions=1 needs no transport (nothing ever migrates) but
	// gets the same code path for uniformity.
	servers := make([]*wire.Server, parts)
	addrs := make([]string, parts)
	for i, n := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(servers, nil)
			return nil, err
		}
		servers[i] = wire.NewServer(ln, n, nil)
		addrs[i] = ln.Addr().String()
	}
	callers := make([]*shard.Peers, parts)
	for i := range nodes {
		peerAddrs := make(map[int]string, parts-1)
		for j, a := range addrs {
			if j != i {
				peerAddrs[j] = a
			}
		}
		callers[i] = shard.NewPeers(peerAddrs, wire.ClientConfig{})
	}
	defer closeAll(servers, callers)

	req := shard.WalkRequest{
		WalksPerVertex: cfg.WalksPerVertex,
		Length:         cfg.Length,
		Seed:           cfg.Seed,
	}
	runCluster := func() ([]*shard.WalkResult, time.Duration, error) {
		results := make([]*shard.WalkResult, parts)
		errs := make([]error, parts)
		start := time.Now()
		var wg sync.WaitGroup
		for i, n := range nodes {
			wg.Add(1)
			go func(i int, n *shard.Node) {
				defer wg.Done()
				results[i], errs[i] = n.RunWalks(context.Background(), callers[i], req)
			}(i, n)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for i, err := range errs {
			if err != nil {
				return nil, 0, fmt.Errorf("shard %d run: %w", i, err)
			}
		}
		return results, elapsed, nil
	}

	if _, _, err := runCluster(); err != nil { // warmup
		return nil, err
	}
	row := &ShardRow{Partitions: parts}
	var memory int64
	for _, n := range nodes {
		memory += n.MemoryBytes()
	}
	row.MemoryPerShard = memory / int64(parts)
	for r := 0; r < runs; r++ {
		results, elapsed, err := runCluster()
		if err != nil {
			return nil, err
		}
		row.Seconds += elapsed.Seconds()
		for _, res := range results {
			row.TotalWalks += res.Cost.WalksStarted
			row.TotalSteps += res.Cost.Steps
			row.Migrations += res.Migrations
			row.Frames += res.Frames
			row.BytesSent += res.BytesSent
			if res.Rounds > row.Rounds {
				row.Rounds = res.Rounds
			}
		}
	}
	if row.Seconds > 0 {
		row.WalksPerSec = float64(row.TotalWalks) / row.Seconds
		row.StepsPerSec = float64(row.TotalSteps) / row.Seconds
		row.FramesPerSec = float64(row.Frames) / row.Seconds
	}
	if row.Migrations > 0 {
		row.BytesPerHop = float64(row.BytesSent) / float64(row.Migrations)
	}
	if row.TotalSteps > 0 {
		row.MigrationShare = float64(row.Migrations) / float64(row.TotalSteps)
	}
	return row, nil
}

func closeAll(servers []*wire.Server, callers []*shard.Peers) {
	for _, c := range callers {
		if c != nil {
			c.Close()
		}
	}
	for _, s := range servers {
		if s != nil {
			_ = s.Close()
		}
	}
}

// WriteShardBench writes the sweep as indented JSON to path.
func WriteShardBench(res *ShardBenchResult, path string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderShardBench renders the sweep as an aligned text table.
func RenderShardBench(res *ShardBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d vertices, %d edges, R=%d L=%d, %s\n",
		res.Config.Dataset, res.Config.Vertices, res.Config.Edges,
		res.Config.WalksPerVertex, res.Config.Length, res.Config.Transport)
	fmt.Fprintf(&b, "%-6s %12s %12s %10s %10s %10s %9s %8s\n",
		"parts", "walks/s", "steps/s", "frames/s", "bytes/hop", "migr.share", "mem/shard", "speedup")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-6d %12.0f %12.0f %10.0f %10.1f %10.3f %8dK %7.2fx\n",
			r.Partitions, r.WalksPerSec, r.StepsPerSec, r.FramesPerSec,
			r.BytesPerHop, r.MigrationShare, r.MemoryPerShard>>10, r.SpeedupVsOne)
	}
	return b.String()
}
