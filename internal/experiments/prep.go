package experiments

import (
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/stream"
	"github.com/tea-graph/tea/internal/temporal"
)

// Fig13ScalingRow is one dataset's phase time under single- and
// multi-threaded preprocessing (Figures 13a, 13b, 13c).
type Fig13ScalingRow struct {
	Dataset      string
	SingleThread time.Duration
	MultiThread  time.Duration
	Threads      int
}

// Fig13aCandidateSearch reproduces Figure 13a: per-in-edge candidate set
// search with 1 thread versus cfg.Threads.
func Fig13aCandidateSearch(cfg Config) ([]Fig13ScalingRow, error) {
	cfg = cfg.normalized()
	var rows []Fig13ScalingRow
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		t1 := timeIt(func() { g.PrecomputeCandidates(1) })
		tn := timeIt(func() { g.PrecomputeCandidates(cfg.Threads) })
		rows = append(rows, Fig13ScalingRow{Dataset: p.Name, SingleThread: t1, MultiThread: tn, Threads: cfg.Threads})
	}
	return rows, nil
}

// Fig13bHPATBuild reproduces Figure 13b: HPAT construction scaling.
func Fig13bHPATBuild(cfg Config) ([]Fig13ScalingRow, error) {
	cfg = cfg.normalized()
	var rows []Fig13ScalingRow
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		w, err := sampling.BuildGraphWeights(g, sampling.Exponential(p.Lambda(cfg.Contrast)), cfg.Threads)
		if err != nil {
			return nil, err
		}
		t1 := timeIt(func() { hpat.Build(w, hpat.Config{Threads: 1, DisableAuxIndex: true}) })
		tn := timeIt(func() { hpat.Build(w, hpat.Config{Threads: cfg.Threads, DisableAuxIndex: true}) })
		rows = append(rows, Fig13ScalingRow{Dataset: p.Name, SingleThread: t1, MultiThread: tn, Threads: cfg.Threads})
	}
	return rows, nil
}

// Fig13cAuxIndex reproduces Figure 13c: auxiliary index generation scaling.
func Fig13cAuxIndex(cfg Config) ([]Fig13ScalingRow, error) {
	cfg = cfg.normalized()
	var rows []Fig13ScalingRow
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		maxDeg := g.MaxDegree()
		t1 := timeIt(func() { hpat.BuildAuxIndexParallel(maxDeg, 1) })
		tn := timeIt(func() { hpat.BuildAuxIndexParallel(maxDeg, cfg.Threads) })
		rows = append(rows, Fig13ScalingRow{Dataset: p.Name, SingleThread: t1, MultiThread: tn, Threads: cfg.Threads})
	}
	return rows, nil
}

// Fig13dRow is one incremental-update measurement of Figure 13d.
type Fig13dRow struct {
	Degree      int
	BatchSize   int
	Incremental time.Duration
	Rebuild     time.Duration
	Speedup     float64
}

// Fig13dIncremental reproduces Figure 13d: appending a batch of newer edges
// to a vertex of a given degree, incrementally (segment append) versus
// rebuilding the vertex's HPAT from scratch.
func Fig13dIncremental(cfg Config, degrees []int, batches []int) ([]Fig13dRow, error) {
	cfg = cfg.normalized()
	if len(degrees) == 0 {
		degrees = []int{1, 100, 10_000, 1_000_000}
	}
	if len(batches) == 0 {
		batches = []int{100, 10_000}
	}
	var rows []Fig13dRow
	for _, b := range batches {
		for _, d := range degrees {
			inc, reb, err := incrementalVsRebuild(d, b)
			if err != nil {
				return nil, err
			}
			row := Fig13dRow{Degree: d, BatchSize: b, Incremental: inc, Rebuild: reb}
			if inc > 0 {
				row.Speedup = float64(reb) / float64(inc)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func incrementalVsRebuild(degree, batch int) (inc, reb time.Duration, err error) {
	mk := func() (*stream.Graph, error) {
		sg, err := stream.New(stream.Config{Weight: sampling.Exponential(1e-7), NumVertices: 2})
		if err != nil {
			return nil, err
		}
		if degree > 0 {
			pre := make([]temporal.Edge, degree)
			for i := range pre {
				pre[i] = temporal.Edge{Src: 0, Dst: 1, Time: temporal.Time(i + 1)}
			}
			if err := sg.AppendBatch(pre); err != nil {
				return nil, err
			}
			// Consolidate so both strategies start from one segment.
			sg.RebuildVertex(0)
		}
		return sg, nil
	}
	newBatch := func() []temporal.Edge {
		es := make([]temporal.Edge, batch)
		for i := range es {
			es[i] = temporal.Edge{Src: 0, Dst: 1, Time: temporal.Time(degree + i + 1)}
		}
		return es
	}

	// Incremental: TEA's segment append (with its LSM merges).
	sg, err := mk()
	if err != nil {
		return 0, 0, err
	}
	es := newBatch()
	inc = timeIt(func() { err = sg.AppendBatch(es) })
	if err != nil {
		return 0, 0, err
	}

	// Naive: append, then rebuild the whole vertex from scratch — the
	// baseline of Figure 13d.
	sg2, err := mk()
	if err != nil {
		return 0, 0, err
	}
	es2 := newBatch()
	reb = timeIt(func() {
		if err = sg2.AppendBatch(es2); err != nil {
			return
		}
		sg2.RebuildVertex(0)
	})
	if err != nil {
		return 0, 0, err
	}
	return inc, reb, nil
}

// Fig13eRow is one point of the preprocessing thread-scaling curve.
type Fig13eRow struct {
	Threads int
	Total   time.Duration
}

// Fig13ePreprocess reproduces Figure 13e: total preprocessing time of the
// largest configured profile across thread counts.
func Fig13ePreprocess(cfg Config, threadCounts []int) ([]Fig13eRow, error) {
	cfg = cfg.normalized()
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16}
	}
	p := cfg.Profiles[len(cfg.Profiles)-1]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
	var rows []Fig13eRow
	for _, th := range threadCounts {
		eng, err := core.NewEngine(g, app, core.Options{Method: core.MethodHPAT, Threads: th})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13eRow{Threads: th, Total: eng.Preprocess().Total})
	}
	return rows, nil
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
