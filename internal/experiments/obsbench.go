package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/reqcost"
)

// ObsBenchSchema versions the BENCH_obs.json layout.
const ObsBenchSchema = "tea/bench-obs/v1"

// ObsVariant is one accounting mode's measured throughput: the identical walk
// workload with per-request cost accounting off (plain context) or on (a
// reqcost.Collector attached the way the HTTP server attaches one, with the
// run's cost folded in after, mirroring the serving path exactly).
type ObsVariant struct {
	Accounting bool `json:"accounting"`

	WalksPerSec float64 `json:"walks_per_sec"`
	StepsPerSec float64 `json:"steps_per_sec"`

	TotalWalks   int64   `json:"total_walks"`
	TotalSteps   int64   `json:"total_steps"`
	TotalSeconds float64 `json:"total_seconds"`

	P50RunSeconds float64   `json:"p50_run_seconds"`
	MaxRunSeconds float64   `json:"max_run_seconds"`
	RunSeconds    []float64 `json:"run_seconds"`
}

// ObsBenchResult is the machine-readable accounting-overhead record that
// cmd/teabench writes to BENCH_obs.json: accounting-off vs accounting-on
// steps/s over the same engine and workload, and the relative overhead CI
// gates on (the observability plane must stay ≤3% off the walk hot path).
type ObsBenchResult struct {
	Schema    string         `json:"schema"`
	Timestamp string         `json:"timestamp"`
	Config    BenchConfigOut `json:"config"`

	Off ObsVariant `json:"off"`
	On  ObsVariant `json:"on"`

	// OverheadPct is (off.steps/s − on.steps/s) / off.steps/s × 100; negative
	// means the accounting-on runs happened to be faster (noise).
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsBench measures the cost-accounting overhead on the walk path: one engine
// for the first profile of cfg, `runs` measured runs per accounting mode
// (each mode gets its own untimed warmup), accounting-off measured first.
// The discipline under test: a request-scoped collector must add nothing to
// the hot loop — engine totals fold in once per run, and only inherently
// slow operations (device reads, migration frames) add live.
func ObsBench(cfg Config, runs int) (*ObsBenchResult, error) {
	cfg = cfg.normalized()
	if runs <= 0 {
		runs = 5
	}
	p := cfg.Profiles[0]
	g, err := p.Build()
	if err != nil {
		return nil, err
	}
	app := core.ExponentialWalk(p.Lambda(cfg.Contrast))
	eng, err := core.NewEngine(g, app, core.Options{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}

	wcfg := core.WalkConfig{
		WalksPerVertex: cfg.WalksPerVertex,
		Length:         cfg.Length,
		Threads:        cfg.Threads,
		Seed:           cfg.Seed,
	}
	res := &ObsBenchResult{
		Schema:    ObsBenchSchema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config: BenchConfigOut{
			Dataset:        p.Name,
			Vertices:       g.NumVertices(),
			Edges:          g.NumEdges(),
			Algorithm:      app.Name,
			Sampler:        eng.Sampler().Name(),
			Kernel:         wcfg.Kernel.String(),
			WalksPerVertex: cfg.WalksPerVertex,
			Length:         cfg.Length,
			Threads:        cfg.Threads,
			Seed:           cfg.Seed,
			Runs:           runs,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
		},
	}

	// One measured off+on pair per iteration, interleaved, after a joint
	// warmup of each mode: sequential blocks would attribute process warm-up
	// (CPU frequency, allocator steady state) entirely to whichever mode ran
	// first and drown the sub-percent effect under test.
	res.Off = ObsVariant{Accounting: false}
	res.On = ObsVariant{Accounting: true}
	for i := -1; i < runs; i++ { // i == -1 is the untimed warmup pair
		for _, v := range []*ObsVariant{&res.Off, &res.On} {
			d, walks, steps, err := obsRun(eng, wcfg, v.Accounting)
			if err != nil {
				return nil, err
			}
			if i < 0 {
				continue
			}
			secs := d.Seconds()
			v.RunSeconds = append(v.RunSeconds, secs)
			v.TotalWalks += walks
			v.TotalSteps += steps
			v.TotalSeconds += secs
		}
	}
	for _, v := range []*ObsVariant{&res.Off, &res.On} {
		sort.Float64s(v.RunSeconds)
		v.MaxRunSeconds = v.RunSeconds[len(v.RunSeconds)-1]
		v.P50RunSeconds = nearestRank(v.RunSeconds, 0.50)
		if v.TotalSeconds > 0 {
			v.WalksPerSec = float64(v.TotalWalks) / v.TotalSeconds
			v.StepsPerSec = float64(v.TotalSteps) / v.TotalSeconds
		}
	}
	if res.Off.StepsPerSec > 0 {
		res.OverheadPct = (res.Off.StepsPerSec - res.On.StepsPerSec) / res.Off.StepsPerSec * 100
	}
	return res, nil
}

// obsRun executes one walk run in the given accounting mode. With accounting
// on, the run gets a fresh collector on its context and the run cost folded
// in afterward — the exact per-request shape of the serving path — and the
// fold is verified so the bench cannot silently measure a disconnected
// collector.
func obsRun(eng *core.Engine, wcfg core.WalkConfig, accounting bool) (time.Duration, int64, int64, error) {
	ctx := context.Background()
	var col *reqcost.Collector
	if accounting {
		ctx, col = reqcost.Attach(ctx)
	}
	r, err := eng.RunContext(ctx, wcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	if accounting {
		col.AddEngine(r.Cost)
		if snap := col.Snapshot(); snap.Steps != r.Cost.Steps {
			return 0, 0, 0, fmt.Errorf("obs bench: collector lost steps: %d != %d", snap.Steps, r.Cost.Steps)
		}
	}
	return r.Duration, r.Cost.WalksStarted, r.Cost.Steps, nil
}

// WriteObsBench writes the result as indented JSON to path.
func WriteObsBench(res *ObsBenchResult, path string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// RenderObsBench renders the A/B for the terminal.
func RenderObsBench(res *ObsBenchResult) string {
	return fmt.Sprintf(
		"dataset=%s (%d vertices, %d edges) algo=%s runs=%d\n"+
			"accounting=off steps/s=%.0f walks/s=%.0f p50=%.4fs\n"+
			"accounting=on  steps/s=%.0f walks/s=%.0f p50=%.4fs\n"+
			"accounting overhead: %.2f%% of steps/s\n",
		res.Config.Dataset, res.Config.Vertices, res.Config.Edges, res.Config.Algorithm, res.Config.Runs,
		res.Off.StepsPerSec, res.Off.WalksPerSec, res.Off.P50RunSeconds,
		res.On.StepsPerSec, res.On.WalksPerSec, res.On.P50RunSeconds,
		res.OverheadPct)
}
