package experiments

import (
	"strings"
	"testing"

	"github.com/tea-graph/tea/internal/gen"
)

// tiny returns a fast configuration for tests: one small but heavy-tailed
// dataset (the regime the paper's effects need: degrees well above TEA's
// trunk size) and walk volume high enough that sampling dominates
// preprocessing.
func tiny() Config {
	c := Quick()
	c.Profiles = []gen.Profile{{Name: "tiny", Vertices: 300, Edges: 15000, Skew: 0.85, Seed: 5}}
	c.WalksPerVertex = 40
	c.Length = 40
	return c
}

func TestTable4ShapeHolds(t *testing.T) {
	// Wall-clock assertions need decisive walk volume: at R=40 the TEA-vs-
	// GraphWalker margin on this tiny graph is ~1.5x, within scheduler noise
	// on a loaded single-CPU machine. R=120 makes the sampling phase
	// dominate preprocessing by an order of magnitude.
	cfg := tiny()
	cfg.WalksPerVertex = 120
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per algorithm)", len(rows))
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algorithm] = true
		if r.TEA <= 0 || r.GraphWalker <= 0 || r.KnightKing <= 0 {
			t.Fatalf("non-positive runtime in %+v", r)
		}
	}
	for _, a := range []string{"linear", "exponential"} {
		if !algos[a] {
			t.Fatalf("missing algorithm %s", a)
		}
	}
	// The Table 4 headline on the dynamic-weight algorithms: TEA beats the
	// full-scan baseline.
	for _, r := range rows {
		if r.Algorithm == "exponential" && r.SpeedupGW < 1 {
			t.Errorf("exponential: TEA slower than GraphWalker (%.2fx)", r.SpeedupGW)
		}
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "GraphWalker") || !strings.Contains(out, "tiny") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestFig2CostOrdering(t *testing.T) {
	rows, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Figure 2's shape: TEA evaluates a handful of edges per step; both
	// baselines evaluate many more on exponential weights.
	if r.TEA <= 0 || r.TEA > 30 {
		t.Fatalf("TEA edges/step = %.1f, want small", r.TEA)
	}
	if r.GraphWalker < 3*r.TEA {
		t.Fatalf("GraphWalker %.1f not ≫ TEA %.1f", r.GraphWalker, r.TEA)
	}
	if r.KnightKing < r.TEA {
		t.Fatalf("KnightKing %.1f below TEA %.1f", r.KnightKing, r.TEA)
	}
	if s := RenderFig2(rows); !strings.Contains(s, "rejection") {
		t.Fatal("render missing header")
	}
}

func TestFig9MemoryOrdering(t *testing.T) {
	rows, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// TEA's HPAT index costs memory; the baselines keep only the graph.
	if !(r.TEA > r.GraphWalker && r.TEA > r.KnightKing) {
		t.Fatalf("memory ordering wrong: %+v", r)
	}
	if s := RenderFig9(rows); !strings.Contains(s, "MiB") {
		t.Fatal("render missing units")
	}
}

func TestFig10TEAWins(t *testing.T) {
	rows, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TEA <= 0 || r.KnightKing <= 0 || r.CTDNE <= 0 {
		t.Fatalf("non-positive runtimes: %+v", r)
	}
	// CTDNE (reference implementation) must be the slowest of the three.
	if r.CTDNE < r.TEA {
		t.Errorf("CTDNE %.2v faster than TEA %.2v", r.CTDNE, r.TEA)
	}
	if s := RenderFig10(rows); !strings.Contains(s, "K-1-node") {
		t.Fatal("render header")
	}
}

func TestFig11OptimizationsStack(t *testing.T) {
	// Enough walk volume that sampling dominates TEA's one-off
	// preprocessing, as at the paper's scale.
	cfg := tiny()
	rows, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HPAT <= 0 || r.HPATIndex <= 0 || r.GraphWalker <= 0 {
		t.Fatalf("non-positive: %+v", r)
	}
	// Full-scan baseline must lose to both HPAT variants.
	if r.GraphWalker < r.HPATIndex {
		t.Errorf("GraphWalker %v faster than HPAT+Index %v", r.GraphWalker, r.HPATIndex)
	}
	if s := RenderFig11(rows); !strings.Contains(s, "HPAT+Index") {
		t.Fatal("render header")
	}
}

func TestFig12MethodsAndOOM(t *testing.T) {
	cfg := tiny()
	rows, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(rows))
	}
	methods := map[string]Fig12Row{}
	for _, r := range rows {
		methods[r.Method] = r
	}
	for _, m := range []string{"AliasMethod", "HPAT", "PAT", "ITS"} {
		if _, ok := methods[m]; !ok {
			t.Fatalf("missing method %s", m)
		}
	}
	// Memory ordering (Figure 12b): HPAT > PAT ≥ ITS (when alias fits, it
	// dwarfs everything).
	if !methods["AliasMethod"].OOM && methods["AliasMethod"].Memory < methods["HPAT"].Memory {
		t.Errorf("alias memory %d below HPAT %d", methods["AliasMethod"].Memory, methods["HPAT"].Memory)
	}
	if methods["HPAT"].Memory < methods["PAT"].Memory {
		t.Errorf("HPAT memory %d below PAT %d", methods["HPAT"].Memory, methods["PAT"].Memory)
	}
	if s := RenderFig12(rows); !strings.Contains(s, "HPAT") {
		t.Fatal("render")
	}
}

func TestFig13Scaling(t *testing.T) {
	cfg := tiny()
	a, err := Fig13aCandidateSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig13bHPATBuild(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig13cAuxIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]Fig13ScalingRow{a, b, c} {
		if len(rows) != 1 || rows[0].SingleThread <= 0 {
			t.Fatalf("bad scaling rows: %+v", rows)
		}
	}
	if s := RenderFig13Scaling(a); !strings.Contains(s, "threads") {
		t.Fatal("render")
	}
}

func TestFig13dIncrementalSpeedup(t *testing.T) {
	rows, err := Fig13dIncremental(tiny(), []int{1, 100, 10_000}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The Figure 13d shape: speedup grows with degree/batch; at degree ≫
	// batch the incremental path must win clearly.
	last := rows[len(rows)-1]
	if last.Degree != 10_000 || last.Speedup < 5 {
		t.Fatalf("degree-10k speedup %.1fx, want ≫1", last.Speedup)
	}
	if s := RenderFig13d(rows); !strings.Contains(s, "incremental") {
		t.Fatal("render")
	}
}

func TestFig13ePreprocessScaling(t *testing.T) {
	rows, err := Fig13ePreprocess(tiny(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Total <= 0 || rows[1].Total <= 0 {
		t.Fatalf("rows: %+v", rows)
	}
	if s := RenderFig13e(rows); !strings.Contains(s, "preprocessing") {
		t.Fatal("render")
	}
}

func TestFig14IOSeparation(t *testing.T) {
	// The out-of-core effect needs degrees well above the trunk size; use a
	// hub-dominated profile (the regime of the paper's datasets).
	cfg := tiny()
	cfg.Profiles = []gen.Profile{{Name: "hubby", Vertices: 100, Edges: 40000, Skew: 1.0, Seed: 6}}
	cfg.Length = 10
	rows, err := Fig14OutOfCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TEABytes <= 0 || r.GWBytes <= 0 {
		t.Fatalf("no I/O recorded: %+v", r)
	}
	// Figure 14b's shape: the baseline reads far more bytes.
	if r.GWBytes < 2*r.TEABytes {
		t.Errorf("I/O separation weak: GW %d vs TEA %d", r.GWBytes, r.TEABytes)
	}
	if r.GWIOTime <= r.TEAIOTime {
		t.Errorf("simulated device time ordering wrong: %+v", r)
	}
	if s := RenderFig14(rows); !strings.Contains(s, "I/O ratio") {
		t.Fatal("render")
	}
}

func TestSensitivityMonotone(t *testing.T) {
	rows, err := Sensitivity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	if s := RenderSens(rows); !strings.Contains(s, "runtime") {
		t.Fatal("render")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if len(c.Profiles) != 4 || c.WalksPerVertex != 1 || c.Length != 80 ||
		c.Threads < 1 || c.Contrast != 50 || c.P != 0.5 || c.Q != 2 {
		t.Fatalf("normalized config: %+v", c)
	}
	if len(Default().Profiles) != 4 || len(Quick().Profiles) != 4 {
		t.Fatal("default profiles")
	}
}

func TestSystemString(t *testing.T) {
	for sys, want := range map[System]string{
		SysTEA: "TEA", SysTEANoIndex: "HPAT", SysTEAPAT: "PAT", SysTEAITS: "ITS",
		SysTEAAlias: "AliasMethod", SysGraphWalker: "GraphWalker",
		SysKnightKing: "KnightKing", SysCTDNE: "CTDNE", System(99): "System(99)",
	} {
		if sys.String() != want {
			t.Errorf("%d -> %q, want %q", int(sys), sys.String(), want)
		}
	}
}

func TestDistScaling(t *testing.T) {
	rows, err := DistScaling(tiny(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Steps != rows[1].Steps {
		t.Fatalf("partitioning changed work: %d vs %d steps", rows[0].Steps, rows[1].Steps)
	}
	if rows[0].Messages != 0 || rows[1].Messages == 0 {
		t.Fatalf("message accounting: %+v", rows)
	}
	// Hash partitioning sends ≈ (P-1)/P of moves across workers.
	if f := rows[1].MessagesPerStep; f < 0.4 || f > 0.9 {
		t.Fatalf("msgs/step = %.2f, want ≈ 2/3", f)
	}
	if s := RenderDist(rows); !strings.Contains(s, "msgs/step") {
		t.Fatal("render")
	}
}

func TestAblationDegreeScaling(t *testing.T) {
	rows, err := AblationDegreeScaling(tiny(), []int{1 << 8, 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ITS <= 0 || r.PAT <= 0 || r.HPAT <= 0 || r.HPATNoIdx <= 0 {
			t.Fatalf("non-positive per-sample time: %+v", r)
		}
	}
	if s := RenderAblationDegree(rows); !strings.Contains(s, "ITS/sample") {
		t.Fatal("render")
	}
}

func TestAblationTrunkSize(t *testing.T) {
	rows, err := AblationTrunkSize(tiny(), 1<<10, []int{0, 4, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "sqrt(D)" || rows[0].TrunkSize != 32 {
		t.Fatalf("sqrt policy row: %+v", rows[0])
	}
	// Very large trunks must cost more per sample than the balanced policy.
	if rows[2].TrunkSize != 256 {
		t.Fatalf("explicit trunk row: %+v", rows[2])
	}
	if s := RenderAblationTrunk(rows); !strings.Contains(s, "sqrt(D)") {
		t.Fatal("render")
	}
}
