package experiments

import (
	"time"

	"github.com/tea-graph/tea/internal/ooc"
	"github.com/tea-graph/tea/internal/sampling"
)

// Fig14Row is one dataset's out-of-core comparison: wall-clock runtime,
// measured I/O volume, and the simulated device time under the paper's SSD
// model (Figures 14a and 14b).
type Fig14Row struct {
	Dataset string

	TEARuntime time.Duration
	TEABytes   int64
	TEAPages   int64
	TEAIOTime  time.Duration

	GWRuntime time.Duration
	GWBytes   int64
	GWPages   int64
	GWIOTime  time.Duration
}

// Fig14OutOfCore reproduces Figures 14a/14b: temporal walks with the PAT-on-
// disk TEA engine versus the full-neighbor-load GraphWalker baseline, both
// walking the same workload with walk output flushed in groups of 1024.
func Fig14OutOfCore(cfg Config) ([]Fig14Row, error) {
	cfg = cfg.normalized()
	var rows []Fig14Row
	for _, p := range cfg.Profiles {
		g, err := p.Build()
		if err != nil {
			return nil, err
		}
		g.PrecomputeCandidates(cfg.Threads)
		spec := sampling.Exponential(p.Lambda(cfg.Contrast))
		w, err := sampling.BuildGraphWeights(g, spec, cfg.Threads)
		if err != nil {
			return nil, err
		}
		row := Fig14Row{Dataset: p.Name}

		// TEA out-of-core: DiskPAT with the small-trunk policy.
		teaStore, err := ooc.NewTempStore()
		if err != nil {
			return nil, err
		}
		teaOut, err := ooc.NewTempStore()
		if err != nil {
			return nil, err
		}
		dp, err := ooc.BuildDiskPAT(w, teaStore, 0)
		if err != nil {
			return nil, err
		}
		teaStore.ResetCounters()
		teaEng := ooc.NewEngine(g, dp, teaOut)
		teaRes, err := teaEng.Run(cfg.WalksPerVertex, cfg.Length, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row.TEARuntime = teaRes.Duration
		row.TEABytes, _, _, _ = teaStore.Counters()
		row.TEAPages = teaStore.PagesRead()
		row.TEAIOTime = ooc.DefaultSSD.ReadTime(row.TEABytes, row.TEAPages)
		_ = teaStore.Close()
		_ = teaOut.Close()

		// GraphWalker out-of-core: full candidate block load per step.
		gwStore, err := ooc.NewTempStore()
		if err != nil {
			return nil, err
		}
		gwOut, err := ooc.NewTempStore()
		if err != nil {
			return nil, err
		}
		dgw, err := ooc.BuildDiskGraphWalker(g, spec, gwStore)
		if err != nil {
			return nil, err
		}
		gwStore.ResetCounters()
		gwEng := ooc.NewEngine(g, dgw, gwOut)
		gwRes, err := gwEng.Run(cfg.WalksPerVertex, cfg.Length, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row.GWRuntime = gwRes.Duration
		row.GWBytes, _, _, _ = gwStore.Counters()
		row.GWPages = gwStore.PagesRead()
		row.GWIOTime = ooc.DefaultSSD.ReadTime(row.GWBytes, row.GWPages)
		_ = gwStore.Close()
		_ = gwOut.Close()

		rows = append(rows, row)
	}
	return rows, nil
}
