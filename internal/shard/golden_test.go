package shard

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// referencePaths runs the plain single-process engine — the golden oracle the
// shard cluster must reproduce byte for byte.
func referencePaths(t *testing.T, g *temporal.Graph, spec sampling.WeightSpec, kern core.Kernel, length, walksPer int, seed uint64) []core.Path {
	t.Helper()
	eng, err := core.NewEngine(g, core.App{Name: "golden", Weight: spec}, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(core.WalkConfig{
		Length:         length,
		WalksPerVertex: walksPer,
		Seed:           seed,
		KeepPaths:      true,
		Kernel:         kern,
		Threads:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Paths
}

func newTestNodes(t *testing.T, g *temporal.Graph, spec sampling.WeightSpec, parts int, kern core.Kernel) []*Node {
	t.Helper()
	nodes := make([]*Node, parts)
	for id := 0; id < parts; id++ {
		n, err := NewNode(g, spec, Config{
			ShardID:    id,
			Partitions: parts,
			Threads:    2,
			Kernel:     kern,
			Metrics:    metrics.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	return nodes
}

// clusterPaths runs req on every node and merges the partial results by walk
// id into a single global path list.
func clusterPaths(t *testing.T, nodes []*Node, caller StepCaller, req WalkRequest, totalWalks int) []core.Path {
	t.Helper()
	merged := make([]core.Path, totalWalks)
	seen := 0
	for _, n := range nodes {
		res, err := n.RunWalks(context.Background(), caller, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.WalksStarted != res.Cost.WalksFinished() {
			t.Fatalf("shard %d accounting: %+v", n.ShardID(), res.Cost)
		}
		for i, wi := range res.WalkIDs {
			merged[wi] = res.Paths[i]
			seen++
		}
	}
	if seen != totalWalks {
		t.Fatalf("cluster coordinated %d of %d walks", seen, totalWalks)
	}
	return merged
}

// The tentpole's acceptance criterion: seeded walks are byte-identical across
// partition counts {1, 2, 3, 8}, for both local step kernels, in-process.
func TestGoldenPartitionInvariance(t *testing.T) {
	g := testutil.RandomGraph(t, 120, 3500, 700, 51)
	specs := []sampling.WeightSpec{
		{Kind: sampling.WeightUniform},
		{Kind: sampling.WeightLinearTime},
		sampling.Exponential(0.01),
	}
	const length, walksPer, seed = 15, 2, 9
	total := g.NumVertices() * walksPer
	for _, spec := range specs {
		for _, kern := range []core.Kernel{core.KernelScalar, core.KernelBatch} {
			ref := referencePaths(t, g, spec, kern, length, walksPer, seed)
			for _, parts := range []int{1, 2, 3, 8} {
				nodes := newTestNodes(t, g, spec, parts, kern)
				got := clusterPaths(t, nodes, &InProcess{Nodes: nodes},
					WalkRequest{Length: length, WalksPerVertex: walksPer, Seed: seed, KeepPaths: true}, total)
				if !reflect.DeepEqual(got, ref) {
					for wi := range ref {
						if !reflect.DeepEqual(got[wi], ref[wi]) {
							t.Fatalf("spec=%v kernel=%v parts=%d: walk %d diverges:\n got %v\n ref %v",
								spec.Kind, kern, parts, wi, got[wi], ref[wi])
						}
					}
				}
			}
		}
	}
}

// startWireCluster serves each node over loopback TCP and returns a Peers
// caller per shard (each shard dials every other shard).
func startWireCluster(t *testing.T, nodes []*Node) []StepCaller {
	t.Helper()
	addrs := make(map[int]string, len(nodes))
	for id, n := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.NewServer(ln, n, nil)
		t.Cleanup(func() { srv.Close() })
		addrs[id] = ln.Addr().String()
	}
	callers := make([]StepCaller, len(nodes))
	for id := range nodes {
		peerAddrs := make(map[int]string)
		for pid, a := range addrs {
			if pid != id {
				peerAddrs[pid] = a
			}
		}
		peers := NewPeers(peerAddrs, wire.ClientConfig{Metrics: metrics.NewRegistry()})
		t.Cleanup(peers.Close)
		callers[id] = peers
	}
	return callers
}

// The same invariance over real loopback-TCP wire RPC: the serialized
// migration frames carry everything the walk's determinism needs.
func TestGoldenLoopbackTCPInvariance(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 52)
	spec := sampling.Exponential(0.01)
	const length, seed = 12, 4
	total := g.NumVertices()
	for _, kern := range []core.Kernel{core.KernelScalar, core.KernelBatch} {
		ref := referencePaths(t, g, spec, kern, length, 1, seed)
		for _, parts := range []int{2, 3, 8} {
			nodes := newTestNodes(t, g, spec, parts, kern)
			callers := startWireCluster(t, nodes)
			merged := make([]core.Path, total)
			seen := 0
			for id, n := range nodes {
				res, err := n.RunWalks(context.Background(), callers[id],
					WalkRequest{Length: length, Seed: seed, KeepPaths: true, RequestID: "golden-tcp"})
				if err != nil {
					t.Fatal(err)
				}
				for i, wi := range res.WalkIDs {
					merged[wi] = res.Paths[i]
					seen++
				}
			}
			if seen != total {
				t.Fatalf("kernel=%v parts=%d: %d of %d walks", kern, parts, seen, total)
			}
			if !reflect.DeepEqual(merged, ref) {
				t.Fatalf("kernel=%v parts=%d: TCP paths diverge from engine reference", kern, parts)
			}
		}
	}
}

// Walks must actually cross shards mid-walk for the invariance to mean
// anything; assert the migration counters see real traffic.
func TestCrossShardMigrationHappens(t *testing.T) {
	g := testutil.RandomGraph(t, 150, 4000, 800, 53)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 4, core.KernelBatch)
	caller := &InProcess{Nodes: nodes}
	var migrations, frames, local int64
	for _, n := range nodes {
		res, err := n.RunWalks(context.Background(), caller, WalkRequest{Length: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		migrations += res.Migrations
		frames += res.Frames
		local += res.LocalSteps
	}
	if migrations == 0 {
		t.Fatal("no walker ever crossed a shard boundary")
	}
	if frames == 0 || frames > migrations {
		t.Fatalf("frames=%d migrations=%d: batching broken", frames, migrations)
	}
	// Hash partitioning sends ≈ (parts-1)/parts of steps remote.
	frac := float64(migrations) / float64(migrations+local)
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("remote step share %.2f, want ≈ 3/4", frac)
	}
}

// Mid-walk cancellation: in-flight walks are classified cancelled, accounting
// stays exact, and the run returns promptly.
func TestMidWalkCancellation(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 54)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelBatch)

	// A caller that cancels the run's context after a few rounds.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := &InProcess{Nodes: nodes}
	var calls atomic.Int64
	caller := stepFunc(func(c context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
		if calls.Add(1) == 3 {
			cancel()
		}
		return inner.Step(c, shardID, req)
	})

	res, err := nodes[0].RunWalks(ctx, caller, WalkRequest{Length: 500, Seed: 2, WalksPerVertex: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Cost.WalksCancelled == 0 {
		t.Fatalf("no walks classified cancelled: %+v", res.Cost)
	}
	if res.Cost.WalksStarted != res.Cost.WalksFinished() {
		t.Fatalf("accounting broken under cancellation: %+v", res.Cost)
	}
}

type stepFunc func(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error)

func (f stepFunc) Step(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
	return f(ctx, shardID, req)
}

// A dead peer must abort the run promptly with a PeerError — the fail-fast
// half of the "no hang, no partial silent results" requirement.
func TestPeerDownFailsFast(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 55)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelBatch)

	// Shard 1 is served over TCP and then killed; shards dial it cold.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	peers := NewPeers(map[int]string{1: deadAddr}, wire.ClientConfig{
		Metrics:      metrics.NewRegistry(),
		RetryBackoff: time.Millisecond,
	})
	defer peers.Close()
	inner := &InProcess{Nodes: nodes}
	caller := stepFunc(func(c context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
		if shardID == 1 {
			return peers.Step(c, shardID, req)
		}
		return inner.Step(c, shardID, req)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err = nodes[0].RunWalks(ctx, caller, WalkRequest{Length: 20, Seed: 3})
	var peerErr *wire.PeerError
	if !errors.As(err, &peerErr) {
		t.Fatalf("want PeerError, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("fail-fast took %v", d)
	}
}

// A config-mismatched peer is refused without retry.
func TestConfigMismatchRefused(t *testing.T) {
	g := testutil.RandomGraph(t, 50, 1000, 300, 56)
	right := newTestNodes(t, g, sampling.WeightSpec{}, 2, core.KernelScalar)
	wrong := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelScalar)
	req := &wire.StepRequest{
		Partitions:  2,
		NumVertices: uint32(g.NumVertices()),
		Walkers:     []wire.Walker{{Cur: 0, Arrival: temporal.MinTime, RNG: *xrand.New(1)}},
	}
	if _, err := right[0].HandleStep(context.Background(), req); err != nil {
		t.Fatalf("matching config refused: %v", err)
	}
	if _, err := wrong[0].HandleStep(context.Background(), req); err == nil {
		t.Fatal("mismatched partition count accepted")
	}
}

// Trace propagation (satellite): a peer handling a step under a propagated
// request id must record a shard.step root span whose trace id IS the
// request id, so /debug/tea/trace?id=<X-Request-ID> finds the hop.
func TestTracePropagationAcrossHop(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1500, 300, 57)
	tr := trace.New(trace.Config{SampleFraction: 1, MaxTraces: 16, MaxSpansPerTrace: 4096})
	peer, err := NewNode(g, sampling.WeightSpec{}, Config{
		ShardID: 1, Partitions: 2, Threads: 1,
		Kernel: core.KernelScalar, Tracer: tr, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const reqID = "trace-hop-req-1"
	req := &wire.StepRequest{
		RequestID:   reqID,
		Partitions:  2,
		NumVertices: uint32(g.NumVertices()),
		Walkers:     []wire.Walker{{Cur: 0, Arrival: temporal.MinTime, RNG: *xrand.New(1)}},
	}
	if _, err := peer.HandleStep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	spans, _, ok := tr.Trace(reqID)
	if !ok || len(spans) == 0 {
		t.Fatalf("peer recorded no spans under trace id %q (have %v)", reqID, tr.TraceIDs())
	}
	found := false
	for _, sp := range spans {
		if sp.Name == "shard.step" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard.step span under %q: %+v", reqID, spans)
	}
}

// Cost parity: the cluster's summed cost equals the single-process engine's
// for the same workload (steps, edges evaluated, classification counts).
func TestCostParityWithEngine(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 2500, 500, 58)
	spec := sampling.WeightSpec{Kind: sampling.WeightLinearRank}
	eng, err := core.NewEngine(g, core.App{Name: "golden", Weight: spec}, core.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	engRes, err := eng.Run(core.WalkConfig{Length: 10, Seed: 7, Threads: 2, Kernel: core.KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	nodes := newTestNodes(t, g, spec, 3, core.KernelScalar)
	caller := &InProcess{Nodes: nodes}
	var steps, evaluated, completed, deadEnded, started int64
	for _, n := range nodes {
		res, err := n.RunWalks(context.Background(), caller, WalkRequest{Length: 10, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		steps += res.Cost.Steps
		evaluated += res.Cost.EdgesEvaluated
		completed += res.Cost.WalksCompleted
		deadEnded += res.Cost.WalksDeadEnded
		started += res.Cost.WalksStarted
	}
	if steps != engRes.Cost.Steps || evaluated != engRes.Cost.EdgesEvaluated ||
		completed != engRes.Cost.WalksCompleted || deadEnded != engRes.Cost.WalksDeadEnded ||
		started != engRes.Cost.WalksStarted {
		t.Fatalf("cluster cost {steps %d eval %d comp %d dead %d start %d} vs engine {%d %d %d %d %d}",
			steps, evaluated, completed, deadEnded, started,
			engRes.Cost.Steps, engRes.Cost.EdgesEvaluated, engRes.Cost.WalksCompleted,
			engRes.Cost.WalksDeadEnded, engRes.Cost.WalksStarted)
	}
}

// Explicit source lists: walk ids are global positions in the request's
// source-major order, each id coordinated by exactly one shard.
func TestExplicitSourcesPartitioned(t *testing.T) {
	g := testutil.RandomGraph(t, 80, 2000, 400, 59)
	sources := []temporal.Vertex{3, 3, 17, 42, 8}
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelScalar)
	caller := &InProcess{Nodes: nodes}
	var ids []int
	for _, n := range nodes {
		res, err := n.RunWalks(context.Background(), caller,
			WalkRequest{Sources: sources, WalksPerVertex: 2, Length: 5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.WalkIDs...)
	}
	sort.Ints(ids)
	if len(ids) != len(sources)*2 {
		t.Fatalf("coordinated %d walks, want %d", len(ids), len(sources)*2)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("walk ids not a partition of 0..%d: %v", len(sources)*2-1, ids)
		}
	}
	// Out-of-range source is refused.
	if _, err := nodes[0].RunWalks(context.Background(), caller,
		WalkRequest{Sources: []temporal.Vertex{temporal.Vertex(g.NumVertices())}, Length: 5}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
