package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/netchaos"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

// replicatedCluster is 2 partitions × 2 replicas over loopback TCP. Replicas
// of a partition are independent Node instances with identical config — the
// walks are pure functions of the migrating frames, which is exactly why a
// sibling can answer a re-sent frame byte-identically.
type replicatedCluster struct {
	nodes   [][]*Node      // [partition][replica]
	servers [][]*wire.Server
	addrs   [][]string
}

func startReplicatedCluster(t *testing.T, g *testutilGraph, parts, replicas int) *replicatedCluster {
	t.Helper()
	c := &replicatedCluster{
		nodes:   make([][]*Node, parts),
		servers: make([][]*wire.Server, parts),
		addrs:   make([][]string, parts),
	}
	for p := 0; p < parts; p++ {
		for r := 0; r < replicas; r++ {
			n, err := NewNode(g.g, g.spec, Config{
				ShardID: p, Partitions: parts, Threads: 2,
				Kernel: core.KernelBatch, Metrics: metrics.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := wire.NewServer(ln, n, nil)
			t.Cleanup(func() { srv.Close() })
			c.nodes[p] = append(c.nodes[p], n)
			c.servers[p] = append(c.servers[p], srv)
			c.addrs[p] = append(c.addrs[p], ln.Addr().String())
		}
	}
	return c
}

// peersFor builds the replica table one coordinating partition uses to reach
// every other partition, optionally with a chaos dialer.
func (c *replicatedCluster) peersFor(t *testing.T, p int, dialer wire.DialFunc) *ReplicaPeers {
	t.Helper()
	addrs := make(map[int][]string)
	for q := range c.addrs {
		if q != p {
			addrs[q] = append([]string(nil), c.addrs[q]...)
		}
	}
	reg := metrics.NewRegistry()
	cfg := testReplicaConfig(reg)
	cfg.Client.Dialer = dialer
	rp := NewReplicaPeers(addrs, cfg)
	t.Cleanup(rp.Close)
	return rp
}

// testutilGraph bundles a graph with its weight spec for the cluster helper.
type testutilGraph struct {
	g    *temporal.Graph
	spec sampling.WeightSpec
}

// runMerged coordinates req on every partition (partition p using callers[p])
// and merges by global walk id.
func (c *replicatedCluster) runMerged(t *testing.T, callers []StepCaller, req WalkRequest, total int) ([]core.Path, error) {
	t.Helper()
	merged := make([]core.Path, total)
	seen := 0
	for p := range c.nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		res, err := c.nodes[p][0].RunWalks(ctx, callers[p], req)
		cancel()
		if err != nil {
			return nil, err
		}
		for i, wi := range res.WalkIDs {
			merged[wi] = res.Paths[i]
			seen++
		}
	}
	if seen != total {
		return nil, fmt.Errorf("coordinated %d of %d walks", seen, total)
	}
	return merged, nil
}

// TestChaosSingleReplicaFaultsByteIdentical is the tentpole oracle: with one
// replica of a partition killed, partitioned, resetting, or corrupting at a
// seeded injection point mid-request, the merged cluster output stays
// byte-identical to the single-process engine and the run sees no error.
func TestChaosSingleReplicaFaultsByteIdentical(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 71)
	spec := sampling.Exponential(0.01)
	const length, seed = 12, 4
	total := g.NumVertices()
	ref := referencePaths(t, g, spec, core.KernelBatch, length, 1, seed)
	tg := &testutilGraph{g: g, spec: spec}

	type faultCase struct {
		name   string
		inject func(p *netchaos.Plan, victim string, after int)
	}
	cases := []faultCase{
		{"partition", func(p *netchaos.Plan, victim string, after int) {
			p.Partition(victim, after)
		}},
		{"reset-on-write", func(p *netchaos.Plan, victim string, after int) {
			p.Inject(netchaos.Fault{Op: netchaos.OpWrite, Kind: netchaos.KindReset, Peer: victim, After: after})
		}},
		{"reset-on-read", func(p *netchaos.Plan, victim string, after int) {
			p.Inject(netchaos.Fault{Op: netchaos.OpRead, Kind: netchaos.KindReset, Peer: victim, After: after})
		}},
		{"byte-flip-once", func(p *netchaos.Plan, victim string, after int) {
			p.Inject(netchaos.Fault{Op: netchaos.OpWrite, Kind: netchaos.KindFlip, Peer: victim, After: after, Once: true})
		}},
	}
	for _, fc := range cases {
		for _, after := range []int{0, 1, 3, 7} {
			t.Run(fmt.Sprintf("%s/after=%d", fc.name, after), func(t *testing.T) {
				cluster := startReplicatedCluster(t, tg, 2, 2)
				victim := cluster.addrs[1][0] // partition 1's primary replica
				plan := netchaos.NewPlan(int64(after) + 17)
				fc.inject(plan, victim, after)
				callers := []StepCaller{
					cluster.peersFor(t, 0, plan.Dial), // coordinator 0 sees the fault
					cluster.peersFor(t, 1, nil),
				}
				got, err := cluster.runMerged(t, callers,
					WalkRequest{Length: length, Seed: seed, KeepPaths: true, RequestID: "chaos-" + fc.name}, total)
				if err != nil {
					t.Fatalf("cluster run under %s: %v", fc.name, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s after=%d: cluster output diverges from engine reference", fc.name, after)
				}
			})
		}
	}
}

// TestChaosReplicaKilledMidRequest: the SIGKILL analog — the victim replica's
// server is torn down after a few migration frames; the coordinator re-sends
// the in-flight frontier to the sibling and the output stays byte-identical.
func TestChaosReplicaKilledMidRequest(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 72)
	spec := sampling.WeightSpec{Kind: sampling.WeightLinearTime}
	const length, seed = 15, 9
	total := g.NumVertices()
	ref := referencePaths(t, g, spec, core.KernelBatch, length, 1, seed)
	cluster := startReplicatedCluster(t, &testutilGraph{g: g, spec: spec}, 2, 2)

	rp0 := cluster.peersFor(t, 0, nil)
	var calls atomic.Int64
	killer := stepFunc(func(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
		if calls.Add(1) == 3 {
			cluster.servers[1][0].Close() // SIGKILL the primary replica mid-run
		}
		return rp0.Step(ctx, shardID, req)
	})
	callers := []StepCaller{killer, cluster.peersFor(t, 1, nil)}
	got, err := cluster.runMerged(t, callers,
		WalkRequest{Length: length, Seed: seed, KeepPaths: true, RequestID: "chaos-kill"}, total)
	if err != nil {
		t.Fatalf("cluster run with killed replica: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("cluster output diverges from engine reference after replica kill")
	}
	if calls.Load() < 3 {
		t.Fatalf("kill point never reached (%d migration frames)", calls.Load())
	}
}

// TestChaosWholePartitionDownFailsFast: when EVERY replica of a partition is
// unreachable the run must fail with a PeerError (the 503 + Retry-After
// path), not hang and not fabricate output.
func TestChaosWholePartitionDownFailsFast(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 73)
	cluster := startReplicatedCluster(t, &testutilGraph{g: g, spec: sampling.WeightSpec{}}, 2, 2)
	plan := netchaos.NewPlan(5)
	plan.Partition(cluster.addrs[1][0], 0)
	plan.Partition(cluster.addrs[1][1], 0)
	rp := cluster.peersFor(t, 0, plan.Dial)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	start := time.Now()
	_, err := cluster.nodes[0][0].RunWalks(ctx, rp, WalkRequest{Length: 10, Seed: 2})
	var peerErr *wire.PeerError
	if !errors.As(err, &peerErr) {
		t.Fatalf("want PeerError, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("whole-partition-down detection took %v", d)
	}
}
