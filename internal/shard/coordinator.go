package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// StepCaller delivers a batched step request to the shard owning a group of
// walkers. The TCP implementation is Peers (wire clients); tests and the
// bench harness use InProcess (direct method calls) — the coordinator logic
// is identical either way, which is what lets the golden suite prove the
// loopback deployment equal to the in-process one.
type StepCaller interface {
	Step(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error)
}

// WalkRequest describes the full logical walk request, identical on every
// shard: walk ids are positions in the global (source-major) walk list, so
// each shard independently selects the ids whose source it owns and the
// router can merge partial results without renumbering.
type WalkRequest struct {
	// Sources is the global source list; nil means every vertex.
	Sources []temporal.Vertex
	// WalksPerVertex is R; default 1. Length is L; default 80.
	WalksPerVertex int
	Length         int
	// StartTime/HasStartTime follow core.WalkConfig's convention.
	StartTime    temporal.Time
	HasStartTime bool
	// Seed drives every walker's stream, exactly as in core: walk wi uses
	// root.Split(wi).
	Seed uint64
	// KeepPaths stores the sampled paths in the result.
	KeepPaths bool
	// RequestID is propagated on every migration frame for trace correlation.
	RequestID string
	// CollectSpans asks for compact span summaries in the result — the
	// coordinator's own run/hop timings plus whatever each peer shipped back
	// on its step responses — so an upstream router can assemble one
	// cross-process trace. Independent of any tracer configuration.
	CollectSpans bool
}

func (r *WalkRequest) normalize(numV int) {
	if r.WalksPerVertex <= 0 {
		r.WalksPerVertex = 1
	}
	if r.Length <= 0 {
		r.Length = 80
	}
	if !r.HasStartTime && r.StartTime == 0 {
		r.StartTime = temporal.MinTime
	}
	if r.Sources == nil {
		r.Sources = make([]temporal.Vertex, numV)
		for i := range r.Sources {
			r.Sources[i] = temporal.Vertex(i)
		}
	}
}

// WalkResult is one shard's share of a walk request: the walks whose source
// vertex this shard owns, each walked to completion (possibly via peers).
type WalkResult struct {
	Cost     stats.Cost
	Duration time.Duration
	// Rounds is the number of step-synchronous rounds executed.
	Rounds int
	// Migrations counts walker-steps served by a peer (walker crossed a
	// shard boundary for that step); Frames counts the batched messages that
	// carried them (one per peer per round) and BytesSent their on-wire
	// request bytes.
	Migrations int64
	Frames     int64
	BytesSent  int64
	// LocalSteps counts steps served by this shard's own partition.
	LocalSteps int64
	// WalkIDs lists the global walk ids this shard coordinated, ascending.
	// Paths is parallel to it when KeepPaths is set.
	WalkIDs []int
	Paths   []core.Path
	// Lengths histograms realized walk lengths, as in core.Result.
	Lengths *stats.Histogram
	// Spans carries the compact cross-process span summaries when the
	// request set CollectSpans.
	Spans []wire.SpanSummary
}

// coordWalker is a frontier entry: the migrating wire state plus the local
// result slot it reports into.
type coordWalker struct {
	wire.Walker
	slot int // index into WalkIDs/Paths
}

// RunWalks executes the walks of req whose source vertex this shard owns,
// scatter-gather style: each round the resident frontier is grouped by the
// owner of each walker's current vertex, remote groups cross to their owner
// as one wire frame per peer, the local group advances on this node's
// partition, and results are folded back in deterministic walk order.
//
// Determinism: walker wi's randomness is root.Split(wi) carried in the
// migration frames and consumed sequentially wherever the walker happens to
// be resident — so paths are byte-identical to core.Engine.RunContext with
// the same seed, for any shard count including 1.
//
// A peer failure aborts the run with the *wire.PeerError (fail-fast: the
// caller maps it to 503 + Retry-After; no partial silent results).
// Cancellation classifies every in-flight walk as cancelled, like core.
func (n *Node) RunWalks(ctx context.Context, caller StepCaller, req WalkRequest) (*WalkResult, error) {
	req.normalize(n.numV)
	for _, s := range req.Sources {
		if int(s) >= n.numV {
			return nil, fmt.Errorf("shard: start vertex %d outside graph with %d vertices", s, n.numV)
		}
	}
	ctx, runSpan := trace.Start(ctx, "shard.run")
	if runSpan != nil {
		runSpan.SetInt("shard", int64(n.id))
		defer runSpan.End()
	}
	rc := reqcost.From(ctx)
	var flags uint32
	if req.CollectSpans {
		flags |= wire.FlagCollectSpans
	}

	start := time.Now()
	res := &WalkResult{Lengths: stats.NewHistogram(req.Length + 1)}
	root := xrand.New(req.Seed)

	// Seed the frontier with the owned slice of the global walk list.
	totalWalks := len(req.Sources) * req.WalksPerVertex
	var frontier []coordWalker
	for wi := 0; wi < totalWalks; wi++ {
		src := req.Sources[wi/req.WalksPerVertex]
		if n.part.Owner(src) != n.id {
			continue
		}
		slot := len(res.WalkIDs)
		res.WalkIDs = append(res.WalkIDs, wi)
		w := coordWalker{slot: slot}
		w.ID = uint64(wi)
		w.Cur = src
		w.Arrival = req.StartTime
		root.SplitTo(uint64(wi), &w.RNG)
		frontier = append(frontier, w)
		res.Cost.WalksStarted++
	}
	if req.KeepPaths {
		res.Paths = make([]core.Path, len(res.WalkIDs))
		for i, wi := range res.WalkIDs {
			res.Paths[i].Vertices = append(make([]temporal.Vertex, 0, req.Length+1), req.Sources[wi/req.WalksPerVertex])
		}
	}
	if runSpan != nil {
		runSpan.SetInt("walks", int64(len(frontier)))
	}

	mRounds := n.reg.Counter("tea_shard_rounds_total")
	mMigr := n.reg.Counter("tea_shard_migrations_total")
	mFrames := n.reg.Counter("tea_shard_frames_total")
	mLocal := n.reg.Counter("tea_shard_local_steps_total")

	parts := n.part.Partitions()
	groups := make([][]int, parts) // frontier indices per owner, reused
	results := make([]wire.StepResult, 0)
	var runErr error
	var spanMu sync.Mutex // guards res.Spans across hop goroutines

	for len(frontier) > 0 && runErr == nil {
		if ctx.Err() != nil {
			for i := range frontier {
				res.Lengths.Observe(int(frontier[i].Steps))
				res.Cost.WalksCancelled++
			}
			frontier = frontier[:0]
			break
		}
		res.Rounds++
		mRounds.Inc()

		for p := range groups {
			groups[p] = groups[p][:0]
		}
		for i := range frontier {
			owner := n.part.Owner(frontier[i].Cur)
			groups[owner] = append(groups[owner], i)
		}

		// One step result per frontier entry, filled by owner group.
		if cap(results) < len(frontier) {
			results = make([]wire.StepResult, len(frontier))
		}
		results = results[:len(frontier)]

		// Remote hops of one round share a cancellable context: the first peer
		// failure aborts the round, so sibling step-RPCs unwind immediately
		// instead of leaking goroutines and conns until their own deadlines.
		roundCtx, cancelRound := context.WithCancel(ctx)
		var (
			wg     sync.WaitGroup
			failMu sync.Mutex
		)
		for p := 0; p < parts; p++ {
			idxs := groups[p]
			if len(idxs) == 0 || p == n.id {
				continue
			}
			sreq := &wire.StepRequest{
				RequestID:   req.RequestID,
				FromShard:   uint32(n.id),
				Partitions:  uint32(parts),
				NumVertices: uint32(n.numV),
				Flags:       flags,
				Walkers:     make([]wire.Walker, len(idxs)),
			}
			for j, fi := range idxs {
				sreq.Walkers[j] = frontier[fi].Walker
			}
			frameBytes := int64(wire.FrameSize(stepRequestPayloadLen(sreq)))
			res.Migrations += int64(len(idxs))
			res.Frames++
			res.BytesSent += frameBytes
			mMigr.Add(int64(len(idxs)))
			mFrames.Inc()
			rc.AddMigration(int64(len(idxs)), frameBytes)
			wg.Add(1)
			go func(p int, idxs []int, sreq *wire.StepRequest) {
				defer wg.Done()
				hopCtx, hop := trace.Start(roundCtx, "shard.hop")
				if hop != nil {
					hop.SetInt("peer", int64(p))
					hop.SetInt("walkers", int64(len(idxs)))
					defer hop.End()
				}
				hopStart := time.Now()
				sresp, err := caller.Step(hopCtx, p, sreq)
				if err != nil {
					if hop != nil {
						hop.SetError(err)
					}
					failMu.Lock()
					if runErr == nil {
						runErr = err
					}
					failMu.Unlock()
					cancelRound()
					return
				}
				if len(sresp.Results) != len(idxs) {
					failMu.Lock()
					if runErr == nil {
						runErr = &wire.PeerError{Addr: fmt.Sprintf("shard-%d", p),
							Err: fmt.Errorf("answered %d results for %d walkers", len(sresp.Results), len(idxs))}
					}
					failMu.Unlock()
					cancelRound()
					return
				}
				if req.CollectSpans {
					hopSum := wire.SpanSummary{
						Name:        "shard.hop",
						Shard:       int32(n.id),
						StartMicros: hopStart.UnixMicro(),
						DurMicros:   time.Since(hopStart).Microseconds(),
						Walkers:     int32(len(idxs)),
					}
					spanMu.Lock()
					res.Spans = append(res.Spans, hopSum)
					res.Spans = append(res.Spans, sresp.Spans...)
					spanMu.Unlock()
				}
				for j, fi := range idxs {
					results[fi] = sresp.Results[j]
				}
			}(p, idxs, sreq)
		}
		// Local group advances while the remote frames are in flight.
		if idxs := groups[n.id]; len(idxs) > 0 {
			local := make([]wire.Walker, len(idxs))
			for j, fi := range idxs {
				local[j] = frontier[fi].Walker
			}
			localRes := make([]wire.StepResult, len(idxs))
			n.advance(ctx, local, localRes)
			res.LocalSteps += int64(len(idxs))
			mLocal.Add(int64(len(idxs)))
			for j, fi := range idxs {
				results[fi] = localRes[j]
			}
		}
		wg.Wait()
		cancelRound()
		if runErr != nil {
			break
		}

		// Fold the step outcomes back in frontier (ascending walk id) order.
		next := frontier[:0]
		for i := range frontier {
			w := frontier[i]
			r := results[i]
			res.Cost.EdgesEvaluated += r.Evaluated
			if r.Status == wire.StatusDeadEnd {
				res.Lengths.Observe(int(w.Steps))
				res.Cost.WalksDeadEnded++
				continue
			}
			res.Cost.Steps++
			w.Steps++
			w.Cur = r.Dst
			w.Arrival = r.At
			w.RNG = r.RNG
			if req.KeepPaths {
				p := &res.Paths[w.slot]
				p.Vertices = append(p.Vertices, r.Dst)
				p.Times = append(p.Times, r.At)
			}
			if int(w.Steps) >= req.Length {
				res.Lengths.Observe(int(w.Steps))
				res.Cost.WalksCompleted++
				continue
			}
			next = append(next, w)
		}
		frontier = next
	}

	if runErr != nil {
		// Fail-fast: in-flight walks are cancelled by the abort, not by the
		// graph; account them so WalksStarted == WalksFinished holds.
		for i := range frontier {
			res.Lengths.Observe(int(frontier[i].Steps))
			res.Cost.WalksCancelled++
		}
		res.Duration = time.Since(start)
		if runSpan != nil {
			runSpan.SetError(runErr)
		}
		n.appendRunSummary(res, &req, start)
		return res, runErr
	}
	res.Duration = time.Since(start)
	if runSpan != nil {
		runSpan.SetInt("rounds", int64(res.Rounds))
		runSpan.SetInt("migrations", res.Migrations)
		runSpan.SetInt("frames", res.Frames)
	}
	n.appendRunSummary(res, &req, start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// appendRunSummary prepends the whole-run span summary when the request
// collects spans — the coordinator-side anchor the router nests hops under.
func (n *Node) appendRunSummary(res *WalkResult, req *WalkRequest, start time.Time) {
	if !req.CollectSpans {
		return
	}
	run := wire.SpanSummary{
		Name:        "shard.run",
		Shard:       int32(n.id),
		StartMicros: start.UnixMicro(),
		DurMicros:   res.Duration.Microseconds(),
		Walkers:     int32(len(res.WalkIDs)),
	}
	res.Spans = append([]wire.SpanSummary{run}, res.Spans...)
}

// stepRequestPayloadLen mirrors AppendStepRequest's layout so the
// coordinator can account on-wire bytes without re-encoding.
func stepRequestPayloadLen(req *wire.StepRequest) int {
	return 4 + len(req.RequestID) + 20 + len(req.Walkers)*wire.WalkerFrameSize
}

// InProcess is a StepCaller over co-resident Nodes: scatter-gather without
// sockets. The golden tests run the same workload through InProcess and
// through wire clients over loopback TCP and require identical paths.
type InProcess struct {
	Nodes []*Node
}

// Step implements StepCaller.
func (p *InProcess) Step(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
	if shardID < 0 || shardID >= len(p.Nodes) || p.Nodes[shardID] == nil {
		return nil, fmt.Errorf("shard: no in-process node for shard %d", shardID)
	}
	return p.Nodes[shardID].HandleStep(ctx, req)
}

// Peers is a StepCaller over wire clients, one per remote shard. It is the
// single-replica view of ReplicaPeers — the same health-aware table with
// groups of one — kept as the simple constructor for tests and deployments
// without replication.
type Peers struct {
	rp *ReplicaPeers
}

// NewPeers builds pooled clients for every peer address. addrs maps shard id
// to host:port; the local shard must not appear in it.
func NewPeers(addrs map[int]string, cfg wire.ClientConfig) *Peers {
	groups := make(map[int][]string, len(addrs))
	for id, addr := range addrs {
		groups[id] = []string{addr}
	}
	return &Peers{rp: NewReplicaPeers(groups, ReplicaPeersConfig{Client: cfg, Metrics: cfg.Metrics})}
}

// Step implements StepCaller.
func (p *Peers) Step(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
	return p.rp.Step(ctx, shardID, req)
}

// Ping probes every peer once; the first failure is returned.
func (p *Peers) Ping(ctx context.Context) error {
	return p.rp.Ping(ctx)
}

// Snapshot exposes the underlying replica health table (groups of one).
func (p *Peers) Snapshot() map[int][]ReplicaStatus {
	return p.rp.Snapshot()
}

// Close releases every pooled connection.
func (p *Peers) Close() {
	p.rp.Close()
}
