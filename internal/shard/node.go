package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// Config parameterizes one shard node.
type Config struct {
	// ShardID is this node's partition, in [0, Partitions).
	ShardID int
	// Partitions is the cluster size; every node must agree on it.
	Partitions int
	// Threads bounds index-construction and local-step parallelism; <1 means
	// GOMAXPROCS.
	Threads int
	// Kernel selects the local step executor: KernelScalar samples walkers
	// one at a time, KernelBatch (and KernelAuto) hands the resident frontier
	// to the index's SampleBatch. Both replay byte-identical walks — the
	// BatchSampler contract is element-wise equality with Sample.
	Kernel core.Kernel
	// Tracer, if non-nil, records shard.step spans keyed by the propagated
	// request id so cross-process hops land on one timeline.
	Tracer *trace.Tracer
	// Metrics receives tea_shard_* families; nil means metrics.Default.
	Metrics *metrics.Registry
}

// Node is one shard: the subgraph of its owned vertices' out-edges, their
// HPAT index, and the step executor remote peers call into. A Node both
// serves steps for walkers arriving from peers (HandleStep) and coordinates
// the walks whose source vertex it owns (RunWalks).
type Node struct {
	id     int
	part   *Partitioner
	g      *temporal.Graph // full vertex space, owned out-edges only
	idx    *hpat.Index
	numV   int
	kernel core.Kernel
	tracer *trace.Tracer
	reg    *metrics.Registry

	stepsServed *metrics.Counter
	stepBatches *metrics.Counter

	// scratch pools the batch kernel's per-call SoA buffers. HandleStep runs
	// concurrently (one call per serving connection plus the local group), so
	// the scratch is pooled rather than owned by the node.
	scratch sync.Pool
}

// batchScratch is one advanceBatch call's working set.
type batchScratch struct {
	us    []temporal.Vertex
	ks    []int32
	rs    []*xrand.Rand
	edges []int32
	evals []int64
	oks   []bool
}

func (s *batchScratch) grow(m int) {
	if cap(s.us) < m {
		s.us = make([]temporal.Vertex, m)
		s.ks = make([]int32, m)
		s.rs = make([]*xrand.Rand, m)
		s.edges = make([]int32, m)
		s.evals = make([]int64, m)
		s.oks = make([]bool, m)
		return
	}
	s.us = s.us[:m]
	s.ks = s.ks[:m]
	s.rs = s.rs[:m]
	s.edges = s.edges[:m]
	s.evals = s.evals[:m]
	s.oks = s.oks[:m]
}

// NewNode partitions the full graph down to this shard's vertices and builds
// their HPAT. Every process in the cluster loads the same graph file and
// calls NewNode with its own ShardID; the consistent-hash Partitioner makes
// them agree on ownership with no coordination.
func NewNode(g *temporal.Graph, spec sampling.WeightSpec, cfg Config) (*Node, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("shard: need at least one partition, got %d", cfg.Partitions)
	}
	if cfg.ShardID < 0 || cfg.ShardID >= cfg.Partitions {
		return nil, fmt.Errorf("shard: shard id %d outside [0, %d)", cfg.ShardID, cfg.Partitions)
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 0 // BuildGraphWeights/hpat treat <1 as GOMAXPROCS
	}
	part, err := NewPartitioner(cfg.Partitions)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}

	// Linear-time weights reference the graph's minimum timestamp; anchor it
	// on the full graph so every shard computes identical per-vertex
	// distributions regardless of its local time range (same fix as
	// internal/dist).
	if spec.Kind == sampling.WeightLinearTime && spec.Custom == nil {
		globalMin, _ := g.TimeRange()
		spec = sampling.WeightSpec{Custom: func(t temporal.Time) float64 {
			return float64(t-globalMin) + 1
		}}
	}

	numV := g.NumVertices()
	var owned []temporal.Edge
	for _, e := range g.Edges(nil) {
		if part.Owner(e.Src) == cfg.ShardID {
			owned = append(owned, e)
		}
	}
	sub, err := temporal.FromEdges(owned, temporal.WithNumVertices(numV))
	if err != nil && len(owned) != 0 {
		return nil, fmt.Errorf("shard: building partition %d subgraph: %w", cfg.ShardID, err)
	}
	if sub == nil {
		sub, _ = temporal.FromEdges(nil, temporal.WithNumVertices(numV))
	}
	sub.PrecomputeCandidates(threads)
	w, err := sampling.BuildGraphWeights(sub, spec, threads)
	if err != nil {
		return nil, fmt.Errorf("shard: weights for partition %d: %w", cfg.ShardID, err)
	}
	kern := cfg.Kernel
	if kern == core.KernelAuto {
		kern = core.KernelBatch
	}
	return &Node{
		id:          cfg.ShardID,
		part:        part,
		g:           sub,
		idx:         hpat.Build(w, hpat.Config{Threads: threads}),
		numV:        numV,
		kernel:      kern,
		tracer:      cfg.Tracer,
		reg:         reg,
		stepsServed: reg.Counter("tea_shard_steps_served_total"),
		stepBatches: reg.Counter("tea_shard_step_batches_total"),
	}, nil
}

// ShardID returns this node's partition id.
func (n *Node) ShardID() int { return n.id }

// Partitions returns the cluster size the node was built for.
func (n *Node) Partitions() int { return n.part.Partitions() }

// Partitioner returns the shared ownership ring.
func (n *Node) Partitioner() *Partitioner { return n.part }

// NumVertices returns the full graph's vertex count (the cluster
// fingerprint carried on every step frame).
func (n *Node) NumVertices() int { return n.numV }

// MemoryBytes reports this shard's index footprint.
func (n *Node) MemoryBytes() int64 { return n.idx.MemoryBytes() + n.g.MemoryBytes() }

// OwnedEdges returns the number of edges in this shard's partition (edges
// whose source vertex this shard owns).
func (n *Node) OwnedEdges() int { return n.g.NumEdges() }

// HandleStep implements wire.Handler: advance each walker in the request by
// one step on this shard's partition. The request id opens a root trace span
// so /debug/tea/trace on the peer shows the hop under the same timeline as
// the router's and coordinator's spans.
func (n *Node) HandleStep(ctx context.Context, req *wire.StepRequest) (*wire.StepResponse, error) {
	if int(req.Partitions) != n.part.Partitions() || int(req.NumVertices) != n.numV {
		return nil, fmt.Errorf("cluster config mismatch: peer has partitions=%d vertices=%d, this shard has partitions=%d vertices=%d",
			req.Partitions, req.NumVertices, n.part.Partitions(), n.numV)
	}
	var span *trace.Span
	if n.tracer != nil && req.RequestID != "" {
		ctx, span = n.tracer.StartRoot(ctx, "shard.step", req.RequestID)
		if span != nil {
			span.SetInt("shard", int64(n.id))
			span.SetInt("from_shard", int64(req.FromShard))
			span.SetInt("walkers", int64(len(req.Walkers)))
			defer span.End()
		}
	}
	var stepStart time.Time
	if req.Flags&wire.FlagCollectSpans != 0 {
		stepStart = time.Now()
	}
	resp := &wire.StepResponse{Results: make([]wire.StepResult, len(req.Walkers))}
	n.advance(ctx, req.Walkers, resp.Results)
	n.stepBatches.Inc()
	n.stepsServed.Add(int64(len(req.Walkers)))
	if req.Flags&wire.FlagCollectSpans != 0 {
		resp.Spans = []wire.SpanSummary{{
			Name:        "shard.step",
			Shard:       int32(n.id),
			StartMicros: stepStart.UnixMicro(),
			DurMicros:   time.Since(stepStart).Microseconds(),
			Walkers:     int32(len(req.Walkers)),
		}}
	}
	return resp, nil
}

// advance executes one step for each walker against the local partition.
// The walker's candidate count is recomputed here from (Cur, Arrival): the
// single-process engine carries k across steps via CandidateCountAfterEdge,
// which is by construction CandidateCount(dst, at) on the destination's
// adjacency — adjacency this shard owns in full, so the recomputed k is
// identical and the walker's stream is consumed exactly as in-process.
func (n *Node) advance(ctx context.Context, walkers []wire.Walker, results []wire.StepResult) {
	if n.kernel == core.KernelBatch {
		n.advanceBatch(ctx, walkers, results)
		return
	}
	for i := range walkers {
		w := &walkers[i]
		k := n.g.CandidateCount(w.Cur, w.Arrival)
		if k == 0 {
			results[i] = wire.StepResult{Status: wire.StatusDeadEnd, RNG: w.RNG}
			continue
		}
		edgeIdx, ev, ok := n.idx.Sample(w.Cur, k, &w.RNG)
		if !ok {
			results[i] = wire.StepResult{Status: wire.StatusDeadEnd, Evaluated: ev, RNG: w.RNG}
			continue
		}
		dst, at := n.g.EdgeAt(w.Cur, edgeIdx)
		results[i] = wire.StepResult{Status: wire.StatusStepped, Dst: dst, At: at, Evaluated: ev, RNG: w.RNG}
	}
}

// advanceBatch is advance through the index's BatchSampler: element-wise
// identical to the scalar path by the SampleBatch contract (hpat's
// implementation calls Sample per entry, and Sample with k<=0 consumes
// nothing — matching the scalar path's skip).
func (n *Node) advanceBatch(ctx context.Context, walkers []wire.Walker, results []wire.StepResult) {
	m := len(walkers)
	sc, _ := n.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	sc.grow(m)
	for i := range walkers {
		w := &walkers[i]
		sc.us[i] = w.Cur
		sc.ks[i] = int32(n.g.CandidateCount(w.Cur, w.Arrival))
		sc.rs[i] = &w.RNG
	}
	n.idx.SampleBatch(ctx, sc.us, sc.ks, sc.rs, sc.edges, sc.evals, sc.oks)
	for i := range walkers {
		w := &walkers[i]
		if !sc.oks[i] {
			results[i] = wire.StepResult{Status: wire.StatusDeadEnd, Evaluated: sc.evals[i], RNG: w.RNG}
			continue
		}
		dst, at := n.g.EdgeAt(w.Cur, int(sc.edges[i]))
		results[i] = wire.StepResult{Status: wire.StatusStepped, Dst: dst, At: at, Evaluated: sc.evals[i], RNG: w.RNG}
	}
	for i := range sc.rs {
		sc.rs[i] = nil // drop walker pointers before pooling
	}
	n.scratch.Put(sc)
}
