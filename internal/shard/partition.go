// Package shard turns the walk engine into an N-process cluster: a
// consistent-hash Partitioner assigns every vertex to exactly one shard, each
// shard builds the HPAT index of its own vertices only, and walkers migrate
// between shards in batched step-synchronous frames over a compact binary RPC
// (package shard/wire). The execution model is the walker-centric migration
// model the paper credits to KnightKing (§4.4), with one message per step:
// PAT/HPAT sampling needs no rejection round trips, so a whole frontier
// crosses a shard boundary in a single frame per peer per step.
//
// The correctness oracle is the engine's determinism invariant: a walker's
// randomness is its private stream root.Split(walkID), carried inside the
// migration frame, so seeded walks replay byte-identically for any shard
// count — including one — and for both the scalar and batched local step
// kernels. internal/dist (the in-process simulator) shares this package's
// Partitioner, so the simulated and the real deployment agree on ownership.
package shard

import (
	"fmt"
	"sort"

	"github.com/tea-graph/tea/internal/temporal"
)

// ringPointsPerPartition is the number of virtual nodes each partition
// places on the hash ring. 256 points keep the expected max/mean partition
// load within ~1.15 (the skew test enforces ≤ 1.2 on adversarial strided-id
// graphs) while the whole ring stays small enough that Owner's binary search
// is a handful of cache lines.
const ringPointsPerPartition = 256

// ringSalt separates the ring-point input domain from the vertex-hash input
// domain. Without it, partition 0's points are mix64(0<<32|rep) = mix64(rep)
// — exactly the hashes of vertex ids < ringPointsPerPartition — so the
// binary search for any small-id vertex lands on partition 0's own point and
// shard 0 silently owns every small vertex (the common case: compact
// sequential ids). Any fixed odd constant works; it only has to make the two
// input sets disjoint.
const ringSalt = 0x5bf03635bd1b96a5

// Partitioner maps vertex ids onto shard ids via a consistent-hash ring. It
// is a pure function of the partition count: every process that constructs a
// Partitioner with the same count computes identical ownership, which is what
// lets the stateless router, every shard, and the in-process simulator agree
// without any coordination.
//
// A plain id%partitions assignment degenerates under strided vertex ids
// (e.g. ids minted as k·P+c by an upstream system put every vertex on one
// shard); hashing each id through a 64-bit mixer first makes the assignment
// insensitive to any id structure.
type Partitioner struct {
	partitions int
	points     []uint64 // sorted ring positions
	owner      []int32  // owner[i] is the partition owning points[i]
}

// NewPartitioner builds the ring for the given partition count.
func NewPartitioner(partitions int) (*Partitioner, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("shard: need at least one partition, got %d", partitions)
	}
	p := &Partitioner{
		partitions: partitions,
		points:     make([]uint64, 0, partitions*ringPointsPerPartition),
		owner:      make([]int32, 0, partitions*ringPointsPerPartition),
	}
	type pt struct {
		pos  uint64
		part int32
	}
	pts := make([]pt, 0, partitions*ringPointsPerPartition)
	for part := 0; part < partitions; part++ {
		for rep := 0; rep < ringPointsPerPartition; rep++ {
			pos := mix64(ringSalt ^ (uint64(part)<<32 | uint64(rep)))
			pts = append(pts, pt{pos: pos, part: int32(part)})
		}
	}
	// Ties (vanishingly rare) are broken by partition id so the ring is a
	// deterministic function of the count alone.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].part < pts[b].part
	})
	for _, q := range pts {
		p.points = append(p.points, q.pos)
		p.owner = append(p.owner, q.part)
	}
	return p, nil
}

// MustPartitioner is NewPartitioner for callers with a validated count.
func MustPartitioner(partitions int) *Partitioner {
	p, err := NewPartitioner(partitions)
	if err != nil {
		panic(err)
	}
	return p
}

// Partitions returns the partition count the ring was built for.
func (p *Partitioner) Partitions() int { return p.partitions }

// Owner returns the shard owning vertex v: the first ring point at or after
// the vertex's hashed position, wrapping at the top.
func (p *Partitioner) Owner(v temporal.Vertex) int {
	if p.partitions == 1 {
		return 0
	}
	h := mix64(uint64(v))
	pts := p.points
	// Binary search for the first point >= h.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0 // wrap
	}
	return int(p.owner[lo])
}

// mix64 is the splitmix64 finalizer: a fast, well-dispersed 64-bit mixer
// (the same construction xrand uses for seed expansion).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
