// Package wire is the binary RPC the shards speak: length-prefixed,
// CRC-32C-framed messages (the same frame discipline as internal/wal)
// carrying batched walker-migration payloads, so a whole step frontier
// crosses a shard boundary in one message.
//
//	frame   := length[4] crc[4] type[1] payload[length-1]
//
// length covers the type byte plus the payload; crc is the CRC-32C
// (Castagnoli) of the type byte and payload, all little-endian. A frame that
// fails its CRC or exceeds MaxFrameBytes poisons the connection — the peer
// closes it and the client retries on a fresh one — because a framing error
// means the stream position can no longer be trusted.
//
// Walker frames are fixed-width records: the migrating state of one walk is
// its id, current vertex, arrival time, steps taken, and the four words of
// its private xoshiro stream. Shipping the stream state (rather than
// re-deriving it) is what keeps sharded walks byte-identical to the
// single-process engine: the walk consumes its stream sequentially across
// shard hops exactly as the scalar and batched kernels do in one process.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// MaxFrameBytes bounds one frame. The largest legitimate frame is a step
// batch of a full /walk request (10k walkers ≈ 600 KiB); 16 MiB leaves
// generous headroom while still rejecting a garbage length prefix before
// allocating.
const MaxFrameBytes = 16 << 20

// frameHeaderSize is the fixed prefix: length[4] crc[4].
const frameHeaderSize = 8

// Message types.
const (
	// TypeStep asks the receiving shard to advance each walker in the
	// payload by one step on its local partition.
	TypeStep = byte(1)
	// TypeStepResp carries the per-walker step outcomes, in request order.
	TypeStepResp = byte(2)
	// TypeError carries a shard-side failure (mismatched cluster config, a
	// handler panic) as a string.
	TypeError = byte(3)
	// TypePing and TypePong are the liveness probe pair.
	TypePing = byte(4)
	TypePong = byte(5)
)

// Step outcome statuses.
const (
	// StatusStepped: the walker advanced one edge.
	StatusStepped = byte(0)
	// StatusDeadEnd: the walker had no temporal candidate (or a zero-weight
	// candidate prefix) at its current vertex.
	StatusDeadEnd = byte(1)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame whose CRC or length prefix is invalid.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Walker is one in-flight walk's migrating state.
type Walker struct {
	ID      uint64
	Cur     temporal.Vertex
	Arrival temporal.Time
	Steps   uint32
	RNG     xrand.Rand
}

// StepResult is one walker's outcome for one step.
type StepResult struct {
	Status    byte
	Dst       temporal.Vertex
	At        temporal.Time
	Evaluated int64
	RNG       xrand.Rand
}

// Request flags.
const (
	// FlagCollectSpans asks the serving shard to return span summaries for
	// this step batch, so the coordinating process can assemble one
	// cross-process trace for a sampled request.
	FlagCollectSpans = uint32(1 << 0)
)

// StepRequest asks a shard to advance a batch of walkers one step. The
// cluster fingerprint (Partitions, NumVertices) guards against heterogeneous
// deployments: a shard built for a different ring or graph answers TypeError
// instead of silently sampling from the wrong distribution.
type StepRequest struct {
	RequestID   string
	FromShard   uint32
	Partitions  uint32
	NumVertices uint32
	Flags       uint32
	Walkers     []Walker
}

// SpanSummary is one remote operation's compact trace record: enough to
// place it on a cluster-wide timeline (wall-clock begin and duration) and
// attribute it (name, owning shard, batch size). Shipped in step responses
// when the request carries FlagCollectSpans; the coordinator and router
// convert these into full SpanRecords via trace.Tracer.Inject.
type SpanSummary struct {
	Name        string `json:"name"`
	Shard       int32  `json:"shard"`
	StartMicros int64  `json:"start_us"`
	DurMicros   int64  `json:"dur_us"`
	Walkers     int32  `json:"walkers,omitempty"`
}

// StepResponse carries one result per request walker, in order, plus span
// summaries when the request asked for them.
type StepResponse struct {
	Results []StepResult
	Spans   []SpanSummary
}

const (
	walkerSize = 8 + 4 + 8 + 4 + 32 // id cur arrival steps rng
	resultSize = 1 + 4 + 8 + 8 + 32 // status dst at evaluated rng
)

// WalkerFrameSize is the encoded size of one Walker record, exported so the
// coordinator can account on-wire bytes without re-encoding frames.
const WalkerFrameSize = walkerSize

// rngWords round-trips the xoshiro state through the frame. The state fields
// are unexported, so the wire layer carries them via Marshal/Unmarshal on a
// fixed 32-byte window.
func putRNG(b []byte, r *xrand.Rand) {
	s0, s1, s2, s3 := r.State()
	binary.LittleEndian.PutUint64(b[0:], s0)
	binary.LittleEndian.PutUint64(b[8:], s1)
	binary.LittleEndian.PutUint64(b[16:], s2)
	binary.LittleEndian.PutUint64(b[24:], s3)
}

func getRNG(b []byte, r *xrand.Rand) {
	r.SetState(
		binary.LittleEndian.Uint64(b[0:]),
		binary.LittleEndian.Uint64(b[8:]),
		binary.LittleEndian.Uint64(b[16:]),
		binary.LittleEndian.Uint64(b[24:]),
	)
}

// AppendStepRequest encodes req after buf and returns the extended slice.
func AppendStepRequest(buf []byte, req *StepRequest) []byte {
	buf = appendString(buf, req.RequestID)
	buf = binary.LittleEndian.AppendUint32(buf, req.FromShard)
	buf = binary.LittleEndian.AppendUint32(buf, req.Partitions)
	buf = binary.LittleEndian.AppendUint32(buf, req.NumVertices)
	buf = binary.LittleEndian.AppendUint32(buf, req.Flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Walkers)))
	for i := range req.Walkers {
		w := &req.Walkers[i]
		buf = binary.LittleEndian.AppendUint64(buf, w.ID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.Cur))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.Arrival))
		buf = binary.LittleEndian.AppendUint32(buf, w.Steps)
		var rng [32]byte
		putRNG(rng[:], &w.RNG)
		buf = append(buf, rng[:]...)
	}
	return buf
}

// DecodeStepRequest parses a TypeStep payload.
func DecodeStepRequest(payload []byte) (*StepRequest, error) {
	req := &StepRequest{}
	if err := DecodeStepRequestInto(payload, req); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeStepRequestInto parses a TypeStep payload into req, reusing
// req.Walkers' capacity — the per-frame decode path of a serving connection,
// which would otherwise allocate a frontier-sized slice per step round.
func DecodeStepRequestInto(payload []byte, req *StepRequest) error {
	var err error
	req.RequestID, payload, err = readString(payload)
	if err != nil {
		return err
	}
	if len(payload) < 20 {
		return fmt.Errorf("%w: step request header short (%d bytes)", ErrCorrupt, len(payload))
	}
	req.FromShard = binary.LittleEndian.Uint32(payload[0:])
	req.Partitions = binary.LittleEndian.Uint32(payload[4:])
	req.NumVertices = binary.LittleEndian.Uint32(payload[8:])
	req.Flags = binary.LittleEndian.Uint32(payload[12:])
	n := int(binary.LittleEndian.Uint32(payload[16:]))
	payload = payload[20:]
	if n < 0 || len(payload) != n*walkerSize {
		return fmt.Errorf("%w: step request payload %d bytes for %d walkers", ErrCorrupt, len(payload), n)
	}
	if cap(req.Walkers) < n {
		req.Walkers = make([]Walker, n)
	} else {
		req.Walkers = req.Walkers[:n]
	}
	for i := 0; i < n; i++ {
		b := payload[i*walkerSize:]
		w := &req.Walkers[i]
		w.ID = binary.LittleEndian.Uint64(b[0:])
		w.Cur = temporal.Vertex(binary.LittleEndian.Uint32(b[8:]))
		w.Arrival = temporal.Time(binary.LittleEndian.Uint64(b[12:]))
		w.Steps = binary.LittleEndian.Uint32(b[20:])
		getRNG(b[24:], &w.RNG)
	}
	return nil
}

// AppendStepResponse encodes resp after buf and returns the extended slice.
// Span summaries, when present, follow the results as a counted trailer;
// responses without spans encode byte-identically to the pre-trailer format.
func AppendStepResponse(buf []byte, resp *StepResponse) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Results)))
	for i := range resp.Results {
		r := &resp.Results[i]
		buf = append(buf, r.Status)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.At))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Evaluated))
		var rng [32]byte
		putRNG(rng[:], &r.RNG)
		buf = append(buf, rng[:]...)
	}
	if len(resp.Spans) > 0 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Spans)))
		for i := range resp.Spans {
			s := &resp.Spans[i]
			buf = appendString(buf, s.Name)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Shard))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(s.StartMicros))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(s.DurMicros))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Walkers))
		}
	}
	return buf
}

// DecodeStepResponse parses a TypeStepResp payload.
func DecodeStepResponse(payload []byte) (*StepResponse, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: step response short", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if n < 0 || len(payload) < n*resultSize {
		return nil, fmt.Errorf("%w: step response payload %d bytes for %d results", ErrCorrupt, len(payload), n)
	}
	resp := &StepResponse{Results: make([]StepResult, n)}
	for i := 0; i < n; i++ {
		b := payload[i*resultSize:]
		r := &resp.Results[i]
		r.Status = b[0]
		r.Dst = temporal.Vertex(binary.LittleEndian.Uint32(b[1:]))
		r.At = temporal.Time(binary.LittleEndian.Uint64(b[5:]))
		r.Evaluated = int64(binary.LittleEndian.Uint64(b[13:]))
		getRNG(b[21:], &r.RNG)
	}
	payload = payload[n*resultSize:]
	if len(payload) == 0 {
		return resp, nil
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: step response span trailer short", ErrCorrupt)
	}
	m := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	// A response without spans omits the trailer entirely, so a zero count
	// here is a second spelling of the same message — reject it to keep the
	// encoding canonical (one message, one byte sequence).
	if m <= 0 || m > MaxFrameBytes/8 {
		return nil, fmt.Errorf("%w: step response span count %d", ErrCorrupt, m)
	}
	resp.Spans = make([]SpanSummary, 0, m)
	for i := 0; i < m; i++ {
		var s SpanSummary
		var err error
		s.Name, payload, err = readString(payload)
		if err != nil {
			return nil, err
		}
		if len(payload) < 24 {
			return nil, fmt.Errorf("%w: step response span record short", ErrCorrupt)
		}
		s.Shard = int32(binary.LittleEndian.Uint32(payload[0:]))
		s.StartMicros = int64(binary.LittleEndian.Uint64(payload[4:]))
		s.DurMicros = int64(binary.LittleEndian.Uint64(payload[12:]))
		s.Walkers = int32(binary.LittleEndian.Uint32(payload[20:]))
		payload = payload[24:]
		resp.Spans = append(resp.Spans, s)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: step response has %d trailing bytes", ErrCorrupt, len(payload))
	}
	return resp, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("%w: string length missing", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n < 0 || n > len(b) {
		return "", nil, fmt.Errorf("%w: string length %d exceeds payload", ErrCorrupt, n)
	}
	return string(b[:n]), b[n:], nil
}

// WriteFrame writes one framed message to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if 1+len(payload) > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", 1+len(payload), MaxFrameBytes)
	}
	hdr := make([]byte, frameHeaderSize+1, frameHeaderSize+1+len(payload))
	binary.LittleEndian.PutUint32(hdr[0:], uint32(1+len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	hdr[8] = typ
	buf := append(hdr, payload...)
	_, err := w.Write(buf)
	return err
}

// FrameSize returns the on-wire size of a frame with the given payload
// length (header + type byte + payload).
func FrameSize(payloadLen int) int { return frameHeaderSize + 1 + payloadLen }

// BeginFrame starts an in-place frame: it appends a zeroed header and the
// type byte to buf. The caller appends the payload with the Append* encoders
// and finishes with SealFrame — encoding the payload directly into the frame
// buffer instead of encoding it separately and copying it in, which is the
// difference between two allocations per hop and zero on a warm connection.
// buf must be empty or end exactly at a frame boundary; the frame starts at
// len(buf).
func BeginFrame(buf []byte, typ byte) []byte {
	var hdr [frameHeaderSize]byte
	buf = append(buf, hdr[:]...)
	return append(buf, typ)
}

// SealFrame fills in the length and CRC of the single frame occupying buf
// (as started by BeginFrame at offset 0) and returns it ready to write.
func SealFrame(buf []byte) ([]byte, error) {
	if len(buf) < frameHeaderSize+1 {
		return nil, fmt.Errorf("wire: sealing short frame of %d bytes", len(buf))
	}
	body := buf[frameHeaderSize:]
	if len(body) > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(body), MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(body, castagnoli))
	return buf, nil
}

// ReadFrame reads one framed message from r. io.EOF is returned unwrapped
// when the stream ends cleanly at a frame boundary.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	typ, payload, _, err = ReadFrameBuf(r, nil)
	return typ, payload, err
}

// ReadFrameBuf is ReadFrame with a caller-owned scratch buffer: the returned
// payload aliases buf (grown as needed and returned as newBuf), so it is
// valid only until the next ReadFrameBuf call with the same buffer. The
// per-connection loops on both sides use it to read every frame of a
// connection's lifetime into one allocation.
func ReadFrameBuf(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > MaxFrameBytes {
		return 0, nil, buf, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	if uint32(cap(buf)) < length {
		buf = make([]byte, length)
	}
	body := buf[:length]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: truncated frame: %w", err)
	}
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, buf, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body[0], body[1:], buf, nil
}
