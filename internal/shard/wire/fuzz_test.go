package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame: arbitrary bytes fed to the frame reader must never panic,
// and any framing violation must surface as ErrCorrupt (poisoned-conn
// semantics) or a truncation error — never a silently wrong frame.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated one, a corrupted CRC, a huge
	// length prefix, and raw garbage.
	good, err := SealFrame(append(BeginFrame(nil, TypeStep), AppendStepRequest(nil, sampleRequest(3))...))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-5])
	bad := bytes.Clone(good)
	bad[4] ^= 0xff
	f.Add(bad)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, _, err := ReadFrameBuf(bytes.NewReader(data), nil)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// A frame that validated must re-encode to the identical bytes it was
		// read from (the reader consumed exactly one frame's worth).
		re, err := SealFrame(append(BeginFrame(nil, typ), payload...))
		if err != nil {
			t.Fatalf("re-seal of accepted frame: %v", err)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

// FuzzDecodeStepRequest: arbitrary payloads (bytes that passed framing) must
// decode or error, never panic, and a successful decode must re-encode to
// the same bytes.
func FuzzDecodeStepRequest(f *testing.F) {
	f.Add(AppendStepRequest(nil, sampleRequest(0)))
	f.Add(AppendStepRequest(nil, sampleRequest(5)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req StepRequest
		if err := DecodeStepRequestInto(data, &req); err != nil {
			return
		}
		if !bytes.Equal(AppendStepRequest(nil, &req), data) {
			t.Fatalf("accepted request does not round-trip")
		}
	})
}

// FuzzDecodeStepResponse: same contract for the response payload, which
// carries the optional span trailer.
func FuzzDecodeStepResponse(f *testing.F) {
	resp := &StepResponse{Results: make([]StepResult, 4)}
	for i := range resp.Results {
		resp.Results[i] = StepResult{Status: StatusStepped, Dst: 7, At: 9, Evaluated: int64(i)}
	}
	f.Add(AppendStepResponse(nil, resp))
	f.Add(AppendStepResponse(nil, &StepResponse{}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeStepResponse(data)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendStepResponse(nil, got), data) {
			t.Fatalf("accepted response does not round-trip")
		}
	})
}
