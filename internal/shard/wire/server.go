package wire

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
)

// Handler answers a batched step request. Returning an error sends a
// TypeError frame (the connection stays up); the handler must be safe for
// concurrent calls, one per connection.
type Handler interface {
	HandleStep(ctx context.Context, req *StepRequest) (*StepResponse, error)
}

// Server accepts wire connections and dispatches frames to a Handler. One
// goroutine per connection; frames on one connection are handled serially
// (the protocol is strict request/response per stream).
type Server struct {
	ln      net.Listener
	handler Handler
	logger  *slog.Logger
	ctx     context.Context // cancelled on Close so wedged handlers drain
	cancel  context.CancelFunc

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewServer wraps an existing listener (so callers can bind :0 and read the
// real address) and begins accepting.
func NewServer(ln net.Listener, handler Handler, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		ln:      ln,
		handler: handler,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logger.Warn("shard rpc accept failed", "err", err)
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Frames on a connection are handled serially, so the connection owns its
	// scratch: the frame read buffer, the decoded request (walker slice
	// reused across frames), and the response encode buffer. A warm
	// connection serves a step round without allocating.
	var rbuf, wbuf []byte
	var req StepRequest
	for {
		typ, payload, nbuf, err := ReadFrameBuf(conn, rbuf)
		rbuf = nbuf
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				select {
				case <-s.done:
				default:
					s.logger.Warn("shard rpc read failed", "remote", conn.RemoteAddr().String(), "err", err)
				}
			}
			// Corrupt or truncated stream: the position is untrusted, so the
			// only safe response is to drop the connection.
			return
		}
		switch typ {
		case TypePing:
			if err := WriteFrame(conn, TypePong, nil); err != nil {
				return
			}
		case TypeStep:
			if err := DecodeStepRequestInto(payload, &req); err != nil {
				// Frame passed CRC but the payload is malformed: a protocol
				// bug, not line noise. Refuse it and keep the stream.
				if werr := WriteFrame(conn, TypeError, []byte(err.Error())); werr != nil {
					return
				}
				continue
			}
			resp, err := s.handler.HandleStep(s.ctx, &req)
			if err != nil {
				if werr := WriteFrame(conn, TypeError, []byte(err.Error())); werr != nil {
					return
				}
				continue
			}
			frame := BeginFrame(wbuf[:0], TypeStepResp)
			frame = AppendStepResponse(frame, resp)
			frame, err = SealFrame(frame)
			if err != nil {
				if werr := WriteFrame(conn, TypeError, []byte(err.Error())); werr != nil {
					return
				}
				continue
			}
			wbuf = frame
			if _, err := conn.Write(frame); err != nil {
				return
			}
		default:
			if werr := WriteFrame(conn, TypeError, []byte("unknown frame type")); werr != nil {
				return
			}
		}
	}
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.cancel()
		err = s.ln.Close()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}
