package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

func testClientConfig() ClientConfig {
	return ClientConfig{
		Metrics:      metrics.NewRegistry(),
		RetryBackoff: time.Millisecond,
	}
}

func sampleRequest(n int) *StepRequest {
	req := &StepRequest{
		RequestID:   "req-abc123",
		FromShard:   2,
		Partitions:  3,
		NumVertices: 1000,
		Walkers:     make([]Walker, n),
	}
	root := xrand.New(42)
	for i := range req.Walkers {
		w := &req.Walkers[i]
		w.ID = uint64(i) * 7
		w.Cur = temporal.Vertex(i % 997)
		w.Arrival = temporal.Time(1000 + i)
		w.Steps = uint32(i % 80)
		root.SplitTo(uint64(i), &w.RNG)
		// Advance a few draws so serialized state is mid-stream.
		for j := 0; j < i%5; j++ {
			w.RNG.Uint64()
		}
	}
	return req
}

func TestStepRequestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 513} {
		req := sampleRequest(n)
		payload := AppendStepRequest(nil, req)
		got, err := DecodeStepRequest(payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.RequestID != req.RequestID || got.FromShard != req.FromShard ||
			got.Partitions != req.Partitions || got.NumVertices != req.NumVertices {
			t.Fatalf("n=%d: header mismatch: %+v vs %+v", n, got, req)
		}
		if len(got.Walkers) != len(req.Walkers) {
			t.Fatalf("n=%d: %d walkers decoded", n, len(got.Walkers))
		}
		for i := range req.Walkers {
			a, b := &req.Walkers[i], &got.Walkers[i]
			if a.ID != b.ID || a.Cur != b.Cur || a.Arrival != b.Arrival || a.Steps != b.Steps {
				t.Fatalf("n=%d walker %d: %+v vs %+v", n, i, a, b)
			}
			// The decoded stream must continue exactly where the original
			// does — that is the determinism the frame exists to preserve.
			ar, br := a.RNG, b.RNG
			for j := 0; j < 8; j++ {
				if ar.Uint64() != br.Uint64() {
					t.Fatalf("n=%d walker %d: rng stream diverged at draw %d", n, i, j)
				}
			}
		}
	}
}

func TestStepResponseRoundTrip(t *testing.T) {
	resp := &StepResponse{Results: make([]StepResult, 9)}
	root := xrand.New(7)
	for i := range resp.Results {
		r := &resp.Results[i]
		r.Status = byte(i % 2)
		r.Dst = temporal.Vertex(i * 3)
		r.At = temporal.Time(-5 + i)
		r.Evaluated = int64(i * 11)
		root.SplitTo(uint64(i), &r.RNG)
	}
	got, err := DecodeStepResponse(AppendStepResponse(nil, resp))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resp.Results {
		a, b := &resp.Results[i], &got.Results[i]
		if a.Status != b.Status || a.Dst != b.Dst || a.At != b.At || a.Evaluated != b.Evaluated {
			t.Fatalf("result %d: %+v vs %+v", i, a, b)
		}
		ar, br := a.RNG, b.RNG
		if ar.Uint64() != br.Uint64() {
			t.Fatalf("result %d: rng mismatch", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello shard")
	if err := WriteFrame(&buf, TypeStep, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, TypePong, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != TypeStep || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: typ=%d payload=%q err=%v", typ, got, err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != TypePong || len(got) != 0 {
		t.Fatalf("frame 2: typ=%d payload=%q err=%v", typ, got, err)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// TestFrameInPlace locks the zero-allocation framing path: BeginFrame +
// Append* + SealFrame must produce exactly the bytes WriteFrame does, and
// ReadFrameBuf must reuse its scratch buffer across frames.
func TestFrameInPlace(t *testing.T) {
	req := sampleRequest(13)
	payload := AppendStepRequest(nil, req)
	var ref bytes.Buffer
	if err := WriteFrame(&ref, TypeStep, payload); err != nil {
		t.Fatal(err)
	}
	frame := BeginFrame(nil, TypeStep)
	frame = AppendStepRequest(frame, req)
	frame, err := SealFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, ref.Bytes()) {
		t.Fatalf("in-place frame differs from WriteFrame: %d vs %d bytes", len(frame), ref.Len())
	}

	// Two frames through one scratch buffer: the second read reuses (and
	// invalidates) the first payload.
	var stream bytes.Buffer
	stream.Write(frame)
	if err := WriteFrame(&stream, TypePong, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, buf, err := ReadFrameBuf(&stream, nil)
	if err != nil || typ != TypeStep {
		t.Fatalf("frame 1: typ=%d err=%v", typ, err)
	}
	var decoded StepRequest
	if err := DecodeStepRequestInto(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Walkers) != 13 || decoded.RequestID != req.RequestID {
		t.Fatalf("decoded %d walkers, id %q", len(decoded.Walkers), decoded.RequestID)
	}
	before := cap(buf)
	typ, body, buf, err = ReadFrameBuf(&stream, buf)
	if err != nil || typ != TypePong || len(body) != 0 {
		t.Fatalf("frame 2: typ=%d len=%d err=%v", typ, len(body), err)
	}
	if cap(buf) != before {
		t.Fatalf("scratch reallocated for a smaller frame: %d -> %d", before, cap(buf))
	}

	// DecodeStepRequestInto must reuse walker capacity on a smaller batch.
	small := sampleRequest(3)
	if err := DecodeStepRequestInto(AppendStepRequest(nil, small), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Walkers) != 3 || cap(decoded.Walkers) < 13 {
		t.Fatalf("walker scratch not reused: len=%d cap=%d", len(decoded.Walkers), cap(decoded.Walkers))
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeStep, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, flip := range []int{4, 8, 12, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[flip] ^= 0x40
		_, _, err := ReadFrame(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d undetected", flip)
		}
	}
	// Truncation mid-payload.
	_, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3]))
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncation: err=%v", err)
	}
	// Absurd length prefix refused before allocation.
	huge := append([]byte(nil), raw...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized frame: err=%v", err)
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	if _, err := DecodeStepRequest([]byte{1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short request: %v", err)
	}
	good := AppendStepRequest(nil, sampleRequest(3))
	if _, err := DecodeStepRequest(good[:len(good)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated walkers: %v", err)
	}
	if _, err := DecodeStepResponse([]byte{9}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short response: %v", err)
	}
}

// echoHandler advances nothing: it answers each walker with a stepped result
// landing on the walker's own vertex, tagging Evaluated with the walker id so
// tests can check request/response pairing.
type echoHandler struct {
	mu    sync.Mutex
	calls int
	fail  error
}

func (h *echoHandler) HandleStep(_ context.Context, req *StepRequest) (*StepResponse, error) {
	h.mu.Lock()
	h.calls++
	fail := h.fail
	h.mu.Unlock()
	if fail != nil {
		return nil, fail
	}
	resp := &StepResponse{Results: make([]StepResult, len(req.Walkers))}
	for i, w := range req.Walkers {
		resp.Results[i] = StepResult{
			Status:    StatusStepped,
			Dst:       w.Cur,
			At:        w.Arrival,
			Evaluated: int64(w.ID),
			RNG:       w.RNG,
		}
	}
	return resp, nil
}

func startServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, h, nil)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestClientServerExchange(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := sampleRequest(257)
	resp, err := c.Step(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(req.Walkers) {
		t.Fatalf("%d results", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Evaluated != int64(req.Walkers[i].ID) || r.Dst != req.Walkers[i].Cur {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClientConcurrentExchanges(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := sampleRequest(g*13 + i%7 + 1)
				resp, err := c.Step(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				for j := range resp.Results {
					if resp.Results[j].Evaluated != int64(req.Walkers[j].ID) {
						errs <- fmt.Errorf("goroutine %d: cross-talk at %d", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientRemoteErrorNotRetried(t *testing.T) {
	h := &echoHandler{fail: errors.New("partitions mismatch")}
	_, addr := startServer(t, h)
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Step(ctx, sampleRequest(1))
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	h.mu.Lock()
	calls := h.calls
	h.mu.Unlock()
	if calls != 1 {
		t.Fatalf("deliberate refusal retried: %d calls", calls)
	}
}

func TestClientRetriesAcrossRestart(t *testing.T) {
	srv, addr := startServer(t, &echoHandler{})
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Step(ctx, sampleRequest(2)); err != nil {
		t.Fatal(err)
	}
	// Kill the server; the pooled connection is now dead. A new server on the
	// same address lets the retry path recover transparently.
	srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(ln, &echoHandler{}, nil)
	defer srv2.Close()
	if _, err := c.Step(ctx, sampleRequest(2)); err != nil {
		t.Fatalf("retry after restart failed: %v", err)
	}
}

func TestClientPeerDownFailsPromptly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening at addr now
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.Step(ctx, sampleRequest(1))
	var peer *PeerError
	if !errors.As(err, &peer) {
		t.Fatalf("want PeerError, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("peer-down detection took %v", d)
	}
}

func TestServerSurvivesCorruptStream(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	// Connection one: garbage. The server must drop it without dying.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{9, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a corrupt frame instead of closing")
	}
	raw.Close()
	// Connection two: a healthy client still works.
	c := NewClient(addr, testClientConfig())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Step(ctx, sampleRequest(4)); err != nil {
		t.Fatal(err)
	}
}
