//go:build !unix

package wire

import "net"

// connCheck is a no-op where non-blocking raw reads aren't available; the
// retry loop still recovers from stale conns, just retry-visibly.
func connCheck(conn net.Conn) error { return nil }
