//go:build unix

package wire

import (
	"errors"
	"io"
	"net"
	"syscall"
)

var errUnexpectedRead = errors.New("wire: unexpected bytes on idle connection")

// connCheck probes an idle pooled connection without consuming time or data:
// a non-blocking read on the raw fd must yield EAGAIN (nothing pending, peer
// still there). EOF or a reset means the peer went away while the conn was
// parked; actual bytes mean the stream is desynced. A deadline-based poke
// cannot do this — the runtime returns ErrDeadlineExceeded for an expired
// deadline without ever issuing the read syscall, so a pending FIN stays
// invisible.
func connCheck(conn net.Conn) error {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil // wrapped conn (e.g. netchaos): cannot probe, assume usable
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	var checkErr error
	rerr := rc.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, err := syscall.Read(int(fd), buf[:])
		switch {
		case n > 0:
			checkErr = errUnexpectedRead
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
			checkErr = nil
		case err != nil:
			checkErr = err
		default: // n == 0, err == nil: orderly shutdown
			checkErr = io.EOF
		}
		return true
	})
	if rerr != nil {
		return rerr
	}
	return checkErr
}
