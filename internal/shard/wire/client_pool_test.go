package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/netchaos"
)

// TestRestartPeerNoVisibleRetry is the pool-hygiene regression: a peer
// restart leaves a dead conn in the pool, and the liveness poke on checkout
// must detect it so the next request succeeds WITHOUT consuming a retry
// (before the poke existed, the first attempt burned a retry on the corpse).
func TestRestartPeerNoVisibleRetry(t *testing.T) {
	srv, addr := startServer(t, &echoHandler{})
	reg := metrics.NewRegistry()
	cfg := testClientConfig()
	cfg.Metrics = reg
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Step(ctx, sampleRequest(2)); err != nil {
		t.Fatal(err)
	}
	if c.IdleConns() != 1 {
		t.Fatalf("idle = %d after first step", c.IdleConns())
	}
	srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(ln, &echoHandler{}, nil)
	defer srv2.Close()
	// Give the FIN from the dead server a moment to land in the socket buffer
	// so the liveness poke observes EOF rather than an empty queue.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Step(ctx, sampleRequest(2)); err != nil {
		t.Fatalf("step after restart: %v", err)
	}
	retries := reg.Counter(`tea_shard_peer_retries_total{peer="` + addr + `"}`).Value()
	if retries != 0 {
		t.Fatalf("restart was retry-visible: %d retries", retries)
	}
	stale := reg.Counter(`tea_shard_conns_stale_total{peer="` + addr + `"}`).Value()
	if stale != 1 {
		t.Fatalf("stale conns reaped = %d, want 1", stale)
	}
}

func TestIdleConnReapedByAge(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	reg := metrics.NewRegistry()
	cfg := testClientConfig()
	cfg.Metrics = reg
	cfg.MaxIdleAge = 10 * time.Millisecond
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Step(ctx, sampleRequest(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Step(ctx, sampleRequest(1)); err != nil {
		t.Fatal(err)
	}
	reaped := reg.Counter(`tea_shard_conns_reaped_total{peer="` + addr + `"}`).Value()
	if reaped != 1 {
		t.Fatalf("reaped = %d, want 1", reaped)
	}
	if got := c.OpenConns(); got != 1 {
		t.Fatalf("open conns = %d, want 1", got)
	}
}

func TestOpenConnsAccounting(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	c := NewClient(addr, testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Step(ctx, sampleRequest(3)); err != nil {
			t.Fatal(err)
		}
	}
	if open, idle := c.OpenConns(), c.IdleConns(); open != idle || open != 1 {
		t.Fatalf("open=%d idle=%d after serial steps, want 1/1", open, idle)
	}
	c.Close()
	if open := c.OpenConns(); open != 0 {
		t.Fatalf("open = %d after Close", open)
	}
}

// blockingHandler parks every request until its context dies, standing in
// for a wedged peer.
type blockingHandler struct{}

func (blockingHandler) HandleStep(ctx context.Context, _ *StepRequest) (*StepResponse, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancelInterruptsInflightExchange: cancelling the Step context must
// interrupt a blocked read immediately (via the poisoned deadline), not wait
// out a connection deadline, and the conn must not leak back into the pool.
func TestCancelInterruptsInflightExchange(t *testing.T) {
	_, addr := startServer(t, blockingHandler{})
	cfg := testClientConfig()
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Step(ctx, sampleRequest(1))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the exchange reach the blocked read
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		var peer *PeerError
		if !errors.As(err, &peer) {
			t.Fatalf("want PeerError, got %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("cancellation took %v", d)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled exchange never returned")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.OpenConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("open conns = %d after cancelled exchange", c.OpenConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosDialerDropRetried threads a netchaos plan through the client's
// Dialer hook: a one-shot dial drop is absorbed by the retry loop.
func TestChaosDialerDropRetried(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	plan := netchaos.NewPlan(1)
	plan.Inject(netchaos.Fault{Op: netchaos.OpDial, Kind: netchaos.KindDrop, Once: true})
	cfg := testClientConfig()
	cfg.Dialer = plan.Dial
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Step(ctx, sampleRequest(2)); err != nil {
		t.Fatalf("step through one-shot dial drop: %v", err)
	}
	if plan.Fired() != 1 {
		t.Fatalf("fired = %d", plan.Fired())
	}
}

// TestChaosByteFlipCaughtByCRC: a single flipped bit on the request wire must
// be rejected by the server's CRC (poisoned conn), and the client retry path
// must recover with a clean connection — the response stays correct.
func TestChaosByteFlipCaughtByCRC(t *testing.T) {
	h := &echoHandler{}
	_, addr := startServer(t, h)
	plan := netchaos.NewPlan(99)
	plan.Inject(netchaos.Fault{Op: netchaos.OpWrite, Kind: netchaos.KindFlip, Once: true})
	cfg := testClientConfig()
	cfg.Dialer = plan.Dial
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := sampleRequest(8)
	resp, err := c.Step(ctx, req)
	if err != nil {
		t.Fatalf("step through byte flip: %v", err)
	}
	if plan.Fired() != 1 {
		t.Fatal("flip never fired")
	}
	for i, r := range resp.Results {
		if r.Evaluated != int64(req.Walkers[i].ID) || r.Dst != req.Walkers[i].Cur {
			t.Fatalf("result %d corrupted past the CRC: %+v", i, r)
		}
	}
	// The server must have seen exactly one good request: the corrupt frame
	// died at the CRC check, not in the handler.
	h.mu.Lock()
	calls := h.calls
	h.mu.Unlock()
	if calls != 1 {
		t.Fatalf("handler calls = %d, want 1", calls)
	}
}

// TestChaosStallInterruptedByContext: a stalled read (packet blackhole) must
// be bounded by the Step context, not hang forever.
func TestChaosStallInterruptedByContext(t *testing.T) {
	_, addr := startServer(t, &echoHandler{})
	plan := netchaos.NewPlan(1)
	plan.Inject(netchaos.Fault{Op: netchaos.OpRead, Kind: netchaos.KindStall})
	cfg := testClientConfig()
	cfg.Dialer = plan.Dial
	cfg.Retries = -1 // negative → normalized to 0: no retries, one stalled try
	c := NewClient(addr, cfg)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Step(ctx, sampleRequest(1))
	var peer *PeerError
	if !errors.As(err, &peer) {
		t.Fatalf("want PeerError, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stalled step took %v", d)
	}
}
