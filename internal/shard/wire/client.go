package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
)

// PeerError is a definitive failure from or about a peer shard: the peer is
// unreachable after retries, answered a TypeError frame, or spoke garbage.
// Callers (the shard coordinator, the HTTP layer) map it to 503 +
// Retry-After — the cluster is degraded, not the request.
type PeerError struct {
	Addr string
	Err  error
}

func (e *PeerError) Error() string { return fmt.Sprintf("shard peer %s: %v", e.Addr, e.Err) }
func (e *PeerError) Unwrap() error { return e.Err }

// RemoteError is the decoded body of a TypeError frame: the peer processed
// the frame and deliberately refused it (config mismatch, handler failure).
// Deliberate refusals are not retried — the peer will refuse again.
type RemoteError struct {
	Addr string
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("shard peer %s refused: %s", e.Addr, e.Msg) }

// aLongTimeAgo is a deadline that is guaranteed to have passed; setting it on
// a connection interrupts any blocked Read/Write (the net.http idiom for
// cancelling in-flight I/O from another goroutine).
var aLongTimeAgo = time.Unix(1, 0)

// DialFunc dials one connection to a peer. Fault-injection harnesses
// (internal/netchaos) hook the client here.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// ClientConfig tunes a peer client. The zero value is usable.
type ClientConfig struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// MaxIdleConns caps pooled idle connections per peer. Default 4.
	MaxIdleConns int
	// MaxIdleAge caps how long a pooled connection may sit idle before it is
	// reaped at the next checkout instead of reused. Default 60s.
	MaxIdleAge time.Duration
	// Retries is the number of re-attempts after the first failed try on
	// transient (connection-level) errors. Default 2.
	Retries int
	// RetryBackoff is the sleep before the first retry; it doubles each
	// attempt. Default 25ms.
	RetryBackoff time.Duration
	// Dialer replaces the default net.Dialer when non-nil. DialTimeout still
	// bounds the attempt via the context passed in.
	Dialer DialFunc
	// Metrics receives tea_shard_* client counters; nil means metrics.Default.
	Metrics *metrics.Registry
}

func (c ClientConfig) normalized() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 4
	}
	if c.MaxIdleAge <= 0 {
		c.MaxIdleAge = 60 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default
	}
	return c
}

// pconn is a pooled connection plus its reusable frame buffers. The buffers
// live with the connection — one exchange owns a connection at a time, so a
// warm connection encodes requests and reads responses with zero allocations
// regardless of how many Step calls run concurrently.
type pconn struct {
	net.Conn
	rbuf      []byte    // ReadFrameBuf scratch
	wbuf      []byte    // BeginFrame/SealFrame scratch
	idleSince time.Time // when the conn was last checked in
	owner     *Client
	closeOnce sync.Once
}

// Close closes the underlying connection exactly once and keeps the owner's
// open-connection accounting honest no matter how many error paths call it.
func (p *pconn) Close() error {
	err := net.ErrClosed
	p.closeOnce.Do(func() {
		p.owner.mu.Lock()
		p.owner.open--
		open := p.owner.open
		p.owner.mu.Unlock()
		p.owner.openConns.Set(float64(open))
		err = p.Conn.Close()
	})
	return err
}

// Client is a connection-pooled wire client for one peer shard. A connection
// carries one request/response exchange at a time; concurrent Step calls each
// check a connection out of the pool (or dial a fresh one) so they never
// interleave frames on a stream.
type Client struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	idle   []*pconn
	open   int // dialed and not yet closed (idle + in-flight)
	closed bool

	retries   *metrics.Counter
	errs      *metrics.Counter
	sentBytes *metrics.Counter
	recvBytes *metrics.Counter
	reaped    *metrics.Counter
	stale     *metrics.Counter
	hopSecs   *metrics.Histogram
	openConns *metrics.Gauge
}

// NewClient builds a client for the peer at addr (host:port).
func NewClient(addr string, cfg ClientConfig) *Client {
	cfg = cfg.normalized()
	return &Client{
		addr:      addr,
		cfg:       cfg,
		retries:   cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_peer_retries_total{peer=%q}`, addr)),
		errs:      cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_peer_errors_total{peer=%q}`, addr)),
		sentBytes: cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_bytes_sent_total{peer=%q}`, addr)),
		recvBytes: cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_bytes_recv_total{peer=%q}`, addr)),
		reaped:    cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_conns_reaped_total{peer=%q}`, addr)),
		stale:     cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_conns_stale_total{peer=%q}`, addr)),
		hopSecs:   cfg.Metrics.Histogram(fmt.Sprintf(`tea_shard_hop_seconds{peer=%q}`, addr)),
		openConns: cfg.Metrics.Gauge(fmt.Sprintf(`tea_shard_peer_open_conns{peer=%q}`, addr)),
	}
}

// Addr returns the peer address this client dials.
func (c *Client) Addr() string { return c.addr }

// OpenConns reports connections dialed and not yet closed (idle + in-flight).
func (c *Client) OpenConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.open
}

// IdleConns reports connections currently parked in the pool.
func (c *Client) IdleConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle)
}

// Step sends one batched step request and waits for the response. Transient
// connection errors (dial failure, broken stream) are retried with
// exponential backoff up to cfg.Retries times; a TypeError answer is
// returned as *RemoteError without retrying. The context deadline bounds the
// whole exchange including retries, and cancelling the context interrupts an
// in-flight exchange rather than waiting out the connection deadline.
func (c *Client) Step(ctx context.Context, req *StepRequest) (*StepResponse, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			select {
			case <-ctx.Done():
				return nil, &PeerError{Addr: c.addr, Err: fmt.Errorf("%w (last: %v)", ctx.Err(), lastErr)}
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		resp, err := c.exchange(ctx, req)
		if err == nil {
			return resp, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			c.errs.Inc()
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.errs.Inc()
	return nil, &PeerError{Addr: c.addr, Err: lastErr}
}

// Ping probes the peer with a ping/pong exchange.
func (c *Client) Ping(ctx context.Context) error {
	conn, err := c.checkout(ctx)
	if err != nil {
		return &PeerError{Addr: c.addr, Err: err}
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(aLongTimeAgo) })
	if err := c.applyDeadline(ctx, conn); err != nil {
		stop()
		conn.Close()
		return &PeerError{Addr: c.addr, Err: err}
	}
	if err := WriteFrame(conn, TypePing, nil); err != nil {
		stop()
		conn.Close()
		return &PeerError{Addr: c.addr, Err: err}
	}
	typ, _, err := ReadFrame(conn)
	if err != nil || typ != TypePong {
		stop()
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected frame type %d to ping", typ)
		}
		return &PeerError{Addr: c.addr, Err: err}
	}
	c.release(conn, stop)
	return nil
}

// exchange performs one try: checkout, encode into the connection's write
// buffer, write, read into its read buffer, checkin. An AfterFunc poisons
// the connection deadline if ctx is cancelled mid-flight so blocked I/O
// returns immediately instead of holding a goroutine and a socket.
func (c *Client) exchange(ctx context.Context, req *StepRequest) (*StepResponse, error) {
	conn, err := c.checkout(ctx)
	if err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(aLongTimeAgo) })
	fail := func(err error) error {
		stop()
		conn.Close()
		return err
	}
	if err := c.applyDeadline(ctx, conn); err != nil {
		return nil, fail(err)
	}
	frame := BeginFrame(conn.wbuf[:0], TypeStep)
	frame = AppendStepRequest(frame, req)
	frame, err = SealFrame(frame)
	if err != nil {
		return nil, fail(err)
	}
	conn.wbuf = frame
	start := time.Now()
	if _, err := conn.Write(frame); err != nil {
		return nil, fail(err)
	}
	c.sentBytes.Add(int64(len(frame)))
	typ, body, rbuf, err := ReadFrameBuf(conn, conn.rbuf)
	conn.rbuf = rbuf
	if err != nil {
		return nil, fail(err)
	}
	c.recvBytes.Add(int64(FrameSize(len(body))))
	c.hopSecs.ObserveSince(start)
	switch typ {
	case TypeStepResp:
		resp, err := DecodeStepResponse(body)
		if err != nil {
			return nil, fail(err)
		}
		c.release(conn, stop)
		return resp, nil
	case TypeError:
		// The connection is still framed correctly; keep it.
		c.release(conn, stop)
		return nil, &RemoteError{Addr: c.addr, Msg: string(body)}
	default:
		return nil, fail(fmt.Errorf("unexpected frame type %d", typ))
	}
}

// release disarms the cancellation AfterFunc and returns the connection to
// the pool. If the AfterFunc already started — the context raced the end of
// the exchange — the deadline may be poisoned, so the conn is not reusable.
func (c *Client) release(conn *pconn, stop func() bool) {
	if !stop() {
		conn.Close()
		return
	}
	c.checkin(conn)
}

func (c *Client) applyDeadline(ctx context.Context, conn net.Conn) error {
	if dl, ok := ctx.Deadline(); ok {
		return conn.SetDeadline(dl)
	}
	return conn.SetDeadline(time.Time{})
}

// checkout pops the most recently used idle connection, reaping any that
// outlived MaxIdleAge or fail a liveness poke (a peer restart leaves behind
// conns that look open but are dead — detect them here, not mid-request).
func (c *Client) checkout(ctx context.Context) (*pconn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("client closed")
		}
		n := len(c.idle)
		if n == 0 {
			c.mu.Unlock()
			break
		}
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		expired := time.Since(conn.idleSince) > c.cfg.MaxIdleAge
		c.mu.Unlock()
		if expired {
			c.reaped.Inc()
			conn.Close()
			continue
		}
		if !c.alive(conn) {
			c.stale.Inc()
			conn.Close()
			continue
		}
		return conn, nil
	}
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.cfg.DialTimeout)
		defer cancel()
	}
	var raw net.Conn
	var err error
	if c.cfg.Dialer != nil {
		raw, err = c.cfg.Dialer(dctx, "tcp", c.addr)
	} else {
		d := net.Dialer{Timeout: c.cfg.DialTimeout}
		raw, err = d.DialContext(dctx, "tcp", c.addr)
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.open++
	open := c.open
	c.mu.Unlock()
	c.openConns.Set(float64(open))
	return &pconn{Conn: raw, owner: c}, nil
}

// alive verifies a pooled connection is still usable (see connCheck).
func (c *Client) alive(conn *pconn) bool {
	return connCheck(conn.Conn) == nil
}

func (c *Client) checkin(conn *pconn) {
	conn.SetDeadline(time.Time{})
	conn.idleSince = time.Now()
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.MaxIdleConns {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// Close drops every pooled connection. In-flight exchanges finish on their
// own connections.
func (c *Client) Close() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}
