package shard

import (
	"testing"

	"github.com/tea-graph/tea/internal/temporal"
)

func TestPartitionerValidation(t *testing.T) {
	if _, err := NewPartitioner(0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := NewPartitioner(-3); err == nil {
		t.Fatal("negative partitions accepted")
	}
	p, err := NewPartitioner(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partitions() != 4 {
		t.Fatalf("partitions = %d", p.Partitions())
	}
}

// Ownership is a pure function of the partition count: two independently
// constructed rings agree on every vertex, which is what lets separate
// processes (shards, router, simulator) partition without coordination.
func TestPartitionerDeterministic(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 8, 17} {
		a := MustPartitioner(parts)
		b := MustPartitioner(parts)
		for v := 0; v < 10000; v++ {
			oa, ob := a.Owner(temporal.Vertex(v)), b.Owner(temporal.Vertex(v))
			if oa != ob {
				t.Fatalf("parts=%d vertex %d: %d vs %d", parts, v, oa, ob)
			}
			if oa < 0 || oa >= parts {
				t.Fatalf("parts=%d vertex %d: owner %d out of range", parts, v, oa)
			}
		}
	}
}

func TestPartitionerSinglePartition(t *testing.T) {
	p := MustPartitioner(1)
	for v := 0; v < 1000; v++ {
		if p.Owner(temporal.Vertex(v)) != 0 {
			t.Fatalf("vertex %d not owned by the only partition", v)
		}
	}
}

// The bugfix this type exists for: id%P sends every strided id k·P+c to one
// partition; the hash ring must keep the load balanced regardless of id
// structure. The bound is the satellite's acceptance criterion: max/mean
// partition load ≤ 1.2.
func TestPartitionerStridedSkew(t *testing.T) {
	const n = 40000
	for _, parts := range []int{2, 3, 4, 8} {
		p := MustPartitioner(parts)
		for _, stride := range []int{parts, 2 * parts, 16} {
			counts := make([]int, parts)
			for i := 0; i < n; i++ {
				counts[p.Owner(temporal.Vertex(i*stride))]++
			}
			mean := float64(n) / float64(parts)
			for part, c := range counts {
				if ratio := float64(c) / mean; ratio > 1.2 {
					t.Fatalf("parts=%d stride=%d: partition %d load %.3f× mean (counts=%v)",
						parts, stride, part, ratio, counts)
				}
			}
		}
	}
}

// Sequential ids (the common case) must balance too.
func TestPartitionerSequentialSkew(t *testing.T) {
	const n = 40000
	for _, parts := range []int{2, 3, 8} {
		p := MustPartitioner(parts)
		counts := make([]int, parts)
		for i := 0; i < n; i++ {
			counts[p.Owner(temporal.Vertex(i))]++
		}
		mean := float64(n) / float64(parts)
		for part, c := range counts {
			if ratio := float64(c) / mean; ratio > 1.2 {
				t.Fatalf("parts=%d: partition %d load %.3f× mean", parts, part, ratio)
			}
		}
	}
}

// Regression: small sequential ids (0..255) collided with partition 0's own
// ring points before the domain salt, so shard 0 owned every small vertex —
// the exact degenerate case the ring exists to prevent. The bound is looser
// than the big-n skew tests because 256 samples are few.
func TestPartitionerSmallIDRange(t *testing.T) {
	for _, parts := range []int{2, 3, 4, 8} {
		p := MustPartitioner(parts)
		counts := make([]int, parts)
		for v := 0; v < 256; v++ {
			counts[p.Owner(temporal.Vertex(v))]++
		}
		mean := 256.0 / float64(parts)
		for part, c := range counts {
			if ratio := float64(c) / mean; ratio > 2.0 {
				t.Fatalf("parts=%d: partition %d owns %.1f× its share of ids 0..255 (counts=%v)",
					parts, part, ratio, counts)
			}
		}
	}
}

func BenchmarkPartitionerOwner(b *testing.B) {
	p := MustPartitioner(8)
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += p.Owner(temporal.Vertex(i))
	}
	_ = sum
}
