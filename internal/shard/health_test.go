package shard

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

var errPeer = errors.New("peer boom")

func TestBreakerOpensAfterThresholdAndProbes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 2 * time.Second, now: clk.now})

	if st := b.State(); st != HealthHealthy {
		t.Fatalf("initial state %v", st)
	}
	b.Report(time.Millisecond, errPeer)
	if st := b.State(); st != HealthSuspect {
		t.Fatalf("after 1 failure: %v", st)
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("suspect replica must still take traffic")
	}
	b.Report(time.Millisecond, errPeer)
	b.Report(time.Millisecond, errPeer)
	if st := b.State(); st != HealthOpen {
		t.Fatalf("after 3 failures: %v", st)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted traffic inside OpenFor")
	}

	// Half-open: one probe after OpenFor, and only one.
	clk.advance(2 * time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after OpenFor = (%v,%v), want probe", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe re-arms the open window.
	b.Report(time.Millisecond, errPeer)
	if ok, _ := b.Allow(); ok {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.advance(2 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("no probe after re-armed window")
	}

	// Successful probe closes the breaker.
	b.Report(time.Millisecond, nil)
	if st := b.State(); st != HealthHealthy {
		t.Fatalf("after good probe: %v", st)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("healthy Allow = (%v,%v)", ok, probe)
	}
}

func TestBreakerLatencyProfile(t *testing.T) {
	b := NewBreaker(BreakerConfig{EWMAAlpha: 0.5})
	for i := 0; i < 100; i++ {
		b.Report(10*time.Millisecond, nil)
	}
	b.Report(100*time.Millisecond, nil) // top-2% outliers: p99 must see them
	b.Report(100*time.Millisecond, nil)
	if p99, n := b.P99(); n != 102 || p99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v over %d samples, want the outliers visible", p99, n)
	}
	// EWMA blends toward the outliers without jumping all the way.
	if e := b.EWMA(); e <= 10*time.Millisecond || e >= 100*time.Millisecond {
		t.Fatalf("ewma = %v", e)
	}
	// Failures never pollute the latency window.
	before, _ := b.P99()
	b.Report(10*time.Second, errPeer)
	if after, _ := b.P99(); after != before {
		t.Fatal("failed attempt entered the latency window")
	}
}

func TestReplicaOrderingPrefersHealthyThenLatency(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	mk := func() *Breaker {
		return NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 2 * time.Second, now: clk.now})
	}
	fast, slow, suspect, open := mk(), mk(), mk(), mk()
	fast.Report(5*time.Millisecond, nil)
	slow.Report(50*time.Millisecond, nil)
	suspect.Report(5*time.Millisecond, nil)
	suspect.Report(time.Millisecond, errPeer)
	for i := 0; i < 3; i++ {
		open.Report(time.Millisecond, errPeer)
	}
	g := &replicaGroup{replicas: []*replica{
		{addr: "open", breaker: open},
		{addr: "slow", breaker: slow},
		{addr: "suspect", breaker: suspect},
		{addr: "fast", breaker: fast},
	}}
	var got []string
	for _, r := range g.ordered() {
		got = append(got, r.addr)
	}
	want := []string{"fast", "slow", "suspect", "open"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Past OpenFor the open replica becomes probe-eligible but still ranks
	// behind live ones.
	clk.advance(3 * time.Second)
	if last := g.ordered()[3]; last.addr != "open" {
		t.Fatalf("probe-eligible open replica jumped the queue: %v", last.addr)
	}
}
