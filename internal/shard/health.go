package shard

import (
	"sort"
	"sync"
	"time"
)

// HealthState classifies one replica as seen by this process's breaker.
type HealthState int

const (
	// HealthHealthy: no recent failures; the replica is preferred.
	HealthHealthy HealthState = iota
	// HealthSuspect: some consecutive failures, below the breaker threshold.
	HealthSuspect
	// HealthOpen: the breaker tripped; the replica only sees half-open probe
	// traffic (or last-resort attempts when every sibling is down too).
	HealthOpen
)

func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a replica circuit breaker. The zero value is usable.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker. Default 3.
	FailureThreshold int
	// OpenFor is how long an open breaker refuses traffic before admitting a
	// single half-open probe. Default 2s.
	OpenFor time.Duration
	// EWMAAlpha smooths the latency estimate (new = α·sample + (1−α)·old).
	// Default 0.2.
	EWMAAlpha float64
	// now is a test hook; nil means time.Now.
	now func() time.Time
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// latencyRingSize bounds the per-replica sample window the p99 hedge delay
// is computed from. 128 samples ≈ the last few step rounds of a busy walk.
const latencyRingSize = 128

// Breaker is a per-replica circuit breaker with half-open probing and a
// latency profile (EWMA for preference ordering, a sample ring for the
// p99-based hedge delay). All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	fails    int       // consecutive failures
	openedAt time.Time // when fails crossed the threshold (re-armed per failure while open)
	probing  bool      // a half-open probe is in flight
	ewma     float64   // seconds; 0 until first success
	ring     [latencyRingSize]float64
	ringN    int // samples written (caps at ring size for indexing)
	ringPos  int
	okTotal  int64
	errTotal int64
}

// NewBreaker builds a breaker with cfg (zero value → defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.normalized()}
}

// Allow reports whether traffic should be sent to this replica right now,
// and whether that traffic is a half-open probe (the caller must Report its
// outcome so the breaker can close or re-open).
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.cfg.FailureThreshold {
		return true, false
	}
	if b.probing {
		return false, false
	}
	if b.cfg.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.probing = true
		return true, true
	}
	return false, false
}

// Report records the outcome of one attempt against this replica. Latency is
// only profiled on success (a failed attempt's duration measures the failure
// mode, not the replica).
func (b *Breaker) Report(d time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err != nil {
		b.errTotal++
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			// Re-arm the open window on every failure at/over the threshold so
			// a failed probe buys another OpenFor of quiet.
			b.openedAt = b.cfg.now()
		}
		return
	}
	b.okTotal++
	b.fails = 0
	sec := d.Seconds()
	if b.ewma == 0 {
		b.ewma = sec
	} else {
		b.ewma = b.cfg.EWMAAlpha*sec + (1-b.cfg.EWMAAlpha)*b.ewma
	}
	b.ring[b.ringPos] = sec
	b.ringPos = (b.ringPos + 1) % latencyRingSize
	if b.ringN < latencyRingSize {
		b.ringN++
	}
}

// State classifies the replica for observability and preference ordering.
func (b *Breaker) State() HealthState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() HealthState {
	switch {
	case b.fails >= b.cfg.FailureThreshold:
		return HealthOpen
	case b.fails > 0:
		return HealthSuspect
	default:
		return HealthHealthy
	}
}

// EWMA returns the smoothed success latency (0 until the first success).
func (b *Breaker) EWMA() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.ewma * float64(time.Second))
}

// P99 returns the 99th-percentile success latency over the sample window and
// the number of samples behind it; callers gate hedging on the sample count.
func (b *Breaker) P99() (time.Duration, int) {
	b.mu.Lock()
	n := b.ringN
	var window []float64
	if n > 0 {
		window = append(window, b.ring[:n]...)
	}
	b.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(window)
	idx := (n * 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(window[idx] * float64(time.Second)), n
}

// Fails returns the consecutive-failure count (for status reporting).
func (b *Breaker) Fails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}

// Totals returns lifetime success/failure counts.
func (b *Breaker) Totals() (ok, errs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.okTotal, b.errTotal
}

// Rank orders replicas for attempt preference: healthy first (0), then
// suspect (1), then open-but-probe-eligible (2), then hard-open (3, still
// attempted as a last resort — the cluster answers 503 only when every
// replica truly fails). Ties break on the returned latency EWMA (seconds).
func (b *Breaker) Rank() (r int, ewma float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case HealthHealthy:
		r = 0
	case HealthSuspect:
		r = 1
	default:
		if !b.probing && b.cfg.now().Sub(b.openedAt) >= b.cfg.OpenFor {
			r = 2 // probe-eligible
		} else {
			r = 3
		}
	}
	return r, b.ewma
}
