package shard

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/core"
	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/netchaos"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// serveNode exposes a node (or any handler) on loopback TCP.
func serveNode(t *testing.T, h wire.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(ln, h, nil)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// validStepRequest builds a fingerprint-matching request for nodes built with
// the given partition count.
func validStepRequest(g *temporal.Graph, parts, walkers int) *wire.StepRequest {
	req := &wire.StepRequest{
		RequestID:   "replica-test",
		Partitions:  uint32(parts),
		NumVertices: uint32(g.NumVertices()),
		Walkers:     make([]wire.Walker, walkers),
	}
	root := xrand.New(7)
	for i := range req.Walkers {
		w := &req.Walkers[i]
		w.ID = uint64(i)
		w.Cur = temporal.Vertex(i % g.NumVertices())
		w.Arrival = temporal.MinTime
		root.SplitTo(uint64(i), &w.RNG)
	}
	return req
}

func testReplicaConfig(reg *metrics.Registry) ReplicaPeersConfig {
	return ReplicaPeersConfig{
		Client:  wire.ClientConfig{Metrics: reg, RetryBackoff: time.Millisecond, DialTimeout: time.Second},
		Metrics: reg,
	}
}

func TestReplicaFailoverOnDeadPrimary(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1500, 300, 61)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 2, core.KernelScalar)
	dead := deadAddr(t)
	live := serveNode(t, nodes[1])

	reg := metrics.NewRegistry()
	rp := NewReplicaPeers(map[int][]string{1: {dead, live}}, testReplicaConfig(reg))
	defer rp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := validStepRequest(g, 2, 5)
	resp, err := rp.Step(ctx, 1, req)
	if err != nil {
		t.Fatalf("failover step: %v", err)
	}
	if len(resp.Results) != len(req.Walkers) {
		t.Fatalf("%d results", len(resp.Results))
	}
	if v := reg.Counter(`tea_shard_replica_failovers_total{shard="1"}`).Value(); v != 1 {
		t.Fatalf("failovers = %d", v)
	}
	snap := rp.Snapshot()[1]
	if snap[0].Addr != dead || snap[0].State == "healthy" {
		t.Fatalf("dead replica status: %+v", snap[0])
	}
	if snap[1].State != "healthy" {
		t.Fatalf("live replica status: %+v", snap[1])
	}
	// Subsequent steps prefer the live replica: no more failover increments.
	for i := 0; i < 3; i++ {
		if _, err := rp.Step(ctx, 1, req); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter(`tea_shard_replica_failovers_total{shard="1"}`).Value(); v != 1 {
		t.Fatalf("health ordering ignored: failovers = %d", v)
	}
}

func TestAllReplicasDownYieldsPeerError(t *testing.T) {
	g := testutil.RandomGraph(t, 40, 800, 200, 62)
	reg := metrics.NewRegistry()
	rp := NewReplicaPeers(map[int][]string{1: {deadAddr(t), deadAddr(t)}}, testReplicaConfig(reg))
	defer rp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := rp.Step(ctx, 1, validStepRequest(g, 2, 1))
	var peer *wire.PeerError
	if !errors.As(err, &peer) {
		t.Fatalf("want PeerError, got %v", err)
	}
	for _, st := range rp.Snapshot()[1] {
		if st.State == "healthy" {
			t.Fatalf("dead replica still healthy: %+v", st)
		}
	}
}

// countingHandler wraps a handler and counts calls.
type countingHandler struct {
	inner wire.Handler
	calls atomic.Int64
}

func (h *countingHandler) HandleStep(ctx context.Context, req *wire.StepRequest) (*wire.StepResponse, error) {
	h.calls.Add(1)
	return h.inner.HandleStep(ctx, req)
}

// A deliberate refusal (fingerprint mismatch) must NOT fail over: siblings
// share the fingerprint and would refuse identically, so retrying them just
// doubles the damage of a misconfigured cluster.
func TestRemoteErrorNotFailedOver(t *testing.T) {
	g := testutil.RandomGraph(t, 40, 800, 200, 63)
	wrong := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelScalar) // wrong partition count
	right := newTestNodes(t, g, sampling.WeightSpec{}, 2, core.KernelScalar)
	sibling := &countingHandler{inner: right[1]}
	addrs := []string{serveNode(t, wrong[1]), serveNode(t, sibling)}

	reg := metrics.NewRegistry()
	rp := NewReplicaPeers(map[int][]string{1: addrs}, testReplicaConfig(reg))
	defer rp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := rp.Step(ctx, 1, validStepRequest(g, 2, 1))
	var remote *wire.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if n := sibling.calls.Load(); n != 0 {
		t.Fatalf("refusal was failed over to sibling (%d calls)", n)
	}
}

// slowHandler delays every response until the given duration or ctx death.
type slowHandler struct {
	inner wire.Handler
	delay time.Duration
}

func (h *slowHandler) HandleStep(ctx context.Context, req *wire.StepRequest) (*wire.StepResponse, error) {
	select {
	case <-time.After(h.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return h.inner.HandleStep(ctx, req)
}

func TestHedgedStepWinsOverSlowPrimary(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1500, 300, 64)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 2, core.KernelScalar)
	slow := serveNode(t, &slowHandler{inner: nodes[1], delay: 2 * time.Second})
	fast := serveNode(t, nodes[1])

	reg := metrics.NewRegistry()
	cfg := testReplicaConfig(reg)
	cfg.Hedge = HedgeConfig{Enabled: true, Delay: 20 * time.Millisecond}
	rp := NewReplicaPeers(map[int][]string{1: {slow, fast}}, cfg)
	defer rp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := validStepRequest(g, 2, 4)
	start := time.Now()
	resp, err := rp.Step(ctx, 1, req)
	if err != nil {
		t.Fatalf("hedged step: %v", err)
	}
	if len(resp.Results) != len(req.Walkers) {
		t.Fatalf("%d results", len(resp.Results))
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedge did not rescue the slow primary: %v", d)
	}
	if v := reg.Counter(`tea_shard_replica_hedges_total{shard="1"}`).Value(); v != 1 {
		t.Fatalf("hedges = %d", v)
	}
	if v := reg.Counter(`tea_shard_replica_hedge_wins_total{shard="1"}`).Value(); v != 1 {
		t.Fatalf("hedge wins = %d", v)
	}
	// The slow loser was cancelled, not failed: its breaker must not have
	// tripped toward open.
	for _, st := range rp.Snapshot()[1] {
		if st.State == "open" {
			t.Fatalf("hedge loser counted as breaker failure: %+v", st)
		}
	}
}

// A netchaos stall (packet blackhole) on the primary must be rescued by the
// hedge, and the stalled loser must unwind when the hedge wins (first-wins
// cancellation poisons its deadline and wakes the stall).
func TestHedgeRescuesNetchaosStall(t *testing.T) {
	g := testutil.RandomGraph(t, 60, 1500, 300, 65)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 2, core.KernelScalar)
	primary := serveNode(t, nodes[1])
	sibling := serveNode(t, nodes[1])

	plan := netchaos.NewPlan(3)
	plan.Inject(netchaos.Fault{Op: netchaos.OpRead, Kind: netchaos.KindStall, Peer: primary})

	reg := metrics.NewRegistry()
	cfg := testReplicaConfig(reg)
	cfg.Client.Dialer = plan.Dial
	cfg.Hedge = HedgeConfig{Enabled: true, Delay: 15 * time.Millisecond}
	rp := NewReplicaPeers(map[int][]string{1: {primary, sibling}}, cfg)
	defer rp.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := validStepRequest(g, 2, 3)
	start := time.Now()
	if _, err := rp.Step(ctx, 1, req); err != nil {
		t.Fatalf("hedged step through stall: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stall rescue took %v", d)
	}
	// The stalled goroutine must unwind promptly after the winner returns.
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count settles back to at most
// base+2 (allowing runtime noise), failing after 3s.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > base %d; stacks:\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Satellite: the coordinator's fail-fast must cancel the round's outstanding
// step-RPCs — no goroutine parked on a slow peer, no in-flight conns left
// open — the moment the first peer error lands.
func TestFailFastReleasesOutstandingHops(t *testing.T) {
	g := testutil.RandomGraph(t, 150, 4000, 800, 66)
	nodes := newTestNodes(t, g, sampling.WeightSpec{}, 3, core.KernelBatch)

	// Peer 1 is dead (fails in ~ms); peer 2 wedges until its ctx dies. Without
	// round cancellation the wedged hop holds its goroutine and conn for the
	// full 10s delay.
	dead := deadAddr(t)
	wedged := serveNode(t, &slowHandler{inner: nodes[2], delay: 10 * time.Second})

	reg := metrics.NewRegistry()
	peers := NewReplicaPeers(map[int][]string{1: {dead}, 2: {wedged}}, testReplicaConfig(reg))
	defer peers.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	start := time.Now()
	_, err := nodes[0].RunWalks(ctx, peers, WalkRequest{Length: 20, Seed: 3, WalksPerVertex: 2})
	var peerErr *wire.PeerError
	if !errors.As(err, &peerErr) {
		t.Fatalf("want PeerError, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("fail-fast took %v (wedged hop not cancelled)", d)
	}
	// All hop goroutines have unwound (RunWalks waits on them), so the wedged
	// peer's conns must already be closed, not parked in the pool poisoned.
	for sid, sts := range peers.Snapshot() {
		for _, st := range sts {
			if st.OpenConns != 0 {
				t.Fatalf("shard %d replica %s: %d conns still open after fail-fast", sid, st.Addr, st.OpenConns)
			}
		}
	}
	waitForGoroutines(t, before)
}

// sanity: ReplicaPeers with unknown shard id errors cleanly.
func TestReplicaPeersUnknownShard(t *testing.T) {
	rp := NewReplicaPeers(nil, ReplicaPeersConfig{Metrics: metrics.NewRegistry()})
	defer rp.Close()
	if _, err := rp.Step(context.Background(), 9, &wire.StepRequest{}); err == nil {
		t.Fatal("unknown shard accepted")
	} else if _, ok := err.(*wire.PeerError); ok {
		t.Fatal("unknown shard misclassified as transient peer failure")
	}
}
