package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/shard/wire"
	"github.com/tea-graph/tea/internal/trace"
)

// HedgeConfig tunes speculative duplicate step-RPCs. Hedging is safe because
// HandleStep is a pure function of the request (walkers carry their RNG
// state), so two replicas answering the same frame return identical bytes.
type HedgeConfig struct {
	// Enabled turns hedging on. Off by default: hedges trade duplicate work
	// for tail latency, which is an operator's call.
	Enabled bool
	// Delay is the fixed wait before launching the hedge; 0 means auto (the
	// primary replica's observed p99).
	Delay time.Duration
	// MinDelay/MaxDelay clamp the auto delay. Defaults 1ms / 1s.
	MinDelay time.Duration
	MaxDelay time.Duration
	// MinSamples gates auto hedging until the latency window has enough
	// history to make p99 meaningful. Default 16.
	MinSamples int
}

func (c HedgeConfig) normalized() HedgeConfig {
	if c.MinDelay <= 0 {
		c.MinDelay = time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	return c
}

// ReplicaPeersConfig configures the health-aware peer table.
type ReplicaPeersConfig struct {
	Client  wire.ClientConfig
	Breaker BreakerConfig
	Hedge   HedgeConfig
	// Metrics receives the tea_shard_replica_* family; nil means
	// metrics.Default.
	Metrics *metrics.Registry
}

// replica is one address serving a partition, plus its local health view.
type replica struct {
	addr    string
	client  *wire.Client
	breaker *Breaker
	state   *metrics.Gauge // 0 healthy / 1 suspect / 2 open
}

func (r *replica) publishState() {
	r.state.Set(float64(r.breaker.State()))
}

// replicaGroup is the replica set serving one partition.
type replicaGroup struct {
	shardID   int
	replicas  []*replica
	failovers *metrics.Counter
	hedges    *metrics.Counter
	hedgeWins *metrics.Counter
}

// ordered returns the group's replicas in attempt-preference order: by
// breaker rank (healthy, suspect, probe-eligible, open), then by latency
// EWMA, then by stable index. Open replicas stay in the list as a last
// resort — the partition is reported down only when every replica fails.
func (g *replicaGroup) ordered() []*replica {
	type scored struct {
		r    *replica
		rank int
		ewma float64
		idx  int
	}
	s := make([]scored, len(g.replicas))
	for i, r := range g.replicas {
		rank, ewma := r.breaker.Rank()
		s[i] = scored{r, rank, ewma, i}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].rank != s[b].rank {
			return s[a].rank < s[b].rank
		}
		if s[a].ewma != s[b].ewma {
			return s[a].ewma < s[b].ewma
		}
		return s[a].idx < s[b].idx
	})
	out := make([]*replica, len(s))
	for i := range s {
		out[i] = s[i].r
	}
	return out
}

// ReplicaPeers is a StepCaller over replica groups: every partition maps to
// N interchangeable addresses, attempts prefer the healthiest replica, a
// failed hop re-sends the same walker frames to a sibling (byte-identical
// by construction — the frames carry raw RNG state), and optional hedges
// duplicate slow RPCs at a p99-based delay with first-wins cancellation.
type ReplicaPeers struct {
	cfg    ReplicaPeersConfig
	groups map[int]*replicaGroup
}

// NewReplicaPeers builds pooled clients for every replica of every peer
// partition. addrs maps shard id to that partition's replica addresses (the
// local shard must not appear).
func NewReplicaPeers(addrs map[int][]string, cfg ReplicaPeersConfig) *ReplicaPeers {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	if cfg.Client.Metrics == nil {
		cfg.Client.Metrics = cfg.Metrics
	}
	cfg.Hedge = cfg.Hedge.normalized()
	rp := &ReplicaPeers{cfg: cfg, groups: make(map[int]*replicaGroup, len(addrs))}
	for id, as := range addrs {
		g := &replicaGroup{
			shardID:   id,
			failovers: cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_replica_failovers_total{shard="%d"}`, id)),
			hedges:    cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_replica_hedges_total{shard="%d"}`, id)),
			hedgeWins: cfg.Metrics.Counter(fmt.Sprintf(`tea_shard_replica_hedge_wins_total{shard="%d"}`, id)),
		}
		for _, addr := range as {
			r := &replica{
				addr:    addr,
				client:  wire.NewClient(addr, cfg.Client),
				breaker: NewBreaker(cfg.Breaker),
				state:   cfg.Metrics.Gauge(fmt.Sprintf(`tea_shard_replica_state{shard="%d",replica=%q}`, id, addr)),
			}
			g.replicas = append(g.replicas, r)
		}
		rp.groups[id] = g
	}
	return rp
}

// Step implements StepCaller with mid-request failover: replicas are tried
// in health order and the first good answer wins. A *wire.RemoteError (the
// peer deliberately refused — config mismatch) is returned immediately:
// siblings share the fingerprint and would refuse identically.
func (rp *ReplicaPeers) Step(ctx context.Context, shardID int, req *wire.StepRequest) (*wire.StepResponse, error) {
	g, ok := rp.groups[shardID]
	if !ok {
		return nil, fmt.Errorf("shard: no peer addresses for shard %d", shardID)
	}
	order := g.ordered()
	if rp.cfg.Hedge.Enabled && len(order) > 1 {
		return rp.hedgedStep(ctx, g, order, req)
	}
	var lastErr error
	for i, r := range order {
		resp, err := rp.try(ctx, r, req)
		if err == nil {
			return resp, nil
		}
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		if i+1 < len(order) {
			g.failovers.Inc()
			rp.traceFailover(ctx, g.shardID, r.addr, order[i+1].addr)
		}
	}
	return nil, lastErr
}

// try runs one attempt against one replica and reports its outcome to the
// breaker — unless the surrounding context was cancelled, in which case the
// failure says nothing about the replica's health.
func (rp *ReplicaPeers) try(ctx context.Context, r *replica, req *wire.StepRequest) (*wire.StepResponse, error) {
	start := time.Now()
	resp, err := r.client.Step(ctx, req)
	if err == nil || ctx.Err() == nil {
		r.breaker.Report(time.Since(start), err)
		r.publishState()
	}
	return resp, err
}

// hedgeDelay picks the speculative-duplicate delay for a primary replica.
// A second return of false means hedging should be skipped this round.
func (rp *ReplicaPeers) hedgeDelay(primary *replica) (time.Duration, bool) {
	h := rp.cfg.Hedge
	if h.Delay > 0 {
		return h.Delay, true
	}
	p99, n := primary.breaker.P99()
	if n < h.MinSamples {
		return 0, false
	}
	if p99 < h.MinDelay {
		p99 = h.MinDelay
	}
	if p99 > h.MaxDelay {
		p99 = h.MaxDelay
	}
	return p99, true
}

// hedgedStep launches the primary attempt, arms a p99 timer, and on expiry
// launches a duplicate on the next-preferred replica; the first good answer
// wins and cancels the other. A replica error before the timer fires skips
// straight to failover (no reason to wait for a timer when the primary is
// already known dead).
func (rp *ReplicaPeers) hedgedStep(ctx context.Context, g *replicaGroup, order []*replica, req *wire.StepRequest) (*wire.StepResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp *wire.StepResponse
		err  error
		idx  int
	}
	ch := make(chan outcome, len(order))
	next, inflight := 0, 0
	launch := func() {
		r := order[next]
		idx := next
		next++
		inflight++
		go func() {
			start := time.Now()
			resp, err := r.client.Step(hctx, req)
			// A loser cancelled by first-wins is not a health signal.
			if err == nil || hctx.Err() == nil {
				r.breaker.Report(time.Since(start), err)
				r.publishState()
			}
			ch <- outcome{resp, err, idx}
		}()
	}
	launch()

	var timerC <-chan time.Time
	if d, ok := rp.hedgeDelay(order[0]); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}

	hedgeIdx := -1 // launch index that was a speculative hedge, if any
	var lastErr error
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				if out.idx == hedgeIdx {
					g.hedgeWins.Inc()
				}
				return out.resp, nil
			}
			var remote *wire.RemoteError
			if errors.As(out.err, &remote) {
				return nil, out.err
			}
			lastErr = out.err
			if ctx.Err() != nil {
				if inflight == 0 {
					return nil, lastErr
				}
				continue
			}
			if next < len(order) {
				rp.traceFailover(ctx, g.shardID, order[out.idx].addr, order[next].addr)
				g.failovers.Inc()
				launch()
			} else if inflight == 0 {
				return nil, lastErr
			}
		case <-timerC:
			timerC = nil
			if next < len(order) {
				g.hedges.Inc()
				rp.traceHedge(ctx, g.shardID, order[next].addr)
				hedgeIdx = next
				launch()
			}
		}
	}
	return nil, lastErr
}

// traceFailover records a failover decision as an instantaneous span on the
// request's timeline.
func (rp *ReplicaPeers) traceFailover(ctx context.Context, shardID int, from, to string) {
	_, sp := trace.Start(ctx, "shard.failover")
	if sp == nil {
		return
	}
	sp.SetInt("shard", int64(shardID))
	sp.SetStr("from", from)
	sp.SetStr("to", to)
	sp.End()
}

// traceHedge records a hedge launch on the request's timeline.
func (rp *ReplicaPeers) traceHedge(ctx context.Context, shardID int, to string) {
	_, sp := trace.Start(ctx, "shard.hedge")
	if sp == nil {
		return
	}
	sp.SetInt("shard", int64(shardID))
	sp.SetStr("to", to)
	sp.End()
}

// ReplicaStatus is one replica's health as reported by /healthz.
type ReplicaStatus struct {
	Addr             string  `json:"addr"`
	State            string  `json:"state"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	LatencyEWMAms    float64 `json:"latency_ewma_ms"`
	OK               int64   `json:"ok_total"`
	Errors           int64   `json:"err_total"`
	OpenConns        int     `json:"open_conns"`
}

// Snapshot reports every peer partition's replica table for observability.
func (rp *ReplicaPeers) Snapshot() map[int][]ReplicaStatus {
	out := make(map[int][]ReplicaStatus, len(rp.groups))
	for id, g := range rp.groups {
		sts := make([]ReplicaStatus, 0, len(g.replicas))
		for _, r := range g.replicas {
			ok, errs := r.breaker.Totals()
			sts = append(sts, ReplicaStatus{
				Addr:             r.addr,
				State:            r.breaker.State().String(),
				ConsecutiveFails: r.breaker.Fails(),
				LatencyEWMAms:    float64(r.breaker.EWMA()) / float64(time.Millisecond),
				OK:               ok,
				Errors:           errs,
				OpenConns:        r.client.OpenConns(),
			})
		}
		out[id] = sts
	}
	return out
}

// Ping probes every peer partition; a partition is reachable if any one of
// its replicas answers. Outcomes feed the breakers, so startup probing also
// warms the health table.
func (rp *ReplicaPeers) Ping(ctx context.Context) error {
	for id, g := range rp.groups {
		var lastErr error
		reached := false
		for _, r := range g.ordered() {
			start := time.Now()
			err := r.client.Ping(ctx)
			if err == nil || ctx.Err() == nil {
				r.breaker.Report(time.Since(start), err)
				r.publishState()
			}
			if err == nil {
				reached = true
				break
			}
			lastErr = err
		}
		if !reached {
			return fmt.Errorf("shard %d unreachable on all replicas: %w", id, lastErr)
		}
	}
	return nil
}

// Close releases every replica's pooled connections.
func (rp *ReplicaPeers) Close() {
	for _, g := range rp.groups {
		for _, r := range g.replicas {
			r.client.Close()
		}
	}
}
