// Package chksum implements the 8-byte integrity footer shared by TEA's
// binary serialization formats (edge streams, HPAT indices): a 4-byte footer
// magic followed by the little-endian CRC-32C of every payload byte before
// it. Readers that find clean EOF where the footer would start accept the
// file as legacy (written before footers existed); a partial footer, wrong
// magic, or checksum mismatch is corruption.
package chksum

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// FooterSize is the on-disk footprint of the integrity footer.
const FooterSize = 8

// footerMagic marks the start of the footer ("TEAC" = TEA checksum).
var footerMagic = [4]byte{'T', 'E', 'A', 'C'}

// ErrFooter is the sentinel wrapped by every footer verification failure.
var ErrFooter = errors.New("chksum: bad integrity footer")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer hashes every byte written through it. Write the payload through a
// Writer, then append Footer() to the underlying stream.
type Writer struct {
	w io.Writer
	h hash.Hash32
}

// NewWriter wraps w with CRC-32C accounting.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, h: crc32.New(castagnoli)}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	w.h.Write(p[:n])
	return n, err
}

// Footer renders the trailer for the bytes written so far.
func (w *Writer) Footer() [FooterSize]byte {
	var f [FooterSize]byte
	copy(f[:4], footerMagic[:])
	sum := w.h.Sum32()
	f[4] = byte(sum)
	f[5] = byte(sum >> 8)
	f[6] = byte(sum >> 16)
	f[7] = byte(sum >> 24)
	return f
}

// Reader hashes every byte read through it. Read the payload through a
// Reader, then call Verify against the underlying stream — reading the
// footer directly from the source keeps its bytes out of the checksum.
type Reader struct {
	r io.Reader
	h hash.Hash32
}

// NewReader wraps r with CRC-32C accounting.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, h: crc32.New(castagnoli)}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	r.h.Write(p[:n])
	return n, err
}

// Verify reads the footer from src (the Reader's underlying stream) and
// checks it against the payload read so far. legacy is true — with a nil
// error — when src is already at clean EOF: a file written before footers
// existed. Any other shortfall, a wrong magic, or a checksum mismatch
// returns an error wrapping ErrFooter.
func (r *Reader) Verify(src io.Reader) (legacy bool, err error) {
	var f [FooterSize]byte
	n, err := io.ReadFull(src, f[:])
	if err == io.EOF && n == 0 {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("%w: truncated footer (%d of %d bytes)", ErrFooter, n, FooterSize)
	}
	if [4]byte(f[:4]) != footerMagic {
		return false, fmt.Errorf("%w: bad footer magic %x", ErrFooter, f[:4])
	}
	want := uint32(f[4]) | uint32(f[5])<<8 | uint32(f[6])<<16 | uint32(f[7])<<24
	if got := r.h.Sum32(); got != want {
		return false, fmt.Errorf("%w: checksum %08x, footer says %08x", ErrFooter, got, want)
	}
	return false, nil
}
