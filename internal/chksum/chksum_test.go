package chksum

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func payloadWithFooter(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	f := w.Footer()
	buf.Write(f[:])
	return buf.Bytes()
}

// verify reads n payload bytes through a Reader and checks the trailer.
func verify(t *testing.T, data []byte, n int) (bool, error) {
	t.Helper()
	src := bytes.NewReader(data)
	r := NewReader(src)
	if _, err := io.ReadFull(r, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	return r.Verify(src)
}

func TestFooterRoundTrip(t *testing.T) {
	payload := []byte("some serialized structure")
	data := payloadWithFooter(t, payload)
	if len(data) != len(payload)+FooterSize {
		t.Fatalf("footer size %d, want %d", len(data)-len(payload), FooterSize)
	}
	legacy, err := verify(t, data, len(payload))
	if err != nil || legacy {
		t.Fatalf("round trip: legacy=%v err=%v", legacy, err)
	}
}

func TestFooterLegacyEOF(t *testing.T) {
	payload := []byte("footer-less file from an old version")
	legacy, err := verify(t, payload, len(payload))
	if err != nil || !legacy {
		t.Fatalf("legacy=%v err=%v, want legacy with no error", legacy, err)
	}
}

func TestFooterFailures(t *testing.T) {
	payload := []byte("some serialized structure")
	good := payloadWithFooter(t, payload)
	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x10
		return b
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"partial footer", good[:len(good)-3]},
		{"payload flip", flip(2)},
		{"magic flip", flip(len(good) - FooterSize)},
		{"checksum flip", flip(len(good) - 1)},
	} {
		if _, err := verify(t, tc.data, len(payload)); !errors.Is(err, ErrFooter) {
			t.Errorf("%s: err = %v, want ErrFooter", tc.name, err)
		}
	}
}
