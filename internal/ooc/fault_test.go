package ooc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// Under a low transient fault rate, retries must make the run exactly
// equivalent to a fault-free one: the injector draws from its own RNG, so the
// walk streams are untouched and every cost counter except ReadRetries must
// match the clean run.
func TestTransientFaultsAreRetriedTransparently(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))

	clean, err := BuildDiskPAT(w, tempStore(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := NewEngine(g, clean, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatal(err)
	}

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 0.02, Class: FaultTransient, Seed: 7})
	faulty, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: 0})
	resFaulty, err := NewEngine(g, faulty, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatalf("run under transient faults failed: %v", err)
	}

	if fi.Injected() == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	if resFaulty.Cost.ReadRetries == 0 {
		t.Fatal("no retries recorded despite injected transient faults")
	}
	if faulty.Err() != nil {
		t.Fatalf("sticky error after recoverable faults: %v", faulty.Err())
	}
	c, f := resClean.Cost, resFaulty.Cost
	if c.Steps != f.Steps || c.EdgesEvaluated != f.EdgesEvaluated ||
		c.WalksStarted != f.WalksStarted || c.WalksCompleted != f.WalksCompleted ||
		c.WalksDeadEnded != f.WalksDeadEnded {
		t.Fatalf("faulty run diverged from clean run:\nclean:  %+v\nfaulty: %+v", c, f)
	}
}

// A permanent fault must surface promptly as a wrapped error naming the
// failed read — not retry forever, and not degrade into every walk silently
// dead-ending.
func TestPermanentFaultSurfacesAsError(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 1.0, Class: FaultPermanent, Seed: 3})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g, d, nil).Run(2, 30, 42)
	if err == nil {
		t.Fatal("permanent fault did not surface")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error lost its injected marker: %v", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
	if d.Retries() != 0 {
		t.Fatalf("retried a permanent fault %d times", d.Retries())
	}
	if res == nil || res.Cost.WalksStarted == 0 {
		t.Fatal("no partial result returned")
	}
	if res.Cost.WalksStarted > 1 {
		t.Fatalf("run continued for %d walks past a permanent fault", res.Cost.WalksStarted)
	}
}

// Exhausting the retry budget on a persistent transient fault must also
// surface an error rather than hang or spin.
func TestTransientRetryBudgetExhaustion(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 1.0, Class: FaultTransient, Seed: 3})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseDelay: 0})
	_, err = NewEngine(g, d, nil).Run(1, 10, 1)
	if err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("error lost its transient marker: %v", err)
	}
	if d.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (MaxRetries)", d.Retries())
	}
}

// The injector must not perturb sampling when it never fires: rate 0 is a
// pure pass-through.
func TestFaultInjectorZeroRatePassThrough(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 4000, 800, 9)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		d.Sample(5, g.Degree(5), r)
	}
	if fi.Injected() != 0 {
		t.Fatal("zero-rate injector fired")
	}
	if d.Retries() != 0 || d.Err() != nil {
		t.Fatalf("pass-through injector caused retries=%d err=%v", d.Retries(), d.Err())
	}
}

// A cancelled context must stop the out-of-core run between walks, returning
// the partial result with the context's error.
func TestEngineRunContextCancelled(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	d, err := BuildDiskPAT(w, tempStore(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEngine(g, d, nil).RunContext(ctx, 2, 30, 42)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result on cancellation")
	}
	if res.Cost.WalksStarted != 0 {
		t.Fatalf("pre-cancelled run still started %d walks", res.Cost.WalksStarted)
	}
}

// cancellingStore wraps a BlockStore and fires a cancel func after a fixed
// number of reads, simulating a caller abandoning the run while a long walk
// is mid-flight on the device.
type cancellingStore struct {
	BlockStore
	reads  atomic.Int64
	after  int64
	cancel context.CancelFunc // nil until armed
}

func (c *cancellingStore) ReadAt(p []byte, off int64) error {
	if c.cancel != nil && c.reads.Add(1) == c.after {
		c.cancel()
	}
	return c.BlockStore.ReadAt(p, off)
}

// Cancellation arriving mid-walk must classify the interrupted walk as
// cancelled — not as a temporal dead end — and stop the run at the next
// between-walk check with context.Canceled. This exercises the amortized
// in-walk ctx poll (walkOneCtxCheckMask) on a walk long enough that waiting
// for its natural end would take thousands more device reads.
func TestEngineCancelMidWalkClassifiesCancelled(t *testing.T) {
	const n = 4000
	edges := make([]temporal.Edge, n-1)
	for i := range edges {
		edges[i] = temporal.Edge{Src: temporal.Vertex(i), Dst: temporal.Vertex(i + 1), Time: temporal.Time(i)}
	}
	g := temporal.MustFromEdges(edges)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	cs := &cancellingStore{BlockStore: tempStore(t), after: 256}
	d, err := BuildDiskPAT(w, cs, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs.cancel = cancel // arm only after the build's own I/O is done

	// Three identical starts: walk 0 is cancelled mid-walk, the loop's
	// between-walk check then aborts before walks 1 and 2 begin.
	starts := []temporal.Vertex{0, 0, 0}
	res, err := NewEngine(g, d, nil).RunStarts(ctx, starts, n-1, 42)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.Err() != nil {
		t.Fatalf("cancellation recorded as a sticky device error: %v", d.Err())
	}
	c := res.Cost
	if c.WalksStarted != 1 {
		t.Fatalf("walks started = %d, want 1", c.WalksStarted)
	}
	if c.WalksCancelled != 1 || c.WalksDeadEnded != 0 || c.WalksCompleted != 0 {
		t.Fatalf("terminal classification cancelled=%d deadEnded=%d completed=%d, want 1/0/0",
			c.WalksCancelled, c.WalksDeadEnded, c.WalksCompleted)
	}
	if got := c.WalksCompleted + c.WalksDeadEnded + c.WalksCancelled + c.WalksPanicked; got != c.WalksStarted {
		t.Fatalf("started %d walks but classified %d", c.WalksStarted, got)
	}
	// The chain forces one step per device read, so the walk must have died
	// shortly after the cancel fired — well before its natural n-1 steps.
	if c.Steps >= n-1 || c.Steps == 0 {
		t.Fatalf("steps = %d, want in (0, %d)", c.Steps, n-1)
	}
}
