package ooc

import (
	"context"
	"errors"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

// Under a low transient fault rate, retries must make the run exactly
// equivalent to a fault-free one: the injector draws from its own RNG, so the
// walk streams are untouched and every cost counter except ReadRetries must
// match the clean run.
func TestTransientFaultsAreRetriedTransparently(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))

	clean, err := BuildDiskPAT(w, tempStore(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := NewEngine(g, clean, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatal(err)
	}

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 0.02, Class: FaultTransient, Seed: 7})
	faulty, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: 0})
	resFaulty, err := NewEngine(g, faulty, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatalf("run under transient faults failed: %v", err)
	}

	if fi.Injected() == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	if resFaulty.Cost.ReadRetries == 0 {
		t.Fatal("no retries recorded despite injected transient faults")
	}
	if faulty.Err() != nil {
		t.Fatalf("sticky error after recoverable faults: %v", faulty.Err())
	}
	c, f := resClean.Cost, resFaulty.Cost
	if c.Steps != f.Steps || c.EdgesEvaluated != f.EdgesEvaluated ||
		c.WalksStarted != f.WalksStarted || c.WalksCompleted != f.WalksCompleted ||
		c.WalksDeadEnded != f.WalksDeadEnded {
		t.Fatalf("faulty run diverged from clean run:\nclean:  %+v\nfaulty: %+v", c, f)
	}
}

// A permanent fault must surface promptly as a wrapped error naming the
// failed read — not retry forever, and not degrade into every walk silently
// dead-ending.
func TestPermanentFaultSurfacesAsError(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 1.0, Class: FaultPermanent, Seed: 3})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g, d, nil).Run(2, 30, 42)
	if err == nil {
		t.Fatal("permanent fault did not surface")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error lost its injected marker: %v", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
	if d.Retries() != 0 {
		t.Fatalf("retried a permanent fault %d times", d.Retries())
	}
	if res == nil || res.Cost.WalksStarted == 0 {
		t.Fatal("no partial result returned")
	}
	if res.Cost.WalksStarted > 1 {
		t.Fatalf("run continued for %d walks past a permanent fault", res.Cost.WalksStarted)
	}
}

// Exhausting the retry budget on a persistent transient fault must also
// surface an error rather than hang or spin.
func TestTransientRetryBudgetExhaustion(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 1.0, Class: FaultTransient, Seed: 3})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseDelay: 0})
	_, err = NewEngine(g, d, nil).Run(1, 10, 1)
	if err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("error lost its transient marker: %v", err)
	}
	if d.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (MaxRetries)", d.Retries())
	}
}

// The injector must not perturb sampling when it never fires: rate 0 is a
// pure pass-through.
func TestFaultInjectorZeroRatePassThrough(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 4000, 800, 9)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	fi := NewFaultInjector(tempStore(t), FaultConfig{})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		d.Sample(5, g.Degree(5), r)
	}
	if fi.Injected() != 0 {
		t.Fatal("zero-rate injector fired")
	}
	if d.Retries() != 0 || d.Err() != nil {
		t.Fatalf("pass-through injector caused retries=%d err=%v", d.Retries(), d.Err())
	}
}

// A cancelled context must stop the out-of-core run between walks, returning
// the partial result with the context's error.
func TestEngineRunContextCancelled(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	d, err := BuildDiskPAT(w, tempStore(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEngine(g, d, nil).RunContext(ctx, 2, 30, 42)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result on cancellation")
	}
	if res.Cost.WalksStarted != 0 {
		t.Fatalf("pre-cancelled run still started %d walks", res.Cost.WalksStarted)
	}
}
