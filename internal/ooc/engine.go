package ooc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/tea-graph/tea/internal/blockcache"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// ErrCustomWeight mirrors the baseline restriction for the on-disk engines.
var ErrCustomWeight = errors.New("ooc: custom weight functions are not supported out of core")

// WalkFlushThreshold is the number of completed walks buffered before they
// are flushed to disk, matching GraphWalker's policy that TEA adopts (§4.1:
// "we flush the completed ones to disk when the number of them reaches
// 1,024").
const WalkFlushThreshold = 1024

// Sampler is the sampling contract shared with the in-memory engine.
type Sampler interface {
	Name() string
	Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool)
	MemoryBytes() int64
}

// ctxSampler is the optional context-threaded sampling hook (the ooc twin of
// core.ContextSampler). DiskPAT and DiskGraphWalker implement it so traced
// runs get per-block-fetch spans; it is only resolved — and SampleCtx only
// called — when the run's context actually carries an active trace span.
type ctxSampler interface {
	SampleCtx(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool)
}

// Engine drives temporal walks whose sampling structure lives on disk,
// buffering completed walks and flushing them to the output store in groups
// of WalkFlushThreshold.
type Engine struct {
	g       *temporal.Graph
	sampler Sampler
	out     BlockStore
	cache   *blockcache.CachedStore
}

// NewEngine wires a disk-backed sampler to a walk output store. out may be
// nil, in which case completed walks are discarded (cost accounting only).
func NewEngine(g *temporal.Graph, sampler Sampler, out BlockStore) *Engine {
	return &Engine{g: g, sampler: sampler, out: out}
}

// EngineOptions configures optional engine behavior; the zero value matches
// NewEngine.
type EngineOptions struct {
	// Cache, when its capacity is positive and the sampler supports it,
	// layers a block cache between the sampler and its store.
	Cache CacheConfig
}

// NewEngineWithOptions is NewEngine plus options: a positive cache capacity
// is applied to samplers implementing CacheableSampler (DiskPAT,
// DiskGraphWalker) and the resulting cache is reachable via Cache().
func NewEngineWithOptions(g *temporal.Graph, sampler Sampler, out BlockStore, opts EngineOptions) *Engine {
	e := NewEngine(g, sampler, out)
	if opts.Cache.CapacityBytes > 0 {
		if cs, ok := sampler.(CacheableSampler); ok {
			e.cache = cs.EnableCache(opts.Cache)
		}
	}
	return e
}

// Cache returns the block cache enabled via NewEngineWithOptions, or nil.
func (e *Engine) Cache() *blockcache.CachedStore { return e.cache }

// Result reports an out-of-core run.
type Result struct {
	Cost     stats.Cost
	Duration time.Duration
	Flushes  int
}

// Run walks length steps from every vertex (walksPerVertex copies each) and
// returns merged costs.
func (e *Engine) Run(walksPerVertex, length int, seed uint64) (*Result, error) {
	return e.RunContext(context.Background(), walksPerVertex, length, seed)
}

// RunContext is Run with cooperative cancellation and fault surfacing: the
// run aborts between walks when ctx is done (returning the partial Result
// with ctx.Err()), and when the sampler reports an unrecoverable read failure
// via an Err() method the run stops there with that error instead of silently
// dead-ending every remaining walk. Walks are executed sequentially per the
// out-of-core model where the device, not the CPU, is the bottleneck; the
// sampler's store accumulates the I/O counters.
func (e *Engine) RunContext(ctx context.Context, walksPerVertex, length int, seed uint64) (*Result, error) {
	if walksPerVertex <= 0 {
		walksPerVertex = 1
	}
	wpv := uint64(walksPerVertex)
	total := uint64(e.g.NumVertices()) * wpv
	return e.runWalks(ctx, total, func(id uint64) temporal.Vertex {
		return temporal.Vertex(id / wpv)
	}, length, seed)
}

// RunStarts is RunContext over an explicit workload: one walk per element of
// starts, in order. This is how skewed (e.g. Zipfian) traffic is replayed
// against the disk samplers — the per-walk RNG split and flush policy match
// RunContext exactly, so results are comparable.
func (e *Engine) RunStarts(ctx context.Context, starts []temporal.Vertex, length int, seed uint64) (*Result, error) {
	return e.runWalks(ctx, uint64(len(starts)), func(id uint64) temporal.Vertex {
		return starts[id]
	}, length, seed)
}

// runWalks drives total walks whose start vertex is startOf(walkID), walkID
// in [0, total).
func (e *Engine) runWalks(ctx context.Context, total uint64, startOf func(uint64) temporal.Vertex, length int, seed uint64) (*Result, error) {
	if length <= 0 {
		length = 80
	}
	root := xrand.New(seed)
	res := &Result{}
	start := time.Now()
	defer func() { res.Duration = time.Since(start) }()

	// Samplers with sticky error reporting (DiskPAT, DiskGraphWalker) let the
	// run distinguish a dead device from a temporal dead end.
	samplerErr, _ := e.sampler.(interface{ Err() error })
	retryCounter, _ := e.sampler.(interface{ Retries() int64 })
	retriesBefore := int64(0)
	if retryCounter != nil {
		retriesBefore = retryCounter.Retries()
	}
	finishRetries := func() {
		if retryCounter != nil {
			res.Cost.ReadRetries = retryCounter.Retries() - retriesBefore
		}
	}

	// Tracing: the run span and the per-flush-group batch spans exist only
	// when the caller's context is being traced; cs stays nil otherwise so the
	// untraced walk loop is the plain Sample call. Cost accounting also rides
	// the context-threaded path, so it too resolves cs.
	ctx, runSpan := trace.Start(ctx, "ooc.run")
	var cs ctxSampler
	if runSpan != nil {
		runSpan.SetStr("sampler", e.sampler.Name())
		runSpan.SetInt("walks", int64(total))
		runSpan.SetInt("length", int64(length))
	}
	if runSpan != nil || reqcost.Active(ctx) {
		cs, _ = e.sampler.(ctxSampler)
	}
	walkCtx := ctx
	var batchSpan *trace.Span
	batchIdx, batchStart := int64(0), uint64(0)
	endBatch := func(walkID uint64) {
		if batchSpan == nil {
			return
		}
		batchSpan.SetInt("walks", int64(walkID-batchStart))
		batchSpan.End()
		batchSpan = nil
		walkCtx = ctx
	}
	finish := func(walkID uint64, err error) {
		finishRetries()
		endBatch(walkID)
		if runSpan != nil {
			runSpan.SetInt("steps", res.Cost.Steps)
			runSpan.SetInt("edges_evaluated", res.Cost.EdgesEvaluated)
			runSpan.SetInt("flushes", int64(res.Flushes))
			runSpan.SetInt("read_retries", res.Cost.ReadRetries)
			runSpan.SetError(err)
			runSpan.End()
		}
		if err != nil {
			kind := trace.KindError
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				kind = trace.KindCancel
			}
			trace.EventCtx(ctx, kind, "ooc.run aborted", trace.Str("cause", err.Error()))
		}
	}

	buffer := make([]Path, 0, WalkFlushThreshold)
	flush := func() error {
		if len(buffer) == 0 || e.out == nil {
			return nil
		}
		if err := writeWalks(e.out, buffer); err != nil {
			return err
		}
		res.Flushes++
		buffer = buffer[:0]
		return nil
	}

	for walkID := uint64(0); walkID < total; walkID++ {
		if err := ctx.Err(); err != nil {
			finish(walkID, err)
			return res, err
		}
		if runSpan != nil && batchSpan == nil {
			walkCtx, batchSpan = trace.Start(ctx, "walk_batch")
			batchSpan.SetInt("batch", batchIdx)
			batchIdx++
			batchStart = walkID
		}
		r := root.Split(walkID)
		p := e.walkOne(walkCtx, cs, startOf(walkID), length, r, &res.Cost)
		if samplerErr != nil {
			if err := samplerErr.Err(); err != nil {
				finish(walkID+1, err)
				return res, err
			}
		}
		buffer = append(buffer, p)
		if len(buffer) >= WalkFlushThreshold {
			endBatch(walkID + 1)
			if err := flush(); err != nil {
				finish(walkID+1, err)
				return res, err
			}
		}
	}
	if err := flush(); err != nil {
		finish(total, err)
		return res, err
	}
	finish(total, nil)
	return res, nil
}

// Path is one completed walk.
type Path struct {
	Vertices []temporal.Vertex
	Times    []temporal.Time
}

// walkOneCtxCheckMask amortizes the in-walk cancellation poll: the loop
// checks ctx.Err() every 64 steps, so even a single very long walk honors
// cancellation promptly while the default 80-step walk pays one check.
const walkOneCtxCheckMask = 63

func (e *Engine) walkOne(ctx context.Context, cs ctxSampler, src temporal.Vertex, length int, r *xrand.Rand, cost *stats.Cost) Path {
	cost.WalksStarted++
	p := Path{Vertices: []temporal.Vertex{src}}
	u := src
	k := e.g.CandidateCount(u, temporal.MinTime)
	steps := 0
	for steps < length && k > 0 {
		if steps&walkOneCtxCheckMask == walkOneCtxCheckMask && ctx.Err() != nil {
			break // cancelled mid-walk: keep the partial walk
		}
		var (
			idx int
			ev  int64
			ok  bool
		)
		if cs != nil {
			idx, ev, ok = cs.SampleCtx(ctx, u, k, r)
		} else {
			idx, ev, ok = e.sampler.Sample(u, k, r)
		}
		cost.EdgesEvaluated += ev
		if !ok {
			break
		}
		dst, at := e.g.EdgeAt(u, idx)
		p.Vertices = append(p.Vertices, dst)
		p.Times = append(p.Times, at)
		cost.Steps++
		k = e.g.CandidateCountAfterEdge(u, idx)
		u = dst
		steps++
	}
	// A sampler that saw the cancelled context returns ok=false exactly like
	// a temporal dead end; the context is the tiebreaker so cancelled runs
	// don't inflate the dead-end counters.
	switch {
	case steps == length:
		cost.WalksCompleted++
	case ctx.Err() != nil:
		cost.WalksCancelled++
	default:
		cost.WalksDeadEnded++
	}
	return p
}

// writeWalks serializes a flush batch: per walk, a length header followed by
// (vertex, time) pairs.
func writeWalks(out BlockStore, walks []Path) error {
	size := 0
	for _, w := range walks {
		size += 4 + len(w.Vertices)*4 + len(w.Times)*8
	}
	buf := make([]byte, size)
	pos := 0
	for _, w := range walks {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(len(w.Vertices)))
		pos += 4
		for _, v := range w.Vertices {
			binary.LittleEndian.PutUint32(buf[pos:], uint32(v))
			pos += 4
		}
		for _, t := range w.Times {
			binary.LittleEndian.PutUint64(buf[pos:], uint64(t))
			pos += 8
		}
	}
	if pos != size {
		return fmt.Errorf("ooc: walk serialization mismatch: %d != %d", pos, size)
	}
	_, err := out.Append(buf)
	return err
}
