package ooc

import (
	"bytes"
	"sort"
	"sync"
	"testing"
)

// Concurrent appenders must receive disjoint, correctly-ordered regions:
// Append reserves its offset atomically, so no two writers can interleave
// into the same range (the historical race was a non-atomic Seek+WriteAt
// pair). Run with -race.
func TestAppendConcurrentWritersDisjoint(t *testing.T) {
	const (
		writers   = 8
		perWriter = 50
		blockSize = 128
	)
	s := tempStore(t)

	type region struct {
		off int64
		w   byte
		i   int
	}
	var (
		mu      sync.Mutex
		regions []region
		wg      sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Pattern the block so read-back identifies writer and round.
				block := make([]byte, blockSize)
				block[0] = byte(w)
				block[1] = byte(i)
				for j := 2; j < blockSize; j++ {
					block[j] = byte(w) ^ byte(i)
				}
				off, err := s.Append(block)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				regions = append(regions, region{off: off, w: byte(w), i: i})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(regions) != writers*perWriter {
		t.Fatalf("%d appends recorded, want %d", len(regions), writers*perWriter)
	}
	// Offsets must tile [0, writers*perWriter*blockSize) exactly: sorted,
	// disjoint, and gap-free.
	sort.Slice(regions, func(a, b int) bool { return regions[a].off < regions[b].off })
	for idx, r := range regions {
		if want := int64(idx * blockSize); r.off != want {
			t.Fatalf("region %d at offset %d, want %d (overlap or gap)", idx, r.off, want)
		}
	}
	// Every block must read back exactly as its writer wrote it.
	for _, r := range regions {
		got := make([]byte, blockSize)
		if err := s.ReadAt(got, r.off); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, blockSize)
		want[0] = r.w
		want[1] = byte(r.i)
		for j := 2; j < blockSize; j++ {
			want[j] = r.w ^ byte(r.i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block at %d corrupted: writer %d round %d", r.off, r.w, r.i)
		}
	}
	// The reserved end must equal the true store size.
	if end, err := s.Append(nil); err != nil || end != int64(writers*perWriter*blockSize) {
		t.Fatalf("final end = %d, %v; want %d", end, err, writers*perWriter*blockSize)
	}
}

// WriteAt past the current end must advance the reserved end so a later
// Append lands after it, and reopening a store must pick the end up from the
// file size.
func TestAppendEndTracksWritesAndReopen(t *testing.T) {
	s := tempStore(t)
	if err := s.WriteAt([]byte{1, 2, 3, 4}, 100); err != nil {
		t.Fatal(err)
	}
	off, err := s.Append([]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if off != 104 {
		t.Fatalf("append after extending WriteAt landed at %d, want 104", off)
	}

	reopened, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	off, err = reopened.Append([]byte{7})
	if err != nil {
		t.Fatal(err)
	}
	if off != 105 {
		t.Fatalf("append after reopen landed at %d, want 105", off)
	}
}
