package ooc

import (
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestStoreReadWriteAccounting(t *testing.T) {
	s := tempStore(t)
	data := []byte("hello, block store")
	off, err := s.Append(data)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read back %q", got)
	}
	br, ro, bw, wo := s.Counters()
	if br != int64(len(data)) || ro != 1 || bw != int64(len(data)) || wo != 1 {
		t.Fatalf("counters %d/%d/%d/%d", br, ro, bw, wo)
	}
	s.ResetCounters()
	br, ro, bw, wo = s.Counters()
	if br+ro+bw+wo != 0 {
		t.Fatal("reset failed")
	}
}

func TestStoreReadBeyondEOF(t *testing.T) {
	s := tempStore(t)
	if err := s.ReadAt(make([]byte, 8), 1<<20); err == nil {
		t.Fatal("EOF read succeeded")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{PerOp: time.Millisecond, BytesPerSecond: 1e6}
	got := m.ReadTime(1e6, 10)
	want := time.Second + 10*time.Millisecond
	if got != want {
		t.Fatalf("ReadTime = %v, want %v", got, want)
	}
	zero := CostModel{PerOp: time.Millisecond}
	if zero.ReadTime(100, 3) != 3*time.Millisecond {
		t.Fatal("zero-bandwidth model wrong")
	}
}

func TestDiskPATDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "TEA-OOC" {
		t.Fatal("name")
	}
	r := xrand.New(1)
	for k := 1; k <= 7; k++ {
		want := make([]float64, k)
		for i := range want {
			want[i] = float64(7 - i)
		}
		testutil.CheckDistribution(t, "diskpat", want, 15000, func() (int, bool) {
			e, _, ok := d.Sample(7, k, r)
			return e, ok
		})
	}
}

func TestDiskPATDegenerate(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	if _, _, ok := d.Sample(7, 0, r); ok {
		t.Fatal("k=0")
	}
	if _, _, ok := d.Sample(1, 1, r); ok {
		t.Fatal("degree 0")
	}
	if e, _, ok := d.Sample(7, 99, r); !ok || e < 0 || e >= 7 {
		t.Fatal("clamp")
	}
}

func TestDiskPATMemoryTiny(t *testing.T) {
	g := testutil.SkewedGraph(t, 64, 8192)
	w := testutil.Weights(t, g, sampling.Exponential(0.001))
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Resident: ~deg/10 floats for the hub ≈ 820*8 bytes plus offsets.
	if d.MemoryBytes() > int64(g.NumEdges())*8 {
		t.Fatalf("OOC PAT memory %d not sublinear in edge bytes", d.MemoryBytes())
	}
	if d.Store() != s {
		t.Fatal("store accessor")
	}
}

func TestDiskGraphWalkerDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	s := tempStore(t)
	d, err := BuildDiskGraphWalker(g, sampling.Exponential(0.5), s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "GraphWalker-OOC" {
		t.Fatal("name")
	}
	w := testutil.Weights(t, g, sampling.Exponential(0.5))
	r := xrand.New(3)
	for _, k := range []int{1, 4, 7} {
		want := append([]float64(nil), w.Vertex(7)[:k]...)
		testutil.CheckDistribution(t, "diskgw", want, 15000, func() (int, bool) {
			e, _, ok := d.Sample(7, k, r)
			return e, ok
		})
	}
	if _, _, ok := d.Sample(7, 0, r); ok {
		t.Fatal("k=0")
	}
	if d.MemoryBytes() <= 0 {
		t.Fatal("memory")
	}
	if d.Store() != s {
		t.Fatal("store accessor")
	}
}

func TestDiskGraphWalkerRejectsCustom(t *testing.T) {
	g := temporal.CommuteGraph()
	s := tempStore(t)
	spec := sampling.WeightSpec{Custom: func(temporal.Time) float64 { return 1 }}
	if _, err := BuildDiskGraphWalker(g, spec, s); err == nil {
		t.Fatal("custom weight accepted")
	}
}

// The Figure 14b effect: per-step I/O volume of TEA-OOC is O(trunkSize)
// while the full-load baseline reads O(D) — a hub-heavy graph must show a
// large gap.
func TestIOSeparation(t *testing.T) {
	g := testutil.SkewedGraph(t, 32, 4096)
	g.PrecomputeCandidates(1)
	spec := sampling.Exponential(0.002)
	w := testutil.Weights(t, g, spec)

	sTea := tempStore(t)
	tea, err := BuildDiskPAT(w, sTea, 10)
	if err != nil {
		t.Fatal(err)
	}
	sGw := tempStore(t)
	gw, err := BuildDiskGraphWalker(g, spec, sGw)
	if err != nil {
		t.Fatal(err)
	}
	sTea.ResetCounters()
	sGw.ResetCounters()

	r := xrand.New(4)
	deg := g.Degree(0)
	const draws = 500
	for i := 0; i < draws; i++ {
		k := 1 + r.IntN(deg)
		if _, _, ok := tea.Sample(0, k, r); !ok {
			t.Fatal("tea draw failed")
		}
		if _, _, ok := gw.Sample(0, k, r); !ok {
			t.Fatal("gw draw failed")
		}
	}
	teaBytes, _, _, _ := sTea.Counters()
	gwBytes, _, _, _ := sGw.Counters()
	if gwBytes < 20*teaBytes {
		t.Fatalf("I/O separation too small: TEA %d bytes vs GraphWalker %d bytes", teaBytes, gwBytes)
	}
}

func TestEngineRunAndFlush(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := tempStore(t)
	eng := NewEngine(g, d, out)
	res, err := eng.Run(5, 10, 7) // 1500 walks → at least one full flush
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.WalksStarted != int64(5*g.NumVertices()) {
		t.Fatalf("WalksStarted = %d", res.Cost.WalksStarted)
	}
	if res.Flushes < 1 {
		t.Fatal("no flushes despite >1024 walks")
	}
	_, _, bw, wo := out.Counters()
	if bw == 0 || wo == 0 {
		t.Fatal("no walk output written")
	}
	if res.Cost.Steps == 0 || res.Cost.EdgesEvaluated == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestEngineNilOutput(t *testing.T) {
	g := temporal.CommuteGraph()
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(g, d, nil)
	res, err := eng.Run(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes != 0 {
		t.Fatal("flushed with nil output")
	}
}

func TestOpenKeepsFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.dat"
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("persist")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 7)
	if err := s2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("read back %q", got)
	}
	if s2.Path() != path {
		t.Fatal("path accessor")
	}
}

func BenchmarkDiskPATSample(b *testing.B) {
	g := testutil.SkewedGraph(b, 64, 4096)
	w, err := sampling.BuildGraphWeights(g, sampling.Exponential(0.002), 0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewTempStore()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	d, err := BuildDiskPAT(w, s, 10)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	deg := g.Degree(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(0, 1+r.IntN(deg), r)
	}
}

// Failure injection: a sampler whose store disappears must fail draws
// gracefully (ok=false), never panic.
func TestDiskPATSurvivesStoreFailure(t *testing.T) {
	g := temporal.CommuteGraph()
	w := testutil.Weights(t, g, sampling.WeightSpec{Kind: sampling.WeightLinearRank})
	s, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDiskPAT(w, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	for i := 0; i < 100; i++ {
		if _, _, ok := d.Sample(7, 7, r); ok {
			t.Fatal("draw succeeded against a closed store")
		}
	}
}

func TestDiskGraphWalkerSurvivesStoreFailure(t *testing.T) {
	g := temporal.CommuteGraph()
	s, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDiskGraphWalker(g, sampling.WeightSpec{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(10)
	if _, _, ok := d.Sample(7, 7, r); ok {
		t.Fatal("draw succeeded against a closed store")
	}
}

// The out-of-core engine must propagate output-store failures instead of
// silently dropping walks.
func TestEngineFlushFailure(t *testing.T) {
	g := testutil.RandomGraph(t, 400, 8000, 900, 8)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	_ = out.Close() // output store broken before the run
	eng := NewEngine(g, d, out)
	if _, err := eng.Run(4, 10, 1); err == nil {
		t.Fatal("flush to a closed store reported success")
	}
}

// When the candidate prefix carries a vanishing share of its trunk's weight,
// the one-read rejection protocol exhausts its proposals and must fall back
// to the exact two-read path — with the correct conditional distribution.
// Built-in temporal weights are non-increasing along the newest-first list,
// so the candidate prefix always dominates its trunk (acceptance ≥ k/trunk);
// only a custom age-increasing Dynamic_weight can starve the proposals.
func TestDiskPATRejectionFallbackDistribution(t *testing.T) {
	edges := make([]temporal.Edge, 10)
	for i := range edges {
		edges[i] = temporal.Edge{Src: 0, Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)}
	}
	g := temporal.MustFromEdges(edges)
	// Older edges exponentially heavier: the 3 newest candidates carry
	// ≈ e^-21 of the trunk's mass, so essentially every draw exhausts the
	// 128-proposal budget and takes the exact fallback.
	spec := sampling.WeightSpec{Custom: func(tm temporal.Time) float64 {
		w := 1.0
		for i := temporal.Time(0); i < 10-tm; i++ {
			w *= 20.0 // 20^(10-t): steep growth with age, no overflow
		}
		return w
	}}
	w := testutil.Weights(t, g, spec)
	s := tempStore(t)
	d, err := BuildDiskPAT(w, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(21)
	// Candidates: the 3 newest edges (t=10,9,8) with weights 1, 20, 400.
	want := []float64{1, 20, 400}
	testutil.CheckDistribution(t, "ooc-fallback", want, 20000, func() (int, bool) {
		e, _, ok := d.Sample(0, 3, r)
		return e, ok
	})
}
